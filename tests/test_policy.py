"""Tests for the Sia policy: scale-up rule, type matching, rigid jobs,
restart stickiness, non-preemption, allocation incentive."""

import pytest

from repro.core.policy import SiaPolicy, SiaPolicyParams
from repro.core.types import AdaptivityMode, Configuration, ProfilingMode
from repro.jobs.job import make_job
from repro.perf.estimator import JobPerfEstimator
from repro.schedulers.base import JobView


def view_for(job, cluster, *, current=None, age=0.0, restarts=0,
             mode=ProfilingMode.BOOTSTRAP, progress=0.0) -> JobView:
    estimator = JobPerfEstimator(job.model_name, job.constraints(),
                                 cluster.gpu_types, mode)
    estimator.profile_initial()
    return JobView(job=job, estimator=estimator, current_config=current,
                   age=age, num_restarts=restarts, progress=progress)


@pytest.fixture
def policy() -> SiaPolicy:
    return SiaPolicy()


class TestScaleUpRule:
    def test_new_job_starts_at_one_gpu(self, policy, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        decision = policy.decide([view_for(job, hetero_cluster)],
                                 hetero_cluster, 0.0)
        assert decision.assignments["j1"].num_gpus == 1

    def test_running_job_at_most_doubles(self, policy, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        current = Configuration(1, 2, "a100")
        view = view_for(job, hetero_cluster, current=current, age=7200.0)
        decision = policy.decide([view], hetero_cluster, 7200.0)
        assert decision.assignments["j1"].num_gpus <= 4

    def test_feasible_configs_include_current(self, policy, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        current = Configuration(1, 8, "a100")
        view = view_for(job, hetero_cluster, current=current, age=3600.0)
        configs = policy.configurations(hetero_cluster, max_gpus=16)
        feasible = policy.feasible_configs(view, configs)
        assert configs.index(current) in feasible


class TestTypeMatching:
    def test_bert_lands_on_a100(self, policy, hetero_cluster):
        """The heart of the paper: with a100 available, an isolated BERT job
        should be placed there."""
        job = make_job("j1", "bert", 0.0)
        decision = policy.decide([view_for(job, hetero_cluster)],
                                 hetero_cluster, 0.0)
        assert decision.assignments["j1"].gpu_type == "a100"

    def test_contending_jobs_split_types(self, policy):
        """BERT prefers a100 strongly; DeepSpeech2 is nearly as fast on rtx.
        With one a100 GPU and one rtx GPU, Sia must give the a100 to BERT —
        the row normalization makes that cross-job comparison valid."""
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import NodeGroup
        scarce = Cluster.from_groups([NodeGroup("a100", 1, 1),
                                      NodeGroup("rtx", 1, 1)])
        bert = make_job("bert-0", "bert", 0.0)
        ds2 = make_job("ds2-0", "deepspeech2", 0.0)
        views = [view_for(ds2, scarce), view_for(bert, scarce)]
        decision = policy.decide(views, scarce, 0.0)
        assert decision.assignments["bert-0"].gpu_type == "a100"
        assert decision.assignments["ds2-0"].gpu_type == "rtx"

    def test_fixed_gpu_type_respected(self, policy, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        job.fixed_gpu_type = "rtx"
        decision = policy.decide([view_for(job, hetero_cluster)],
                                 hetero_cluster, 0.0)
        assert decision.assignments["j1"].gpu_type == "rtx"


class TestRigidJobs:
    def test_rigid_count_pinned(self, policy, hetero_cluster):
        job = make_job("j1", "bert", 0.0, adaptivity=AdaptivityMode.RIGID,
                       fixed_num_gpus=4, fixed_batch_size=48)
        decision = policy.decide([view_for(job, hetero_cluster)],
                                 hetero_cluster, 0.0)
        assert decision.assignments["j1"].num_gpus == 4

    def test_rigid_job_still_gets_best_type(self, policy, hetero_cluster):
        job = make_job("j1", "bert", 0.0, adaptivity=AdaptivityMode.RIGID,
                       fixed_num_gpus=2, fixed_batch_size=48)
        decision = policy.decide([view_for(job, hetero_cluster)],
                                 hetero_cluster, 0.0)
        assert decision.assignments["j1"].gpu_type == "a100"


class TestRestartStickiness:
    def test_young_job_keeps_configuration(self, policy, hetero_cluster):
        """A job that just started should not be migrated for a *marginal*
        gain (Equation 3 discount).  DeepSpeech2 on rtx is only ~25% slower
        than on a100, far less than the restart discount of a 30 s old job
        with a 40 s restore cost; with max_gpus=1 scale-up cannot justify
        the move either."""
        job = make_job("j1", "deepspeech2", 0.0, max_gpus=1)
        current = Configuration(1, 1, "rtx")
        view = view_for(job, hetero_cluster, current=current, age=30.0)
        decision = policy.decide([view], hetero_cluster, 30.0)
        assert decision.assignments["j1"] == current

    def test_restart_factor_disabled_allows_migration(self, hetero_cluster):
        policy = SiaPolicy(SiaPolicyParams(use_restart_factor=False))
        job = make_job("j1", "bert", 0.0)
        current = Configuration(1, 1, "t4")
        view = view_for(job, hetero_cluster, current=current, age=30.0)
        decision = policy.decide([view], hetero_cluster, 30.0)
        assert decision.assignments["j1"].gpu_type == "a100"


class TestNonPreemption:
    def test_non_preemptible_job_pinned(self, policy, hetero_cluster):
        pinned = make_job("pin", "bert", 0.0, preemptible=False)
        current = Configuration(1, 8, "a100")
        views = [view_for(pinned, hetero_cluster, current=current, age=60.0)]
        # Add hungry competitors for a100.
        for i in range(4):
            views.append(view_for(make_job(f"c{i}", "bert", 0.0),
                                  hetero_cluster))
        decision = policy.decide(views, hetero_cluster, 60.0)
        assert decision.assignments["pin"] == current


class TestCapacity:
    def test_total_gpus_never_exceed_capacity(self, policy, hetero_cluster):
        views = [view_for(make_job(f"j{i}", "resnet18", 0.0), hetero_cluster)
                 for i in range(30)]
        decision = policy.decide(views, hetero_cluster, 0.0)
        used: dict[str, int] = {}
        for config in decision.assignments.values():
            used[config.gpu_type] = used.get(config.gpu_type, 0) \
                + config.num_gpus
        for gpu_type, count in used.items():
            assert count <= hetero_cluster.capacity(gpu_type)

    def test_all_jobs_allocated_when_room(self, policy, hetero_cluster):
        """lambda incentivizes allocating every job at least min size."""
        views = [view_for(make_job(f"j{i}", "resnet18", 0.0), hetero_cluster)
                 for i in range(10)]
        decision = policy.decide(views, hetero_cluster, 0.0)
        assert len(decision.assignments) == 10

    def test_empty_views(self, policy, hetero_cluster):
        decision = policy.decide([], hetero_cluster, 0.0)
        assert decision.assignments == {}


class TestSolverBackends:
    @pytest.mark.parametrize("backend", ["milp", "exact", "greedy"])
    def test_all_backends_produce_valid_assignments(self, hetero_cluster,
                                                    backend):
        policy = SiaPolicy(SiaPolicyParams(solver=backend))
        views = [view_for(make_job(f"j{i}", "resnet18", 0.0), hetero_cluster)
                 for i in range(5)]
        decision = policy.decide(views, hetero_cluster, 0.0)
        assert decision.assignments  # someone got resources

    def test_milp_and_exact_agree_on_objective(self, hetero_cluster):
        views = [view_for(make_job(f"j{i}", "bert", 0.0), hetero_cluster)
                 for i in range(4)]
        milp = SiaPolicy(SiaPolicyParams(solver="milp")).decide(
            views, hetero_cluster, 0.0)
        exact = SiaPolicy(SiaPolicyParams(solver="exact")).decide(
            views, hetero_cluster, 0.0)
        assert milp.objective == pytest.approx(exact.objective, rel=1e-6)


class TestSolveTime:
    def test_solve_time_reported(self, policy, hetero_cluster):
        views = [view_for(make_job("j1", "bert", 0.0), hetero_cluster)]
        decision = policy.decide(views, hetero_cluster, 0.0)
        assert decision.solve_time > 0

"""Tests for trace/result JSON serialization."""

import json

import pytest

from repro import io
from repro.cluster import presets
from repro.core.types import AdaptivityMode
from repro.jobs.hybrid import HybridSpec
from repro.jobs.job import make_job
from repro.metrics import summarize
from repro.schedulers import SiaScheduler
from repro.sim import simulate
from repro.workloads import philly_trace
from repro.workloads.trace import Trace


class TestTraceRoundtrip:
    def test_plain_trace(self, tmp_path):
        trace = philly_trace(seed=0, num_jobs=20)
        path = tmp_path / "trace.json"
        io.save_trace(trace, path)
        loaded = io.load_trace(path)
        assert loaded.name == trace.name
        assert loaded.seed == trace.seed
        for a, b in zip(trace.jobs, loaded.jobs):
            assert a == b

    def test_exotic_jobs_roundtrip(self, tmp_path):
        jobs = [
            make_job("hybrid", "gpt-2.8b", 0.0, hybrid=HybridSpec(),
                     max_gpus=64),
            make_job("rigid", "bert", 10.0, adaptivity=AdaptivityMode.RIGID,
                     fixed_num_gpus=4, fixed_batch_size=48),
            make_job("infer", "resnet18", 20.0, workload="batch_inference"),
            make_job("serve", "bert", 30.0, workload="latency_inference",
                     latency_slo=0.01),
            make_job("pinned", "yolov3", 40.0, preemptible=False),
        ]
        path = tmp_path / "trace.json"
        io.save_trace(Trace(name="exotic", jobs=jobs, seed=7), path)
        loaded = io.load_trace(path)
        assert loaded.jobs == jobs
        assert loaded.jobs[0].hybrid == HybridSpec()

    def test_wrong_kind_rejected(self, tmp_path):
        trace = philly_trace(seed=0, num_jobs=4)
        path = tmp_path / "x.json"
        io.save_trace(trace, path)
        with pytest.raises(ValueError, match="expected 'result'"):
            io.load_result(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "trace", "format_version": 99,
                                    "name": "x", "jobs": []}))
        with pytest.raises(ValueError, match="format version"):
            io.load_trace(path)


class TestResultRoundtrip:
    @pytest.fixture(scope="class")
    def result(self):
        cluster = presets.heterogeneous()
        jobs = [make_job(f"j{i}", "resnet18", i * 60.0, work_scale=0.05)
                for i in range(3)]
        return simulate(cluster, SiaScheduler(), jobs)

    def test_metrics_preserved(self, result, tmp_path):
        path = tmp_path / "result.json"
        io.save_result(result, path)
        loaded = io.load_result(path)
        assert summarize(loaded).as_row() == summarize(result).as_row()

    def test_round_records_preserved(self, result, tmp_path):
        path = tmp_path / "result.json"
        io.save_result(result, path)
        loaded = io.load_result(path)
        assert len(loaded.rounds) == len(result.rounds)
        assert loaded.rounds[0].allocations == result.rounds[0].allocations

    def test_rounds_optional(self, result, tmp_path):
        path = tmp_path / "slim.json"
        io.save_result(result, path, include_rounds=False)
        loaded = io.load_result(path)
        assert loaded.rounds == []
        assert len(loaded.jobs) == len(result.jobs)


class TestAlertsRoundtrip:
    @pytest.fixture(scope="class")
    def alerted(self):
        """A short run SLO-observed under a rule that always fires."""
        from repro.obs.slo import SLOEngine, SLORule
        from repro.obs.stream import SLOObserver
        cluster = presets.heterogeneous()
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.05)]
        engine = SLOEngine([SLORule(
            name="always", metric="rounds_planned", target=0.0,
            comparison="<=", window=4, error_budget=0.5, min_samples=1,
            cooldown=1)])
        result = simulate(cluster, SiaScheduler(), jobs,
                          observers=[SLOObserver(engine)])
        assert result.alert_counts()  # the fixture must actually alert
        return result

    def test_result_json_preserves_alerts(self, alerted, tmp_path):
        path = tmp_path / "result.json"
        io.save_result(alerted, path)
        loaded = io.load_result(path)
        assert loaded.alerts_timeline() == alerted.alerts_timeline()
        assert loaded.alert_counts() == alerted.alert_counts()

    def test_alert_counts_survive_without_rounds(self, alerted, tmp_path):
        path = tmp_path / "slim.json"
        io.save_result(alerted, path, include_rounds=False)
        loaded = io.load_result(path)
        assert loaded.rounds == []
        assert loaded.alert_counts() == alerted.alert_counts()

    def test_unalerted_result_json_has_no_alert_keys(self, tmp_path):
        cluster = presets.heterogeneous()
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.05)]
        result = simulate(cluster, SiaScheduler(), jobs)
        path = tmp_path / "result.json"
        io.save_result(result, path)
        payload = json.loads(path.read_text())
        assert "alert_counts" not in payload
        assert all("alerts" not in rnd for rnd in payload["rounds"])

    def test_save_load_alerts_jsonl(self, alerted, tmp_path):
        path = tmp_path / "alerts.jsonl"
        io.save_alerts(alerted, path)
        alerts = io.load_alerts(path)
        assert alerts == [a for _, a in alerted.alerts_timeline()]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_load_alerts_requires_header(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text(json.dumps({"kind": "alert", "rule": "r",
                                    "metric": "m", "round_index": 0,
                                    "time": 0.0, "value": 1.0,
                                    "target": 0.0, "comparison": "<=",
                                    "burn_rate": 1.0, "window": 1}) + "\n")
        with pytest.raises(ValueError, match="header"):
            io.load_alerts(path)

    def test_load_alerts_rejects_unknown_kind(self, alerted, tmp_path):
        path = tmp_path / "alerts.jsonl"
        io.save_alerts(alerted, path)
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="mystery"):
            io.load_alerts(path)


class TestLedgerTrailerAcceptance:
    def test_load_ledger_accepts_streamed_trailer(self, tmp_path):
        """save_ledger output plus a streamed ``ledger_end`` trailer (what
        LedgerStreamObserver appends) must load identically."""
        cluster = presets.heterogeneous()
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.05)]
        result = simulate(cluster, SiaScheduler(), jobs)
        path = tmp_path / "ledger.jsonl"
        io.save_ledger(result, path)
        ledger, events = io.load_ledger(path)
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "ledger_end",
                                 "num_rounds": len(result.rounds)}) + "\n")
        again, again_events = io.load_ledger(path)
        assert again.entries == ledger.entries
        assert again_events == events


class TestAtomicWriters:
    """Every repro.io writer goes through the shared atomic helper: a crash
    mid-save must never truncate an existing artifact."""

    @pytest.fixture(scope="class")
    def result(self):
        cluster = presets.heterogeneous()
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.05)]
        return simulate(cluster, SiaScheduler(), jobs)

    def test_save_trace_leaves_no_tmp(self, tmp_path):
        trace = philly_trace(seed=0, num_jobs=5)
        path = tmp_path / "trace.json"
        io.save_trace(trace, path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_save_result_leaves_no_tmp(self, result, tmp_path):
        path = tmp_path / "result.json"
        io.save_result(result, path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_save_ledger_leaves_no_tmp(self, result, tmp_path):
        path = tmp_path / "ledger.jsonl"
        io.save_ledger(result, path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_interrupted_write_preserves_previous_file(self, result,
                                                       tmp_path,
                                                       monkeypatch):
        from repro import atomicio
        path = tmp_path / "result.json"
        io.save_result(result, path)
        before = path.read_bytes()

        original = atomicio.atomic_write_bytes

        def dying_write(p, data, *, crash_hook=None):
            def hook(stage):
                if stage == "mid_write":
                    raise RuntimeError("simulated crash")
            original(p, data, crash_hook=hook)

        monkeypatch.setattr(io, "atomic_write_text",
                            lambda p, text: dying_write(
                                p, text.encode("utf-8")))
        with pytest.raises(RuntimeError, match="simulated crash"):
            io.save_result(result, path)
        assert path.read_bytes() == before  # old artifact untouched
        assert io.load_result(path).scheduler_name == result.scheduler_name

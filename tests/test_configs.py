"""Tests for Section 3.3 configuration-set construction."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeGroup
from repro.core.configs import (build_config_set, feasible_for_job,
                                multi_node_configs, powers_of_two_up_to,
                                single_node_configs)
from repro.core.types import Configuration


class TestPowersOfTwo:
    def test_exact(self):
        assert powers_of_two_up_to(8) == [1, 2, 4, 8]

    def test_non_power_limit(self):
        assert powers_of_two_up_to(6) == [1, 2, 4]

    def test_one(self):
        assert powers_of_two_up_to(1) == [1]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            powers_of_two_up_to(0)

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_all_values_are_powers_within_limit(self, limit):
        values = powers_of_two_up_to(limit)
        assert all(v & (v - 1) == 0 for v in values)
        assert max(values) <= limit
        assert 2 * max(values) > limit  # largest power included


class TestSetConstruction:
    def test_paper_running_example(self, tiny_cluster):
        """Section 3.4: cluster with 2 A GPUs and 4 B GPUs has
        C = {(1,1,A), (1,2,A), (1,1,B), (1,2,B), (1,4,B)}."""
        configs = set(build_config_set(tiny_cluster))
        expected = {
            Configuration(1, 1, "quad"), Configuration(1, 2, "quad"),
            Configuration(1, 1, "t4"), Configuration(1, 2, "t4"),
            Configuration(1, 4, "t4"),
        }
        assert configs == expected

    def test_single_node_set_is_powers_of_two(self):
        configs = single_node_configs("t4", 8)
        assert [c.num_gpus for c in configs] == [1, 2, 4, 8]
        assert all(c.num_nodes == 1 for c in configs)

    def test_multi_node_set_uses_whole_nodes(self):
        configs = multi_node_configs("rtx", num_nodes=3, node_size=8)
        assert [(c.num_nodes, c.num_gpus) for c in configs] == \
            [(2, 16), (3, 24)]

    def test_multi_node_max_nodes_cap(self):
        configs = multi_node_configs("rtx", 10, 8, max_nodes=4)
        assert max(c.num_nodes for c in configs) == 4

    def test_max_gpus_filter(self, hetero_cluster):
        configs = build_config_set(hetero_cluster, max_gpus=8)
        assert all(c.num_gpus <= 8 for c in configs)

    def test_set_size_is_logarithmic_per_type(self):
        """|C| = O(N + log2 R) per type — the scalability claim."""
        cluster = Cluster.from_groups([NodeGroup("t4", 64, 4)])
        configs = build_config_set(cluster)
        # single-node: 1,2,4; multi-node: 2..64 nodes => 63.
        assert len(configs) == 3 + 63

    def test_heterogeneous_set(self, hetero_cluster):
        configs = build_config_set(hetero_cluster, max_gpus=16)
        by_type = {}
        for c in configs:
            by_type.setdefault(c.gpu_type, []).append(c)
        assert set(by_type) == {"t4", "rtx", "a100"}
        # rtx: 1,2,4,8 single-node + (2,16) multi-node.
        assert len(by_type["rtx"]) == 5

    def test_deterministic_order(self, hetero_cluster):
        assert build_config_set(hetero_cluster) == \
            build_config_set(hetero_cluster)

    @given(num_nodes=st.integers(1, 8), node_size=st.sampled_from([1, 2, 4, 8]))
    def test_all_configs_fit_capacity(self, num_nodes, node_size):
        cluster = Cluster.from_groups([NodeGroup("t4", num_nodes, node_size)])
        for config in build_config_set(cluster):
            assert config.num_gpus <= cluster.capacity("t4")
            if config.num_nodes > 1:
                assert config.num_gpus % config.num_nodes == 0


class TestFeasibleForJob:
    @pytest.fixture
    def configs(self, hetero_cluster):
        return build_config_set(hetero_cluster, max_gpus=16)

    def test_pending_job_gets_min_size_only(self, configs):
        out = feasible_for_job(configs, min_gpus=1, current_gpus=0)
        assert all(c.num_gpus == 1 for c in out)
        assert len(out) == 3  # one per GPU type

    def test_scale_up_capped_at_2x(self, configs):
        out = feasible_for_job(configs, current_gpus=4)
        assert max(c.num_gpus for c in out) == 8

    def test_respects_max_gpus(self, configs):
        out = feasible_for_job(configs, current_gpus=8, max_gpus=8)
        assert all(c.num_gpus <= 8 for c in out)

    def test_respects_min_gpus(self, configs):
        out = feasible_for_job(configs, min_gpus=4, current_gpus=8)
        assert all(c.num_gpus >= 4 for c in out)

    def test_type_restriction(self, configs):
        out = feasible_for_job(configs, current_gpus=4, gpu_types=("a100",))
        assert all(c.gpu_type == "a100" for c in out)

    def test_custom_scale_up_factor(self, configs):
        out = feasible_for_job(configs, current_gpus=2, scale_up_factor=4)
        assert max(c.num_gpus for c in out) == 8

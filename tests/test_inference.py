"""Tests for inference workloads (Section 3.4, "Scheduling other workload
types"): batch inference and latency-SLO serving."""

import pytest

from repro.cluster import presets
from repro.core.types import Configuration, ProfilingMode
from repro.jobs.inference import (BatchInferenceEstimator,
                                  LatencySLOEstimator, serving_throughput)
from repro.jobs.job import make_job
from repro.perf import profiles
from repro.perf.estimator import JobConstraints
from repro.schedulers import SiaScheduler
from repro.sim import simulate

TYPES = ("t4", "rtx", "a100")


def constraints(model="resnet18"):
    profile = profiles.model_profile(model)
    return JobConstraints(min_bsz=profile.min_bsz, max_bsz=profile.max_bsz)


class TestBatchInferenceEstimator:
    def test_unit_efficiency(self):
        est = BatchInferenceEstimator("resnet18", constraints(), TYPES)
        assert est.efficiency_model.efficiency(10_000) == 1.0

    def test_goodput_equals_throughput(self):
        est = BatchInferenceEstimator("resnet18", constraints(), TYPES)
        est.profile_initial()
        plan = est.best_plan(Configuration(1, 2, "a100"))
        assert plan is not None
        assert plan.goodput == pytest.approx(plan.throughput)

    def test_prefers_max_batch(self):
        """Without an efficiency penalty, the optimal plan saturates memory
        or the submitter batch cap."""
        est = BatchInferenceEstimator("resnet18", constraints(), TYPES)
        est.profile_initial()
        plan = est.best_plan(Configuration(1, 1, "a100"))
        cap = min(est.max_local_bsz("a100"), 4096)
        assert plan.total_batch_size >= 0.9 * cap

    def test_gradient_stats_ignored(self):
        est = BatchInferenceEstimator("resnet18", constraints(), TYPES)
        est.update_gradient_stats(123.0)
        assert est.efficiency_model.efficiency(512) == 1.0


class TestLatencySLOEstimator:
    def test_strict_slo_excludes_slow_types(self):
        est = LatencySLOEstimator("bert", latency_slo_s=0.01, gpu_types=TYPES)
        assert est.goodput(Configuration(1, 1, "a100")) == 1.0
        assert est.goodput(Configuration(1, 1, "t4")) == 0.0

    def test_loose_slo_admits_everything(self):
        est = LatencySLOEstimator("resnet18", latency_slo_s=10.0,
                                  gpu_types=TYPES)
        for gpu_type in TYPES:
            assert est.goodput(Configuration(1, 1, gpu_type)) == 1.0

    def test_multi_node_configs_rejected(self):
        est = LatencySLOEstimator("resnet18", latency_slo_s=10.0,
                                  gpu_types=TYPES)
        assert est.goodput(Configuration(2, 8, "t4")) == 0.0

    def test_slo_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencySLOEstimator("bert", latency_slo_s=0.0, gpu_types=TYPES)

    def test_latency_ordering_matches_speed(self):
        est = LatencySLOEstimator("bert", latency_slo_s=1.0, gpu_types=TYPES)
        assert est.request_latency("a100") < est.request_latency("rtx") \
            < est.request_latency("t4")

    def test_profile_cost_recorded(self):
        est = LatencySLOEstimator("bert", latency_slo_s=1.0, gpu_types=TYPES)
        assert est.profile_initial() > 0
        assert est.profiling_gpu_seconds > 0


class TestServingThroughput:
    def test_scales_with_gpus(self):
        one = serving_throughput("resnet18", "a100", 1)
        four = serving_throughput("resnet18", "a100", 4)
        assert four == pytest.approx(4 * one)

    def test_zero_gpus(self):
        assert serving_throughput("resnet18", "a100", 0) == 0.0


class TestJobValidation:
    def test_latency_job_needs_slo(self):
        with pytest.raises(ValueError):
            make_job("j", "bert", 0.0, workload="latency_inference")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            make_job("j", "bert", 0.0, workload="streaming")

    def test_hybrid_inference_rejected(self):
        from repro.jobs.hybrid import HybridSpec
        with pytest.raises(ValueError):
            make_job("j", "gpt-2.8b", 0.0, hybrid=HybridSpec(),
                     workload="batch_inference")


class TestEndToEnd:
    def test_batch_inference_completes_under_sia(self, hetero_cluster):
        job = make_job("score", "resnet18", 0.0, work_scale=0.1,
                       workload="batch_inference")
        result = simulate(hetero_cluster, SiaScheduler(), [job])
        assert result.jobs[0].completed

    def test_batch_inference_faster_than_training(self, hetero_cluster):
        """Same work total, but no statistical-efficiency decay: inference
        finishes sooner than training."""
        train = make_job("t", "resnet18", 0.0, work_scale=0.2)
        infer = make_job("i", "resnet18", 0.0, work_scale=0.2,
                         workload="batch_inference")
        r_train = simulate(hetero_cluster, SiaScheduler(), [train])
        r_infer = simulate(hetero_cluster, SiaScheduler(), [infer])
        assert r_infer.jobs[0].jct() < r_train.jobs[0].jct()

    def test_latency_job_placed_on_slo_feasible_type(self, hetero_cluster):
        serving = make_job("serve", "bert", 0.0, work_scale=0.001,
                           workload="latency_inference", latency_slo=0.005,
                           max_gpus=2)
        result = simulate(hetero_cluster, SiaScheduler(), [serving],
                          max_hours=50)
        record = result.jobs[0]
        assert record.completed
        # only a100 meets a 5 ms SLO for BERT
        assert set(record.gpu_seconds) == {"a100"}

    def test_mixed_training_and_inference(self, hetero_cluster):
        jobs = [
            make_job("t1", "bert", 0.0, work_scale=0.1),
            make_job("i1", "resnet18", 0.0, work_scale=0.1,
                     workload="batch_inference"),
            make_job("s1", "resnet18", 0.0, work_scale=0.002,
                     workload="latency_inference", latency_slo=0.05,
                     max_gpus=2),
        ]
        result = simulate(hetero_cluster, SiaScheduler(), jobs, max_hours=50)
        assert all(j.completed for j in result.jobs)

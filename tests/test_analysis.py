"""Tests for the analysis helpers: rendering and experiment drivers."""

import pytest

from repro.analysis import (BENCH_SCALE, FULL_SCALE, ExperimentScale,
                            compare_on_trace, format_series, format_table,
                            improvement, run_once, sample_trace)
from repro.cluster import presets
from repro.schedulers import SiaScheduler


class TestRender:
    def test_table_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_series(self):
        text = format_series([(1.0, 2.0), (3.0, 4.0)], x_label="x",
                             y_label="y")
        assert "1.000" in text and "4.000" in text

    def test_improvement(self):
        assert improvement(2.0, 1.0) == pytest.approx(50.0)
        assert improvement(1.0, 2.0) == pytest.approx(-100.0)
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)


class TestScales:
    def test_bench_scale_is_smaller(self):
        assert BENCH_SCALE.work < FULL_SCALE.work
        assert BENCH_SCALE.window < FULL_SCALE.window

    def test_sample_trace_scaled_counts(self):
        trace = sample_trace("philly", seed=0, scale=BENCH_SCALE)
        assert trace.num_jobs == 80  # half the paper's 160
        trace_full = sample_trace("philly", seed=0, scale=FULL_SCALE)
        assert trace_full.num_jobs == 160

    def test_sample_trace_window_scaled(self):
        trace = sample_trace("helios", seed=0, scale=BENCH_SCALE)
        assert max(j.submit_time for j in trace.jobs) <= 2 * 3600.0


class TestDrivers:
    def test_run_once(self):
        scale = ExperimentScale(work=0.05, window=0.05, jobs=0.05)
        trace = sample_trace("philly", seed=0, scale=scale)
        result = run_once(presets.heterogeneous(), SiaScheduler(),
                          trace.jobs, scale=scale)
        assert result.scheduler_name == "sia"
        assert len(result.jobs) == trace.num_jobs

    def test_compare_on_trace_runs_both_families(self):
        scale = ExperimentScale(work=0.05, window=0.05, jobs=0.05)
        trace = sample_trace("philly", seed=1, scale=scale)
        outcome = compare_on_trace(presets.heterogeneous(), trace,
                                   scale=scale)
        assert set(outcome.results) == {"sia", "pollux", "gavel"}
        rows = outcome.rows()
        assert len(rows) == 3
        summaries = outcome.summaries()
        assert all(s.num_jobs == trace.num_jobs for s in summaries.values())
        # Rigid schedulers saw TunedJobs, adaptive saw the raw trace.
        assert outcome.jobs_used["gavel"] is not outcome.jobs_used["sia"]

"""Solver tiers: LP-rounding/decomposition quality bounds, warm-start and
reuse semantics, tiered selection, deterministic fallbacks, telemetry round
trips with the new backends, and the replay fork path."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import io
from repro.analysis.replay import (ReplayOverrides, build_run_spec, replay,
                                   simulator_from_spec)
from repro.core import fork as forklib
from repro.core import ilp
from repro.core.ilp import AssignmentProblem, select_backend, solve_assignment
from repro.core.matrix import config_index_map, warm_start_pairs
from repro.core.policy import SiaPolicy, SiaPolicyParams
from repro.core.resilience import ResilienceConfig, ResilientScheduler
from repro.core.types import Allocation, Configuration, ProfilingMode
from repro.jobs.job import make_job
from repro.obs.audit import allocation_persistence
from repro.obs.tracer import SOLVER_SPANS, Tracer
from repro.perf.estimator import JobPerfEstimator
from repro.schedulers import SiaScheduler
from repro.schedulers.base import JobView
from repro.sim import simulate
from repro.sim.chaos import diff_results
from repro.workloads.generators import trace_by_name

#: documented worst-case optimality gaps on adversarial dense random
#: instances with tight capacity (DESIGN.md "Solver tiers"); calibrated
#: with margin over 20 seeds (measured worst: lp_round 4.3%, decomposed
#: 18.8%).  Policy-shaped instances are near-integral and land at ~0%.
LP_ROUND_GAP = 0.07
DECOMPOSED_GAP = 0.25


def random_problem(seed: int, n_jobs: int = 24, density: float = 0.7,
                   tight: bool = True) -> AssignmentProblem:
    """Adversarial instance: dense random utilities, three GPU types, and
    (when ``tight``) far less capacity than demand."""
    rng = np.random.default_rng(seed)
    util = rng.uniform(0.1, 3.0, (n_jobs, 12))
    util[rng.random(util.shape) > density] = np.nan
    caps = {"t4": 16, "rtx": 12, "a100": 8} if tight \
        else {"t4": 400, "rtx": 400, "a100": 400}
    return AssignmentProblem(
        utilities=util,
        config_gpus=np.array([1, 2, 4, 8] * 3),
        config_types=["t4"] * 4 + ["rtx"] * 4 + ["a100"] * 4,
        capacities=caps,
    )


def gap(reference: float, value: float) -> float:
    return (reference - value) / abs(reference)


def view_for(job, cluster, *, current=None, age=0.0) -> JobView:
    estimator = JobPerfEstimator(job.model_name, job.constraints(),
                                 cluster.gpu_types, ProfilingMode.BOOTSTRAP)
    estimator.profile_initial()
    return JobView(job=job, estimator=estimator, current_config=current,
                   age=age, num_restarts=0, progress=0.0)


class TestQualityHarness:
    """Satellite: lp_round and decomposed within bounded optimality gap of
    the MILP reference, exact where the LP relaxation is integral."""

    @pytest.mark.parametrize("seed", range(10))
    def test_lp_round_gap_bounded(self, seed):
        problem = random_problem(seed)
        ref = solve_assignment(problem, backend="milp")
        fast = solve_assignment(problem, backend="lp_round")
        assert gap(ref.objective, fast.objective) <= LP_ROUND_GAP
        # The LP bound certifies from above: bound >= integral optimum.
        assert fast.lp_bound >= ref.objective - 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_decomposed_gap_bounded(self, seed):
        problem = random_problem(seed)
        ref = solve_assignment(problem, backend="milp")
        fast = solve_assignment(problem, backend="decomposed")
        assert gap(ref.objective, fast.objective) <= DECOMPOSED_GAP

    @pytest.mark.parametrize("seed", range(5))
    def test_integral_lp_is_exact(self, seed):
        """Ample capacity makes the relaxation integral: rounding must
        reproduce the MILP optimum exactly, not approximately."""
        problem = random_problem(seed, tight=False)
        ref = solve_assignment(problem, backend="milp")
        fast = solve_assignment(problem, backend="lp_round")
        assert fast.objective == pytest.approx(ref.objective, abs=1e-7)

    def test_policy_shaped_round_matches_milp(self, hetero_cluster):
        """A real policy round (fresh jobs on the heterogeneous preset) is
        integral in practice: every backend lands on the same objective."""
        jobs = [make_job(f"j{i}", name, 0.0) for i, name in
                enumerate(["bert", "deepspeech2", "resnet18", "resnet50"])]
        reference = None
        for backend in ("milp", "lp_round", "decomposed", "tiered"):
            policy = SiaPolicy(SiaPolicyParams(solver=backend))
            views = [view_for(job, hetero_cluster) for job in jobs]
            decision = policy.decide(views, hetero_cluster, 0.0)
            if reference is None:
                reference = decision.objective
            assert decision.objective == pytest.approx(reference, rel=1e-6)

    @pytest.mark.parametrize("backend", ["milp", "lp_round", "decomposed",
                                         "tiered", "greedy"])
    def test_forced_and_capacity_respected(self, backend):
        problem = random_problem(3)
        row = int(np.flatnonzero(~np.isnan(problem.utilities).all(axis=1))[0])
        col = int(np.nanargmax(problem.utilities[row]))
        problem.forced = {row: col}
        solution = solve_assignment(problem, backend=backend)
        assert solution.assignment[row] == col
        used = solution.gpus_used(problem)
        assert all(used[t] <= problem.capacities[t] for t in used)


class TestWarmStartAndReuse:
    def test_reuse_skips_solve(self):
        problem = random_problem(0)
        ref = solve_assignment(problem, backend="milp")
        again = solve_assignment(problem, backend="milp",
                                 warm_start=dict(ref.assignment),
                                 reuse_tolerance=0.01)
        assert again.reused and again.backend == "reuse"
        assert again.lp_bound is not None
        assert again.objective == pytest.approx(ref.objective)
        assert again.assignment == ref.assignment

    def test_stale_warm_entries_dropped(self):
        problem = random_problem(0)
        ref = solve_assignment(problem, backend="milp")
        # Invalidate one job's entire row: its warm pair must be dropped,
        # and the remaining warm assignment still passes the reuse check.
        victim = next(iter(sorted(ref.assignment)))
        utilities = problem.utilities.copy()
        utilities[victim, :] = np.nan
        smaller = AssignmentProblem(utilities, problem.config_gpus,
                                    problem.config_types, problem.capacities)
        again = solve_assignment(smaller, backend="milp",
                                 warm_start=dict(ref.assignment),
                                 reuse_tolerance=0.05)
        assert victim not in again.assignment

    def test_tight_tolerance_rejects_degraded_warm(self):
        problem = random_problem(0)
        ref = solve_assignment(problem, backend="milp")
        degraded = dict(ref.assignment)
        degraded.pop(sorted(degraded)[0])  # strictly worse than optimal
        again = solve_assignment(problem, backend="milp",
                                 warm_start=degraded, reuse_tolerance=1e-9)
        assert not again.reused
        assert again.backend == "milp"

    def test_loose_tolerance_accepts_degraded_warm(self):
        problem = random_problem(0)
        ref = solve_assignment(problem, backend="milp")
        degraded = dict(ref.assignment)
        dropped = sorted(degraded)[0]
        degraded.pop(dropped)
        again = solve_assignment(problem, backend="milp",
                                 warm_start=degraded, reuse_tolerance=0.5)
        assert again.reused
        assert dropped not in again.assignment

    def test_forced_overrides_warm_choice(self):
        problem = random_problem(1)
        ref = solve_assignment(problem, backend="milp")
        row = sorted(ref.assignment)[0]
        feasible = np.flatnonzero(~np.isnan(problem.utilities[row]))
        other = int(next(c for c in feasible if c != ref.assignment[row]))
        problem.forced = {row: other}
        solution = solve_assignment(problem, backend="milp",
                                    warm_start=dict(ref.assignment),
                                    reuse_tolerance=0.5)
        assert solution.assignment[row] == other

    def test_warm_started_flag_on_rounding_tiers(self):
        problem = random_problem(2)
        ref = solve_assignment(problem, backend="milp")
        for backend in ("lp_round", "decomposed"):
            solution = solve_assignment(problem, backend=backend,
                                        warm_start=dict(ref.assignment))
            assert solution.warm_started
        milp = solve_assignment(problem, backend="milp",
                                warm_start=dict(ref.assignment))
        assert not milp.warm_started  # scipy milp has no incumbent API

    def test_warm_start_pairs_translation(self):
        configs = [Configuration(1, 1, "t4"), Configuration(1, 4, "a100")]
        pos = config_index_map(configs)
        previous = {
            "a": Allocation.build("t4", {0: 1}),
            "b": Allocation.build("a100", {1: 4}),
            "gone": Allocation.build("a100", {2: 2}),  # config not in set
        }
        warm = warm_start_pairs(["a", "b", "c"], previous, pos)
        assert warm == {0: 0, 1: 1}  # "c" has no previous, "gone" departed

    def test_policy_counts_warm_and_reuse(self, hetero_cluster):
        """End to end: warm-start hits with lp_round, reuse skips with a
        tolerance, both visible in round-snapshot metrics counters."""
        jobs = [make_job(f"j{i}", "resnet18", 0.0, work_scale=0.4)
                for i in range(3)]
        result = simulate(hetero_cluster,
                          SiaScheduler(SiaPolicyParams(solver="lp_round")),
                          jobs, max_hours=100)
        assert result.rounds[-1].metrics.get("solver.warm_start_hits", 0) > 0

        jobs = [make_job(f"j{i}", "resnet18", 0.0, work_scale=0.4)
                for i in range(3)]
        result = simulate(hetero_cluster,
                          SiaScheduler(SiaPolicyParams(reuse_tolerance=0.1)),
                          jobs, max_hours=100)
        assert result.rounds[-1].metrics.get("solver.reuse_skips", 0) > 0
        assert result.backend_counts().get("reuse", 0) > 0


class TestDecomposition:
    def test_deterministic_across_calls(self):
        problem = random_problem(4)
        first = solve_assignment(problem, backend="decomposed")
        second = solve_assignment(problem, backend="decomposed")
        assert first.assignment == second.assignment
        assert first.partitions == second.partitions > 0

    def test_parallel_matches_serial(self):
        problem = random_problem(5)
        serial = ilp._solve_decomposed(problem, parallel=False)
        threaded = ilp._solve_decomposed(problem, parallel=True)
        assert serial.assignment == threaded.assignment

    def test_cohort_split_engages(self, monkeypatch):
        monkeypatch.setattr(ilp, "DECOMPOSE_MAX_PARTITION_VARS", 8)
        problem = random_problem(6)
        solution = solve_assignment(problem, backend="decomposed")
        # more partitions than GPU types => job-cohort splitting happened
        assert solution.partitions > len(problem.capacities)
        used = solution.gpus_used(problem)
        assert all(used[t] <= problem.capacities[t] for t in used)

    def test_stitch_serves_spillover(self):
        """A job whose home type fills up must be caught by the stitch pass
        on its second-best type, not dropped."""
        utilities = np.array([
            [3.0, 1.0],   # both jobs prefer t4 ...
            [2.5, 1.0],
        ])
        problem = AssignmentProblem(
            utilities=utilities,
            config_gpus=[1, 1],
            config_types=["t4", "rtx"],
            capacities={"t4": 1, "rtx": 1},  # ... but only one t4 fits
        )
        solution = solve_assignment(problem, backend="decomposed")
        assert set(solution.assignment) == {0, 1}
        assert sorted(solution.assignment.values()) == [0, 1]

    def test_partition_spans_recorded(self):
        tracer = Tracer()
        solve_assignment(random_problem(7), backend="decomposed",
                         tracer=tracer)
        stats = tracer.span_stats("solve_partition")
        assert stats.count > 0
        assert "solve_partition" in SOLVER_SPANS


class TestTieredSelection:
    def test_select_backend_thresholds(self, monkeypatch):
        monkeypatch.setattr(ilp, "TIER_LP_VARS", 4)
        monkeypatch.setattr(ilp, "TIER_DECOMPOSE_VARS", 8)
        small = random_problem(0, n_jobs=2, density=0.2)
        assert small.n_feasible_pairs <= 4
        assert select_backend(small) == "milp"
        mid = random_problem(0, n_jobs=3, density=1.0)  # 36 pairs > 8
        assert select_backend(mid) == "decomposed"
        monkeypatch.setattr(ilp, "TIER_DECOMPOSE_VARS", 100)
        assert select_backend(mid) == "lp_round"

    def test_tiered_resolves_and_annotates(self, monkeypatch):
        monkeypatch.setattr(ilp, "TIER_LP_VARS", 4)
        problem = random_problem(0, n_jobs=6, density=1.0)
        tracer = Tracer()
        solution = solve_assignment(problem, backend="tiered", tracer=tracer)
        assert solution.backend == "lp_round"
        spans = [s for s in tracer.spans if s.name == "ilp_solve"]
        assert spans[-1].attrs["resolved"] == "lp_round"

    def test_default_tier_is_milp_at_small_scale(self):
        problem = random_problem(0)
        assert select_backend(problem) == "milp"
        solution = solve_assignment(problem, backend="tiered")
        assert solution.backend == "milp"


class TestGreedyDeterminism:
    """Satellite: ties break by job id / config id, never dict order."""

    def test_job_id_tie_break(self):
        utilities = np.array([[1.0], [1.0], [1.0]])
        problem = AssignmentProblem(utilities, [1], ["t4"], {"t4": 1})
        solution = solve_assignment(problem, backend="greedy")
        assert solution.assignment == {0: 0}

    def test_config_id_tie_break(self):
        utilities = np.array([[1.0, 1.0]])
        problem = AssignmentProblem(utilities, [1, 1], ["t4", "t4"],
                                    {"t4": 1})
        solution = solve_assignment(problem, backend="greedy")
        assert solution.assignment == {0: 0}

    def test_repeatable_on_adversarial_ties(self):
        rng = np.random.default_rng(0)
        utilities = np.ones((8, 6)) * rng.choice([1.0, 2.0], size=(8, 1))
        problem = AssignmentProblem(utilities, [1, 2, 1, 2, 1, 2],
                                    ["t4", "t4", "rtx", "rtx", "a100",
                                     "a100"],
                                    {"t4": 2, "rtx": 2, "a100": 2})
        first = solve_assignment(problem, backend="greedy")
        second = solve_assignment(problem, backend="greedy")
        assert first.assignment == second.assignment


class TestTelemetryRoundTrips:
    """Satellite: bit-identical ResilientSolver telemetry/ledger round
    trips with the new backends in the chain."""

    def _run(self, cluster):
        jobs = [make_job(f"j{i}", "resnet18", 0.0, work_scale=0.4)
                for i in range(3)]
        params = SiaPolicyParams(solver="lp_round",
                                 resilience=ResilienceConfig())
        sched = ResilientScheduler(SiaScheduler(params))
        return simulate(cluster, sched, jobs, seed=7, max_hours=100)

    def test_lp_round_primary_round_trips(self, hetero_cluster, tmp_path):
        result = self._run(hetero_cluster)
        counts = result.resilience_counts()
        assert counts.get("resilience.backend.lp_round", 0) > 0
        path = tmp_path / "res.json"
        io.save_result(result, path)
        loaded = io.load_result(path)
        assert loaded.resilience_counts() == counts
        assert loaded.backend_counts() == result.backend_counts()
        assert [r.metrics for r in loaded.rounds] == \
            [r.metrics for r in result.rounds]

    def test_identical_runs_are_bit_identical(self, hetero_cluster):
        first = self._run(hetero_cluster)
        second = self._run(hetero_cluster)
        assert diff_results(first, second) == []


class TestReplayFork:
    """Satellite: ``repro replay --solver-backend lp_round`` works through
    the counterfactual fork path."""

    def test_registry_stays_in_sync(self):
        assert forklib.SOLVER_BACKENDS is ilp.BACKENDS
        assert "lp_round" in forklib.SOLVER_BACKENDS
        assert "tiered" in forklib.SOLVER_BACKENDS

    @pytest.fixture(scope="class")
    def base_result(self):
        trace = trace_by_name("philly", seed=3, num_jobs=6,
                              work_scale_factor=0.05)
        spec = build_run_spec(scheduler="sia", cluster="heterogeneous",
                              jobs=trace.jobs, seed=3,
                              scheduler_options={"round_duration": 60.0})
        result = simulator_from_spec(spec).run()
        result.run_spec = spec
        return result

    def test_lp_round_fork_diffs(self, base_result):
        outcome = replay(base_result, 2,
                         ReplayOverrides(solver_backend="lp_round"))
        assert {r.backend for r in outcome.fork.rounds[2:]} <= \
            {"lp_round", "carry"}
        assert {r.backend for r in outcome.fork.rounds[:2]} <= {"milp"}
        assert outcome.diff.overrides == {"solver_backend": "lp_round"}

    def test_tiered_fork_accepted(self, base_result):
        outcome = replay(base_result, 2,
                         ReplayOverrides(solver_backend="tiered"))
        # tiered resolves per round; at this scale that is the MILP tier
        assert len(outcome.fork.rounds) >= 2

    def test_unknown_backend_rejected(self, base_result):
        with pytest.raises(ValueError, match="unknown solver backend"):
            replay(base_result, 2,
                   ReplayOverrides(solver_backend="simplex"))


class TestAllocationPersistence:
    """Satellite: the warm-start-justifying metric from the audit data."""

    def _round(self, allocations):
        return SimpleNamespace(allocations=allocations)

    def test_fraction_over_round_pairs(self):
        rounds = [
            self._round({"a": ("t4", 1), "b": ("a100", 4)}),
            self._round({"a": ("t4", 1), "b": ("a100", 8)}),  # b scaled
            self._round({"a": ("t4", 1)}),                    # b finished
        ]
        # pairs: round0->1: a kept, b changed; round1->2: a kept, b gone.
        assert allocation_persistence(rounds) == pytest.approx(2 / 4)

    def test_json_lists_compare_equal(self):
        rounds = [self._round({"a": ["t4", 1]}),
                  self._round({"a": ("t4", 1)})]
        assert allocation_persistence(rounds) == 1.0

    def test_none_when_no_pairs(self):
        assert allocation_persistence([]) is None
        assert allocation_persistence([self._round({})] * 3) is None

    def test_simulated_run_reports_persistence(self, hetero_cluster):
        from repro.analysis.report import decision_digest_section
        jobs = [make_job(f"j{i}", "resnet18", 0.0, work_scale=0.4)
                for i in range(3)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs,
                          max_hours=100)
        value = allocation_persistence(result.rounds)
        assert value is not None and 0.0 <= value <= 1.0
        digest = decision_digest_section(result)
        assert "Allocation persistence" in digest

"""Tests for the pluggable fault-injection subsystem (repro.sim.faults)."""

import pytest

from repro.cluster import presets
from repro.jobs.job import make_job
from repro.schedulers import SiaScheduler
from repro.sim import (CheckpointRestoreFaultModel, JobCrashModel,
                       NodeCrashModel, Simulator, SimulatorConfig,
                       StragglerModel, simulate)
from repro.sim.engine import _JobRuntime
from repro.sim.faults import FaultContext


def jobs(n=3, scale=0.4):
    return [make_job(f"j{i}", "resnet18", 0.0, work_scale=scale)
            for i in range(n)]


class TestNodeCrashModelCompat:
    """The refactored NodeCrashModel must reproduce the legacy
    ``node_failure_rate`` engine behaviour exactly."""

    def test_explicit_model_matches_legacy_config(self, hetero_cluster):
        legacy = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          node_failure_rate=3.0, seed=2, max_hours=100)
        # The legacy path seeds its sampler with config.seed + 1.
        explicit = simulate(hetero_cluster, SiaScheduler(), jobs(),
                            seed=2, max_hours=100,
                            fault_models=[NodeCrashModel(
                                rate=3.0, repair_time=1800.0, seed=3)])
        assert legacy.node_failures > 0  # the comparison must be non-trivial
        assert explicit.node_failures == legacy.node_failures
        assert [(j.finish_time, j.num_restarts) for j in legacy.jobs] == \
            [(j.finish_time, j.num_restarts) for j in explicit.jobs]

    def test_crash_events_recorded(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          seed=2, max_hours=100,
                          fault_models=[NodeCrashModel(rate=3.0, seed=3)])
        counts = result.fault_counts()
        assert counts.get("node_crash", 0) == result.node_failures > 0

    def test_total_failure_recovers_via_model(self, tiny_cluster):
        """Every node down at once: the degenerate-case revive keeps the
        cluster view non-empty through the model API too."""
        result = simulate(tiny_cluster, SiaScheduler(),
                          [make_job("j1", "resnet18", 0.0, work_scale=0.05)],
                          seed=3, max_hours=50,
                          fault_models=[NodeCrashModel(rate=20.0, seed=4)])
        assert result.node_failures > 0
        assert result.jobs[0].completed


class TestDeterminism:
    def test_same_seeds_same_run(self, hetero_cluster):
        def run():
            return simulate(
                hetero_cluster, SiaScheduler(), jobs(), seed=5, max_hours=100,
                fault_models=[StragglerModel(rate=10.0, slowdown=0.4, seed=11),
                              JobCrashModel(rate=3.0, seed=12),
                              CheckpointRestoreFaultModel(failure_prob=0.3,
                                                          seed=13)])
        a, b = run(), run()
        assert [j.finish_time for j in a.jobs] == \
            [j.finish_time for j in b.jobs]
        assert a.fault_counts() == b.fault_counts()
        assert [(e.kind, e.time, e.target) for e in a.fault_timeline()] == \
            [(e.kind, e.time, e.target) for e in b.fault_timeline()]

    def test_unseeded_models_bound_from_sim_seed(self, hetero_cluster):
        def run(seed):
            return simulate(hetero_cluster, SiaScheduler(), jobs(),
                            seed=seed, max_hours=100,
                            fault_models=[JobCrashModel(rate=5.0)])
        a, b = run(7), run(7)
        assert [j.finish_time for j in a.jobs] == \
            [j.finish_time for j in b.jobs]
        assert a.fault_counts() == b.fault_counts()

    def test_model_reuse_is_reset(self, hetero_cluster):
        """Passing the same model instance to two simulations must not let
        state leak between runs (the simulator re-binds the seed)."""
        model = StragglerModel(rate=10.0, slowdown=0.4, seed=11)
        a = simulate(hetero_cluster, SiaScheduler(), jobs(), max_hours=100,
                     fault_models=[model])
        b = simulate(hetero_cluster, SiaScheduler(), jobs(), max_hours=100,
                     fault_models=[model])
        assert a.fault_counts() == b.fault_counts()
        assert [j.finish_time for j in a.jobs] == \
            [j.finish_time for j in b.jobs]


class TestStragglerModel:
    def test_stragglers_slow_jct_without_evictions(self, hetero_cluster):
        clean = simulate(hetero_cluster, SiaScheduler(), jobs(),
                         max_hours=100)
        slow = simulate(hetero_cluster, SiaScheduler(), jobs(),
                        max_hours=100,
                        fault_models=[StragglerModel(rate=60.0, slowdown=0.3,
                                                     duration=7200.0,
                                                     seed=8)])
        assert slow.fault_counts().get("straggler", 0) > 0
        assert sum(slow.jcts_hours()) > sum(clean.jcts_hours())
        # No evictions: nothing rolled back, no nodes lost.
        assert slow.node_failures == 0
        assert set(slow.fault_counts()) == {"straggler"}
        assert all(j.completed for j in slow.jobs)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StragglerModel(slowdown=0.0)
        with pytest.raises(ValueError):
            StragglerModel(slowdown=1.5)
        with pytest.raises(ValueError):
            StragglerModel(rate=-1.0)

    def test_job_speed_is_min_over_nodes(self):
        from repro.core.types import Allocation
        ctx = FaultContext(now=0.0, dt=60.0, cluster=presets.heterogeneous())
        ctx.slow_node(0, 0.5)
        ctx.slow_node(1, 0.8)
        alloc = Allocation.build("t4", {0: 2, 1: 2, 2: 2})
        assert ctx.job_speed(alloc) == 0.5
        ctx.slow_node(0, 0.9)  # overlapping slowdown keeps the worst factor
        assert ctx.job_speed(alloc) == 0.5


class TestJobCrashModel:
    def test_jobs_complete_despite_crashes(self, hetero_cluster):
        clean = simulate(hetero_cluster, SiaScheduler(), jobs(), max_hours=100)
        faulty = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          max_hours=100,
                          fault_models=[JobCrashModel(rate=20.0, seed=6)])
        assert faulty.fault_counts().get("job_crash", 0) > 0
        assert all(j.completed for j in faulty.jobs)
        # Crashes take no nodes down but do cost time and restarts.
        assert faulty.node_failures == 0
        assert sum(faulty.jcts_hours()) > sum(clean.jcts_hours())

    def test_rollback_bounded_to_one_epoch(self, hetero_cluster):
        sim = Simulator(hetero_cluster, SiaScheduler(), jobs(1),
                        SimulatorConfig(epochs_per_job=30))
        job = jobs(1)[0]
        epoch = job.target_samples / 30
        for progress in (0.0, epoch * 2.5, epoch * 7.999, epoch * 29.01):
            rt = _JobRuntime(job=job, estimator=None, progress=progress)
            sim._rollback(rt)
            assert rt.progress <= progress
            assert progress - rt.progress < epoch  # at most one epoch lost
            # Lands on an epoch boundary (up to float rounding).
            assert rt.progress == pytest.approx(
                round(rt.progress / epoch) * epoch)


class TestCheckpointRestoreFaultModel:
    def test_failed_restores_cost_time_but_terminate(self, hetero_cluster):
        clean = simulate(hetero_cluster, SiaScheduler(), jobs(), max_hours=100)
        faulty = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          max_hours=100,
                          fault_models=[CheckpointRestoreFaultModel(
                              failure_prob=0.5, seed=21)])
        assert faulty.fault_counts().get("restore_failure", 0) > 0
        assert all(j.completed for j in faulty.jobs)
        assert sum(faulty.jcts_hours()) >= sum(clean.jcts_hours())

    def test_rejects_certain_failure(self):
        with pytest.raises(ValueError):
            CheckpointRestoreFaultModel(failure_prob=1.0)


class TestComposition:
    def test_models_compose_and_jobs_finish(self, hetero_cluster):
        result = simulate(
            hetero_cluster, SiaScheduler(), jobs(4), seed=1, max_hours=200,
            fault_models=[NodeCrashModel(rate=2.0, seed=31),
                          StragglerModel(rate=20.0, slowdown=0.4, seed=32),
                          JobCrashModel(rate=5.0, seed=33),
                          CheckpointRestoreFaultModel(failure_prob=0.3,
                                                      seed=34)])
        counts = result.fault_counts()
        assert counts  # something fired
        assert all(j.completed for j in result.jobs)
        assert result.total_fault_events == sum(counts.values())

    def test_unbound_model_raises_clearly(self):
        model = JobCrashModel(rate=1.0)
        with pytest.raises(RuntimeError, match="never seeded"):
            _ = model.rng

"""Tests for gray-failure resilience: silent fault models, node health
scoring and quarantine (repro.core.health), the estimator's telemetry
defense, fallible placements, and health-event persistence."""

import math
import random

import pytest

from repro import io
from repro.cluster import presets
from repro.core.health import (DRAINED, HEALTHY, PROBATION, QUARANTINED,
                               HealthConfig, HealthEvent, HealthTracker,
                               deterministic_jitter, placement_backoff)
from repro.core.types import Allocation, ProfilingMode
from repro.jobs.job import make_job
from repro.perf import profiles
from repro.perf.estimator import JobConstraints, JobPerfEstimator
from repro.perf.fitting import Observation
from repro.schedulers import FIFOScheduler, SiaScheduler
from repro.sim import (GrayFailureModel, PlacementFailureModel, Simulator,
                       SimulatorConfig, StragglerModel,
                       TelemetryCorruptionModel, simulate)
from repro.sim.chaos import run_chaos
from repro.sim.faults import FaultContext


def jobs(n=3, scale=0.4):
    return [make_job(f"j{i}", "resnet18", 0.0, work_scale=scale)
            for i in range(n)]


def obs(iter_time=0.1, local_bsz=32, gpu_type="t4") -> Observation:
    return Observation(gpu_type=gpu_type, num_nodes=1, num_gpus=1,
                       local_bsz=local_bsz, accum_steps=1,
                       iter_time=iter_time)


# -- fault models --------------------------------------------------------------

class TestGrayFailureModel:
    def test_slows_silently_not_via_node_speed(self):
        ctx = FaultContext(now=0.0, dt=60.0, cluster=presets.heterogeneous())
        model = GrayFailureModel(rate=1e6, slowdown=0.35, seed=1)
        model.sample(ctx)
        assert ctx.gray_speed  # every node drawn gray at this rate
        assert all(f == 0.35 for f in ctx.gray_speed.values())
        assert not ctx.node_speed  # stragglers' visible channel untouched
        assert all(e.kind == "gray_failure" for e in ctx.events)
        assert "masked" in ctx.events[0].detail

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GrayFailureModel(slowdown=0.0)
        with pytest.raises(ValueError):
            GrayFailureModel(rate=-1.0)
        with pytest.raises(ValueError):
            GrayFailureModel(duration=0.0)

    def test_masking_slows_jobs_without_estimator_rejections(
            self, hetero_cluster):
        """The tentpole's masking contract: jobs run slower under gray
        failure, but the telemetry the estimator sees stays nominal — no
        rejected observations, no straggler-style visible slowdown."""
        clean = simulate(hetero_cluster, SiaScheduler(), jobs(),
                         max_hours=100)
        gray = simulate(hetero_cluster, SiaScheduler(), jobs(),
                        max_hours=100,
                        fault_models=[GrayFailureModel(rate=60.0,
                                                       slowdown=0.3,
                                                       seed=9)])
        assert gray.fault_counts().get("gray_failure", 0) > 0
        assert sum(gray.jcts_hours()) > sum(clean.jcts_hours())
        assert gray.final_metrics.get("telemetry.rejected_observations",
                                      0) == 0
        assert all(j.completed for j in gray.jobs)

    def test_gray_speed_merges_worst_factor(self):
        ctx = FaultContext(now=0.0, dt=60.0, cluster=presets.heterogeneous())
        ctx.gray_slow_node(0, 0.5)
        ctx.gray_slow_node(0, 0.8)
        assert ctx.gray_speed[0] == 0.5


class TestPlacementFailureModel:
    def attempts(self):
        return [("j0", Allocation.build("t4", {0: 2, 1: 2})),
                ("j1", Allocation.build("t4", {2: 4}))]

    def test_deterministic_and_attributed(self):
        a = PlacementFailureModel(failure_prob=0.7, seed=3)
        b = PlacementFailureModel(failure_prob=0.7, seed=3)
        fa = a.sample_placement_failures(self.attempts(), now=0.0)
        fb = b.sample_placement_failures(self.attempts(), now=0.0)
        assert fa == fb and fa
        nodes = {"j0": {0, 1}, "j1": {2}}
        for failure in fa:
            assert failure.node_id in nodes[failure.job_id]

    def test_zero_prob_never_fails(self):
        model = PlacementFailureModel(failure_prob=0.0, seed=3)
        assert model.sample_placement_failures(self.attempts(), 0.0) == []

    def test_rejects_certain_failure(self):
        with pytest.raises(ValueError):
            PlacementFailureModel(failure_prob=1.0)

    def test_flaps_cost_time_but_jobs_finish(self, hetero_cluster):
        clean = simulate(hetero_cluster, SiaScheduler(), jobs(),
                         max_hours=100)
        flappy = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          max_hours=100,
                          fault_models=[PlacementFailureModel(
                              failure_prob=0.5, seed=7)])
        assert flappy.fault_counts().get("placement_failure", 0) > 0
        assert flappy.final_metrics.get("placement.retries", 0) > 0
        assert all(j.completed for j in flappy.jobs)
        assert sum(flappy.jcts_hours()) >= sum(clean.jcts_hours())


class TestTelemetryCorruptionModel:
    def test_all_modes_fire(self):
        model = TelemetryCorruptionModel(rate=1.0, scale_factor=8.0, seed=5)
        details = []
        lengths = set()
        for i in range(200):
            delivered, events = model.corrupt_observation(
                "j0", obs(iter_time=0.1 + i * 1e-6), now=float(i))
            lengths.add(len(delivered))
            details.extend(e.detail for e in events)
        text = " ".join(details)
        assert "dropped" in text
        assert "duplicated" in text
        assert "scaled" in text
        assert "stale" in text
        assert "nan" in text
        assert lengths == {0, 1, 2}

    def test_stale_replays_previous_report(self):
        model = TelemetryCorruptionModel(rate=1.0, seed=0)
        first = obs(iter_time=0.1)
        seen = {}
        for i in range(100):
            current = obs(iter_time=0.1 + (i + 1) * 0.001)
            delivered, events = model.corrupt_observation(
                "j0", current if i else first, now=float(i))
            for e in events:
                if "stale" in e.detail:
                    seen[i] = delivered
        assert seen  # the mode fired at least once
        for delivered in seen.values():
            assert len(delivered) == 1  # a replay, not the fresh report

    def test_passthrough_below_rate(self):
        model = TelemetryCorruptionModel(rate=0.0, seed=1)
        report = obs()
        assert model.corrupt_observation("j0", report, 0.0) == ([report], [])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TelemetryCorruptionModel(rate=1.5)
        with pytest.raises(ValueError):
            TelemetryCorruptionModel(scale_factor=1.0)

    def test_corruption_triggers_estimator_rejections(self, hetero_cluster):
        # Rigid jobs keep a stable allocation, so the estimator sees the
        # same (type, batch-plan) key every round and its MAD window
        # matures — the deterministic way to exercise the reject path
        # end to end (adaptive jobs re-plan too often in a short run).
        from repro.schedulers import FIFOScheduler
        from repro.workloads.tuning import tuned_jobs
        rigid = tuned_jobs(jobs(scale=30.0), hetero_cluster, seed=0)
        result = simulate(hetero_cluster, FIFOScheduler(), rigid,
                          max_hours=100,
                          fault_models=[TelemetryCorruptionModel(
                              rate=0.5, seed=11)])
        assert result.fault_counts().get("telemetry", 0) > 0
        assert result.final_metrics.get("telemetry.rejected_observations",
                                        0) > 0
        assert all(j.completed for j in result.jobs)


# -- estimator defense ---------------------------------------------------------

class TestEstimatorDefense:
    def make(self):
        profile = profiles.model_profile("resnet18")
        constraints = JobConstraints(min_bsz=profile.min_bsz,
                                     max_bsz=profile.max_bsz)
        return JobPerfEstimator("resnet18", constraints, ("t4",))

    def seed_window(self, est, n=6, iter_time=0.1):
        for _ in range(n):
            assert est.add_observation(obs(iter_time=iter_time))

    def test_nan_rejected(self):
        est = self.make()
        assert est.add_observation(obs(iter_time=float("nan"))) is False
        assert est.rejected_observations == 1

    def test_outlier_scale_rejected_both_directions(self):
        est = self.make()
        self.seed_window(est)
        assert est.add_observation(obs(iter_time=0.8)) is False   # x8
        assert est.add_observation(obs(iter_time=0.0125)) is False  # /8
        assert est.rejected_observations == 2

    def test_straggler_magnitude_accepted(self):
        """Regression (satellite 5): a 2x execution slowdown — what a
        straggling node actually produces — must pass the defense; only
        implausible corruption (beyond the 3x ratio cap) is refused."""
        est = self.make()
        self.seed_window(est)
        assert est.add_observation(obs(iter_time=0.2)) is True
        assert est.rejected_observations == 0

    def test_reject_leaves_fit_and_epochs_untouched(self):
        est = self.make()
        self.seed_window(est)
        epoch_before = est._obs_epoch
        count_before = len(est._types["t4"].observations)
        assert est.add_observation(obs(iter_time=5.0)) is False
        assert est._obs_epoch == epoch_before
        assert len(est._types["t4"].observations) == count_before

    def test_window_too_small_accepts_anything_finite(self):
        est = self.make()
        assert est.add_observation(obs(iter_time=0.1))
        assert est.add_observation(obs(iter_time=50.0))  # no window yet

    def test_windows_are_per_batch_plan(self):
        est = self.make()
        self.seed_window(est, iter_time=0.1)
        # A different batch plan has no history: a very different report
        # for it is credible.
        assert est.add_observation(obs(iter_time=2.0, local_bsz=64))

    def test_profile_initial_unaffected(self):
        est = self.make()
        est.profile_initial()
        assert est.rejected_observations == 0

    def test_unknown_type_still_raises(self):
        est = self.make()
        with pytest.raises(KeyError):
            est.add_observation(obs(gpu_type="a100"))


# -- health tracker ------------------------------------------------------------

def low_ratio(tracker, node_id, now, n=1, ratio=0.3):
    for _ in range(n):
        tracker.record_goodput([node_id], 1.0, ratio, now)


class TestBackoff:
    def test_jitter_deterministic_and_bounded(self):
        assert deterministic_jitter("a", 0.25) == \
            deterministic_jitter("a", 0.25)
        assert deterministic_jitter("a", 0.0) == 0.0
        for token in ("a", "b", "job:3"):
            assert 0.0 <= deterministic_jitter(token, 0.25) <= 0.25

    def test_backoff_doubles_and_caps(self):
        delays = [placement_backoff(a, "j0", base_s=30.0, cap_s=120.0,
                                    jitter=0.0) for a in (1, 2, 3, 4)]
        assert delays == [30.0, 60.0, 120.0, 120.0]
        with pytest.raises(ValueError):
            placement_backoff(0, "j0")


class TestHealthTracker:
    def cfg(self, **kw):
        base = dict(min_samples=3, quarantine_base_s=600.0,
                    quarantine_cap_s=2400.0, drain_after=2)
        base.update(kw)
        return HealthConfig(**base)

    def test_low_ratio_walks_probation_then_quarantine(self):
        tracker = HealthTracker(self.cfg())
        low_ratio(tracker, 0, now=0.0, n=3, ratio=0.6)
        tracker.tick(0.0)
        assert tracker.node(0).state == PROBATION
        low_ratio(tracker, 0, now=60.0, n=6, ratio=0.1)
        tracker.tick(60.0)
        assert tracker.node(0).state == QUARANTINED
        kinds = [e.kind for e in tracker.drain_events()]
        assert kinds == ["probation", "quarantine"]

    def test_probation_recovers(self):
        tracker = HealthTracker(self.cfg())
        low_ratio(tracker, 0, 0.0, n=3, ratio=0.6)
        tracker.tick(0.0)
        assert tracker.node(0).state == PROBATION
        low_ratio(tracker, 0, 60.0, n=20, ratio=1.0)
        tracker.tick(60.0)
        assert tracker.node(0).state == HEALTHY
        assert [e.kind for e in tracker.drain_events()] == \
            ["probation", "recover"]

    def test_min_samples_gate(self):
        tracker = HealthTracker(self.cfg(min_samples=5))
        low_ratio(tracker, 0, 0.0, n=4, ratio=0.1)
        tracker.tick(0.0)
        assert tracker.node(0).state == HEALTHY  # not enough evidence yet

    def test_placement_failures_quarantine(self):
        tracker = HealthTracker(self.cfg(placement_failure_threshold=2))
        tracker.record_placement_failure("j0", 0, 0.0)
        tracker.tick(0.0)
        assert tracker.node(0).state == HEALTHY
        tracker.record_placement_failure("j0", 0, 60.0)
        tracker.tick(60.0)
        assert tracker.node(0).state == QUARANTINED
        assert "placement failures" in tracker.drain_events()[-1].detail

    def test_placement_success_resets_streak(self):
        tracker = HealthTracker(self.cfg(placement_failure_threshold=2))
        tracker.record_placement_failure("j0", 0, 0.0)
        tracker.record_placement_success([0])
        tracker.record_placement_failure("j0", 0, 60.0)
        tracker.tick(60.0)
        assert tracker.node(0).state == HEALTHY

    def test_backoff_doubles_then_drains(self):
        tracker = HealthTracker(self.cfg())
        now = 0.0
        low_ratio(tracker, 0, now, n=3, ratio=0.1)
        tracker.tick(now)
        health = tracker.node(0)
        assert health.state == QUARANTINED
        assert health.quarantined_until == now + 600.0  # trip 1: base
        now = health.quarantined_until
        tracker.tick(now)
        assert health.state == PROBATION  # reinstated on expiry
        low_ratio(tracker, 0, now, n=3, ratio=0.1)
        tracker.tick(now)
        assert health.state == QUARANTINED
        assert health.quarantined_until == now + 1200.0  # trip 2: doubled
        now = health.quarantined_until
        tracker.tick(now)
        low_ratio(tracker, 0, now, n=3, ratio=0.1)
        tracker.tick(now)
        assert health.state == DRAINED  # trips exceeded drain_after=2
        kinds = [e.kind for e in tracker.drain_events()]
        assert kinds.count("quarantine") == 2
        assert kinds[-1] == "drain"

    def test_healthy_view_identity_when_clean(self, hetero_cluster):
        tracker = HealthTracker(self.cfg())
        low_ratio(tracker, 0, 0.0, n=3, ratio=0.9)
        assert tracker.healthy_view(hetero_cluster) is hetero_cluster

    def test_healthy_view_filters_quarantined(self, hetero_cluster):
        tracker = HealthTracker(self.cfg())
        low_ratio(tracker, 0, 0.0, n=3, ratio=0.1)
        tracker.tick(0.0)
        view = tracker.healthy_view(hetero_cluster)
        assert 0 not in {n.node_id for n in view.nodes}
        assert len(view.nodes) == len(hetero_cluster.nodes) - 1

    def test_emergency_reinstate_keeps_cluster_nonempty(self, tiny_cluster):
        tracker = HealthTracker(self.cfg())
        for node in tiny_cluster.nodes:
            low_ratio(tracker, node.node_id, 0.0, n=3, ratio=0.1)
        tracker.tick(0.0)
        assert len(tracker.excluded_nodes()) == len(tiny_cluster.nodes)
        view = tracker.healthy_view(tiny_cluster)
        assert len(view.nodes) == 1
        assert tracker.node(view.nodes[0].node_id).state == PROBATION
        assert any(e.kind == "reinstate" and "emergency" in e.detail
                   for e in tracker.drain_events())

    def test_type_discounts_empty_without_probation(self, hetero_cluster):
        tracker = HealthTracker(self.cfg())
        assert tracker.type_discounts(hetero_cluster) == {}

    def test_type_discounts_weighted_by_flagged_fraction(self, tiny_cluster):
        tracker = HealthTracker(self.cfg(probation_discount=0.6))
        quad = next(n for n in tiny_cluster.nodes if n.gpu_type == "quad")
        low_ratio(tracker, quad.node_id, 0.0, n=3, ratio=0.6)
        tracker.tick(0.0)
        discounts = tracker.type_discounts(tiny_cluster)
        # The only quad node is on probation: full discount on that type.
        assert discounts == {"quad": pytest.approx(0.6)}

    def test_quarantine_liveness_property(self):
        """Seeded property (satellite 3): under arbitrary evidence, every
        node that ever quarantines is eventually reinstated or drained —
        no node is forgotten in quarantine — and the state census always
        accounts for every tracked node."""
        for seed in range(5):
            rng = random.Random(seed)
            cfg = self.cfg()
            tracker = HealthTracker(cfg)
            ever_quarantined: set[int] = set()
            now = 0.0
            for _ in range(300):
                now += 60.0
                for node_id in range(6):
                    draw = rng.random()
                    if draw < 0.2:
                        low_ratio(tracker, node_id, now, ratio=0.1)
                    elif draw < 0.8:
                        low_ratio(tracker, node_id, now, ratio=1.0)
                    if rng.random() < 0.1:
                        tracker.record_placement_failure("j", node_id, now)
                    else:
                        tracker.record_placement_success([node_id])
                tracker.tick(now)
                states = tracker.states()
                ever_quarantined |= {n for n, s in states.items()
                                     if s == QUARANTINED}
                counts = tracker.state_counts()
                assert sum(counts.values()) == len(states)
                assert set(states.values()) <= {HEALTHY, PROBATION,
                                                QUARANTINED, DRAINED}
            # Evidence stops; backoffs expire within the cap.
            for _ in range(3):
                now += cfg.quarantine_cap_s + 1.0
                tracker.tick(now)
            final = tracker.states()
            assert ever_quarantined  # the property was exercised
            for node_id in ever_quarantined:
                assert final[node_id] in (HEALTHY, PROBATION, DRAINED)

    def test_quarantined_nodes_score_frozen(self):
        tracker = HealthTracker(self.cfg())
        low_ratio(tracker, 0, 0.0, n=3, ratio=0.1)
        tracker.tick(0.0)
        assert tracker.node(0).state == QUARANTINED
        low_ratio(tracker, 0, 60.0, n=10, ratio=1.0)
        assert tracker.node(0).samples == 0  # no evidence while excluded

    def test_event_round_trip(self):
        event = HealthEvent(kind="quarantine", time=60.0, node_id=3,
                            detail="ratio 0.30 < 0.45")
        assert HealthEvent.from_dict(event.to_dict()) == event
        assert "node 3" in event.describe()


# -- end-to-end defense --------------------------------------------------------

GRAY_MODELS = dict(rate=20.0, slowdown=0.3, duration=14400.0)


def gray_sim(cluster, *, health, seed=4, invariants="off", **kwargs):
    config = SimulatorConfig(
        profiling_mode=ProfilingMode.ORACLE, seed=seed, max_hours=100,
        fault_models=[GrayFailureModel(seed=17, **GRAY_MODELS)],
        health=HealthConfig(min_samples=3) if health else None,
        invariants=invariants, **kwargs)
    return Simulator(cluster, SiaScheduler(), jobs(4), config).run()


class TestHealthDefenseEndToEnd:
    def test_gray_run_quarantines_under_strict_invariants(
            self, hetero_cluster):
        """The full loop: gray nodes are detected from goodput divergence,
        quarantined out of the scheduler's view, and the strict invariant
        that no allocation touches a quarantined node holds throughout."""
        result = gray_sim(hetero_cluster, health=True, invariants="strict")
        counts = result.health_counts()
        assert counts.get("health.quarantine", 0) > 0
        kinds = {e.kind for _, e in result.health_timeline()}
        assert "quarantine" in kinds
        assert all(j.completed for j in result.jobs)

    def test_defense_recovers_goodput(self, hetero_cluster):
        """Quarantining gray nodes must beat scheduling onto them.

        The clearest victim is a rigid job on a FIFO scheduler: nothing
        ever migrates it off a gray node, so an undefended run pins it at
        gray speed for the node's whole episode, while the defense evicts
        and re-places it on clean spare capacity.  (Adaptive Sia runs at
        full cluster saturation have no spare capacity to re-place onto,
        so quarantine there trades speed for capacity roughly evenly.)"""
        from repro.workloads.tuning import tuned_jobs

        def run(*, gray, health):
            rigid = tuned_jobs(jobs(5, scale=8.0), hetero_cluster, seed=0)
            config = SimulatorConfig(
                profiling_mode=ProfilingMode.ORACLE, seed=4, max_hours=200,
                fault_models=[GrayFailureModel(rate=0.3, slowdown=0.25,
                                               duration=72000.0, seed=5)]
                if gray else [],
                health=HealthConfig(min_samples=3) if health else None)
            result = Simulator(hetero_cluster, FIFOScheduler(), rigid,
                               config).run()
            return sum(result.jcts_hours())

        clean = run(gray=False, health=False)
        undefended = run(gray=True, health=False)
        defended = run(gray=True, health=True)
        lost = undefended - clean
        assert lost > 0  # the gray episodes actually hurt
        recovered = undefended - defended
        assert recovered >= 0.5 * lost

    def test_deterministic_with_health(self, hetero_cluster):
        a = gray_sim(hetero_cluster, health=True)
        b = gray_sim(hetero_cluster, health=True)
        assert [j.finish_time for j in a.jobs] == \
            [j.finish_time for j in b.jobs]
        assert [(i, e) for i, e in a.health_timeline()] == \
            [(i, e) for i, e in b.health_timeline()]

    def test_straggler_slowdown_is_not_treated_as_corruption(
            self, hetero_cluster):
        """Regression (satellite 5): a straggling node's 2x-slower reports
        are real telemetry and must not be double-counted as corrupt."""
        result = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          max_hours=100,
                          fault_models=[StragglerModel(rate=60.0,
                                                       slowdown=0.5,
                                                       seed=8)])
        assert result.fault_counts().get("straggler", 0) > 0
        assert result.final_metrics.get("telemetry.rejected_observations",
                                        0) == 0

    def test_chaos_resume_bit_identical_with_health(self, hetero_cluster,
                                                    tmp_path):
        """Kill/resume equivalence with all three gray fault models and the
        health layer on: scores, backoffs and pending events must resume
        bit-identically (satellite of the tentpole's checkpoint clause)."""
        def factory(ckpt_cfg):
            config = SimulatorConfig(
                profiling_mode=ProfilingMode.ORACLE, seed=4, max_hours=60,
                fault_models=[
                    GrayFailureModel(seed=17, **GRAY_MODELS),
                    PlacementFailureModel(failure_prob=0.2, seed=18),
                    TelemetryCorruptionModel(rate=0.2, seed=19)],
                health=HealthConfig(min_samples=3),
                invariants="strict", checkpoint=ckpt_cfg)
            return Simulator(hetero_cluster, SiaScheduler(), jobs(4), config)

        report = run_chaos(factory, directory=tmp_path, kill_round=12,
                           every_rounds=5)
        assert report.crashed
        assert report.resumed_from_round >= 0
        assert report.equivalent, report.mismatches[:5]


class TestHealthEventsIO:
    def test_result_round_trip_preserves_health_events(self, hetero_cluster,
                                                       tmp_path):
        result = gray_sim(hetero_cluster, health=True)
        timeline = result.health_timeline()
        assert timeline
        path = tmp_path / "res.json"
        io.save_result(result, path)
        loaded = io.load_result(path)
        assert loaded.health_timeline() == timeline
        assert loaded.health_counts() == result.health_counts()

    def test_health_events_jsonl_round_trip(self, hetero_cluster, tmp_path):
        result = gray_sim(hetero_cluster, health=True)
        path = tmp_path / "health.jsonl"
        io.save_health_events(result, path)
        assert io.load_health_events(path) == result.health_timeline()

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ledger"}\n')
        with pytest.raises(ValueError):
            io.load_health_events(path)

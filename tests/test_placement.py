"""Tests for the Placer (Section 3.1 rules a/b/c)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import presets
from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeGroup
from repro.core.placement import Placer
from repro.core.types import Allocation, Configuration


@pytest.fixture
def placer(hetero_cluster) -> Placer:
    return Placer(hetero_cluster)


class TestSingleNodeRule:
    def test_partial_allocation_on_one_node(self, placer):
        result = placer.place({"j1": Configuration(1, 4, "rtx")}, {})
        alloc = result.allocations["j1"]
        assert alloc.num_nodes == 1
        assert alloc.num_gpus == 4

    def test_partial_never_split(self, placer, hetero_cluster):
        """Rule (a): a 4-GPU rtx allocation must land on exactly one node
        even when free GPUs are scattered."""
        # Fill 6 of 8 GPUs on every rtx node with other jobs.
        assignments = {f"f{i}": Configuration(1, 4, "rtx") for i in range(3)}
        assignments |= {f"g{i}": Configuration(1, 2, "rtx") for i in range(3)}
        result = placer.place(assignments, {})
        # 3 nodes x (4+2) = 18 GPUs used, 2 free per node: a 4-GPU job
        # cannot be placed even though 6 GPUs are free in total.
        extra = dict(assignments)
        extra["late"] = Configuration(1, 4, "rtx")
        result = placer.place(extra, {})
        if "late" in result.allocations:
            assert result.allocations["late"].num_nodes == 1
        else:
            assert "late" in result.evicted

    def test_best_fit_prefers_tightest_node(self):
        cluster = Cluster.from_groups([NodeGroup("t4", 2, 4)])
        placer = Placer(cluster)
        first = placer.place({"a": Configuration(1, 2, "t4"),
                              "b": Configuration(1, 2, "t4")}, {})
        # Best-fit should co-locate both 2-GPU jobs on one node.
        nodes_used = {next(iter(alloc.node_ids))
                      for alloc in first.allocations.values()}
        assert len(nodes_used) == 1


class TestWholeNodeRule:
    def test_multi_node_takes_whole_nodes(self, placer):
        result = placer.place({"j1": Configuration(2, 16, "rtx")}, {})
        alloc = result.allocations["j1"]
        assert alloc.num_nodes == 2
        assert all(count == 8 for _, count in alloc.gpus_per_node)

    def test_multi_node_needs_empty_nodes(self, placer):
        assignments = {
            "small": Configuration(1, 1, "a100"),
            "small2": Configuration(1, 1, "a100"),
            "big": Configuration(2, 16, "a100"),
        }
        result = placer.place(assignments, {})
        # Only 2 a100 nodes exist; the repack must evict someone.
        placed_gpus = sum(a.num_gpus for a in result.allocations.values())
        assert placed_gpus <= 16
        if "big" in result.allocations:
            assert result.evicted  # the small jobs had to go


class TestStability:
    def test_unchanged_jobs_keep_exact_gpus(self, placer):
        config = Configuration(1, 4, "rtx")
        first = placer.place({"j1": config}, {})
        prev = {"j1": first.allocations["j1"]}
        second = placer.place({"j1": config}, prev)
        assert second.allocations["j1"] == prev["j1"]
        assert "j1" in second.unchanged

    def test_changed_config_prefers_previous_node(self, placer):
        first = placer.place({"j1": Configuration(1, 2, "rtx")}, {})
        prev = {"j1": first.allocations["j1"]}
        second = placer.place({"j1": Configuration(1, 4, "rtx")}, prev)
        assert second.allocations["j1"].node_ids == prev["j1"].node_ids


class TestEviction:
    def test_fragmentation_triggers_repack(self):
        cluster = Cluster.from_groups([NodeGroup("t4", 2, 4)])
        placer = Placer(cluster)
        # Previous round: two 2-GPU jobs on different nodes (forced via
        # explicit previous allocations on separate nodes).
        node_ids = [n.node_id for n in cluster.nodes]
        prev = {
            "a": Allocation.build("t4", {node_ids[0]: 2}),
            "b": Allocation.build("t4", {node_ids[1]: 2}),
        }
        assignments = {
            "a": Configuration(1, 2, "t4"),
            "b": Configuration(1, 2, "t4"),
            "c": Configuration(1, 4, "t4"),
        }
        result = placer.place(assignments, prev)
        # Repack must fit all three (2+2 share one node, 4 takes the other).
        assert set(result.allocations) == {"a", "b", "c"}
        assert not result.evicted

    def test_truly_infeasible_job_evicted(self, placer):
        assignments = {f"j{i}": Configuration(1, 8, "a100") for i in range(3)}
        result = placer.place(assignments, {})
        assert len(result.allocations) == 2
        assert len(result.evicted) == 1


@st.composite
def assignment_sets(draw):
    cluster = presets.heterogeneous()
    n = draw(st.integers(1, 12))
    assignments = {}
    for i in range(n):
        gpu_type = draw(st.sampled_from(["t4", "rtx", "a100"]))
        node_size = cluster.max_node_size(gpu_type)
        if draw(st.booleans()):
            gpus = draw(st.sampled_from(
                [g for g in (1, 2, 4, 8) if g <= node_size]))
            config = Configuration(1, gpus, gpu_type)
        else:
            nodes = draw(st.integers(2, 3))
            config = Configuration(nodes, nodes * node_size, gpu_type)
        assignments[f"j{i}"] = config
    return cluster, assignments


class TestPlacementInvariants:
    @settings(max_examples=60, deadline=None)
    @given(case=assignment_sets())
    def test_no_oversubscription_and_rules_hold(self, case):
        cluster, assignments = case
        placer = Placer(cluster)
        result = placer.place(assignments, {})
        sizes = {n.node_id: n.num_gpus for n in cluster.nodes}
        types = {n.node_id: n.gpu_type for n in cluster.nodes}
        used: dict[int, int] = {}
        for job_id, alloc in result.allocations.items():
            config = assignments[job_id]
            assert alloc.configuration() == config
            for node_id, count in alloc.gpus_per_node:
                assert types[node_id] == alloc.gpu_type
                used[node_id] = used.get(node_id, 0) + count
                if config.num_nodes == 1:
                    assert alloc.num_nodes == 1  # rule (a)
        for node_id, count in used.items():
            assert count <= sizes[node_id]
        # every assigned job is either placed or explicitly evicted
        assert set(result.allocations) | set(result.evicted) == set(assignments)

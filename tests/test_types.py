"""Tests for core value types."""

import pytest

from repro.core.types import Allocation, BatchScale, Configuration


class TestConfiguration:
    def test_basic_fields(self):
        config = Configuration(2, 16, "t4")
        assert config.num_nodes == 2
        assert config.num_gpus == 16
        assert config.gpu_type == "t4"
        assert config.gpus_per_node == 8.0

    def test_str_matches_paper_notation(self):
        assert str(Configuration(2, 16, "t4")) == "(2, 16, t4)"

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            Configuration(0, 4, "t4")

    def test_rejects_fewer_gpus_than_nodes(self):
        with pytest.raises(ValueError):
            Configuration(4, 2, "t4")

    def test_equality_and_hash(self):
        a = Configuration(1, 4, "rtx")
        b = Configuration(1, 4, "rtx")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Configuration(1, 4, "t4")

    def test_ordering_is_total(self):
        configs = [Configuration(1, 4, "t4"), Configuration(1, 2, "t4"),
                   Configuration(2, 8, "a100")]
        assert sorted(configs)  # must not raise


class TestAllocation:
    def test_build_sorts_nodes(self):
        alloc = Allocation.build("t4", {5: 2, 1: 4})
        assert alloc.gpus_per_node == ((1, 4), (5, 2))
        assert alloc.num_gpus == 6
        assert alloc.num_nodes == 2
        assert alloc.node_ids == (1, 5)

    def test_configuration_roundtrip(self):
        alloc = Allocation.build("rtx", {0: 8, 1: 8})
        config = alloc.configuration()
        assert config == Configuration(2, 16, "rtx")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Allocation.build("t4", {})

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            Allocation.build("t4", {0: 0})

    def test_equality_is_structural(self):
        a = Allocation.build("t4", {0: 2, 1: 2})
        b = Allocation.build("t4", {1: 2, 0: 2})
        assert a == b


class TestBatchScale:
    def test_total(self):
        scale = BatchScale(local_bsz=32, accum_steps=2)
        assert scale.total(num_replicas=4) == 256

    def test_default_no_accumulation(self):
        assert BatchScale(local_bsz=8).total(1) == 8

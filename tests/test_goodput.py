"""Tests for goodput modeling and batch-plan optimization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.efficiency import EfficiencyModel, EfficiencyParams
from repro.perf.goodput import (MAX_ACCUM_STEPS, GoodputModel,
                                candidate_local_sizes)
from repro.perf.throughput import ThroughputModel, ThroughputParams

PARAMS = ThroughputParams(alpha_c=0.02, beta_c=0.002,
                          alpha_r=0.01, beta_r=0.001,
                          alpha_n=0.08, beta_n=0.008)


@pytest.fixture
def model() -> GoodputModel:
    return GoodputModel(ThroughputModel(PARAMS),
                        EfficiencyModel(EfficiencyParams(400.0, 64)))


class TestCandidateSizes:
    def test_includes_bounds(self):
        sizes = candidate_local_sizes(4, 128)
        assert sizes[0] == 4 and sizes[-1] == 128

    def test_sorted_unique(self):
        sizes = candidate_local_sizes(1, 1000)
        assert sizes == sorted(set(sizes))

    def test_degenerate_range(self):
        assert candidate_local_sizes(8, 8) == [8]

    def test_empty_when_invalid(self):
        assert candidate_local_sizes(10, 5) == []
        assert candidate_local_sizes(0, 5) == []

    @given(lo=st.integers(1, 100), hi=st.integers(1, 10_000))
    def test_all_within_bounds(self, lo, hi):
        for s in candidate_local_sizes(lo, hi):
            assert lo <= s <= hi


class TestEvaluate:
    def test_goodput_is_throughput_times_efficiency(self, model):
        plan = model.evaluate(64, 4, 1)
        assert plan.goodput == pytest.approx(plan.throughput * plan.efficiency)
        assert plan.total_batch_size == 256

    def test_efficiency_penalizes_large_totals(self, model):
        small = model.evaluate(64, 1, 1)
        large = model.evaluate(64, 16, 2)
        assert large.efficiency < small.efficiency


class TestOptimizeBatchSize:
    def test_respects_memory_cap(self, model):
        plan = model.optimize_batch_size(4, 1, max_local_bsz=32,
                                         max_total_bsz=4096)
        assert plan is not None
        assert plan.local_bsz <= 32

    def test_respects_total_cap(self, model):
        plan = model.optimize_batch_size(8, 1, max_local_bsz=512,
                                         max_total_bsz=256)
        assert plan is not None
        assert plan.total_batch_size <= 256

    def test_respects_total_floor(self, model):
        plan = model.optimize_batch_size(1, 1, max_local_bsz=512,
                                         max_total_bsz=4096,
                                         min_total_bsz=64)
        assert plan is not None
        assert plan.total_batch_size >= 64

    def test_uses_accumulation_when_memory_limited(self, model):
        """A tight memory cap with a high efficiency sweet spot forces
        gradient accumulation."""
        tolerant = GoodputModel(
            ThroughputModel(PARAMS),
            EfficiencyModel(EfficiencyParams(100_000.0, 512)))
        plan = tolerant.optimize_batch_size(1, 1, max_local_bsz=64,
                                            max_total_bsz=4096,
                                            min_total_bsz=512)
        assert plan is not None
        assert plan.accum_steps > 1

    def test_infeasible_floor_returns_none(self, model):
        plan = model.optimize_batch_size(1, 1, max_local_bsz=4,
                                         max_total_bsz=64, min_total_bsz=128)
        assert plan is None

    def test_invalid_inputs_return_none(self, model):
        assert model.optimize_batch_size(0, 1, max_local_bsz=8,
                                         max_total_bsz=64) is None
        assert model.optimize_batch_size(2, 1, max_local_bsz=0,
                                         max_total_bsz=64) is None

    def test_fixed_total_plan(self, model):
        plan = model.optimize_batch_size(4, 1, max_local_bsz=512,
                                         max_total_bsz=4096,
                                         fixed_total_bsz=256)
        assert plan is not None
        assert plan.local_bsz * plan.accum_steps * 4 <= 256
        assert plan.total_batch_size <= 256

    def test_fixed_total_smaller_than_gpus_is_infeasible(self, model):
        assert model.optimize_batch_size(8, 1, max_local_bsz=64,
                                         max_total_bsz=4096,
                                         fixed_total_bsz=4) is None

    def test_fixed_total_uses_accumulation_under_memory_pressure(self, model):
        plan = model.optimize_batch_size(1, 1, max_local_bsz=32,
                                         max_total_bsz=4096,
                                         fixed_total_bsz=128)
        assert plan is not None
        assert plan.accum_steps >= 4

    @settings(max_examples=40, deadline=None)
    @given(k=st.sampled_from([1, 2, 4, 8]),
           cap=st.integers(8, 256), total=st.integers(64, 2048))
    def test_plan_always_within_limits(self, k, cap, total):
        model = GoodputModel(ThroughputModel(PARAMS),
                             EfficiencyModel(EfficiencyParams(400.0, 64)))
        plan = model.optimize_batch_size(k, 1, max_local_bsz=cap,
                                         max_total_bsz=total)
        if plan is not None:
            assert 1 <= plan.local_bsz <= cap
            assert 1 <= plan.accum_steps <= MAX_ACCUM_STEPS
            assert plan.total_batch_size <= total
            assert plan.goodput > 0

    def test_goodput_convenience_zero_when_infeasible(self, model):
        assert model.goodput(1, 1, max_local_bsz=0, max_total_bsz=64) == 0.0

"""Tests for the live streaming exporters (repro.obs.stream): incremental
JSONL with atomic finalize, crash-durable prefixes, Prometheus exposition,
the HTTP endpoint, the watch view, and the determinism contract."""

import io as stdlib_io
import json
import urllib.request

import pytest

from repro import io
from repro.core.types import ProfilingMode
from repro.jobs.job import make_job
from repro.obs.ledger import GoodputLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine, SLORule
from repro.obs.stream import (AlertStreamObserver, EventStreamObserver,
                              JsonlStreamWriter, LedgerStreamObserver,
                              MetricsHTTPServer, PrometheusSnapshotObserver,
                              SLOObserver, WatchView, parse_prometheus_text,
                              prometheus_text)
from repro.obs.tracer import Tracer
from repro.schedulers import SiaScheduler
from repro.sim import Simulator, SimulatorConfig, simulate
from repro.sim.chaos import CrashAt, SimulatedCrash, diff_results
from repro.sim.checkpoint import CheckpointConfig, latest_valid_checkpoint


def jobs(n=2, scale=0.05):
    return [make_job(f"j{i}", "resnet18", i * 60.0, work_scale=scale)
            for i in range(n)]


# -- JSONL writer --------------------------------------------------------------

class TestJsonlStreamWriter:
    def test_lines_land_in_part_until_finalize(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = JsonlStreamWriter(path)
        writer.write({"a": 1})
        writer.flush()
        assert writer.part_path.exists() and not path.exists()
        writer.finalize()
        assert path.exists() and not writer.part_path.exists()
        assert json.loads(path.read_text()) == {"a": 1}

    def test_close_leaves_part_prefix(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = JsonlStreamWriter(path)
        writer.write({"a": 1})
        writer.close()
        assert writer.part_path.exists() and not path.exists()

    def test_write_after_finalize_rejected(self, tmp_path):
        writer = JsonlStreamWriter(tmp_path / "s.jsonl")
        writer.finalize()
        with pytest.raises(ValueError, match="closed"):
            writer.write({})

    def test_finalize_is_idempotent(self, tmp_path):
        writer = JsonlStreamWriter(tmp_path / "s.jsonl")
        writer.write({"a": 1})
        writer.finalize()
        writer.finalize()  # must not raise


# -- streamed artifacts round-trip ---------------------------------------------

def streamed_run(cluster, tmp_path, *, rules=None):
    tracer = Tracer()
    registry = MetricsRegistry()
    slo = SLOEngine(rules, metrics=registry)
    observers = [
        SLOObserver(slo),
        AlertStreamObserver(tmp_path / "alerts.jsonl", "sia"),
        EventStreamObserver(tracer, tmp_path / "events.jsonl", registry),
        LedgerStreamObserver(tmp_path / "ledger.jsonl", "sia"),
        PrometheusSnapshotObserver(registry, tmp_path / "metrics.prom"),
    ]
    config = SimulatorConfig(profiling_mode=ProfilingMode.ORACLE,
                             tracer=tracer, metrics=registry,
                             observers=observers)
    return Simulator(cluster, SiaScheduler(), jobs(), config).run()


class TestStreamedArtifacts:
    def test_streamed_events_match_end_of_run_dump(self, hetero_cluster,
                                                   tmp_path):
        result = streamed_run(hetero_cluster, tmp_path)
        from repro.obs.export import read_events_jsonl
        spans, metrics = read_events_jsonl(tmp_path / "events.jsonl")
        assert [s.span_id for s in spans] == \
            [s.span_id for s in result.spans]
        assert metrics == result.final_metrics
        trailer = json.loads(
            (tmp_path / "events.jsonl").read_text().splitlines()[-1])
        assert trailer["kind"] == "stream_end"
        assert trailer["spans"] == len(result.spans)

    def test_streamed_ledger_matches_post_hoc_ledger(self, hetero_cluster,
                                                     tmp_path):
        result = streamed_run(hetero_cluster, tmp_path)
        ledger, events = io.load_ledger(tmp_path / "ledger.jsonl")
        assert ledger.entries == GoodputLedger.from_result(result).entries
        assert events == result.allocation_events()

    def test_streamed_alerts_load_back(self, hetero_cluster, tmp_path):
        # A rule that trivially fires so the alerts stream is non-empty.
        rules = [SLORule(name="always", metric="rounds_planned", target=0.0,
                         comparison="<=", window=4, error_budget=0.5,
                         min_samples=1, cooldown=1000)]
        result = streamed_run(hetero_cluster, tmp_path, rules=rules)
        alerts = io.load_alerts(tmp_path / "alerts.jsonl")
        assert alerts == [a for _, a in result.alerts_timeline()]
        assert len(alerts) == 1
        lines = (tmp_path / "alerts.jsonl").read_text().splitlines()
        assert json.loads(lines[-1]) == {"kind": "alerts_end",
                                         "num_alerts": 1}

    def test_prometheus_snapshot_parses(self, hetero_cluster, tmp_path):
        streamed_run(hetero_cluster, tmp_path)
        samples = parse_prometheus_text(
            (tmp_path / "metrics.prom").read_text())
        assert samples["rounds_planned"] > 0
        assert any(name.startswith("solve_time_s") for name in samples)


# -- crash durability ----------------------------------------------------------

class TestCrashDurability:
    def test_kill_mid_run_leaves_parseable_prefixes(self, hetero_cluster,
                                                    tmp_path):
        """Killing the engine mid-run must leave every stream as a valid
        JSONL prefix at ``<path>.part`` — no torn line, no final file."""
        tracer = Tracer()
        observers = [
            EventStreamObserver(tracer, tmp_path / "events.jsonl"),
            LedgerStreamObserver(tmp_path / "ledger.jsonl", "sia"),
        ]
        config = SimulatorConfig(
            profiling_mode=ProfilingMode.ORACLE, tracer=tracer,
            observers=observers,
            checkpoint=CheckpointConfig(directory=tmp_path / "ckpt",
                                        every_rounds=3,
                                        crash_hook=CrashAt(6)))
        with pytest.raises(SimulatedCrash):
            Simulator(hetero_cluster, SiaScheduler(), jobs(4, scale=2.0),
                      config).run()
        for name in ("events.jsonl", "ledger.jsonl"):
            final = tmp_path / name
            part = final.with_name(final.name + ".part")
            assert part.exists() and not final.exists()
            lines = part.read_text().splitlines()
            assert lines  # rounds were flushed before the crash
            for line in lines:
                json.loads(line)  # every line parses
            # The crash preempted the completeness trailer.
            assert json.loads(lines[-1])["kind"] not in ("stream_end",
                                                         "ledger_end")

    def test_resumed_run_restreams_full_history(self, hetero_cluster,
                                                tmp_path):
        """Fresh observers attached to a resumed run catch up from the
        restored rounds: the final streamed ledger covers the whole run,
        not just the post-resume suffix."""
        def build(observers, crash_hook=None):
            config = SimulatorConfig(
                profiling_mode=ProfilingMode.ORACLE, observers=observers,
                checkpoint=CheckpointConfig(directory=tmp_path / "ckpt",
                                            every_rounds=3,
                                            crash_hook=crash_hook))
            return Simulator(hetero_cluster, SiaScheduler(),
                             jobs(4, scale=2.0), config)

        with pytest.raises(SimulatedCrash):
            build([LedgerStreamObserver(tmp_path / "ledger.jsonl", "sia")],
                  crash_hook=CrashAt(6)).run()
        state, _, _ = latest_valid_checkpoint(tmp_path / "ckpt")
        resumed = build([LedgerStreamObserver(tmp_path / "ledger.jsonl",
                                              "sia")]).run(resume_from=state)
        ledger, events = io.load_ledger(tmp_path / "ledger.jsonl")
        assert ledger.entries == \
            GoodputLedger.from_result(resumed).entries
        assert events == resumed.allocation_events()


# -- determinism contract ------------------------------------------------------

class TestDeterminism:
    def test_fully_observed_run_is_bit_identical(self, hetero_cluster,
                                                 tmp_path):
        """The tentpole's hard constraint: the full streaming + SLO stack
        must not change a single compared field of the simulation."""
        plain = simulate(hetero_cluster, SiaScheduler(), jobs(),
                         profiling_mode=ProfilingMode.ORACLE)
        observed = streamed_run(hetero_cluster, tmp_path)
        assert diff_results(plain, observed) == []


# -- Prometheus exposition -----------------------------------------------------

class TestPrometheus:
    def test_registry_renders_all_metric_types(self):
        registry = MetricsRegistry()
        registry.counter("rounds_planned").inc(3)
        registry.gauge("queue.depth").set(1.5)
        for v in (0.1, 0.2, 0.4):
            registry.histogram("solve_time_s").observe(v)
        text = prometheus_text(registry)
        assert "# TYPE rounds_planned counter" in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE solve_time_s summary" in text
        samples = parse_prometheus_text(text)
        assert samples["rounds_planned"] == 3
        assert samples["queue_depth"] == 1.5
        assert samples['solve_time_s{quantile="0.95"}'] == \
            pytest.approx(0.38)
        assert samples["solve_time_s_count"] == 3
        assert samples["solve_time_s_sum"] == pytest.approx(0.7)

    def test_flat_snapshot_renders_as_gauges(self):
        text = prometheus_text({"util.t4": 0.5, "2weird name": 1.0})
        samples = parse_prometheus_text(text)
        assert samples["util_t4"] == 0.5
        assert samples["_2weird_name"] == 1.0  # sanitized legal name

    @pytest.mark.parametrize("bad", [
        "metric 1 2 3",
        "1bad_name 2",
        "# NOPE foo bar",
        "# TYPE foo flavor",
        "no_value",
    ])
    def test_parser_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus_text("") == {}


# -- HTTP endpoint -------------------------------------------------------------

class TestMetricsHTTPServer:
    def test_endpoints_serve_live_state(self, hetero_cluster):
        registry = MetricsRegistry()
        slo = SLOEngine([SLORule(name="always", metric="rounds_planned",
                                 target=0.0, comparison="<=", window=4,
                                 error_budget=0.5, min_samples=1,
                                 cooldown=1000)])
        server = MetricsHTTPServer(registry, slo=slo)
        port = server.start()
        try:
            config = SimulatorConfig(
                profiling_mode=ProfilingMode.ORACLE, metrics=registry,
                observers=[SLOObserver(slo), server])
            result = Simulator(hetero_cluster, SiaScheduler(), jobs(),
                               config).run()

            def get(path):
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{path}") as resp:
                    return resp.status, resp.headers, resp.read().decode()

            status, headers, body = get("/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            samples = parse_prometheus_text(body)
            assert samples["rounds_planned"] == len(result.rounds)

            _, _, health = get("/healthz")
            state = json.loads(health)
            assert state["status"] == "finished"
            assert state["rounds"] == len(result.rounds)

            _, _, alerts_body = get("/alerts")
            alerts = json.loads(alerts_body)
            assert len(alerts) == len(slo.alerts)
            assert alerts[0]["rule"] == "always"

            with pytest.raises(urllib.error.HTTPError):
                get("/nope")
        finally:
            server.close()


# -- watch view ----------------------------------------------------------------

class TestWatchView:
    def test_prints_round_lines_alerts_and_summary(self, hetero_cluster):
        out = stdlib_io.StringIO()
        slo = SLOEngine([SLORule(name="always", metric="rounds_planned",
                                 target=0.0, comparison="<=", window=4,
                                 error_budget=0.5, min_samples=1,
                                 cooldown=1000)])
        result = simulate(hetero_cluster, SiaScheduler(), jobs(),
                          profiling_mode=ProfilingMode.ORACLE,
                          observers=[SLOObserver(slo),
                                     WatchView(out, slo=slo)])
        text = out.getvalue()
        lines = text.splitlines()
        round_lines = [ln for ln in lines if ln.startswith("r")]
        assert len(round_lines) == len(result.rounds)
        assert any("ALERT" in ln and "always" in ln for ln in lines)
        assert lines[-1].startswith(f"done: {len(result.rounds)} rounds")

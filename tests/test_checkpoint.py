"""Checkpoint format, atomic writes, and bit-identical resume."""

import pickle

import pytest

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.cluster import presets
from repro.jobs.job import make_job
from repro.schedulers.sia import SiaScheduler
from repro.sim import checkpoint as ckpt
from repro.sim.chaos import diff_results
from repro.sim.checkpoint import (CheckpointConfig, CheckpointCorruptError,
                                  CheckpointError, CheckpointState)
from repro.sim.engine import Simulator, SimulatorConfig
from repro.sim.faults import JobCrashModel, NodeCrashModel
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


def _jobs(n=4, scale=0.02):
    return [make_job(f"job-{i}", "resnet50" if i % 2 else "resnet18",
                     submit_time=i * 60.0, work_scale=scale)
            for i in range(n)]


def _config(**kw):
    base = dict(seed=3, obs_noise=0.05, rate_noise=0.05,
                fault_models=[NodeCrashModel(rate=1.0, seed=11),
                              JobCrashModel(rate=2.0, seed=12)],
                resilient=True)
    base.update(kw)
    return SimulatorConfig(**base)


def _sim(cluster, **kw):
    return Simulator(cluster, SiaScheduler(), _jobs(), _config(**kw))


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"hello world")
        assert path.read_bytes() == b"hello world"
        assert not path.with_name("out.bin.tmp").exists()

    def test_writes_text(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "héllo")
        assert path.read_text() == "héllo"

    @pytest.mark.parametrize("fatal_stage",
                             ["pre_write", "mid_write", "pre_rename"])
    def test_crash_before_rename_preserves_old_file(self, tmp_path,
                                                    fatal_stage):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"original")

        def hook(stage):
            if stage == fatal_stage:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write_bytes(path, b"replacement", crash_hook=hook)
        assert path.read_bytes() == b"original"
        assert not path.with_name("out.bin.tmp").exists()

    def test_crash_after_rename_keeps_new_file(self, tmp_path):
        path = tmp_path / "out.bin"

        def hook(stage):
            if stage == "post_rename":
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write_bytes(path, b"replacement", crash_hook=hook)
        assert path.read_bytes() == b"replacement"


class _TracerHolder:
    """Module-level so pickle can serialize it (stands in for a scheduler
    carrying tracer attributes)."""


class TestCheckpointFile:
    def _state(self, **kw):
        base = dict(round_index=7, now=420.0, arrival_idx=2, arrivals=[],
                    active={}, finished=[], result=None, execution=None,
                    fault_models=[], scheduler=None, metrics=None,
                    invariants=None)
        base.update(kw)
        return CheckpointState(**base)

    def test_round_trip(self, tmp_path):
        path = ckpt.checkpoint_path(tmp_path, 7)
        ckpt.write_checkpoint(self._state(), path)
        loaded = ckpt.read_checkpoint(path)
        assert loaded.round_index == 7
        assert loaded.now == 420.0
        assert loaded.arrival_idx == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            ckpt.read_checkpoint(tmp_path / "nope.ckpt")

    def test_corrupted_payload_detected(self, tmp_path):
        path = ckpt.checkpoint_path(tmp_path, 1)
        ckpt.write_checkpoint(self._state(round_index=1), path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            ckpt.read_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = ckpt.checkpoint_path(tmp_path, 1)
        ckpt.write_checkpoint(self._state(round_index=1), path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 10])
        with pytest.raises(CheckpointCorruptError):
            ckpt.read_checkpoint(path)

    def test_garbage_header_detected(self, tmp_path):
        path = tmp_path / "ckpt-00000001.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointCorruptError):
            ckpt.read_checkpoint(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = ckpt.checkpoint_path(tmp_path, 1)
        ckpt.write_checkpoint(self._state(round_index=1), path)
        raw = path.read_bytes()
        header, payload = raw.split(b"\n", 1)
        parts = header.split(b" ")
        parts[1] = b"v999"
        path.write_bytes(b" ".join(parts) + b"\n" + payload)
        with pytest.raises(CheckpointError) as err:
            ckpt.read_checkpoint(path)
        assert not isinstance(err.value, CheckpointCorruptError)

    def test_latest_valid_falls_back_past_corrupt(self, tmp_path):
        for i in (2, 4, 6):
            ckpt.write_checkpoint(self._state(round_index=i),
                                  ckpt.checkpoint_path(tmp_path, i))
        newest = ckpt.checkpoint_path(tmp_path, 6)
        newest.write_bytes(newest.read_bytes()[:40])
        state, path, skipped = ckpt.latest_valid_checkpoint(tmp_path)
        assert state.round_index == 4
        assert path.name == "ckpt-00000004.ckpt"
        assert [p.name for p in skipped] == ["ckpt-00000006.ckpt"]

    def test_latest_valid_empty_dir(self, tmp_path):
        with pytest.raises(CheckpointError):
            ckpt.latest_valid_checkpoint(tmp_path)

    def test_all_corrupt_raises(self, tmp_path):
        for i in (1, 2):
            path = ckpt.checkpoint_path(tmp_path, i)
            ckpt.write_checkpoint(self._state(round_index=i), path)
            path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            ckpt.latest_valid_checkpoint(tmp_path)

    def test_prune_keeps_newest(self, tmp_path):
        for i in range(1, 6):
            ckpt.write_checkpoint(self._state(round_index=i),
                                  ckpt.checkpoint_path(tmp_path, i))
        deleted = ckpt.prune_checkpoints(tmp_path, keep=2)
        remaining = [p.name for p in ckpt.list_checkpoints(tmp_path)]
        assert remaining == ["ckpt-00000004.ckpt", "ckpt-00000005.ckpt"]
        assert len(deleted) == 3

    def test_prune_keep_zero_keeps_all(self, tmp_path):
        for i in range(1, 4):
            ckpt.write_checkpoint(self._state(round_index=i),
                                  ckpt.checkpoint_path(tmp_path, i))
        assert ckpt.prune_checkpoints(tmp_path, keep=0) == []
        assert len(ckpt.list_checkpoints(tmp_path)) == 3

    def test_tracers_stripped_from_payload(self):
        holder = _TracerHolder()
        holder.tracer = Tracer()
        holder.tracer.instant("not-serialized")
        holder.null = NULL_TRACER
        payload = ckpt.dumps_state(self._state(scheduler=holder))
        restored = ckpt.loads_state(payload)
        assert restored.scheduler.tracer is NULL_TRACER
        assert restored.scheduler.null is NULL_TRACER

    def test_loads_rejects_non_state_payload(self):
        with pytest.raises(CheckpointCorruptError):
            ckpt.loads_state(pickle.dumps({"not": "a state"}))


class TestEngineCheckpointResume:
    def test_cadence_and_pruning(self, tmp_path, hetero_cluster):
        sim = _sim(hetero_cluster,
                   checkpoint=CheckpointConfig(directory=tmp_path,
                                               every_rounds=3, keep=2))
        result = sim.run()
        files = ckpt.list_checkpoints(tmp_path)
        assert len(files) == 2  # pruned down to keep=2
        assert result.rounds
        assert sim.metrics.snapshot().get("checkpoint.writes", 0) >= 2

    def test_resume_is_bit_identical(self, tmp_path, hetero_cluster):
        reference = _sim(hetero_cluster).run()

        sim = _sim(hetero_cluster,
                   checkpoint=CheckpointConfig(directory=tmp_path,
                                               every_rounds=4, keep=0))
        sim.run()
        state, path, skipped = ckpt.latest_valid_checkpoint(tmp_path)
        assert not skipped
        # Resume from a mid-run checkpoint on a *fresh* simulator.
        resumed = _sim(hetero_cluster).run(resume_from=path)
        assert diff_results(reference, resumed) == []

    def test_resume_from_directory_picks_newest(self, tmp_path,
                                                hetero_cluster):
        sim = _sim(hetero_cluster,
                   checkpoint=CheckpointConfig(directory=tmp_path,
                                               every_rounds=4, keep=0))
        reference = sim.run()
        newest = ckpt.list_checkpoints(tmp_path)[-1]
        expected = ckpt.read_checkpoint(newest).round_index
        fresh = _sim(hetero_cluster)
        resumed = fresh.run(resume_from=tmp_path)
        assert len(resumed.rounds) == len(reference.rounds)
        assert fresh.metrics.snapshot().get("checkpoint.restores") == 1
        assert expected <= len(resumed.rounds)

    def test_resume_refuses_different_cluster(self, tmp_path, hetero_cluster,
                                              tiny_cluster):
        sim = _sim(hetero_cluster,
                   checkpoint=CheckpointConfig(directory=tmp_path,
                                               every_rounds=2, keep=0))
        sim.run()
        other = Simulator(tiny_cluster, SiaScheduler(), _jobs(), _config())
        with pytest.raises(CheckpointError):
            other.run(resume_from=tmp_path)

    def test_save_checkpoint_requires_config(self, hetero_cluster):
        sim = _sim(hetero_cluster)
        with pytest.raises(CheckpointError):
            sim.save_checkpoint()

    def test_resumed_run_strips_and_reinjects_tracer(self, tmp_path,
                                                     hetero_cluster):
        sim = _sim(hetero_cluster, tracer=Tracer(),
                   checkpoint=CheckpointConfig(directory=tmp_path,
                                               every_rounds=3, keep=0))
        sim.run()
        tracer = Tracer()
        fresh = _sim(hetero_cluster, tracer=tracer)
        fresh.run(resume_from=tmp_path)
        # the restored scheduler talks to the new process's tracer
        assert fresh.scheduler.tracer is tracer
        assert any(s.name == "round" for s in tracer.spans)


class TestLedgerContinuity:
    """A resumed run's goodput ledger must be indistinguishable from the
    uninterrupted run's — the property the counterfactual diff aligner
    leans on when it rebuilds ledgers for both futures."""

    def test_ledger_identical_across_resume(self, tmp_path, hetero_cluster):
        from repro.obs.ledger import GoodputLedger

        reference = _sim(hetero_cluster).run()
        sim = _sim(hetero_cluster,
                   checkpoint=CheckpointConfig(directory=tmp_path,
                                               every_rounds=4, keep=0))
        sim.run()
        mid = ckpt.list_checkpoints(tmp_path)[1]
        assert 0 < ckpt.read_checkpoint(mid).round_index \
            < len(reference.rounds)
        resumed = _sim(hetero_cluster).run(resume_from=mid)

        ref_ledger = GoodputLedger.from_result(reference)
        res_ledger = GoodputLedger.from_result(resumed)
        assert ref_ledger.entries == res_ledger.entries
        assert ref_ledger.rounds() == res_ledger.rounds()
        for job_id in ref_ledger.job_ids():
            assert ref_ledger.for_job(job_id) == res_ledger.for_job(job_id)

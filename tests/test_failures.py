"""Tests for worker-failure injection and epoch-checkpoint recovery
(Section 3.5: recovery via per-epoch checkpoints)."""

import pytest

from repro.cluster import presets
from repro.jobs.job import make_job
from repro.schedulers import SiaScheduler
from repro.sim import Simulator, SimulatorConfig, simulate


def job(job_id="j1", model="resnet18", scale=0.2):
    return make_job(job_id, model, 0.0, work_scale=scale)


class TestFailureInjection:
    def test_no_failures_by_default(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [job()])
        assert result.node_failures == 0

    def test_failures_occur_at_high_rate(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [job()],
                          node_failure_rate=2.0, seed=0)
        assert result.node_failures > 0

    def test_jobs_survive_failures(self, hetero_cluster):
        """Jobs hit by failures lose progress but still complete."""
        jobs = [job(f"j{i}") for i in range(4)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs,
                          node_failure_rate=1.0, seed=1, max_hours=100)
        assert all(j.completed for j in result.jobs)

    def test_failures_slow_jobs_down(self, hetero_cluster):
        """Losing progress to the last epoch checkpoint costs time."""
        jobs = [job(f"j{i}", scale=0.4) for i in range(3)]
        clean = simulate(hetero_cluster, SiaScheduler(), jobs, max_hours=100)
        faulty = simulate(hetero_cluster, SiaScheduler(), jobs,
                          node_failure_rate=3.0, seed=2, max_hours=100)
        assert faulty.node_failures > 0
        clean_avg = sum(clean.jcts_hours()) / len(clean.jobs)
        faulty_avg = sum(faulty.jcts_hours()) / len(faulty.jobs)
        assert faulty_avg > clean_avg

    def test_failed_jobs_count_extra_restarts(self):
        """On a single-node cluster every failure hits the running job, so
        its restart count must exceed the clean run's scale-up ramp."""
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import NodeGroup
        cluster = Cluster.from_groups([NodeGroup("a100", 1, 8)])
        solo = [job("solo", scale=0.5)]
        clean = simulate(cluster, SiaScheduler(), solo, max_hours=100)
        faulty = simulate(cluster, SiaScheduler(), solo,
                          node_failure_rate=30.0, seed=2, max_hours=100)
        assert faulty.node_failures > 0
        assert faulty.jobs[0].num_restarts > clean.jobs[0].num_restarts

    def test_deterministic_given_seed(self, hetero_cluster):
        jobs = [job(f"j{i}") for i in range(3)]
        a = simulate(hetero_cluster, SiaScheduler(), jobs,
                     node_failure_rate=1.5, seed=9, max_hours=100)
        b = simulate(hetero_cluster, SiaScheduler(), jobs,
                     node_failure_rate=1.5, seed=9, max_hours=100)
        assert a.node_failures == b.node_failures
        assert [j.finish_time for j in a.jobs] == \
            [j.finish_time for j in b.jobs]

    def test_epoch_granularity_bounds_rollback(self, hetero_cluster):
        """With a single epoch, any failure wipes all progress; with many
        epochs the loss is bounded — so coarse checkpointing must be
        slower under the same failure schedule."""
        jobs = [job(f"j{i}", scale=0.4) for i in range(3)]
        fine = Simulator(hetero_cluster, SiaScheduler(), jobs,
                         SimulatorConfig(node_failure_rate=3.0, seed=4,
                                         epochs_per_job=50,
                                         max_hours=100)).run()
        coarse = Simulator(hetero_cluster, SiaScheduler(), jobs,
                           SimulatorConfig(node_failure_rate=3.0, seed=4,
                                           epochs_per_job=1,
                                           max_hours=100)).run()
        assert coarse.node_failures == fine.node_failures
        assert sum(coarse.jcts_hours()) >= sum(fine.jcts_hours())


class TestFailureEdgeCases:
    def test_tiny_cluster_total_failure_recovers(self, tiny_cluster):
        """Even when every node fails, the simulator keeps a node alive so
        scheduling can continue and the job eventually finishes."""
        result = simulate(tiny_cluster, SiaScheduler(),
                          [job(model="resnet18", scale=0.05)],
                          node_failure_rate=20.0, seed=3, max_hours=50)
        assert result.node_failures > 0
        assert result.jobs[0].completed

"""Tests for the assignment ILP: correctness of each backend and
MILP-vs-exact cross-checks on random instances."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ilp import AssignmentProblem, solve_assignment

NAN = math.nan


def problem(utilities, gpus, types, caps, forced=None) -> AssignmentProblem:
    return AssignmentProblem(utilities=np.array(utilities, dtype=float),
                             config_gpus=np.array(gpus),
                             config_types=list(types),
                             capacities=dict(caps),
                             forced=forced or {})


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            problem([[1.0, 2.0]], [1], ["t4"], {"t4": 4})

    def test_forced_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            problem([[1.0]], [1], ["t4"], {"t4": 4}, forced={0: 5})

    def test_forced_infeasible_rejected(self):
        with pytest.raises(ValueError):
            problem([[NAN]], [1], ["t4"], {"t4": 4}, forced={0: 0})


class TestPaperExample:
    """The Table 1 running example: two jobs, configurations
    (1,1,A),(1,2,A),(1,1,B),(1,2,B),(1,4,B); optimum is J1->(1,4,B),
    J2->(1,2,A)."""

    UTILITIES = [[1.0, 2.0, 1.0, 2.0, 3.0],
                 [2.0, 4.0, 1.0, 2.0, 3.0]]
    GPUS = [1, 2, 1, 2, 4]
    TYPES = ["A", "A", "B", "B", "B"]
    CAPS = {"A": 2, "B": 4}

    @pytest.mark.parametrize("backend", ["milp", "exact"])
    def test_boxed_solution(self, backend):
        p = problem(self.UTILITIES, self.GPUS, self.TYPES, self.CAPS)
        solution = solve_assignment(p, backend=backend)
        assert solution.assignment == {0: 4, 1: 1}
        assert solution.objective == pytest.approx(7.0)


class TestBackends:
    @pytest.mark.parametrize("backend", ["milp", "exact", "greedy"])
    def test_empty_feasible_set(self, backend):
        p = problem([[NAN, NAN]], [1, 2], ["t4", "t4"], {"t4": 4})
        solution = solve_assignment(p, backend=backend)
        assert solution.assignment == {}

    @pytest.mark.parametrize("backend", ["milp", "exact", "greedy"])
    def test_capacity_never_violated(self, backend):
        p = problem([[5.0, 9.0], [5.0, 9.0]], [2, 4], ["t4", "t4"], {"t4": 4})
        solution = solve_assignment(p, backend=backend)
        used = solution.gpus_used(p)
        assert used.get("t4", 0) <= 4

    @pytest.mark.parametrize("backend", ["milp", "exact", "greedy"])
    def test_at_most_one_config_per_job(self, backend):
        p = problem([[1.0, 2.0, 3.0]], [1, 1, 1], ["t4"] * 3, {"t4": 8})
        solution = solve_assignment(p, backend=backend)
        assert len(solution.assignment) <= 1

    @pytest.mark.parametrize("backend", ["milp", "exact"])
    def test_forced_assignment_honoured(self, backend):
        p = problem([[10.0, 1.0], [10.0, 1.0]], [4, 1], ["t4", "t4"],
                    {"t4": 4}, forced={1: 0})
        solution = solve_assignment(p, backend=backend)
        assert solution.assignment[1] == 0
        # Job 0 cannot also take the 4-GPU config.
        assert solution.assignment.get(0) != 0

    def test_greedy_forced_assignment(self):
        p = problem([[10.0, 1.0]], [4, 1], ["t4", "t4"], {"t4": 4},
                    forced={0: 1})
        solution = solve_assignment(p, backend="greedy")
        assert solution.assignment[0] == 1

    def test_unknown_backend(self):
        p = problem([[1.0]], [1], ["t4"], {"t4": 1})
        with pytest.raises(ValueError):
            solve_assignment(p, backend="quantum")

    def test_negative_utility_left_unassigned(self):
        p = problem([[-5.0]], [1], ["t4"], {"t4": 4})
        for backend in ("milp", "exact", "greedy"):
            solution = solve_assignment(p, backend=backend)
            assert solution.assignment == {}

    def test_solve_time_recorded(self):
        p = problem([[1.0]], [1], ["t4"], {"t4": 1})
        assert solve_assignment(p).solve_time >= 0


@st.composite
def random_instances(draw):
    n_jobs = draw(st.integers(1, 5))
    n_configs = draw(st.integers(1, 6))
    types = [draw(st.sampled_from(["A", "B"])) for _ in range(n_configs)]
    gpus = [draw(st.sampled_from([1, 2, 4])) for _ in range(n_configs)]
    caps = {"A": draw(st.integers(0, 8)), "B": draw(st.integers(0, 8))}
    utilities = []
    for _ in range(n_jobs):
        row = []
        for _ in range(n_configs):
            if draw(st.booleans()):
                row.append(draw(st.floats(0.1, 10.0)))
            else:
                row.append(NAN)
        utilities.append(row)
    return problem(utilities, gpus, types, caps)


class TestCrossCheck:
    @settings(max_examples=60, deadline=None)
    @given(instance=random_instances())
    def test_milp_matches_exact_optimum(self, instance):
        milp = solve_assignment(instance, backend="milp")
        exact = solve_assignment(instance, backend="exact")
        assert milp.objective == pytest.approx(exact.objective, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(instance=random_instances())
    def test_greedy_never_beats_optimum(self, instance):
        greedy = solve_assignment(instance, backend="greedy")
        exact = solve_assignment(instance, backend="exact")
        assert greedy.objective <= exact.objective + 1e-9

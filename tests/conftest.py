"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import presets
from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeGroup


@pytest.fixture
def hetero_cluster() -> Cluster:
    """The paper's 64-GPU heterogeneous testbed."""
    return presets.heterogeneous()


@pytest.fixture
def homo_cluster() -> Cluster:
    """The paper's 64-GPU homogeneous (16x t4) testbed."""
    return presets.homogeneous()


@pytest.fixture
def tiny_cluster() -> Cluster:
    """The running example of Section 3.4: 1 node x 2 A GPUs + 1 node x 4 B
    GPUs (we use quad for A and t4 for B)."""
    return Cluster.from_groups([
        NodeGroup("quad", num_nodes=1, gpus_per_node=2),
        NodeGroup("t4", num_nodes=1, gpus_per_node=4),
    ])

"""Tests for the statistical-efficiency model."""

import pytest
from hypothesis import given, strategies as st

from repro.perf.efficiency import EfficiencyModel, EfficiencyParams


@pytest.fixture
def model() -> EfficiencyModel:
    return EfficiencyModel(EfficiencyParams(grad_noise_scale=100.0,
                                            init_batch_size=32))


class TestEfficiency:
    def test_unity_at_reference_batch(self, model):
        assert model.efficiency(32) == pytest.approx(1.0)

    def test_decreases_with_batch(self, model):
        assert model.efficiency(64) < model.efficiency(32)
        assert model.efficiency(1024) < model.efficiency(64)

    def test_above_unity_below_reference(self, model):
        assert model.efficiency(16) > 1.0

    def test_large_noise_scale_tolerates_large_batches(self):
        tolerant = EfficiencyModel(EfficiencyParams(8000.0, 32))
        strict = EfficiencyModel(EfficiencyParams(50.0, 32))
        assert tolerant.efficiency(1024) > strict.efficiency(1024)

    def test_rejects_nonpositive_batch(self, model):
        with pytest.raises(ValueError):
            model.efficiency(0)

    @given(m=st.floats(min_value=1, max_value=1e6))
    def test_always_positive(self, m):
        model = EfficiencyModel(EfficiencyParams(100.0, 32))
        assert model.efficiency(m) > 0

    @given(m1=st.integers(1, 10_000), m2=st.integers(1, 10_000))
    def test_monotone_decreasing(self, m1, m2):
        model = EfficiencyModel(EfficiencyParams(100.0, 32))
        lo, hi = sorted((m1, m2))
        assert model.efficiency(lo) >= model.efficiency(hi)


class TestOnlineUpdate:
    def test_update_moves_toward_observation(self, model):
        model.update_noise_scale(200.0, smoothing=0.5)
        assert model.params.grad_noise_scale == pytest.approx(150.0)

    def test_high_smoothing_dampens_outliers(self, model):
        before = model.params.grad_noise_scale
        model.update_noise_scale(1e6, smoothing=0.99)
        moved = model.params.grad_noise_scale - before
        # The outlier contributes only its (1 - smoothing) share.
        assert moved == pytest.approx(0.01 * (1e6 - before), rel=1e-6)

    def test_rejects_nonpositive_observation(self, model):
        with pytest.raises(ValueError):
            model.update_noise_scale(0.0)

    def test_rejects_bad_smoothing(self, model):
        with pytest.raises(ValueError):
            model.update_noise_scale(10.0, smoothing=1.5)


class TestParams:
    def test_rejects_nonpositive_noise_scale(self):
        with pytest.raises(ValueError):
            EfficiencyParams(0.0, 32)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            EfficiencyParams(10.0, 0)

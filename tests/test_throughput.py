"""Tests for the throughput model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.perf.throughput import (GAMMA, ThroughputModel, ThroughputParams,
                                   perfect_scaling_estimate,
                                   validate_params_finite)

PARAMS = ThroughputParams(alpha_c=0.01, beta_c=0.001,
                          alpha_r=0.005, beta_r=0.0005,
                          alpha_n=0.05, beta_n=0.005)


@pytest.fixture
def model() -> ThroughputModel:
    return ThroughputModel(PARAMS)


class TestGradTime:
    def test_linear_in_batch(self, model):
        assert model.grad_time(100) == pytest.approx(0.01 + 0.1)

    def test_rejects_nonpositive_batch(self, model):
        with pytest.raises(ValueError):
            model.grad_time(0)


class TestSyncTime:
    def test_single_gpu_no_sync(self, model):
        assert model.sync_time(1, 1) == 0.0

    def test_two_gpus_one_node_base_cost(self, model):
        assert model.sync_time(1, 2) == pytest.approx(PARAMS.alpha_r)

    def test_intra_grows_with_gpus(self, model):
        assert model.sync_time(1, 8) > model.sync_time(1, 4) \
            > model.sync_time(1, 2)

    def test_inter_node_more_expensive(self, model):
        assert model.sync_time(2, 8) > model.sync_time(1, 8)

    def test_invalid_shape(self, model):
        with pytest.raises(ValueError):
            model.sync_time(4, 2)  # more nodes than GPUs


class TestIterTime:
    def test_single_gpu_equals_grad_time(self, model):
        assert model.iter_time(64, 1, 1) == pytest.approx(model.grad_time(64))

    def test_gamma_norm_below_sum(self, model):
        """Overlap: combined time is less than grad + sync but more than
        either alone."""
        grad = model.grad_time(64)
        sync = model.sync_time(2, 8)
        combined = model.iter_time(64, 8, 2)
        assert max(grad, sync) < combined < grad + sync

    def test_accumulation_adds_grad_steps(self, model):
        base = model.iter_time(64, 4, 1, accum_steps=1)
        double = model.iter_time(64, 4, 1, accum_steps=2)
        assert double == pytest.approx(base + model.grad_time(64))

    def test_rejects_zero_accum(self, model):
        with pytest.raises(ValueError):
            model.iter_time(64, 4, 1, accum_steps=0)


class TestThroughput:
    def test_scaling_is_sublinear_with_sync_costs(self, model):
        """More GPUs help, but never superlinearly at fixed local batch."""
        x1 = model.throughput(64, 1, 1)
        x4 = model.throughput(64, 4, 1)
        x8 = model.throughput(64, 8, 2)
        assert x1 < x4 < x8 < 8 * x1

    def test_bigger_local_batch_higher_throughput(self, model):
        assert model.throughput(128, 4, 1) > model.throughput(32, 4, 1)

    @given(k=st.integers(1, 32), m=st.integers(1, 512),
           s=st.integers(1, 8))
    def test_positive_and_finite(self, k, m, s):
        model = ThroughputModel(PARAMS)
        n = max(1, k // 8)
        value = model.throughput(m, k, n, s)
        assert value > 0 and math.isfinite(value)

    @given(k=st.integers(2, 32))
    def test_monotone_in_gpus_single_node(self, k):
        model = ThroughputModel(PARAMS)
        assert model.throughput(64, k, 1) >= model.throughput(64, k - 1, 1)


class TestParams:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ThroughputParams(-1, 0, 0, 0, 0, 0)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError):
            ThroughputParams(0.1, 0.1, 0, 0, 0, 0, gamma=0.5)

    def test_scaled(self):
        scaled = PARAMS.scaled(2.0)
        assert scaled.alpha_c == pytest.approx(2 * PARAMS.alpha_c)
        assert scaled.beta_n == pytest.approx(2 * PARAMS.beta_n)
        assert scaled.gamma == PARAMS.gamma

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PARAMS.scaled(0.0)

    def test_validate_finite(self):
        assert validate_params_finite(PARAMS)


class TestPerfectScaling:
    def test_linear(self):
        assert perfect_scaling_estimate(10.0, 4) == 40.0

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            perfect_scaling_estimate(10.0, 0)


def test_default_gamma_reasonable():
    assert 1.0 <= GAMMA <= 3.0

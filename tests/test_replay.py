"""Counterfactual replay: fork semantics, identity oracle, RunDiff artifacts."""

import json

import pytest

from repro import io
from repro.analysis.explain import explain_job
from repro.analysis.replay import (ReplayOverrides, build_run_spec,
                                   fork_state, replay, simulator_from_spec)
from repro.analysis.report import build_report
from repro.cluster import presets
from repro.core import fork as forklib
from repro.obs.diff import (AllocDelta, DivergencePoint, MetricDelta,
                            RoundDelta, RunDiff, aligned_ledger_deltas,
                            compare_runs, fault_recovery_seconds)
from repro.obs.export import run_diff_markdown, write_run_diff_jsonl
from repro.obs.ledger import GoodputLedger
from repro.sim.chaos import diff_results
from repro.sim.checkpoint import CheckpointConfig
from repro.workloads.generators import trace_by_name


def _spec(scheduler="sia", **kw):
    trace = trace_by_name("philly", seed=3, num_jobs=6,
                          work_scale_factor=0.05)
    defaults = dict(scheduler=scheduler, cluster="heterogeneous",
                    jobs=trace.jobs, seed=3,
                    scheduler_options={"round_duration": 60.0})
    defaults.update(kw)
    return build_run_spec(**defaults)


@pytest.fixture(scope="module")
def base_spec():
    return _spec()


@pytest.fixture(scope="module")
def base_result(base_spec):
    result = simulator_from_spec(base_spec).run()
    result.run_spec = base_spec
    return result


class TestClusterDelta:
    def test_parse_addition(self):
        (delta,) = forklib.parse_cluster_delta("+64xA100")
        assert delta == forklib.ClusterDelta("a100", 64)

    def test_parse_removal_and_per_node(self):
        deltas = forklib.parse_cluster_delta("-8xt4,+16xa100:4")
        assert deltas == [forklib.ClusterDelta("t4", -8),
                          forklib.ClusterDelta("a100", 16, gpus_per_node=4)]

    @pytest.mark.parametrize("bad", ["", "64xa100", "+0xa100", "+8x",
                                     "-8xt4:2", "+axa100"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            forklib.parse_cluster_delta(bad)

    def test_apply_addition_appends_fresh_ids(self, hetero_cluster):
        deltas = forklib.parse_cluster_delta("+16xa100")
        grown, removed = forklib.apply_cluster_delta(hetero_cluster, deltas)
        assert not removed
        assert grown.capacities()["a100"] == \
            hetero_cluster.capacities()["a100"] + 16
        old_ids = {n.node_id for n in hetero_cluster.nodes}
        new_ids = {n.node_id for n in grown.nodes} - old_ids
        assert new_ids and min(new_ids) > max(old_ids)

    def test_apply_removal_drops_whole_nodes(self, hetero_cluster):
        size = hetero_cluster.max_node_size("t4")
        deltas = forklib.parse_cluster_delta(f"-{size}xt4")
        shrunk, removed = forklib.apply_cluster_delta(hetero_cluster, deltas)
        assert shrunk.capacities()["t4"] == \
            hetero_cluster.capacities()["t4"] - size
        assert removed and all(n.node_id not in removed
                               for n in shrunk.nodes)

    def test_apply_rejects_unknown_type(self, hetero_cluster):
        with pytest.raises(ValueError, match="not in the base cluster"):
            forklib.apply_cluster_delta(
                hetero_cluster, forklib.parse_cluster_delta("+8xh100"))

    def test_apply_rejects_unreachable_removal(self, hetero_cluster):
        with pytest.raises(ValueError, match="whole nodes"):
            forklib.apply_cluster_delta(
                hetero_cluster, forklib.parse_cluster_delta("-3xt4"))


class TestIdentity:
    def test_zero_override_fork_is_bit_identical(self, base_result):
        for at_round in (0, 3, len(base_result.rounds) - 1):
            outcome = replay(base_result, at_round, ReplayOverrides())
            assert outcome.diff.identical, \
                (at_round, outcome.diff.mismatches[:5])
            assert not outcome.diff.round_deltas
            assert outcome.diff.divergence is None

    def test_identity_survives_json_round_trip(self, base_result, tmp_path):
        path = tmp_path / "run.json"
        io.save_result(base_result, path)
        loaded = io.load_result(path)
        assert loaded.run_spec == base_result.run_spec
        outcome = replay(loaded, 4)
        assert outcome.diff.identical, outcome.diff.mismatches[:5]

    def test_identity_from_checkpoint_dir(self, base_spec, base_result,
                                          tmp_path):
        sim = simulator_from_spec(base_spec)
        sim.config.checkpoint = CheckpointConfig(directory=tmp_path,
                                                 every_rounds=3, keep=0)
        sim.run()
        outcome = replay(base_result, 7, checkpoint_dir=tmp_path)
        assert outcome.diff.identical, outcome.diff.mismatches[:5]

    def test_fork_past_end_rejected(self, base_result):
        with pytest.raises(ValueError, match="past the base run"):
            replay(base_result, len(base_result.rounds))

    def test_missing_run_spec_rejected(self, base_spec):
        bare = simulator_from_spec(base_spec).run()
        assert bare.run_spec is None
        with pytest.raises(ValueError, match="run_spec"):
            replay(bare, 2)


class TestOverrides:
    def test_policy_swap_diverges_and_diffs(self, base_result):
        outcome = replay(base_result, 4, ReplayOverrides(policy="gavel"))
        diff = outcome.diff
        assert outcome.fork.scheduler_name == "gavel"
        assert diff.fork_scheduler == "gavel"
        assert not diff.identical
        assert diff.divergence is not None
        assert diff.divergence.round_index >= 4
        assert diff.round_deltas
        kinds = {c.kind for rnd in diff.round_deltas for c in rnd.changes}
        assert kinds  # classified with the audit taxonomy
        # Shared history stays shared: no delta before the fork round.
        assert all(r.round_index >= 4 for r in diff.round_deltas)
        names = [m.name for m in diff.metrics]
        for required in ("avg_jct_hours", "p99_jct_hours",
                         "p99_queue_wait_hours", "avg_round_goodput",
                         "migrations", "preemptions",
                         "fault_recovery_hours"):
            assert required in names

    def test_policy_swap_keeps_round_cadence(self, base_result):
        # gavel's own default cadence is 360s; the fork must inherit the
        # base run's 60s quantum.  (Absolute times can still drift once the
        # futures diverge — idle-skip jumps depend on the schedule.)
        outcome = replay(base_result, 4, ReplayOverrides(policy="gavel"))
        base_times = [r.time for r in base_result.rounds]
        fork_times = [r.time for r in outcome.fork.rounds]
        assert fork_times[:4] == base_times[:4]
        steps = {b - a for a, b in zip(fork_times, fork_times[1:])}
        assert all(step % 60.0 == 0 for step in steps)
        assert 60.0 in steps

    def test_pollux_swap_rejected(self, base_result):
        with pytest.raises(ValueError, match="pollux"):
            replay(base_result, 4, ReplayOverrides(policy="pollux"))

    def test_solver_backend_rebind(self, base_result):
        outcome = replay(base_result, 4,
                         ReplayOverrides(solver_backend="greedy"))
        backends = {r.backend for r in outcome.fork.rounds[4:]}
        assert backends <= {"greedy"}
        # prefix rounds keep the recorded milp plans
        assert {r.backend for r in outcome.fork.rounds[:4]} <= {"milp"}

    def test_solver_backend_requires_sia(self):
        spec = _spec(scheduler="fifo", scheduler_options={})
        result = simulator_from_spec(spec).run()
        result.run_spec = spec
        with pytest.raises(ValueError, match="only apply to sia"):
            replay(result, 2, ReplayOverrides(solver_backend="greedy"))

    def test_cluster_delta_grows_capacity(self, base_result):
        outcome = replay(base_result, 4,
                         ReplayOverrides(cluster_delta="+16xa100"))
        assert "a100" in outcome.fork.cluster_description
        # a bigger cluster is a real counterfactual, not a crash
        assert len(outcome.fork.rounds) >= 4

    def test_fault_seed_reseeds_models(self):
        spec = _spec(fault_options={"job_crash_rate": 3.0})
        result = simulator_from_spec(spec).run()
        result.run_spec = spec
        identity = replay(result, 3)
        assert identity.diff.identical, identity.diff.mismatches[:5]
        other = replay(result, 3, ReplayOverrides(fault_seed=99))
        assert other.diff.overrides == {"fault_seed": "99"}

    def test_health_toggle(self, base_result):
        outcome = replay(base_result, 4, ReplayOverrides(health="on"))
        assert outcome.diff.overrides == {"health": "on"}
        with pytest.raises(ValueError, match="health override"):
            ReplayOverrides(health="maybe")


class TestRunDiffArtifact:
    @pytest.fixture(scope="class")
    def diff(self, base_result):
        return replay(base_result, 4,
                      ReplayOverrides(policy="gavel")).diff

    def test_io_round_trip_is_exact(self, diff, tmp_path):
        path = tmp_path / "diff.json"
        io.save_run_diff(diff, path)
        loaded = io.load_run_diff(path)
        assert loaded == diff
        assert loaded.to_dict() == diff.to_dict()

    def test_jsonl_export(self, diff, tmp_path):
        path = tmp_path / "diff.jsonl"
        write_run_diff_jsonl(diff, path)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "run_diff"
        assert lines[0]["fork_round"] == 4
        kinds = {line["kind"] for line in lines}
        assert {"round_delta", "metric", "job_delta"} <= kinds

    def test_markdown_rendering(self, diff):
        text = run_diff_markdown(diff)
        assert "Counterfactual diff" in text
        assert "`policy=gavel`" in text
        assert "Divergence at round" in text

    def test_report_counterfactual_section(self, base_result, diff):
        report = build_report([base_result], diffs=[diff])
        assert "Counterfactual diff" in report
        assert "| avg_jct_hours |" in report

    def test_job_changes_lookup(self, diff):
        jobs = {c.job_id for rnd in diff.round_deltas
                for c in rnd.changes}
        job_id = sorted(jobs)[0]
        changes = diff.job_changes(job_id)
        assert changes
        assert all(c.job_id == job_id for c in changes.values())


class TestDiffAligner:
    def test_compare_identical_runs_is_empty(self, base_result):
        deltas, divergence = compare_runs(base_result, base_result)
        assert deltas == [] and divergence is None

    def test_one_sided_tail_rounds(self, base_result, base_spec):
        truncated = simulator_from_spec(base_spec)
        state = truncated.run_to_round(len(base_result.rounds) - 2)
        deltas, divergence = compare_runs(base_result, state.result)
        assert divergence is not None
        assert any(d.only_in == "base" for d in deltas)

    def test_aligned_ledger_deltas_share_axis(self, base_result):
        ledger = GoodputLedger.from_result(base_result)
        rows = aligned_ledger_deltas(ledger, ledger)
        assert [r[0] for r in rows] == ledger.rounds()
        assert all(b == f for _, b, f in rows)

    def test_fault_recovery_seconds(self):
        from repro.obs.audit import (CAUSE_FAULT, PREEMPT,
                                     RESTART_AFTER_FAULT, AllocationEvent)
        events = [
            AllocationEvent(kind=PREEMPT, time=100.0, job_id="a",
                            cause=CAUSE_FAULT),
            AllocationEvent(kind=RESTART_AFTER_FAULT, time=160.0,
                            job_id="a"),
            AllocationEvent(kind=PREEMPT, time=200.0, job_id="b"),
        ]
        assert fault_recovery_seconds(events) == 60.0

    def test_dict_round_trips(self):
        delta = RoundDelta(round_index=3, time=180.0, changes=(
            AllocDelta(job_id="a", base=("t4", 2), fork=None,
                       kind="preempt"),), only_in="")
        assert RoundDelta.from_dict(delta.to_dict()) == delta
        point = DivergencePoint(round_index=3, time=180.0, jobs=("a",),
                                reason="because")
        assert DivergencePoint.from_dict(point.to_dict()) == point
        metric = MetricDelta(name="x", base=1.0, fork=2.5)
        assert MetricDelta.from_dict(metric.to_dict()) == metric
        assert metric.delta == 1.5


class TestExplainCounterfactual:
    def test_timeline_gains_fork_column(self, base_result):
        diff = replay(base_result, 4, ReplayOverrides(policy="gavel")).diff
        jobs = {c.job_id for rnd in diff.round_deltas for c in rnd.changes}
        job_id = sorted(jobs)[0]
        text = explain_job(base_result, job_id, counterfactual=diff)
        assert "counterfactual: forked at round 4 under gavel" in text
        assert "fork" in text.splitlines()[7] or "fork" in text
        assert "diverged at round" in text

    def test_identity_annotation(self, base_result):
        diff = replay(base_result, 4).diff
        job_id = base_result.jobs[0].job_id
        text = explain_job(base_result, job_id, counterfactual=diff)
        assert "reproduced this run exactly" in text


class TestCLI:
    def test_replay_end_to_end(self, tmp_path):
        from repro.cli import main
        run = tmp_path / "run.json"
        diff_path = tmp_path / "diff.json"
        assert main(["run", "--scheduler", "sia", "--trace-name", "philly",
                     "--num-jobs", "5", "--work-scale", "0.05",
                     "--seed", "3", "--round-duration", "60",
                     "--out", str(run)]) == 0
        assert main(["replay", str(run), "--at-round", "3"]) == 0
        assert main(["replay", str(run), "--at-round", "3",
                     "--policy", "gavel",
                     "--diff-out", str(diff_path)]) == 0
        diff = io.load_run_diff(diff_path)
        assert diff.fork_scheduler == "gavel"
        job_id = io.load_result(run).jobs[0].job_id
        assert main(["explain", str(run), "--job", job_id,
                     "--counterfactual", str(diff_path)]) == 0
        report = tmp_path / "report.md"
        assert main(["report", str(run), "--diff", str(diff_path),
                     "--out", str(report)]) == 0
        assert "Counterfactual diff" in report.read_text()

    def test_replay_unknown_policy_exits_cleanly(self, tmp_path):
        from repro.cli import main
        run = tmp_path / "run.json"
        main(["run", "--trace-name", "philly", "--num-jobs", "4",
              "--work-scale", "0.05", "--round-duration", "60",
              "--out", str(run)])
        with pytest.raises(SystemExit):
            main(["replay", str(run), "--at-round", "2",
                  "--policy", "nope"])


class TestExplainNeverAdmitted:
    def test_clean_header_for_never_admitted_job(self):
        # A job submitted past the simulation cap gets a JobRecord but no
        # allocation rounds; explain must say so instead of printing a
        # garbled empty table.
        from repro.jobs.job import make_job
        jobs = [make_job("early", "resnet18", submit_time=0.0,
                         work_scale=0.02),
                make_job("too-late", "resnet18", submit_time=9e5,
                         work_scale=0.02)]
        spec = build_run_spec(scheduler="sia", cluster="heterogeneous",
                              jobs=jobs, seed=3, max_hours=1.0,
                              scheduler_options={"round_duration": 60.0})
        result = simulator_from_spec(spec).run()
        record = result.job("too-late")
        assert record.first_start is None
        text = explain_job(result, "too-late")
        assert "queued, never admitted" in text
        assert "no per-round decision records" not in text

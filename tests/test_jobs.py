"""Tests for the job abstraction."""

import math

import pytest

from repro.core.types import AdaptivityMode
from repro.jobs.hybrid import HybridSpec
from repro.jobs.job import Job, isolated_runtime, make_job
from repro.perf import profiles


class TestJobValidation:
    def test_basic_construction(self):
        job = make_job("j1", "bert", 100.0)
        assert job.submit_time == 100.0
        assert job.adaptivity is AdaptivityMode.ADAPTIVE
        assert job.target_samples > 0

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            make_job("j1", "vgg", 0.0)

    def test_rigid_requires_gpu_count(self):
        with pytest.raises(ValueError):
            Job("j1", "bert", 0.0, target_samples=1e5,
                adaptivity=AdaptivityMode.RIGID, fixed_batch_size=48)

    def test_strong_scaling_requires_batch(self):
        with pytest.raises(ValueError):
            Job("j1", "bert", 0.0, target_samples=1e5,
                adaptivity=AdaptivityMode.STRONG_SCALING)

    def test_make_job_defaults_pinned_params(self):
        job = make_job("j1", "bert", 0.0, adaptivity=AdaptivityMode.RIGID)
        assert job.fixed_batch_size == profiles.model_profile("bert").min_bsz
        assert job.fixed_num_gpus == 1

    def test_invalid_gpu_limits(self):
        with pytest.raises(ValueError):
            Job("j1", "bert", 0.0, target_samples=1e5, min_gpus=8, max_gpus=4)

    def test_work_scale(self):
        small = make_job("a", "bert", 0.0, work_scale=0.5)
        big = make_job("b", "bert", 0.0, work_scale=2.0)
        assert big.target_samples == pytest.approx(4 * small.target_samples)

    def test_work_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            make_job("j1", "bert", 0.0, work_scale=0.0)


class TestEffectiveLimits:
    def test_rigid_pins_min_and_max(self):
        job = make_job("j1", "bert", 0.0, adaptivity=AdaptivityMode.RIGID,
                       fixed_num_gpus=4, fixed_batch_size=48)
        assert job.effective_min_gpus == 4
        assert job.effective_max_gpus == 4

    def test_hybrid_min_is_smallest_stage_count(self):
        job = make_job("j1", "gpt-2.8b", 0.0, hybrid=HybridSpec(), max_gpus=64)
        assert job.effective_min_gpus == 2  # a100 partitioning

    def test_allowed_types_default_any(self):
        assert make_job("j1", "bert", 0.0).allowed_gpu_types is None

    def test_hybrid_allowed_types_are_profiled_ones(self):
        job = make_job("j1", "gpt-2.8b", 0.0, hybrid=HybridSpec(), max_gpus=64)
        assert set(job.allowed_gpu_types) == {"a100", "rtx"}

    def test_fixed_type(self):
        job = make_job("j1", "bert", 0.0)
        job.fixed_gpu_type = "rtx"
        assert job.allowed_gpu_types == ("rtx",)

    def test_constraints_reflect_profile(self):
        job = make_job("j1", "bert", 0.0)
        constraints = job.constraints()
        assert constraints.min_bsz == 12
        assert constraints.max_bsz == 384

    def test_restart_delay_from_profile(self):
        assert make_job("j1", "resnet18", 0.0).restart_delay == 25.0
        assert make_job("j2", "gpt-2.8b", 0.0,
                        hybrid=HybridSpec()).restart_delay == 250.0


class TestIsolatedRuntime:
    def test_positive_and_finite(self):
        job = make_job("j1", "bert", 0.0)
        runtime = isolated_runtime(job, "a100", 4)
        assert 0 < runtime < math.inf

    def test_more_gpus_faster(self):
        job = make_job("j1", "bert", 0.0)
        assert isolated_runtime(job, "a100", 8) < \
            isolated_runtime(job, "a100", 1)

    def test_faster_type_faster(self):
        job = make_job("j1", "bert", 0.0)
        assert isolated_runtime(job, "a100", 1) < \
            isolated_runtime(job, "t4", 1)

    def test_infinite_when_model_does_not_fit(self):
        job = make_job("j1", "gpt-2.8b", 0.0, hybrid=HybridSpec())
        assert math.isinf(isolated_runtime(job, "t4", 4))

    def test_respects_fixed_batch(self):
        free = make_job("a", "bert", 0.0)
        pinned = make_job("b", "bert", 0.0,
                          adaptivity=AdaptivityMode.STRONG_SCALING,
                          fixed_batch_size=12)
        # A pinned tiny batch cannot beat the optimized batch at 8 GPUs.
        assert isolated_runtime(pinned, "a100", 8) >= \
            isolated_runtime(free, "a100", 8)

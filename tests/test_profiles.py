"""Tests for the ground-truth performance catalog — including the paper's
qualitative heterogeneity facts (Figures 2 and 6)."""

import pytest

from repro.perf import profiles
from repro.perf.throughput import ThroughputModel


def one_gpu_goodput(model_name: str, gpu_type: str) -> float:
    profile = profiles.model_profile(model_name)
    cap = profiles.max_local_bsz(model_name, gpu_type)
    if cap < 1:
        return 0.0
    model = profiles.true_goodput_model(model_name, gpu_type)
    return model.goodput(1, 1, max_local_bsz=cap,
                         max_total_bsz=profile.max_bsz,
                         min_total_bsz=profile.min_bsz)


class TestZoo:
    def test_all_table2_models_present(self):
        expected = {"resnet18", "bert", "deepspeech2", "yolov3",
                    "resnet50", "gpt-2.8b"}
        assert set(profiles.MODEL_ZOO) == expected

    def test_categories_cover_all_buckets(self):
        assert set(profiles.CATEGORY_MODELS) == {"S", "M", "L", "XL", "XXL"}

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="resnet18"):
            profiles.model_profile("alexnet")

    def test_restart_delays_in_paper_range(self):
        """Section 3.4: restart costs are 25-250 s for Table 2 models."""
        for profile in profiles.MODEL_ZOO.values():
            assert 25.0 <= profile.restart_delay_s <= 250.0

    def test_batch_ranges_match_table2(self):
        assert profiles.model_profile("resnet18").min_bsz == 128
        assert profiles.model_profile("resnet18").max_bsz == 4096
        assert profiles.model_profile("bert").min_bsz == 12
        assert profiles.model_profile("bert").max_bsz == 384

    def test_optimizers_match_table2(self):
        assert profiles.model_profile("bert").optimizer == "adamw"
        assert profiles.model_profile("resnet50").optimizer == "sgd"
        assert profiles.model_profile("gpt-2.8b").optimizer == "adamw"


class TestHeterogeneityShape:
    """The qualitative (job, GPU type) preferences the paper reports."""

    def test_bert_strongly_prefers_a100(self):
        """Figure 6: Sia allocates BERT almost exclusively to a100."""
        a100 = one_gpu_goodput("bert", "a100")
        for other in ("t4", "rtx", "quad"):
            assert a100 > 2.5 * one_gpu_goodput("bert", other)

    def test_deepspeech2_rtx_is_close_to_a100(self):
        """Figure 6: DeepSpeech2 goes to rtx, freeing a100 for BERT —
        so rtx must be a near-substitute for a100 on DeepSpeech2."""
        rtx = one_gpu_goodput("deepspeech2", "rtx")
        a100 = one_gpu_goodput("deepspeech2", "a100")
        assert rtx > 0.6 * a100
        # ... while for BERT rtx is a poor substitute.
        assert one_gpu_goodput("bert", "rtx") < \
            0.4 * one_gpu_goodput("bert", "a100")

    def test_every_model_fastest_on_a100(self):
        for model in ("resnet18", "bert", "deepspeech2", "yolov3", "resnet50"):
            rates = {t: one_gpu_goodput(model, t)
                     for t in ("t4", "rtx", "a100", "quad")}
            assert max(rates, key=rates.get) == "a100"

    def test_gpt_fits_no_single_gpu(self):
        """The 2.8B model motivates pipeline parallelism: it exceeds every
        GPU type's memory."""
        for gpu_type in ("t4", "rtx", "a100", "quad"):
            assert profiles.max_local_bsz("gpt-2.8b", gpu_type) == 0

    def test_memory_limits_ordered_by_vram(self):
        for model in ("bert", "yolov3"):
            assert profiles.max_local_bsz(model, "a100") > \
                profiles.max_local_bsz(model, "quad") > \
                profiles.max_local_bsz(model, "rtx")

    def test_rtx_scales_worse_across_nodes_than_a100(self):
        """Distinct compute-to-network ratios (Section 1): 50 Gb/s Ethernet
        vs 1.6 Tb/s InfiniBand means rtx loses more to multi-node sync."""
        for model in ("bert", "yolov3"):
            rtx = ThroughputModel(profiles.true_throughput_params(model, "rtx"))
            a100 = ThroughputModel(profiles.true_throughput_params(model, "a100"))
            rtx_ratio = rtx.sync_time(2, 16) / rtx.grad_time(16)
            a100_ratio = a100.sync_time(2, 16) / a100.grad_time(16)
            assert rtx_ratio > 3 * a100_ratio


class TestWorkTotals:
    def test_reference_goodput_positive(self):
        for model in profiles.MODEL_ZOO:
            assert profiles.reference_goodput(model) > 0

    def test_target_samples_scale_with_category(self):
        """Job work totals follow the S < M < L < XL GPU-time ordering when
        normalized by processing speed (target_t4_hours encodes this)."""
        hours = {m: profiles.model_profile(m).target_t4_hours
                 for m in profiles.MODEL_ZOO}
        assert hours["resnet18"] < hours["bert"] < hours["yolov3"] \
            < hours["resnet50"]

    def test_category_hours_in_buckets(self):
        """Section 4.1 buckets: S 0-1 h, M 1-10 h, L 10-100 h, XL >100 h."""
        buckets = {"S": (0, 1), "M": (1, 10), "L": (10, 100),
                   "XL": (100, 1e9), "XXL": (100, 1e9)}
        for profile in profiles.MODEL_ZOO.values():
            lo, hi = buckets[profile.category]
            assert lo < profile.target_t4_hours <= hi


class TestTrueParams:
    def test_params_cached(self):
        a = profiles.true_throughput_params("bert", "a100")
        b = profiles.true_throughput_params("bert", "a100")
        assert a is b

    def test_faster_gpu_lower_compute_cost(self):
        t4 = profiles.true_throughput_params("resnet50", "t4")
        a100 = profiles.true_throughput_params("resnet50", "a100")
        assert a100.beta_c < t4.beta_c
        assert a100.alpha_c < t4.alpha_c

    def test_sync_costs_reflect_bandwidth(self):
        rtx = profiles.true_throughput_params("bert", "rtx")
        a100 = profiles.true_throughput_params("bert", "a100")
        assert rtx.alpha_n > a100.alpha_n

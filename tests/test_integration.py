"""Cross-module integration tests: the qualitative claims of the paper that
must hold even at reduced scale.

These are slower than unit tests (full simulations) but still seconds each.
"""

import pytest

from repro.analysis import ExperimentScale, run_once
from repro.cluster import presets
from repro.core.policy import SiaPolicyParams
from repro.core.types import AdaptivityMode, ProfilingMode
from repro.jobs.hybrid import HybridSpec
from repro.jobs.job import make_job
from repro.metrics import summarize
from repro.schedulers import (FIFOScheduler, GavelScheduler, PolluxScheduler,
                              SiaScheduler)
from repro.sim import simulate
from repro.workloads import helios_trace, philly_trace, tuned_jobs

SCALE = ExperimentScale(work=0.2, window=0.15, jobs=0.25, max_hours=100.0)


@pytest.fixture(scope="module")
def loaded_comparison():
    """One moderately-loaded heterogeneous run of Sia, Pollux, Gavel."""
    cluster = presets.heterogeneous()
    trace = helios_trace(seed=11, num_jobs=50, work_scale_factor=0.25,
                         window_hours=1.0)
    rigid = tuned_jobs(trace.jobs, cluster, seed=11)
    results = {
        "sia": simulate(cluster, SiaScheduler(), trace.jobs, max_hours=100),
        "pollux": simulate(cluster, PolluxScheduler(), trace.jobs,
                           max_hours=100),
        "gavel": simulate(cluster, GavelScheduler(), rigid, max_hours=100),
    }
    return cluster, trace, {k: summarize(v) for k, v in results.items()}, results


class TestHeadlineOrdering:
    def test_sia_beats_pollux_and_gavel_on_avg_jct(self, loaded_comparison):
        """Table 3's headline: Sia < Pollux < Gavel on average JCT."""
        _, _, summaries, _ = loaded_comparison
        assert summaries["sia"].avg_jct_hours < summaries["pollux"].avg_jct_hours
        assert summaries["pollux"].avg_jct_hours < summaries["gavel"].avg_jct_hours

    def test_sia_uses_fewer_gpu_hours(self, loaded_comparison):
        _, _, summaries, _ = loaded_comparison
        assert summaries["sia"].avg_gpu_hours_per_job < \
            summaries["gavel"].avg_gpu_hours_per_job

    def test_pollux_restarts_more_than_sia(self, loaded_comparison):
        """Table 3: Pollux's 1-GPU-step optimization restarts jobs roughly
        twice as often as Sia."""
        _, _, summaries, _ = loaded_comparison
        assert summaries["pollux"].avg_restarts > summaries["sia"].avg_restarts

    def test_all_jobs_complete(self, loaded_comparison):
        _, _, summaries, _ = loaded_comparison
        for summary in summaries.values():
            assert summary.completed_jobs == summary.num_jobs


class TestSiaBeatsFifo:
    def test_under_contention(self):
        cluster = presets.heterogeneous()
        trace = philly_trace(seed=5, num_jobs=30, work_scale_factor=0.15,
                             window_hours=0.5)
        rigid = tuned_jobs(trace.jobs, cluster, seed=5)
        sia = summarize(simulate(cluster, SiaScheduler(), trace.jobs,
                                 max_hours=100))
        fifo = summarize(simulate(cluster, FIFOScheduler(), rigid,
                                  max_hours=100))
        assert sia.avg_jct_hours < fifo.avg_jct_hours


class TestHomogeneousParity:
    def test_sia_matches_pollux_on_homogeneous_cluster(self):
        """Table 4: on a homogeneous cluster Sia and Pollux are equals
        (within a modest margin at reduced scale)."""
        cluster = presets.homogeneous()
        trace = philly_trace(seed=7, num_jobs=16, work_scale_factor=1.0,
                             window_hours=1.5)
        sia = summarize(simulate(cluster, SiaScheduler(), trace.jobs,
                                 max_hours=100))
        pollux = summarize(simulate(cluster, PolluxScheduler(), trace.jobs,
                                    max_hours=100))
        assert sia.avg_jct_hours <= 1.3 * pollux.avg_jct_hours


class TestProfilingModes:
    def test_bootstrap_beats_no_prof(self):
        """Section 5.7: Bootstrap ~30% better than No-Prof; Oracle best."""
        cluster = presets.heterogeneous()
        trace = helios_trace(seed=13, num_jobs=24, work_scale_factor=0.15,
                             window_hours=0.75)
        jcts = {}
        for mode in (ProfilingMode.ORACLE, ProfilingMode.BOOTSTRAP,
                     ProfilingMode.NO_PROF):
            result = simulate(cluster, SiaScheduler(), trace.jobs,
                              profiling_mode=mode, max_hours=100)
            jcts[mode] = summarize(result).avg_jct_hours
        assert jcts[ProfilingMode.ORACLE] <= jcts[ProfilingMode.BOOTSTRAP] * 1.15
        assert jcts[ProfilingMode.BOOTSTRAP] <= jcts[ProfilingMode.NO_PROF]


class TestHybridElasticity:
    def test_sia_scales_hybrid_job_with_congestion(self):
        """Section 5.3: Sia scales a GPT job down when load rises and back
        up when it clears."""
        cluster = presets.heterogeneous()
        gpt = make_job("gpt", "gpt-2.8b", 0.0, hybrid=HybridSpec(),
                       max_gpus=16, work_scale=0.05)
        # A burst of BERT jobs arrives mid-run, competing for a100s.
        burst = [make_job(f"b{i}", "bert", 1800.0, work_scale=0.3)
                 for i in range(16)]
        result = simulate(cluster, SiaScheduler(), [gpt, *burst],
                          max_hours=100)
        timeline = result.allocation_timeline("gpt")
        counts = [count for _, _, count in timeline if count > 0]
        assert counts, "GPT job never ran"
        assert max(counts) > min(counts), \
            "GPT allocation never changed despite congestion"
        assert result.job("gpt").completed


class TestAdaptivityRestriction:
    def test_adaptive_beats_strong_scaling_beats_rigid(self):
        """Figure 11's trend: more adaptivity, better average JCT."""
        from repro.workloads import with_adaptivity_mix
        cluster = presets.heterogeneous()
        trace = philly_trace(seed=9, num_jobs=24, work_scale_factor=0.6,
                             window_hours=1.0)
        adaptive = summarize(simulate(
            cluster, SiaScheduler(), trace.jobs, max_hours=100))
        rigid_jobs = with_adaptivity_mix(trace.jobs, rigid_fraction=1.0,
                                         seed=9)
        rigid = summarize(simulate(
            cluster, SiaScheduler(), rigid_jobs, max_hours=100))
        assert adaptive.avg_jct_hours < rigid.avg_jct_hours


class TestSolverAblation:
    def test_greedy_solver_works_but_ilp_no_worse(self):
        cluster = presets.heterogeneous()
        trace = philly_trace(seed=3, num_jobs=16, work_scale_factor=0.1,
                             window_hours=0.5)
        ilp = summarize(simulate(
            cluster, SiaScheduler(), trace.jobs, max_hours=100))
        greedy = summarize(simulate(
            cluster, SiaScheduler(SiaPolicyParams(solver="greedy")),
            trace.jobs, max_hours=100))
        assert ilp.completed_jobs == greedy.completed_jobs
        assert ilp.avg_jct_hours <= 1.25 * greedy.avg_jct_hours

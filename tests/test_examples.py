"""Smoke tests: the example scripts must run end-to-end.

Only the fast examples run here; the slower ones (scheduler comparison,
scalability) are exercised implicitly by the benchmark harness, which runs
the same code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Cluster-level metrics" in out
    assert "sia" in out


def test_hybrid_parallel():
    out = run_example("hybrid_parallel.py")
    assert "throughput scaling" in out
    assert "GPT finished" in out


def test_mixed_workloads():
    out = run_example("mixed_workloads.py")
    assert "Mixed workload under Sia" in out
    assert "serve-bert" in out

"""The vectorized goodput pipeline must be *exactly* equivalent to the
scalar reference path: same batch plans, same goodput numbers, same policy
decisions, same end-to-end simulated schedules.

The vectorized optimizer ranks the candidate grid with numpy and then
re-evaluates the shortlist of maxima through the scalar path (see
``repro.perf.goodput``), so equality here is bitwise, not approximate.
"""

from __future__ import annotations

import pytest

from repro.cluster import presets
from repro.core.policy import SiaPolicy, SiaPolicyParams
from repro.core.types import Configuration, ProfilingMode
from repro.jobs.hybrid import HybridSpec
from repro.jobs.inference import LatencySLOEstimator
from repro.jobs.job import make_job
from repro.perf import profiles
from repro.perf.estimator import JobConstraints, JobPerfEstimator
from repro.perf.fitting import Observation
from repro.perf.throughput import ThroughputModel
from repro.schedulers import SiaScheduler
from repro.schedulers.base import JobView
from repro.sim.engine import simulate
from repro.workloads import helios_trace

TYPES = ("t4", "rtx", "a100")

#: representative allocation shapes across all three types.
CONFIGS = [Configuration(n, k, t)
           for t in TYPES
           for n, k in ((1, 1), (1, 2), (1, 4), (1, 8), (2, 16), (4, 32))]


def make_pair(mode, model="bert", *, fixed_total_bsz=None):
    """A (scalar, vectorized) estimator pair fed identical evidence."""
    profile = profiles.model_profile(model)
    constraints = JobConstraints(min_bsz=profile.min_bsz,
                                 max_bsz=profile.max_bsz,
                                 fixed_total_bsz=fixed_total_bsz)
    pair = tuple(JobPerfEstimator(model, constraints, TYPES, mode,
                                  vectorized=vec)
                 for vec in (False, True))
    for est in pair:
        est.profile_initial()
    return pair


def true_observation(model, gpu_type, n, k, m, s=1) -> Observation:
    true_model = ThroughputModel(
        profiles.true_throughput_params(model, gpu_type))
    return Observation(gpu_type=gpu_type, num_nodes=n, num_gpus=k,
                       local_bsz=m, accum_steps=s,
                       iter_time=true_model.iter_time(m, k, n, s))


def feed(estimators, model):
    for est in estimators:
        for k in (2, 4):
            est.add_observation(true_observation(model, "rtx", 1, k, 16))


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("mode", list(ProfilingMode))
    @pytest.mark.parametrize("model", ["bert", "resnet50", "yolov3"])
    def test_best_plan_identical(self, mode, model):
        scalar, vectorized = make_pair(mode, model)
        feed((scalar, vectorized), model)
        for config in CONFIGS:
            a = scalar.best_plan(config)
            b = vectorized.best_plan(config)
            assert a == b, f"{mode} {model} {config}: {a} != {b}"

    @pytest.mark.parametrize("mode", list(ProfilingMode))
    def test_rigid_fixed_total_identical(self, mode):
        scalar, vectorized = make_pair(mode, "bert", fixed_total_bsz=64)
        for config in CONFIGS:
            assert scalar.best_plan(config) == vectorized.best_plan(config)

    def test_goodput_batch_matches_scalar_goodput(self):
        scalar, vectorized = make_pair(ProfilingMode.BOOTSTRAP)
        feed((scalar, vectorized), "bert")
        values = vectorized.goodput_batch(CONFIGS)
        for config, value in zip(CONFIGS, values):
            assert float(value) == scalar.goodput(config)

    def test_hybrid_goodput_batch_matches_scalar(self):
        from repro.jobs.hybrid import HybridPerfEstimator
        est = HybridPerfEstimator("gpt-2.8b", HybridSpec())
        values = est.goodput_batch(CONFIGS)
        for config, value in zip(CONFIGS, values):
            assert float(value) == est.goodput(config)

    def test_latency_slo_goodput_batch_matches_scalar(self):
        est = LatencySLOEstimator("bert", 0.05, TYPES)
        values = est.goodput_batch(CONFIGS)
        for config, value in zip(CONFIGS, values):
            assert float(value) == est.goodput(config)


class TestPolicyEquivalence:
    def make_views(self, cluster, vectorized: bool, n_jobs=12):
        trace = helios_trace(seed=11, num_jobs=n_jobs)
        views = []
        for job in trace.jobs:
            profile = job.profile
            constraints = JobConstraints(min_bsz=profile.min_bsz,
                                         max_bsz=profile.max_bsz)
            est = JobPerfEstimator(job.model_name, constraints,
                                   cluster.gpu_types,
                                   ProfilingMode.BOOTSTRAP,
                                   vectorized=vectorized)
            est.profile_initial()
            views.append(JobView(job=job, estimator=est,
                                 current_config=None, age=0.0,
                                 num_restarts=0, progress=0.0))
        return views

    def test_decide_identical_assignments(self):
        cluster = presets.heterogeneous()
        decisions = []
        for vectorized in (False, True):
            policy = SiaPolicy(SiaPolicyParams(vectorized=vectorized))
            views = self.make_views(cluster, vectorized)
            decisions.append(policy.decide(views, cluster, 0.0))
        scalar, batched = decisions
        assert scalar.assignments == batched.assignments
        assert scalar.objective == pytest.approx(batched.objective)
        assert scalar.estimates == batched.estimates

    def test_simulation_round_by_round_identical(self, monkeypatch):
        """Seeded end-to-end runs produce the same allocation log whether
        every layer runs the scalar or the vectorized path."""
        import repro.perf.estimator as est_mod

        cluster = presets.heterogeneous()
        logs = []
        for vectorized in (False, True):
            monkeypatch.setattr(est_mod, "DEFAULT_VECTORIZED", vectorized)
            jobs = [make_job(f"j{i}", model, float(i * 120),
                             work_scale=0.05)
                    for i, model in enumerate(
                        ["bert", "resnet50", "yolov3", "deepspeech2",
                         "bert", "resnet18"])]
            scheduler = SiaScheduler(SiaPolicyParams(vectorized=vectorized))
            result = simulate(cluster, scheduler, jobs, seed=3)
            logs.append([r.allocations for r in result.rounds])
        assert logs[0] == logs[1]


class TestConfigCacheSignature:
    def test_structurally_equal_clusters_share_cache(self):
        policy = SiaPolicy()
        a = presets.heterogeneous()
        b = presets.heterogeneous()
        assert a is not b
        configs = policy.configurations(a, max_gpus=64)
        assert policy.configurations(b, max_gpus=64) is configs

    def test_different_structure_misses(self):
        policy = SiaPolicy()
        small = presets.heterogeneous()
        large = small.scaled(2)
        first = policy.configurations(small, max_gpus=64)
        second = policy.configurations(large, max_gpus=64)
        assert first is not second
        assert len(second) > len(first)

    def test_max_gpus_partitions_cache(self):
        policy = SiaPolicy()
        cluster = presets.heterogeneous()
        wide = policy.configurations(cluster, max_gpus=64)
        narrow = policy.configurations(cluster, max_gpus=4)
        assert max(c.num_gpus for c in narrow) <= 4
        assert len(wide) > len(narrow)
        # Both keys stay cached side by side.
        assert policy.configurations(cluster, max_gpus=64) is wide
        assert policy.configurations(cluster, max_gpus=4) is narrow

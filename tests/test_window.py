"""Tests for repro.obs.window: O(1)-per-round online aggregates.

The correctness bar is the offline reference: at every step of a seeded
series, a RollingWindow's quantiles/extrema/sum must equal a from-scratch
recompute (numpy over the same trailing slice), and an EMA must equal the
closed-form fold.  Window-boundary and NaN edges get explicit cases.
"""

import random

import numpy as np
import pytest

from repro.obs.metrics import interpolated_quantile
from repro.obs.window import EMA, RollingRate, RollingWindow


def seeded_series(n=400, seed=7):
    rng = random.Random(seed)
    return [rng.lognormvariate(0.0, 1.5) for _ in range(n)]


class TestRollingWindowAgainstRecompute:
    @pytest.mark.parametrize("size", [1, 2, 7, 50])
    def test_quantiles_match_numpy_at_every_step(self, size):
        window = RollingWindow(size)
        series = seeded_series(120)
        for i, value in enumerate(series):
            window.push(value)
            tail = np.asarray(series[max(0, i + 1 - size):i + 1])
            for q in (0.0, 0.5, 0.95, 0.99, 1.0):
                assert window.quantile(q) == pytest.approx(
                    float(np.quantile(tail, q, method="linear")),
                    rel=1e-12), f"step {i} q={q}"

    def test_sum_mean_extrema_match_recompute(self):
        window = RollingWindow(16)
        series = seeded_series(200, seed=11)
        for i, value in enumerate(series):
            window.push(value)
            tail = series[max(0, i - 15):i + 1]
            assert window.sum == pytest.approx(sum(tail))
            assert window.mean == pytest.approx(sum(tail) / len(tail))
            assert window.min == min(tail)
            assert window.max == max(tail)
            assert len(window) == len(tail)

    def test_values_returns_arrival_order(self):
        window = RollingWindow(3)
        for v in (5.0, 1.0, 4.0, 2.0):
            window.push(v)
        assert window.values() == [1.0, 4.0, 2.0]

    def test_matches_post_hoc_histogram_quantile(self):
        # The shared-interpolation contract: an online rolling quantile
        # over a full window equals Histogram.quantile over those values.
        from repro.obs.metrics import Histogram
        series = seeded_series(30, seed=3)
        window = RollingWindow(30)
        hist = Histogram("t")
        for v in series:
            window.push(v)
            hist.observe(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert window.quantile(q) == hist.quantile(q)


class TestWindowBoundaries:
    def test_eviction_at_exact_capacity(self):
        window = RollingWindow(3)
        for v in (1.0, 2.0, 3.0):
            window.push(v)
        assert window.full
        window.push(10.0)  # evicts 1.0
        assert len(window) == 3
        assert window.min == 2.0 and window.max == 10.0
        assert window.sum == pytest.approx(15.0)

    def test_duplicate_values_evict_one_copy(self):
        window = RollingWindow(2)
        window.push(5.0)
        window.push(5.0)
        window.push(1.0)  # evicts one 5.0, not both
        assert sorted(window.values()) == [1.0, 5.0]
        assert window.sum == pytest.approx(6.0)

    def test_size_one_window_tracks_last_value(self):
        window = RollingWindow(1)
        for v in (9.0, 2.0, 7.0):
            window.push(v)
            assert window.quantile(0.5) == v
            assert window.min == window.max == v

    def test_empty_window_statistics(self):
        window = RollingWindow(5)
        assert len(window) == 0 and not window.full
        assert window.mean == 0.0 and window.sum == 0.0
        assert window.quantile(0.5) == 0.0  # documented empty-input value

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            RollingWindow(0)

    def test_quantile_range_validated(self):
        window = RollingWindow(4)
        window.push(1.0)
        with pytest.raises(ValueError):
            window.quantile(1.5)
        with pytest.raises(ValueError):
            window.quantile(-0.1)


class TestNaNDefense:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_rejected_and_counted(self, bad):
        window = RollingWindow(4)
        window.push(1.0)
        window.push(bad)
        window.push(2.0)
        assert window.nan_count == 1
        assert len(window) == 2
        assert window.quantile(1.0) == 2.0  # never poisoned by the NaN

    def test_ema_skips_non_finite(self):
        ema = EMA(alpha=0.5)
        ema.push(4.0)
        ema.push(float("nan"))
        ema.push(8.0)
        assert ema.nan_count == 1
        assert ema.count == 2
        assert ema.value == pytest.approx(6.0)


class TestEMA:
    def test_first_sample_seeds_the_average(self):
        ema = EMA(alpha=0.1)
        assert ema.value is None
        ema.push(3.0)
        assert ema.value == 3.0

    def test_matches_closed_form_fold(self):
        alpha = 0.3
        ema = EMA(alpha=alpha)
        series = seeded_series(50, seed=5)
        expected = series[0]
        ema.push(series[0])
        for v in series[1:]:
            ema.push(v)
            expected = alpha * v + (1 - alpha) * expected
            assert ema.value == pytest.approx(expected, rel=1e-12)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EMA(alpha=0.0)
        with pytest.raises(ValueError):
            EMA(alpha=1.5)


class TestRollingRate:
    def test_rate_over_partial_and_full_window(self):
        rate = RollingRate(4)
        assert rate.rate == 0.0
        rate.push(True)
        assert rate.rate == 1.0
        rate.push(False)
        assert rate.rate == 0.5
        for _ in range(4):
            rate.push(True)
        assert len(rate) == 4
        assert rate.rate == 1.0  # the early False rolled out

    def test_eviction_decrements_true_count(self):
        rate = RollingRate(2)
        rate.push(True)
        rate.push(True)
        rate.push(False)
        assert rate.count == 1
        assert rate.rate == 0.5

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            RollingRate(0)


class TestInterpolatedQuantile:
    def test_matches_numpy_linear_on_random_series(self):
        rng = random.Random(13)
        values = sorted(rng.uniform(-5, 5) for _ in range(37))
        for q in (0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0):
            assert interpolated_quantile(values, q) == pytest.approx(
                float(np.quantile(np.asarray(values), q, method="linear")),
                rel=1e-12)

    def test_single_element(self):
        assert interpolated_quantile([42.0], 0.95) == 42.0

    def test_empty_reports_zero(self):
        assert interpolated_quantile([], 0.5) == 0.0

"""Tests for hybrid-parallel (PMP x DP) jobs (Section 5.3)."""

import pytest

from repro.core.types import Configuration
from repro.jobs.hybrid import HybridPerfEstimator, HybridPerfModel, HybridSpec


@pytest.fixture
def spec() -> HybridSpec:
    return HybridSpec()  # 2 stages on a100, 8 on rtx, 48 x 1 micro-batches


@pytest.fixture
def perf(spec) -> HybridPerfModel:
    return HybridPerfModel("gpt-2.8b", spec)


class TestSpec:
    def test_defaults_match_paper(self, spec):
        assert spec.stages_per_type == {"a100": 2, "rtx": 8}
        assert spec.num_microbatches == 48
        assert spec.replica_batch_size == 48

    def test_replica_counting(self, spec):
        assert spec.num_replicas(Configuration(1, 4, "a100")) == 2
        assert spec.num_replicas(Configuration(1, 8, "rtx")) == 1
        assert spec.num_replicas(Configuration(1, 3, "a100")) is None
        assert spec.num_replicas(Configuration(1, 4, "t4")) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridSpec(stages_per_type={})
        with pytest.raises(ValueError):
            HybridSpec(stages_per_type={"a100": 0})
        with pytest.raises(ValueError):
            HybridSpec(micro_batch_size=0)


class TestPerfModel:
    def test_pipeline_bubble(self, perf, spec):
        """GPipe: iteration spans (num_micro + P - 1) stage times."""
        iter_a100 = perf.iter_time("a100", 1, 1)
        from repro.perf import profiles
        params = profiles.true_throughput_params("gpt-2.8b", "a100")
        micro = params.alpha_c + params.beta_c * spec.micro_batch_size
        expected = (48 + 2 - 1) * micro / 2
        assert iter_a100 == pytest.approx(expected)

    def test_dp_adds_sync_cost(self, perf):
        single = perf.iter_time("a100", 1, 1)
        double = perf.iter_time("a100", 2, 1)
        assert double > single

    def test_throughput_scales_nearly_linearly(self, perf):
        """Section 5.3: compute dominates communication for this model, so
        throughput grows almost linearly with replica count."""
        x1 = perf.throughput("a100", 1, 1)
        x4 = perf.throughput("a100", 4, 2)
        assert 3.5 * x1 < x4 <= 4.0 * x1

    def test_unknown_type_raises(self, perf):
        with pytest.raises(ValueError):
            perf.iter_time("t4", 1, 1)

    def test_invalid_replicas(self, perf):
        with pytest.raises(ValueError):
            perf.iter_time("a100", 0, 1)


class TestEstimator:
    @pytest.fixture
    def estimator(self, spec) -> HybridPerfEstimator:
        return HybridPerfEstimator("gpt-2.8b", spec)

    def test_goodput_zero_for_invalid_configs(self, estimator):
        assert estimator.goodput(Configuration(1, 3, "a100")) == 0.0
        assert estimator.goodput(Configuration(1, 4, "t4")) == 0.0

    def test_goodput_positive_for_valid_configs(self, estimator):
        assert estimator.goodput(Configuration(1, 2, "a100")) > 0
        assert estimator.goodput(Configuration(1, 8, "rtx")) > 0

    def test_more_replicas_more_goodput(self, estimator):
        one = estimator.goodput(Configuration(1, 2, "a100"))
        four = estimator.goodput(Configuration(1, 8, "a100"))
        assert four > 2 * one

    def test_max_bsz_caps_scale_out(self, estimator):
        """GPT max_bsz=384 and replica batch 48 => at most 8 replicas."""
        too_big = Configuration(3, 24, "a100")  # 12 replicas
        assert estimator.goodput(too_big) == 0.0

    def test_profile_initial_charges_warmup(self, estimator):
        cost = estimator.profile_initial()
        assert cost > 0
        assert estimator.profiling_gpu_seconds == cost

    def test_protocol_noops(self, estimator):
        estimator.add_observation(None)  # ignored
        before = estimator.efficiency_model.params.grad_noise_scale
        estimator.update_gradient_stats(before)  # converged, no-op-ish
        assert estimator.best_plan(Configuration(1, 2, "a100")) is None

    def test_a100_preferred_over_rtx_per_gpu(self, estimator):
        """Per GPU, the a100 partitioning is far more efficient."""
        a100 = estimator.goodput(Configuration(1, 8, "a100")) / 8
        rtx = estimator.goodput(Configuration(1, 8, "rtx")) / 8
        assert a100 > rtx

"""Tests for online throughput-model fitting: fitted parameters must recover
synthetic ground truth from the measurements the simulator produces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.fitting import (Observation, fit_compute_params,
                                fit_sync_params, fit_throughput_params,
                                invert_sync_time)
from repro.perf.throughput import ThroughputModel, ThroughputParams

TRUE = ThroughputParams(alpha_c=0.02, beta_c=0.003,
                        alpha_r=0.015, beta_r=0.002,
                        alpha_n=0.09, beta_n=0.01)
TRUE_MODEL = ThroughputModel(TRUE)


def obs(gpu_type="t4", n=1, k=1, m=32, s=1) -> Observation:
    return Observation(gpu_type=gpu_type, num_nodes=n, num_gpus=k,
                       local_bsz=m, accum_steps=s,
                       iter_time=TRUE_MODEL.iter_time(m, k, n, s))


class TestObservation:
    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            Observation("t4", 1, 1, 32, 1, 0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Observation("t4", 4, 2, 32, 1, 1.0)

    def test_rejects_bad_plan(self):
        with pytest.raises(ValueError):
            Observation("t4", 1, 1, 0, 1, 1.0)


class TestComputeFit:
    def test_recovers_linear_params(self):
        observations = [obs(m=m) for m in (8, 16, 32, 64, 128)]
        alpha, beta = fit_compute_params(observations)
        assert alpha == pytest.approx(TRUE.alpha_c, rel=1e-6)
        assert beta == pytest.approx(TRUE.beta_c, rel=1e-6)

    def test_single_point_heuristic_split(self):
        alpha, beta = fit_compute_params([obs(m=100)])
        total = TRUE_MODEL.grad_time(100)
        assert alpha + beta * 100 == pytest.approx(total)
        assert alpha >= 0 and beta >= 0

    def test_accumulation_normalized_out(self):
        observations = [obs(m=m, s=4) for m in (16, 64)]
        alpha, beta = fit_compute_params(observations)
        assert alpha == pytest.approx(TRUE.alpha_c, rel=1e-6)
        assert beta == pytest.approx(TRUE.beta_c, rel=1e-6)

    def test_falls_back_to_smallest_gpu_count(self):
        """Without 1-GPU data (Pollux can start multi-GPU), the fit uses the
        smallest count seen, yielding a conservative (larger) estimate."""
        observations = [obs(k=4, m=m) for m in (16, 64)]
        alpha, beta = fit_compute_params(observations)
        assert alpha + beta * 16 >= TRUE_MODEL.grad_time(16)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_compute_params([])


class TestSyncInversion:
    def test_roundtrip(self):
        grad = TRUE_MODEL.grad_time(32)
        sync = TRUE_MODEL.sync_time(2, 8)
        iter_time = TRUE_MODEL.iter_time(32, 8, 2)
        assert invert_sync_time(iter_time, grad, 1) == pytest.approx(sync)

    def test_roundtrip_with_accumulation(self):
        grad = TRUE_MODEL.grad_time(32)
        sync = TRUE_MODEL.sync_time(2, 8)
        iter_time = TRUE_MODEL.iter_time(32, 8, 2, accum_steps=4)
        assert invert_sync_time(iter_time, grad, 4) == pytest.approx(sync)

    def test_no_negative_sync(self):
        assert invert_sync_time(0.01, 0.05, 1) == 0.0


class TestSyncFit:
    def test_recovers_from_two_counts(self):
        points = [(k, TRUE_MODEL.sync_time(1, k)) for k in (2, 4, 8)]
        alpha, beta = fit_sync_params(points)
        assert alpha == pytest.approx(TRUE.alpha_r, rel=1e-6)
        assert beta == pytest.approx(TRUE.beta_r, rel=1e-6)

    def test_single_count_heuristic(self):
        alpha, beta = fit_sync_params([(4, 0.02)])
        assert alpha == pytest.approx(0.02)
        assert beta > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_sync_params([])


class TestFullFit:
    def test_exact_recovery_with_rich_data(self):
        observations = (
            [obs(m=m) for m in (8, 32, 128)]
            + [obs(k=k, m=32) for k in (2, 4, 8)]
            + [obs(n=2, k=k, m=32) for k in (8, 16)]
        )
        fit = fit_throughput_params(observations)
        assert fit.has_single_gpu and fit.has_intra_node and fit.has_inter_node
        for attr in ("alpha_c", "beta_c", "alpha_r", "beta_r",
                     "alpha_n", "beta_n"):
            assert getattr(fit.params, attr) == pytest.approx(
                getattr(TRUE, attr), rel=1e-5), attr

    def test_prediction_accuracy_on_unseen_config(self):
        observations = [obs(m=m) for m in (8, 32, 128)] + \
            [obs(k=k, m=32) for k in (2, 4)]
        fit = fit_throughput_params(observations)
        fitted = ThroughputModel(fit.params)
        # Predict an unseen single-node count.
        assert fitted.iter_time(32, 8, 1) == pytest.approx(
            TRUE_MODEL.iter_time(32, 8, 1), rel=0.02)

    def test_missing_inter_node_extrapolated_pessimistically(self):
        observations = [obs(m=32), obs(k=4, m=32)]
        fit = fit_throughput_params(observations)
        assert not fit.has_inter_node
        assert fit.params.alpha_n >= fit.params.alpha_r

    def test_missing_intra_node_derived_from_inter(self):
        observations = [obs(m=32), obs(n=2, k=8, m=32)]
        fit = fit_throughput_params(observations)
        assert fit.has_inter_node and not fit.has_intra_node
        assert fit.params.alpha_r <= fit.params.alpha_n

    def test_only_single_gpu_data_no_multi_flags(self):
        fit = fit_throughput_params([obs(m=32)])
        assert fit.has_single_gpu
        assert not fit.has_multi_gpu

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_throughput_params([])

    @settings(max_examples=30, deadline=None)
    @given(ms=st.lists(st.integers(1, 256), min_size=2, max_size=6,
                       unique=True))
    def test_fit_never_produces_negative_params(self, ms):
        observations = [obs(m=m) for m in ms]
        fit = fit_throughput_params(observations)
        assert fit.params.alpha_c >= 0
        assert fit.params.beta_c >= 0

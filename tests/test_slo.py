"""Tests for the SLO engine: rule parsing, burn-rate alerting semantics,
causal context, and end-to-end firing on fault-heavy simulations."""

import json

import pytest

from repro.core.health import HealthConfig
from repro.core.types import ProfilingMode
from repro.jobs.job import make_job
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (Alert, SLOEngine, SLORule, alert_summary,
                           default_rules, evaluate_result, parse_rules)
from repro.obs.stream import SLOObserver
from repro.schedulers import SiaScheduler
from repro.sim import (GrayFailureModel, PlacementFailureModel, Simulator,
                       SimulatorConfig, simulate)
from repro.sim.telemetry import RoundRecord


def jobs(n=3, scale=0.4):
    return [make_job(f"j{i}", "resnet18", 0.0, work_scale=scale)
            for i in range(n)]


def record(index, *, metrics=None, solve_time=0.01, degraded=False,
           **kwargs):
    return RoundRecord(time=60.0 * index, active_jobs=1, running_jobs=1,
                       solve_time=solve_time, degraded=degraded,
                       metrics=metrics or {}, **kwargs)


def feed(engine, records, dt=60.0):
    """Run every record through the engine; returns all fired alerts."""
    fired = []
    for index, rnd in enumerate(records):
        fired.extend(engine.observe_round(rnd, index, dt))
    return fired


# -- rules and parsing ---------------------------------------------------------

class TestSLORule:
    def test_defaults_are_valid(self):
        rule = SLORule(name="r", metric="round_latency_p95", target=1.0)
        assert rule.comparison == "<=" and rule.window == 20

    @pytest.mark.parametrize("bad", [
        dict(comparison="=="),
        dict(window=0),
        dict(error_budget=0.0),
        dict(error_budget=1.5),
        dict(burn_rate=0.0),
        dict(min_samples=0),
        dict(severity="fatal"),
        dict(metric="some.metric", agg="p42"),
    ])
    def test_validation_rejects(self, bad):
        base = dict(name="r", metric="round_latency_p95", target=1.0)
        base.update(bad)
        with pytest.raises(ValueError):
            SLORule(**base)

    def test_dict_round_trip(self):
        rule = SLORule(name="r", metric="queue_wait_p99", target=3600.0,
                       severity="page", window=7)
        assert SLORule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO rule keys"):
            SLORule.from_dict({"name": "r", "metric": "x", "target": 1.0,
                               "treshold": 2})


class TestParseRules:
    def test_default_sources(self):
        assert parse_rules(None) == default_rules()
        assert parse_rules("default") == default_rules()

    def test_list_and_wrapped_dict(self):
        spec = [{"name": "r", "metric": "round_latency_p95", "target": 2.0}]
        assert parse_rules(spec) == parse_rules({"rules": spec})
        assert parse_rules(spec)[0].target == 2.0

    def test_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "lat", "metric": "round_latency_p95", "target": 0.5}]}))
        rules = parse_rules(path)
        assert [r.name for r in rules] == ["lat"]

    def test_duplicate_names_rejected(self):
        spec = [{"name": "r", "metric": "round_latency_p95", "target": 1.0},
                {"name": "r", "metric": "queue_wait_p99", "target": 1.0}]
        with pytest.raises(ValueError, match="duplicate"):
            parse_rules(spec)

    def test_non_list_rejected(self):
        with pytest.raises(ValueError, match="list of rules"):
            parse_rules({"not_rules": []})

    def test_default_ruleset_names_are_stable(self):
        # CI and the docs reference these names; renames are breaking.
        assert [r.name for r in default_rules()] == [
            "round-latency", "solver-fallbacks", "queue-wait",
            "estimation-error", "quarantined-capacity"]


# -- burn-rate semantics -------------------------------------------------------

def metric_rule(**kwargs):
    base = dict(name="depth", metric="queue.depth", target=5.0,
                comparison="<=", window=4, error_budget=0.5, burn_rate=1.0,
                min_samples=2, cooldown=3, agg="last")
    base.update(kwargs)
    return SLORule(**base)


class TestBurnRate:
    def test_fires_when_budget_burns(self):
        engine = SLOEngine([metric_rule()])
        # 2 of the last 4 rounds violating = 50% = the whole budget.
        records = [record(i, metrics={"queue.depth": d})
                   for i, d in enumerate([1.0, 1.0, 9.0, 9.0])]
        fired = feed(engine, records)
        assert len(fired) == 1
        alert = fired[0]
        assert alert.rule == "depth" and alert.round_index == 3
        assert alert.value == 9.0 and alert.burn_rate >= 1.0

    def test_min_samples_gates_early_evidence(self):
        engine = SLOEngine([metric_rule(min_samples=3)])
        # Two violating rounds burn 100% of budget but lack evidence.
        fired = feed(engine, [record(0, metrics={"queue.depth": 9.0}),
                              record(1, metrics={"queue.depth": 9.0})])
        assert fired == []

    def test_cooldown_suppresses_then_rearms(self):
        engine = SLOEngine([metric_rule(min_samples=1, cooldown=3)])
        records = [record(i, metrics={"queue.depth": 9.0})
                   for i in range(7)]
        fired = feed(engine, records)
        # Fires at round 0, quiet for rounds 1-2, re-fires at 3 and 6.
        assert [a.round_index for a in fired] == [0, 3, 6]

    def test_missing_metric_is_not_a_violation(self):
        engine = SLOEngine([metric_rule(min_samples=1)])
        fired = feed(engine, [record(i) for i in range(5)])
        assert fired == []

    def test_ge_comparison_fires_below_target(self):
        rule = metric_rule(name="floor", metric="util.t4", target=0.5,
                           comparison=">=", min_samples=1)
        engine = SLOEngine([rule])
        fired = feed(engine, [record(0, metrics={"util.t4": 0.1})])
        assert len(fired) == 1 and fired[0].comparison == ">="

    def test_windowed_agg_uses_rolling_statistic(self):
        rule = metric_rule(name="p95", metric="queue.depth", agg="p95",
                           target=5.0, min_samples=1, window=4)
        engine = SLOEngine([rule])
        # One spike: last=1 but the rolling p95 stays elevated.
        records = [record(i, metrics={"queue.depth": d})
                   for i, d in enumerate([1.0, 20.0, 1.0, 1.0])]
        fired = feed(engine, records)
        assert fired and fired[0].value > 5.0

    def test_quarantined_nodes_builtin_series(self):
        rule = SLORule(name="q", metric="quarantined_nodes", target=0.0,
                       window=4, error_budget=0.5, min_samples=2,
                       cooldown=10, severity="page")
        engine = SLOEngine([rule])
        records = [record(i, metrics={"health.quarantined_nodes": 1.0})
                   for i in range(2)]
        fired = feed(engine, records)
        assert len(fired) == 1 and fired[0].severity == "page"

    def test_solver_fallback_rate_series(self):
        rule = SLORule(name="fb", metric="solver_fallback_rate", target=0.25,
                       window=4, error_budget=0.5, min_samples=2)
        engine = SLOEngine([rule])
        fired = feed(engine, [record(i, degraded=True) for i in range(2)])
        assert fired and fired[0].value == 1.0
        assert fired[0].context.get("backends")

    def test_burn_rate_gauges_and_counters_land_in_registry(self):
        registry = MetricsRegistry()
        engine = SLOEngine([metric_rule(min_samples=1)], metrics=registry)
        feed(engine, [record(0, metrics={"queue.depth": 9.0})])
        snap = registry.snapshot()
        assert snap["slo.burn_rate.depth"] == pytest.approx(2.0)
        assert snap["slo.alerts"] == 1
        assert snap["slo.alert.depth"] == 1


class TestAlert:
    def test_dict_round_trip_preserves_context(self):
        alert = Alert(rule="r", metric="m", round_index=3, time=180.0,
                      value=9.0, target=5.0, comparison="<=", burn_rate=2.0,
                      window=4, severity="page",
                      context={"nodes": [1, 2], "jobs": ["j1"]})
        again = Alert.from_dict(alert.to_dict())
        assert again == alert
        assert again.context == alert.context

    def test_from_dict_ignores_stream_framing_keys(self):
        data = Alert(rule="r", metric="m", round_index=0, time=0.0,
                     value=1.0, target=0.0, comparison="<=", burn_rate=1.0,
                     window=1).to_dict()
        data["kind"] = "alert"  # JSONL framing, not an Alert field
        assert Alert.from_dict(data).rule == "r"

    def test_describe_mentions_rule_and_causes(self):
        alert = Alert(rule="queue-wait", metric="queue_wait_p99",
                      round_index=1, time=60.0, value=9000.0, target=3600.0,
                      comparison="<=", burn_rate=1.5, window=20,
                      context={"jobs": ["j7"], "nodes": [3],
                               "faults": {"node_crash": 2}})
        text = alert.describe()
        assert "queue-wait" in text and "j7" in text
        assert "nodes 3" in text and "node_crash=2" in text

    def test_alert_summary_counts_by_rule(self):
        mk = lambda rule: Alert(rule=rule, metric="m", round_index=0,  # noqa: E731
                                time=0.0, value=1.0, target=0.0,
                                comparison="<=", burn_rate=1.0, window=1)
        assert alert_summary([mk("a"), mk("b"), mk("a")]) == {"a": 2, "b": 1}


# -- end-to-end on simulations -------------------------------------------------

def gray_slo_sim(cluster, *, rules=None, seed=4):
    engine = SLOEngine(rules if rules is not None else default_rules())
    config = SimulatorConfig(
        profiling_mode=ProfilingMode.ORACLE, seed=seed, max_hours=100,
        fault_models=[GrayFailureModel(rate=20.0, slowdown=0.3,
                                       duration=14400.0, seed=17),
                      PlacementFailureModel(failure_prob=0.15, seed=18)],
        health=HealthConfig(min_samples=3),
        observers=[SLOObserver(engine)])
    result = Simulator(cluster, SiaScheduler(), jobs(4), config).run()
    return result, engine


class TestEndToEnd:
    def test_fault_heavy_run_fires_alerts_with_node_causality(
            self, hetero_cluster):
        """The CI observability scenario: a gray-failure run under the
        default ruleset must page on quarantined capacity, and at least one
        alert must name the offending node(s)."""
        result, engine = gray_slo_sim(hetero_cluster)
        counts = alert_summary(engine.alerts)
        assert counts.get("quarantined-capacity", 0) > 0
        assert any(a.context.get("nodes") for a in engine.alerts)
        # Alerts landed on the rounds that fired them.
        timeline = result.alerts_timeline()
        assert [a for _, a in timeline] == engine.alerts
        assert result.alert_counts() == counts

    def test_clean_run_fires_nothing(self, hetero_cluster):
        engine = SLOEngine(default_rules())
        simulate(hetero_cluster, SiaScheduler(), jobs(2),
                 profiling_mode=ProfilingMode.ORACLE,
                 observers=[SLOObserver(engine)])
        assert engine.alerts == []

    def test_post_hoc_replay_reproduces_live_alerts(self, hetero_cluster):
        """evaluate_result over the recorded rounds must produce exactly
        the alerts the live observer attached (recorded solve_time drives
        the wall-clock rules either way)."""
        result, engine = gray_slo_sim(hetero_cluster)
        replayed = evaluate_result(result, default_rules())
        assert replayed == engine.alerts

    def test_observed_run_matches_unobserved_rounds(self, hetero_cluster):
        """Determinism: attaching the SLO observer must not perturb any
        simulation-state field (the chaos oracle's contract)."""
        from repro.sim.chaos import diff_results
        observed, _ = gray_slo_sim(hetero_cluster)
        config = SimulatorConfig(
            profiling_mode=ProfilingMode.ORACLE, seed=4, max_hours=100,
            fault_models=[GrayFailureModel(rate=20.0, slowdown=0.3,
                                           duration=14400.0, seed=17),
                          PlacementFailureModel(failure_prob=0.15, seed=18)],
            health=HealthConfig(min_samples=3))
        plain = Simulator(hetero_cluster, SiaScheduler(), jobs(4),
                          config).run()
        assert diff_results(plain, observed) == []

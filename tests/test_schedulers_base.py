"""Tests for the scheduler base layer: RoundPlan validation, shared packing,
estimator factory."""

import pytest

from repro.core.types import Allocation, ProfilingMode
from repro.jobs.hybrid import HybridPerfEstimator, HybridSpec
from repro.jobs.job import make_job
from repro.perf.estimator import JobPerfEstimator
from repro.schedulers import (GavelScheduler, PolluxScheduler, SiaScheduler)
from repro.schedulers.base import RoundPlan, pack_gpus_on_type
from repro.schedulers.pollux import PolluxEstimator


class TestRoundPlanValidation:
    def test_valid_plan_passes(self, hetero_cluster):
        node = hetero_cluster.nodes_of_type("rtx")[0]
        plan = RoundPlan(allocations={
            "j1": Allocation.build("rtx", {node.node_id: 4})})
        plan.validate(hetero_cluster)

    def test_unknown_node_rejected(self, hetero_cluster):
        plan = RoundPlan(allocations={
            "j1": Allocation.build("rtx", {999: 1})})
        with pytest.raises(ValueError, match="unknown node"):
            plan.validate(hetero_cluster)

    def test_type_mismatch_rejected(self, hetero_cluster):
        node = hetero_cluster.nodes_of_type("rtx")[0]
        plan = RoundPlan(allocations={
            "j1": Allocation.build("t4", {node.node_id: 1})})
        with pytest.raises(ValueError, match="allocation says"):
            plan.validate(hetero_cluster)

    def test_oversubscription_rejected(self, hetero_cluster):
        node = hetero_cluster.nodes_of_type("t4")[0]
        plan = RoundPlan(allocations={
            "j1": Allocation.build("t4", {node.node_id: 3}),
            "j2": Allocation.build("t4", {node.node_id: 3}),
        })
        with pytest.raises(ValueError, match="over-subscribed"):
            plan.validate(hetero_cluster)


class TestPackGpus:
    def test_fills_freest_node_first(self, hetero_cluster):
        occupancy = {}
        alloc = pack_gpus_on_type(hetero_cluster, "rtx", 4, occupancy)
        assert alloc.num_gpus == 4
        assert sum(occupancy.values()) == 4

    def test_spans_nodes_when_needed(self, hetero_cluster):
        occupancy = {}
        alloc = pack_gpus_on_type(hetero_cluster, "t4", 10, occupancy)
        assert alloc.num_gpus == 10
        assert alloc.num_nodes >= 3  # t4 nodes hold 4 GPUs each

    def test_prefers_preferred_nodes(self, hetero_cluster):
        target = hetero_cluster.nodes_of_type("rtx")[-1].node_id
        alloc = pack_gpus_on_type(hetero_cluster, "rtx", 2, {},
                                  preferred_nodes=(target,))
        assert alloc.node_ids == (target,)

    def test_returns_none_when_full(self, hetero_cluster):
        occupancy = {n.node_id: n.num_gpus
                     for n in hetero_cluster.nodes_of_type("a100")}
        assert pack_gpus_on_type(hetero_cluster, "a100", 1, occupancy) is None

    def test_failure_does_not_mutate_occupancy(self, hetero_cluster):
        occupancy = {n.node_id: n.num_gpus - 1
                     for n in hetero_cluster.nodes_of_type("a100")}
        before = dict(occupancy)
        assert pack_gpus_on_type(hetero_cluster, "a100", 10, occupancy) is None
        assert occupancy == before

    def test_rejects_zero_count(self, hetero_cluster):
        with pytest.raises(ValueError):
            pack_gpus_on_type(hetero_cluster, "t4", 0, {})


class TestEstimatorFactory:
    def test_sia_uses_per_type_estimator(self, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        est = SiaScheduler().make_estimator(job, hetero_cluster,
                                            ProfilingMode.BOOTSTRAP)
        assert isinstance(est, JobPerfEstimator)
        assert est.mode is ProfilingMode.BOOTSTRAP

    def test_pollux_uses_type_blind_estimator(self, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        est = PolluxScheduler().make_estimator(job, hetero_cluster,
                                               ProfilingMode.BOOTSTRAP)
        assert isinstance(est, PolluxEstimator)

    def test_gavel_forces_oracle(self, hetero_cluster):
        job = make_job("j1", "bert", 0.0)
        est = GavelScheduler().make_estimator(job, hetero_cluster,
                                              ProfilingMode.BOOTSTRAP)
        assert isinstance(est, JobPerfEstimator)
        assert est.mode is ProfilingMode.ORACLE

    def test_hybrid_job_gets_hybrid_estimator(self, hetero_cluster):
        job = make_job("j1", "gpt-2.8b", 0.0, hybrid=HybridSpec(),
                       max_gpus=64)
        for scheduler in (SiaScheduler(), PolluxScheduler()):
            est = scheduler.make_estimator(job, hetero_cluster,
                                           ProfilingMode.BOOTSTRAP)
            assert isinstance(est, HybridPerfEstimator)

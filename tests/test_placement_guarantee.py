"""Property test for the Section 3.3 placement guarantee.

The paper invokes the Submesh Shape Covering theorem: restricting
single-node allocations to powers of two and multi-node allocations to
whole nodes guarantees a placement exists for *any* mix of valid
configurations that fits per-type GPU capacity (with multi-node jobs not
sharing nodes).  Our Placer's repack must therefore never evict when
handed such a mix — this is what lets Sia's ILP use simple per-type
capacity constraints instead of node-level ones.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import presets
from repro.core.configs import build_config_set
from repro.core.placement import Placer
from repro.core.types import Configuration


@st.composite
def capacity_respecting_assignments(draw):
    """Random multisets of valid configurations within per-type capacity,
    with multi-node demand counted in whole empty nodes."""
    cluster = presets.heterogeneous()
    configs = build_config_set(cluster)
    # Track remaining whole nodes and loose GPU capacity per type.
    free_nodes = {t: len(cluster.nodes_of_type(t))
                  for t in cluster.gpu_types}
    node_size = {t: cluster.max_node_size(t) for t in cluster.gpu_types}
    partial_capacity = {t: 0 for t in cluster.gpu_types}

    assignments: dict[str, Configuration] = {}
    n = draw(st.integers(0, 14))
    for i in range(n):
        config = draw(st.sampled_from(configs))
        t = config.gpu_type
        if config.num_nodes > 1:
            if free_nodes[t] < config.num_nodes:
                continue
            free_nodes[t] -= config.num_nodes
        else:
            # Partial allocations consume loose capacity; open a new node
            # when the current loose pool cannot hold this one.
            if partial_capacity[t] < config.num_gpus:
                needed = -(-(config.num_gpus - partial_capacity[t])
                           // node_size[t])
                if free_nodes[t] < needed:
                    continue
                free_nodes[t] -= needed
                partial_capacity[t] += needed * node_size[t]
            partial_capacity[t] -= config.num_gpus
        assignments[f"j{i}"] = config
    return assignments


@settings(max_examples=200, deadline=None)
@given(assignments=capacity_respecting_assignments())
def test_valid_mixes_always_place_without_eviction(assignments):
    cluster = presets.heterogeneous()
    placer = Placer(cluster)
    result = placer.place(assignments, {})
    assert not result.evicted, (assignments, result.evicted)
    assert set(result.allocations) == set(assignments)
    # Multi-node jobs never share nodes with anyone.
    multi_nodes: set[int] = set()
    for job_id, alloc in result.allocations.items():
        if assignments[job_id].num_nodes > 1:
            multi_nodes |= set(alloc.node_ids)
    for job_id, alloc in result.allocations.items():
        if assignments[job_id].num_nodes == 1:
            assert not (set(alloc.node_ids) & multi_nodes)

"""Chaos-replay harness: kill/resume equivalence under fault injection."""

import pytest

from repro.jobs.job import make_job
from repro.schedulers.sia import SiaScheduler
from repro.sim import checkpoint as ckpt
from repro.sim.chaos import (ChaosReport, CrashAt, SimulatedCrash,
                             corrupt_checkpoint, diff_results, run_chaos)
from repro.sim.engine import Simulator, SimulatorConfig
from repro.sim.faults import JobCrashModel, NodeCrashModel, StragglerModel


def _factory(cluster, invariants="strict"):
    jobs = [make_job(f"c{i}", "resnet18" if i % 2 else "resnet50",
                     submit_time=i * 90.0, work_scale=0.02)
            for i in range(5)]

    def factory(ckpt_cfg):
        config = SimulatorConfig(
            seed=11, obs_noise=0.1, rate_noise=0.1, resilient=True,
            invariants=invariants,
            fault_models=[NodeCrashModel(rate=1.5, seed=21),
                          StragglerModel(rate=8.0, slowdown=0.5, seed=22),
                          JobCrashModel(rate=3.0, seed=23)],
            checkpoint=ckpt_cfg)
        return Simulator(cluster, SiaScheduler(), jobs, config)

    return factory


class TestCrashAt:
    def test_fires_once_at_matching_stage(self):
        hook = CrashAt(5, "round_end")
        hook("round_end", 4)  # before the target: no crash
        with pytest.raises(SimulatedCrash):
            hook("round_end", 5)
        hook("round_end", 6)  # already fired: never again
        assert hook.fired

    def test_ignores_other_stages(self):
        hook = CrashAt(1, "mid_write")
        hook("round_end", 10)
        hook("pre_write", 10)
        with pytest.raises(SimulatedCrash):
            hook("mid_write", 10)

    def test_rejects_unknown_stage(self):
        with pytest.raises(ValueError):
            CrashAt(1, "while_sleeping")


class TestKillResumeEquivalence:
    def test_round_end_kill(self, tmp_path, hetero_cluster):
        report = run_chaos(_factory(hetero_cluster), directory=tmp_path,
                           kill_round=6, every_rounds=2)
        assert report.crashed
        assert report.resumed_from_round >= 2
        assert report.equivalent, report.mismatches[:5]

    def test_mid_checkpoint_write_kill(self, tmp_path, hetero_cluster):
        report = run_chaos(_factory(hetero_cluster), directory=tmp_path,
                           kill_round=4, kill_stage="mid_write",
                           every_rounds=2)
        assert report.crashed
        assert report.equivalent, report.mismatches[:5]

    def test_corrupted_newest_falls_back(self, tmp_path, hetero_cluster):
        report = run_chaos(_factory(hetero_cluster), directory=tmp_path,
                           kill_round=6, every_rounds=2,
                           corrupt_latest=True)
        assert report.crashed
        assert report.corrupt_skipped  # the damaged newest file was skipped
        assert report.equivalent, report.mismatches[:5]

    def test_crash_before_first_checkpoint_restarts(self, tmp_path,
                                                    hetero_cluster):
        report = run_chaos(_factory(hetero_cluster), directory=tmp_path,
                           kill_round=1, every_rounds=1000)
        assert report.crashed
        assert report.resumed_from_round == -1  # fresh start
        assert report.equivalent, report.mismatches[:5]

    def test_seeded_random_kill_round(self, tmp_path, hetero_cluster):
        report = run_chaos(_factory(hetero_cluster), directory=tmp_path,
                           chaos_seed=99, every_rounds=3)
        assert report.kill_round >= 1
        assert report.equivalent, report.mismatches[:5]

    def test_report_summary_mentions_outcome(self, tmp_path, hetero_cluster):
        report = run_chaos(_factory(hetero_cluster), directory=tmp_path,
                           kill_round=6, every_rounds=2)
        assert "EQUIVALENT" in report.summary()


class TestDiff:
    def test_detects_divergence(self, tmp_path, hetero_cluster):
        factory = _factory(hetero_cluster)
        a = factory(None).run()
        b = factory(None).run()
        assert diff_results(a, b) == []  # determinism sanity
        b.rounds[0].allocations = {"phantom": ("rtx", 1)}
        b.censored = 99
        mismatches = diff_results(a, b)
        assert any("allocations" in m for m in mismatches)
        assert any("censored" in m for m in mismatches)

    def test_excludes_wall_clock_fields(self, tmp_path, hetero_cluster):
        factory = _factory(hetero_cluster)
        a = factory(None).run()
        b = factory(None).run()
        b.rounds[0].solve_time = 123.0
        b.rounds[0].metrics["solve_time_s.mean"] = 9.9
        b.final_metrics["checkpoint.writes"] = 42
        assert diff_results(a, b) == []

    def test_corrupt_checkpoint_helper(self, tmp_path):
        state = ckpt.CheckpointState(
            round_index=1, now=0.0, arrival_idx=0, arrivals=[], active={},
            finished=[], result=None, execution=None, fault_models=[],
            scheduler=None, metrics=None, invariants=None)
        path = ckpt.checkpoint_path(tmp_path, 1)
        ckpt.write_checkpoint(state, path)
        corrupt_checkpoint(path)
        with pytest.raises(ckpt.CheckpointCorruptError):
            ckpt.read_checkpoint(path)

    def test_report_equivalent_property(self):
        report = ChaosReport(kill_round=1, kill_stage="round_end")
        assert report.equivalent
        report.mismatches.append("round 0: time differs")
        assert not report.equivalent
        assert "DIVERGED" in report.summary()

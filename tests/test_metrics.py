"""Tests for JCT statistics, fairness (Equation 6), and utilization."""

import math

import pytest

from repro.cluster import presets
from repro.jobs.hybrid import HybridSpec
from repro.jobs.job import make_job
from repro.metrics import (average_utilization, fairness_metrics, ftf_ratio,
                           gpu_hours_by_model, isolated_jct, jct_cdf,
                           percentile, queue_length_series, summarize,
                           utilization_by_type)
from repro.schedulers import SiaScheduler
from repro.sim import simulate
from repro.sim.telemetry import JobRecord, RoundRecord, SimulationResult


@pytest.fixture(scope="module")
def sample_result():
    cluster = presets.heterogeneous()
    jobs = [make_job(f"j{i}", "resnet18", i * 120.0, work_scale=0.05)
            for i in range(4)]
    result = simulate(cluster, SiaScheduler(), jobs)
    return cluster, jobs, result


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_p99_tail(self):
        values = list(range(100))
        assert percentile(values, 99) > percentile(values, 50)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_empty_raises_for_any_q(self):
        for q in (0, 50, 100):
            with pytest.raises(ValueError):
                percentile([], q)

    def test_single_element_is_every_percentile(self):
        for q in (0, 25, 50, 99, 100):
            assert percentile([7.5], q) == 7.5

    def test_extreme_quantiles_are_min_and_max(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_negative_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestSummarize:
    def test_all_fields_populated(self, sample_result):
        _, _, result = sample_result
        summary = summarize(result)
        assert summary.num_jobs == 4
        assert summary.completed_jobs == 4
        assert summary.avg_jct_hours > 0
        assert summary.p99_jct_hours >= summary.avg_jct_hours
        assert summary.makespan_hours > 0
        assert summary.avg_gpu_hours_per_job > 0
        assert summary.max_contention >= 1

    def test_as_row_is_serializable(self, sample_result):
        _, _, result = sample_result
        row = summarize(result).as_row()
        assert row["scheduler"] == "sia"
        assert isinstance(row["avg_jct_h"], float)


class TestJobRecord:
    def test_jct_requires_horizon_for_censored(self):
        record = JobRecord("j", "bert", "M", "adaptive", 0.0, None, None, 0)
        with pytest.raises(ValueError):
            record.jct()
        assert record.jct(horizon=3600.0) == 3600.0

    def test_total_gpu_seconds_includes_profiling(self):
        record = JobRecord("j", "bert", "M", "adaptive", 0.0, 0.0, 100.0, 0,
                           gpu_seconds={"t4": 50.0},
                           profiling_gpu_seconds=10.0)
        assert record.total_gpu_seconds == 60.0


class TestGpuHoursByModel:
    def test_grouping(self, sample_result):
        _, _, result = sample_result
        by_model = gpu_hours_by_model(result)
        assert "resnet18" in by_model
        assert sum(by_model["resnet18"].values()) > 0


class TestCdf:
    def test_monotone_and_complete(self, sample_result):
        _, _, result = sample_result
        cdf = jct_cdf(result)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        values = [v for v, _ in cdf]
        assert values == sorted(values)


class TestIsolatedJct:
    def test_fair_share_reduces_gpus(self):
        cluster = presets.heterogeneous()
        job = make_job("j", "bert", 0.0)
        lonely = isolated_jct(job, "a100", cluster, avg_contention=1.0)
        crowded = isolated_jct(job, "a100", cluster, avg_contention=16.0)
        assert crowded > lonely

    def test_infeasible_type_is_inf(self):
        cluster = presets.heterogeneous()
        job = make_job("g", "gpt-2.8b", 0.0, hybrid=HybridSpec(), max_gpus=16)
        assert math.isinf(isolated_jct(job, "t4", cluster, 1.0))


class TestFtfRatio:
    def test_uncontended_long_job_is_nearly_fair(self):
        """An uncontended job long enough that ramp-up and restart overheads
        amortize should have a moderate FTF ratio.  (Tiny jobs legitimately
        show large rho: the isolated baseline has no ramp-up or restore
        costs — see test below.)"""
        cluster = presets.heterogeneous()
        job = make_job("solo", "resnet18", 0.0, work_scale=1.0)
        result = simulate(cluster, SiaScheduler(), [job])
        rho = ftf_ratio(job, result.job("solo"), cluster, result.end_time)
        assert rho < 2.5

    def test_tiny_jobs_show_overhead_dominated_rho(self, sample_result):
        """For seconds-long jobs the fixed overheads dominate, so rho is
        well above 1 — the metric is meaningful only at realistic scales."""
        cluster, jobs, result = sample_result
        rho = ftf_ratio(jobs[0], result.job(jobs[0].job_id), cluster,
                        result.end_time)
        assert rho > 1.0

    def test_weights_renormalized_for_infeasible_types(self):
        """A job that can only run on a100/rtx must still get a finite rho."""
        cluster = presets.heterogeneous()
        job = make_job("g", "gpt-2.8b", 0.0, hybrid=HybridSpec(), max_gpus=16)
        record = JobRecord("g", "gpt-2.8b", "XXL", "adaptive", 0.0, 0.0,
                           7200.0, 0, gpu_seconds={"a100": 100.0},
                           avg_contention=1.0)
        rho = ftf_ratio(job, record, cluster, 7200.0)
        assert math.isfinite(rho) and rho > 0

    def test_fairness_metrics_aggregates(self, sample_result):
        cluster, jobs, result = sample_result
        metrics = fairness_metrics(result, jobs, cluster)
        assert len(metrics.ratios) == len(jobs)
        assert metrics.worst_ftf == max(metrics.ratios)
        assert 0.0 <= metrics.unfair_fraction <= 1.0
        cdf = metrics.cdf()
        assert cdf[-1][1] == 1.0

    def test_unknown_job_rejected(self, sample_result):
        cluster, jobs, result = sample_result
        with pytest.raises(KeyError):
            fairness_metrics(result, jobs[:2], cluster)


class TestUtilization:
    def test_average_utilization_in_unit_interval(self, sample_result):
        cluster, _, result = sample_result
        value = average_utilization(result, cluster)
        assert 0.0 < value <= 1.0

    def test_by_type_keys(self, sample_result):
        cluster, _, result = sample_result
        by_type = utilization_by_type(result, cluster)
        assert set(by_type) == set(cluster.gpu_types)
        assert all(0.0 <= v <= 1.0 for v in by_type.values())

    def test_queue_series_lengths(self, sample_result):
        _, _, result = sample_result
        series = queue_length_series(result)
        assert len(series) == len(result.rounds)
        assert all(q >= 0 for _, q in series)

    def test_empty_result_zero_utilization(self):
        cluster = presets.heterogeneous()
        empty = SimulationResult("sia", cluster.describe(),
                                 rounds=[RoundRecord(0.0, 0, 0, 0.0)])
        assert average_utilization(empty, cluster) == 0.0

    def test_queue_series_empty_result(self):
        result = SimulationResult("sia", "c")
        assert queue_length_series(result) == []

    def test_queue_series_counts_waiting_jobs(self):
        result = SimulationResult("sia", "c", rounds=[
            RoundRecord(0.0, active_jobs=3, running_jobs=1, solve_time=0.0),
            RoundRecord(60.0, active_jobs=3, running_jobs=3, solve_time=0.0),
        ])
        assert queue_length_series(result) == [(0.0, 2), (60.0, 0)]

    def test_by_type_idle_rounds_excluded(self):
        cluster = presets.heterogeneous()
        result = SimulationResult("sia", cluster.describe(), rounds=[
            # idle round must not dilute the average
            RoundRecord(0.0, 0, 0, 0.0),
            RoundRecord(60.0, 1, 1, 0.0,
                        gpus_used={"a100": cluster.capacity("a100")}),
        ])
        by_type = utilization_by_type(result, cluster)
        assert by_type["a100"] == 1.0
        assert by_type["t4"] == 0.0

    def test_by_type_all_idle_is_zero(self):
        cluster = presets.heterogeneous()
        result = SimulationResult("sia", cluster.describe(),
                                  rounds=[RoundRecord(0.0, 0, 0, 0.0)])
        by_type = utilization_by_type(result, cluster)
        assert set(by_type) == set(cluster.gpu_types)
        assert all(v == 0.0 for v in by_type.values())

"""The round-level invariant checker: unit violations + fault-heavy runs."""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import make_job
from repro.obs import audit
from repro.obs.metrics import MetricsRegistry
from repro.schedulers.sia import SiaScheduler
from repro.sim.engine import Simulator, SimulatorConfig, _JobRuntime
from repro.sim.faults import (CheckpointRestoreFaultModel, JobCrashModel,
                              NodeCrashModel, StragglerModel)
from repro.sim.invariants import (InvariantChecker, InvariantError,
                                  InvariantViolation)
from repro.sim.telemetry import RoundRecord
from repro.core.types import Allocation


def _runtime(job_id, alloc=None, progress=0.0):
    job = make_job(job_id, "resnet18", 0.0, work_scale=0.05)
    rt = _JobRuntime(job=job, estimator=None)
    rt.allocation = alloc
    rt.progress = progress
    return rt


def _record(**kw):
    base = dict(time=0.0, active_jobs=1, running_jobs=0, solve_time=0.0)
    base.update(kw)
    return RoundRecord(**base)


def _check(checker, cluster, record, runtimes, fault_hit=None, done=None,
           round_index=0):
    checker.check_round(round_index=round_index, cluster_view=cluster,
                        record=record, runtimes=runtimes,
                        fault_hit=fault_hit or set(), done_ids=done or [])


class TestCheckerUnit:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            InvariantChecker(mode="shout")
        with pytest.raises(ValueError):
            InvariantChecker(mode="off")  # off means "no checker at all"

    def test_clean_round_passes(self, tiny_cluster):
        node = tiny_cluster.nodes[0]
        alloc = Allocation.build(node.gpu_type, {node.node_id: 1})
        rt = _runtime("a", alloc, progress=5.0)
        record = _record(running_jobs=1,
                         allocations={"a": (node.gpu_type, 1)},
                         gpus_used={node.gpu_type: 1},
                         realized={"a": 1.0})
        checker = InvariantChecker(mode="strict")
        _check(checker, tiny_cluster, record, [rt])
        assert checker.violations == []

    def test_down_node_allocation_detected(self, hetero_cluster):
        # Allocate on a node that is not part of the surviving view.
        down = hetero_cluster.nodes[0]
        survivors = Cluster(nodes=tuple(n for n in hetero_cluster.nodes
                                        if n.node_id != down.node_id))
        alloc = Allocation.build(down.gpu_type, {down.node_id: 1})
        rt = _runtime("a", alloc)
        record = _record(running_jobs=1,
                         allocations={"a": (down.gpu_type, 1)},
                         gpus_used={down.gpu_type: 1},
                         realized={"a": 0.5})
        checker = InvariantChecker(mode="strict")
        with pytest.raises(InvariantError, match="down-node"):
            _check(checker, survivors, record, [rt])

    def test_oversubscribed_node_detected(self, tiny_cluster):
        node = tiny_cluster.nodes[0]
        count = node.num_gpus  # two jobs each take the full node
        alloc_a = Allocation.build(node.gpu_type, {node.node_id: count})
        alloc_b = Allocation.build(node.gpu_type, {node.node_id: count})
        record = _record(running_jobs=2,
                         allocations={"a": (node.gpu_type, count),
                                      "b": (node.gpu_type, count)},
                         gpus_used={node.gpu_type: 2 * count},
                         realized={"a": 1.0, "b": 1.0})
        checker = InvariantChecker(mode="strict")
        with pytest.raises(InvariantError, match="over-subscribed"):
            _check(checker, tiny_cluster, record,
                   [_runtime("a", alloc_a), _runtime("b", alloc_b)])

    def test_progress_rollback_without_fault_detected(self, tiny_cluster):
        rt = _runtime("a", progress=10.0)
        checker = InvariantChecker(mode="strict")
        _check(checker, tiny_cluster, _record(), [rt])
        rt.progress = 4.0  # went backwards, no fault reported
        with pytest.raises(InvariantError, match="progress went backwards"):
            _check(checker, tiny_cluster, _record(), [rt], round_index=1)

    def test_progress_rollback_with_fault_allowed(self, tiny_cluster):
        rt = _runtime("a", progress=10.0)
        checker = InvariantChecker(mode="strict")
        _check(checker, tiny_cluster, _record(), [rt])
        rt.progress = 4.0
        _check(checker, tiny_cluster, _record(), [rt], fault_hit={"a"},
               round_index=1)
        assert checker.violations == []

    def test_finished_job_reappearing_detected(self, tiny_cluster):
        rt = _runtime("a")
        checker = InvariantChecker(mode="strict")
        finish = audit.AllocationEvent(kind=audit.FINISH, time=0.0,
                                       job_id="a", round_index=0)
        _check(checker, tiny_cluster, _record(events=[finish]), [rt],
               done=["a"])
        with pytest.raises(InvariantError, match="reappeared"):
            _check(checker, tiny_cluster, _record(), [rt], round_index=1)

    def test_finish_event_mismatch_detected(self, tiny_cluster):
        checker = InvariantChecker(mode="strict")
        # a FINISH audit event with no matching completed job
        finish = audit.AllocationEvent(kind=audit.FINISH, time=0.0,
                                       job_id="ghost", round_index=0)
        with pytest.raises(InvariantError, match="FINISH"):
            _check(checker, tiny_cluster, _record(events=[finish]),
                   [_runtime("a")])

    def test_ledger_running_count_mismatch_detected(self, tiny_cluster):
        record = _record(running_jobs=3)  # no allocations recorded
        checker = InvariantChecker(mode="strict")
        with pytest.raises(InvariantError, match="running_jobs"):
            _check(checker, tiny_cluster, record, [_runtime("a")])

    def test_ledger_realized_coverage_detected(self, tiny_cluster):
        node = tiny_cluster.nodes[0]
        alloc = Allocation.build(node.gpu_type, {node.node_id: 1})
        record = _record(running_jobs=1,
                         allocations={"a": (node.gpu_type, 1)},
                         gpus_used={node.gpu_type: 1},
                         realized={})  # missing realized entry
        checker = InvariantChecker(mode="strict")
        with pytest.raises(InvariantError, match="realized"):
            _check(checker, tiny_cluster, record, [_runtime("a", alloc)])

    def test_log_mode_records_and_continues(self, tiny_cluster):
        metrics = MetricsRegistry()
        checker = InvariantChecker(mode="log")
        checker.metrics = metrics
        record = _record(running_jobs=3)
        _check(checker, tiny_cluster, record, [_runtime("a")])
        assert len(checker.violations) == 1
        violation = checker.violations[0]
        assert isinstance(violation, InvariantViolation)
        assert violation.name == "ledger"
        snap = metrics.snapshot()
        assert snap["invariant_violations"] == 1
        assert snap["invariant_violations.ledger"] == 1


def _run(cluster, seed, invariants="strict", **cfg_kw):
    jobs = [make_job(f"j{i}", model, submit_time=i * 45.0, work_scale=0.02)
            for i, model in enumerate(
                ["resnet18", "resnet50", "deepspeech2", "resnet18", "bert"])]
    config = SimulatorConfig(seed=seed, obs_noise=0.1, rate_noise=0.1,
                             invariants=invariants, resilient=True,
                             **cfg_kw)
    sim = Simulator(cluster, SiaScheduler(), jobs, config)
    return sim, sim.run()


class TestInvariantsOverFaultHeavyRuns:
    """Strict invariants must hold on real engine rounds under every fault
    model at once, across seeds."""

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_strict_passes_under_fault_storm(self, hetero_cluster, seed):
        sim, result = _run(
            hetero_cluster, seed,
            fault_models=[
                NodeCrashModel(rate=2.0, repair_time=600.0, seed=seed + 1),
                StragglerModel(rate=10.0, slowdown=0.4, seed=seed + 2),
                JobCrashModel(rate=4.0, seed=seed + 3),
                CheckpointRestoreFaultModel(failure_prob=0.3, seed=seed + 4),
            ])
        assert result.rounds
        assert result.total_fault_events > 0
        assert sim.invariant_violations == []

    def test_strict_passes_without_faults(self, hetero_cluster):
        sim, result = _run(hetero_cluster, seed=5)
        assert result.rounds
        assert sim.invariant_violations == []

    def test_violations_property_empty_when_off(self, hetero_cluster):
        sim, _ = _run(hetero_cluster, seed=5, invariants="off")
        assert sim.invariant_violations == []

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SimulatorConfig(invariants="very-strict")

"""Tests for the discrete-time simulator engine and executor."""

import pytest

from repro.cluster import presets
from repro.core.types import Allocation, ProfilingMode
from repro.jobs.hybrid import HybridSpec
from repro.jobs.job import make_job
from repro.perf.goodput import BatchPlan
from repro.sim.engine import Simulator, SimulatorConfig, simulate
from repro.sim.executor import ExecutionModel
from repro.schedulers import SiaScheduler


def tiny_job(job_id="j1", model="resnet18", submit=0.0, scale=0.05, **kw):
    return make_job(job_id, model, submit, work_scale=scale, **kw)


class TestExecutionModel:
    @pytest.fixture
    def model(self) -> ExecutionModel:
        return ExecutionModel(seed=0)

    def test_execute_matches_ground_truth(self, model, hetero_cluster):
        job = tiny_job()
        node = hetero_cluster.nodes_of_type("rtx")[0]
        alloc = Allocation.build("rtx", {node.node_id: 2})
        plan = BatchPlan(local_bsz=128, accum_steps=1, total_batch_size=256,
                         throughput=0, efficiency=0, goodput=0)
        execution = model.execute(job, alloc, plan)
        assert execution is not None
        assert execution.goodput == pytest.approx(
            execution.throughput * (1500 + 128) / (1500 + 256))

    def test_oom_plan_rejected(self, model, hetero_cluster):
        job = tiny_job(model="bert")
        node = hetero_cluster.nodes_of_type("rtx")[0]
        alloc = Allocation.build("rtx", {node.node_id: 1})
        plan = BatchPlan(local_bsz=100_000, accum_steps=1,
                         total_batch_size=100_000, throughput=0,
                         efficiency=0, goodput=0)
        assert model.execute(job, alloc, plan) is None

    def test_hybrid_execution(self, model, hetero_cluster):
        job = make_job("g", "gpt-2.8b", 0.0, hybrid=HybridSpec(), max_gpus=64)
        nodes = hetero_cluster.nodes_of_type("a100")
        alloc = Allocation.build("a100", {nodes[0].node_id: 4})
        execution = model.execute(job, alloc, None)
        assert execution is not None and execution.goodput > 0

    def test_rate_noise_is_fixed_per_pair(self):
        noisy = ExecutionModel(seed=1, rate_noise=0.2)
        assert noisy._hardware_bias("j1", "t4") == \
            noisy._hardware_bias("j1", "t4")
        assert noisy._hardware_bias("j1", "t4") != \
            noisy._hardware_bias("j1", "a100")

    def test_observation_carries_shape(self, model, hetero_cluster):
        job = tiny_job()
        node = hetero_cluster.nodes_of_type("t4")[0]
        alloc = Allocation.build("t4", {node.node_id: 2})
        plan = BatchPlan(local_bsz=128, accum_steps=2, total_batch_size=512,
                         throughput=0, efficiency=0, goodput=0)
        execution = model.execute(job, alloc, plan)
        obs = model.observe(job, alloc, execution)
        assert obs.num_gpus == 2 and obs.accum_steps == 2
        assert obs.iter_time == pytest.approx(execution.iter_time)

    def test_noise_levels_validated(self):
        with pytest.raises(ValueError):
            ExecutionModel(rate_noise=-0.1)


class TestEngine:
    def test_single_job_completes(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        assert len(result.jobs) == 1
        record = result.jobs[0]
        assert record.completed
        assert record.finish_time > record.submit_time
        assert record.num_restarts >= 0
        assert sum(record.gpu_seconds.values()) > 0

    def test_determinism(self, hetero_cluster):
        jobs = [tiny_job(f"j{i}", submit=i * 60.0) for i in range(4)]
        a = simulate(hetero_cluster, SiaScheduler(), jobs, seed=3)
        b = simulate(hetero_cluster, SiaScheduler(), jobs, seed=3)
        assert [j.finish_time for j in a.jobs] == \
            [j.finish_time for j in b.jobs]

    def test_duplicate_ids_rejected(self, hetero_cluster):
        with pytest.raises(ValueError):
            Simulator(hetero_cluster, SiaScheduler(),
                      [tiny_job("x"), tiny_job("x")])

    def test_empty_jobs_rejected(self, hetero_cluster):
        with pytest.raises(ValueError):
            Simulator(hetero_cluster, SiaScheduler(), [])

    def test_idle_gap_skipped(self, hetero_cluster):
        """A late arrival must not produce thousands of idle rounds."""
        jobs = [tiny_job("late", submit=7200.0)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs)
        busy_rounds = [r for r in result.rounds if r.active_jobs > 0]
        assert busy_rounds[0].time >= 7200.0
        assert len(result.rounds) == len(busy_rounds)

    def test_restart_charged_on_start(self, hetero_cluster):
        """Even the first allocation pays the restore delay: the finish time
        must exceed pure compute time by at least the delay."""
        job = tiny_job()
        result = simulate(hetero_cluster, SiaScheduler(), [job])
        record = result.jobs[0]
        assert record.jct() >= job.restart_delay

    def test_time_cap_censors(self, hetero_cluster):
        job = make_job("big", "resnet50", 0.0, work_scale=3.0)
        result = simulate(hetero_cluster, SiaScheduler(), [job],
                          max_hours=0.1)
        assert result.censored == 1
        assert not result.jobs[0].completed

    def test_never_admitted_jobs_still_get_records(self, hetero_cluster):
        """Jobs whose submit time falls past the cap must appear in the
        result (never-started), so per-job totals sum to the trace size."""
        jobs = [tiny_job("early"),
                tiny_job("late-1", submit=100 * 3600.0),
                tiny_job("late-2", submit=200 * 3600.0)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs, max_hours=1.0)
        assert len(result.jobs) == len(jobs)
        for job_id in ("late-1", "late-2"):
            record = result.job(job_id)
            assert record.first_start is None
            assert not record.completed
            assert record.num_restarts == 0
            assert record.gpu_seconds == {}
        # trace reconciles: every job is either completed or censored
        assert len(result.completed_jobs) + result.censored == len(jobs)
        assert result.censored == 2

    def test_never_admitted_jct_clamps_to_zero(self, hetero_cluster):
        """A job submitted after the simulation horizon must not report a
        negative completion time."""
        jobs = [tiny_job("early"), tiny_job("late", submit=100 * 3600.0)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs, max_hours=1.0)
        late = result.job("late")
        assert late.jct(result.end_time) == 0.0
        assert all(t >= 0.0 for t in result.jcts_hours())

    def test_contention_tracked(self, hetero_cluster):
        jobs = [tiny_job(f"j{i}") for i in range(5)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs)
        assert all(j.avg_contention >= 1 for j in result.jobs)

    def test_round_records_allocations(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        busy = [r for r in result.rounds if r.running_jobs > 0]
        assert busy
        gpu_type, count = next(iter(busy[0].allocations.values()))
        assert count >= 1 and gpu_type in hetero_cluster.gpu_types

    def test_profiling_overhead_recorded(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()],
                          profiling_mode=ProfilingMode.BOOTSTRAP)
        assert result.jobs[0].profiling_gpu_seconds > 0
        oracle = simulate(hetero_cluster, SiaScheduler(), [tiny_job()],
                          profiling_mode=ProfilingMode.ORACLE)
        assert oracle.jobs[0].profiling_gpu_seconds == 0

    def test_jobs_make_monotone_progress(self, hetero_cluster):
        """Longer work scale means strictly later finish."""
        short = simulate(hetero_cluster, SiaScheduler(),
                         [tiny_job("s", scale=0.05)])
        long_ = simulate(hetero_cluster, SiaScheduler(),
                         [tiny_job("l", scale=0.2)])
        assert long_.jobs[0].finish_time > short.jobs[0].finish_time

    def test_hybrid_job_runs_under_sia(self, hetero_cluster):
        job = make_job("gpt", "gpt-2.8b", 0.0, hybrid=HybridSpec(),
                       max_gpus=16, work_scale=0.002)
        result = simulate(hetero_cluster, SiaScheduler(), [job],
                          max_hours=50)
        assert result.jobs[0].completed
        # All GPU time on profiled types only.
        assert set(result.jobs[0].gpu_seconds) <= {"a100", "rtx"}

    def test_mid_round_completion_interpolated(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        finish = result.jobs[0].finish_time
        # finishing exactly on a round boundary is vanishingly unlikely
        assert finish % 60.0 != 0.0


class TestSimulatorConfig:
    def test_defaults(self):
        config = SimulatorConfig()
        assert config.profiling_mode is ProfilingMode.BOOTSTRAP
        assert config.obs_noise == 0.0

    def test_noise_changes_outcomes(self, hetero_cluster):
        jobs = [tiny_job(f"j{i}") for i in range(3)]
        clean = simulate(hetero_cluster, SiaScheduler(), jobs)
        noisy = simulate(hetero_cluster, SiaScheduler(), jobs,
                         rate_noise=0.3, seed=5)
        assert [j.finish_time for j in clean.jobs] != \
            [j.finish_time for j in noisy.jobs]

"""Tests for the markdown report generator and ASCII charts."""

import pytest

from repro.analysis.render import format_bars
from repro.analysis.report import build_report
from repro.cli import main
from repro.cluster import presets
from repro.jobs.job import make_job
from repro.schedulers import GavelScheduler, SiaScheduler
from repro.sim import simulate
from repro.workloads import philly_trace, tuned_jobs


@pytest.fixture(scope="module")
def setup():
    cluster = presets.heterogeneous()
    trace = philly_trace(seed=0, num_jobs=10, work_scale_factor=0.08,
                         window_hours=0.3)
    rigid = tuned_jobs(trace.jobs, cluster, seed=0)
    sia = simulate(cluster, SiaScheduler(), trace.jobs, max_hours=50)
    gavel = simulate(cluster, GavelScheduler(), rigid, max_hours=50)
    return cluster, trace, sia, gavel


class TestFormatBars:
    def test_peak_gets_full_width(self):
        text = format_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_values_get_no_bar(self):
        text = format_bars([("a", 0.0), ("b", 1.0)])
        assert "#" not in text.splitlines()[0]

    def test_empty(self):
        assert format_bars([]) == "(no data)"

    def test_title(self):
        assert format_bars([("x", 1.0)], title="T").startswith("T\n")


class TestBuildReport:
    def test_single_result_sections(self, setup):
        cluster, trace, sia, _ = setup
        text = build_report([sia], jobs=trace.jobs, cluster=cluster)
        for token in ("# Simulation report", "Scheduler comparison",
                      "JCT distribution", "GPU-hours per job",
                      "Finish-time fairness", "GPU occupancy"):
            assert token in text

    def test_multi_result_comparison(self, setup):
        _, _, sia, gavel = setup
        text = build_report([sia, gavel], title="Head to head")
        assert "# Head to head" in text
        assert "| sia |" in text
        assert "| gavel |" in text

    def test_without_jobs_skips_fairness(self, setup):
        _, _, sia, _ = setup
        text = build_report([sia])
        assert "Finish-time fairness" not in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_report([])


class TestReportCli:
    def test_report_from_saved_results(self, setup, tmp_path, capsys):
        from repro import io
        _, _, sia, gavel = setup
        a, b = tmp_path / "sia.json", tmp_path / "gavel.json"
        io.save_result(sia, a)
        io.save_result(gavel, b)
        out = tmp_path / "report.md"
        assert main(["report", str(a), str(b), "--title", "CLI report",
                     "--out", str(out)]) == 0
        text = out.read_text()
        assert "# CLI report" in text
        assert "gavel" in text

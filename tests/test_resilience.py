"""Tests for the resilient policy layer: solver fallback chain, circuit
breaker, carry-forward plans, and the end-to-end chaos scenario."""

import random
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cluster import presets
from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeGroup
from repro.core import ilp
from repro.core.ilp import AssignmentProblem
from repro.core.policy import SiaPolicyParams
from repro.core.resilience import (ResilienceConfig, ResilientScheduler,
                                   ResilientSolver, SolverExhaustedError,
                                   carry_forward_plan)
from repro.core.types import Allocation
from repro.jobs.job import make_job
from repro.schedulers import SiaScheduler
from repro.schedulers.base import RoundPlan, Scheduler
from repro.sim import (JobCrashModel, NodeCrashModel, StragglerModel,
                       simulate)


def problem(n_jobs=3):
    """A small feasible instance: per-job utilities over 2 configs."""
    utilities = np.array([[1.0 + i, 2.0 + i] for i in range(n_jobs)])
    return AssignmentProblem(
        utilities=utilities,
        config_gpus=[1, 2],
        config_types=["t4", "t4"],
        capacities={"t4": 2 * n_jobs},
    )


class TestResilientSolver:
    def test_milp_failure_falls_back_to_lp_round(self, monkeypatch):
        def boom(problem, time_limit=None):
            raise RuntimeError("injected MILP failure")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        solver = ResilientSolver()
        solution, backend, degraded = solver.solve(problem())
        assert backend == "lp_round"
        assert degraded
        # The fallback result still respects capacities (validated too).
        used = solution.gpus_used(problem())
        assert all(n <= problem().capacities[t] for t, n in used.items())

    def test_milp_and_lp_round_failure_falls_back_to_greedy(
            self, monkeypatch):
        def boom(problem, time_limit=None, **kwargs):
            raise RuntimeError("injected failure")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        monkeypatch.setattr(ilp, "_solve_lp_round", boom)
        solver = ResilientSolver()
        solution, backend, degraded = solver.solve(problem())
        assert backend == "greedy"
        assert degraded
        assert solution.assignment

    def test_legacy_chain_skips_lp_round(self, monkeypatch):
        """fallback_chain=('greedy',) restores the pre-tier behavior."""
        def boom(problem, time_limit=None):
            raise RuntimeError("injected MILP failure")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        solver = ResilientSolver(
            ResilienceConfig(fallback_chain=("greedy",)))
        _, backend, degraded = solver.solve(problem())
        assert backend == "greedy" and degraded

    def test_unknown_fallback_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown fallback"):
            ResilienceConfig(fallback_chain=("nope",))

    def test_breaker_opens_then_closes(self, monkeypatch):
        attempts = {"n": 0}

        def boom(problem, time_limit=None):
            attempts["n"] += 1
            raise RuntimeError("injected MILP failure")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        solver = ResilientSolver(ResilienceConfig(breaker_threshold=2,
                                                  breaker_cooldown_rounds=3,
                                                  retry_primary=False))
        p = problem()
        solver.solve(p)            # failure 1
        solver.solve(p)            # failure 2 -> breaker trips
        assert attempts["n"] == 2
        assert solver.breaker_open
        for _ in range(3):         # cooldown: MILP skipped entirely
            _, backend, degraded = solver.solve(p)
            assert backend == "lp_round" and degraded
        assert attempts["n"] == 2
        assert not solver.breaker_open
        solver.solve(p)            # breaker closed: MILP retried
        assert attempts["n"] == 3
        assert solver.stats["breaker_trips"] == 1

    def test_budget_overrun_counts_toward_breaker(self, monkeypatch):
        real = ilp._solve_milp

        def slow(problem, time_limit=None):
            time.sleep(0.03)
            return real(problem, time_limit=time_limit)
        monkeypatch.setattr(ilp, "_solve_milp", slow)
        solver = ResilientSolver(ResilienceConfig(solve_budget_s=0.01,
                                                  breaker_threshold=2,
                                                  breaker_cooldown_rounds=2))
        p = problem()
        # Overruns still return the MILP answer, but flagged degraded ...
        _, backend, degraded = solver.solve(p)
        assert backend == "milp" and degraded
        solver.solve(p)  # second overrun trips the breaker
        assert solver.breaker_open
        _, backend, degraded = solver.solve(p)
        assert backend == "lp_round" and degraded

    def test_success_resets_failure_count(self, monkeypatch):
        real = ilp._solve_milp
        calls = {"n": 0}

        def flaky(problem, time_limit=None):
            calls["n"] += 1
            if calls["n"] % 2 == 1:
                raise RuntimeError("injected")
            return real(problem, time_limit=time_limit)
        monkeypatch.setattr(ilp, "_solve_milp", flaky)
        solver = ResilientSolver(ResilienceConfig(breaker_threshold=2))
        p = problem()
        for _ in range(6):  # alternate fail/succeed: breaker never trips
            solver.solve(p)
        assert solver.stats["breaker_trips"] == 0

    def test_exhausted_chain_raises(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        monkeypatch.setattr(ilp, "_solve_lp_round", boom)
        monkeypatch.setattr(ilp, "_solve_greedy", boom)
        solver = ResilientSolver()
        with pytest.raises(SolverExhaustedError):
            solver.solve(problem())

    def test_time_limit_reaches_scipy(self):
        # A budgeted solve of a feasible instance still succeeds outright.
        solution = ilp.solve_assignment(problem(), time_limit=10.0)
        assert solution.assignment


class TestSolverExhaustedChain:
    """The full degradation chain down to SolverExhaustedError, and the
    breaker-open-with-greedy-primary edge case."""

    def test_exhausted_records_stats_and_metrics(self, monkeypatch):
        from repro.obs.metrics import MetricsRegistry

        def boom(*args, **kwargs):
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        monkeypatch.setattr(ilp, "_solve_lp_round", boom)
        monkeypatch.setattr(ilp, "_solve_greedy", boom)
        solver = ResilientSolver()
        solver.metrics = MetricsRegistry()
        with pytest.raises(SolverExhaustedError):
            solver.solve(problem())
        assert solver.stats["exhausted"] == 1
        assert solver.metrics.snapshot()["resilience.backend.exhausted"] == 1

    def test_exhausted_message_names_primary(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        monkeypatch.setattr(ilp, "_solve_lp_round", boom)
        monkeypatch.setattr(ilp, "_solve_greedy", boom)
        with pytest.raises(SolverExhaustedError, match="primary='milp'"):
            ResilientSolver().solve(problem())

    def test_greedy_exception_still_counts_primary_failure(self, monkeypatch):
        """A round where every backend dies must advance the breaker, so a
        persistently broken solver eventually stops being retried."""
        def boom(*args, **kwargs):
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        monkeypatch.setattr(ilp, "_solve_lp_round", boom)
        monkeypatch.setattr(ilp, "_solve_greedy", boom)
        solver = ResilientSolver(ResilienceConfig(breaker_threshold=2,
                                                  breaker_cooldown_rounds=2))
        p = problem()
        with pytest.raises(SolverExhaustedError):
            solver.solve(p)
        with pytest.raises(SolverExhaustedError):
            solver.solve(p)
        assert solver.breaker_open
        assert solver.stats["breaker_trips"] == 1

    def test_breaker_open_with_greedy_primary_exhausts(self, monkeypatch):
        """Edge case: primary == 'greedy' and the breaker is open.  The
        open breaker skips the primary, and there is no further fallback
        below greedy — the solver must raise (callers carry forward during
        the cooldown) rather than loop or return garbage."""
        calls = {"n": 0}

        def counting_greedy(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("injected greedy failure")
        monkeypatch.setattr(ilp, "_solve_greedy", counting_greedy)
        solver = ResilientSolver(ResilienceConfig(breaker_threshold=1,
                                                  breaker_cooldown_rounds=2,
                                                  fallback_chain=("greedy",)))
        p = problem()
        with pytest.raises(SolverExhaustedError):
            solver.solve(p, primary="greedy")  # failure trips the breaker
        assert solver.breaker_open
        calls["n"] = 0
        with pytest.raises(SolverExhaustedError):
            solver.solve(p, primary="greedy")
        # Cooldown round: no backend attempted at all — straight to raise.
        assert calls["n"] == 0
        assert solver.stats["exhausted"] == 2

    def test_breaker_open_greedy_primary_recovers_after_cooldown(
            self, monkeypatch):
        real = ilp._solve_greedy
        calls = {"n": 0}

        def flaky_greedy(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected")
            return real(*args, **kwargs)
        monkeypatch.setattr(ilp, "_solve_greedy", flaky_greedy)
        solver = ResilientSolver(ResilienceConfig(breaker_threshold=1,
                                                  breaker_cooldown_rounds=1,
                                                  fallback_chain=("greedy",)))
        p = problem()
        with pytest.raises(SolverExhaustedError):
            solver.solve(p, primary="greedy")  # trips the breaker
        with pytest.raises(SolverExhaustedError):
            solver.solve(p, primary="greedy")  # cooldown round, skipped
        solution, backend, degraded = solver.solve(p, primary="greedy")
        assert backend == "greedy" and not degraded
        assert solution.assignment

    def test_exhausted_policy_is_rescued_by_scheduler_guard(
            self, monkeypatch, hetero_cluster):
        """End to end: every backend dead -> SiaPolicy raises
        SolverExhaustedError -> ResilientScheduler carries forward."""
        def boom(*args, **kwargs):
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        monkeypatch.setattr(ilp, "_solve_lp_round", boom)
        monkeypatch.setattr(ilp, "_solve_greedy", boom)
        params = SiaPolicyParams(resilience=ResilienceConfig())
        sched = ResilientScheduler(SiaScheduler(params))
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.3)]
        result = simulate(hetero_cluster, sched, jobs, max_hours=1)
        assert sched.caught_failures > 0
        assert isinstance(sched.last_error, SolverExhaustedError)
        assert result.backend_counts().get("carry", 0) > 0

    def test_solver_counters_reach_round_snapshots(self, monkeypatch,
                                                   hetero_cluster,
                                                   tmp_path):
        """Satellite: ResilientSolver/ResilientScheduler counters are folded
        into the run's MetricsRegistry and surface in saved results."""
        from repro import io
        real = ilp._solve_milp
        calls = {"n": 0}

        def flaky(problem, time_limit=None):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise RuntimeError("injected")
            return real(problem, time_limit=time_limit)
        monkeypatch.setattr(ilp, "_solve_milp", flaky)
        params = SiaPolicyParams(
            resilience=ResilienceConfig(retry_primary=False))
        sched = ResilientScheduler(SiaScheduler(params))
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.3)]
        result = simulate(hetero_cluster, sched, jobs, max_hours=100)
        counts = result.resilience_counts()
        assert counts.get("resilience.backend.milp", 0) > 0
        assert counts.get("resilience.backend.lp_round", 0) > 0
        # the same counters appear in the final per-round snapshot
        assert result.rounds[-1].metrics.get("resilience.backend.lp_round",
                                             0) > 0
        # ... and survive a save/load round trip
        path = tmp_path / "res.json"
        io.save_result(result, path)
        assert io.load_result(path).resilience_counts() == counts


class TestPrimaryRetry:
    """The relaxed-budget retry (gray-failure hardening): a transient
    primary failure gets one more chance before the chain degrades."""

    def test_retry_rescues_transient_failure(self, monkeypatch):
        real = ilp._solve_milp
        calls = {"n": 0}

        def once(problem, time_limit=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected")
            return real(problem, time_limit=time_limit)
        monkeypatch.setattr(ilp, "_solve_milp", once)
        solver = ResilientSolver()
        solution, backend, degraded = solver.solve(problem())
        assert backend == "milp" and degraded
        assert solution.assignment
        assert solver.retries == 1
        assert solver.attempt_outcomes == {"milp.error": 1, "milp.ok": 1}
        # The rescued round does not advance the breaker.
        assert solver._consecutive_failures == 0

    def test_retry_budget_is_relaxed_and_deterministic(self):
        cfg = ResilienceConfig(solve_budget_s=2.0, retry_budget_factor=2.0,
                               retry_jitter=0.25)
        solver_a = ResilientSolver(cfg)
        solver_b = ResilientSolver(cfg)
        # The jitter token is the retry ordinal: identical histories yield
        # identical relaxed budgets (checkpoint resumes replay them).
        from repro.core.health import deterministic_jitter
        for solver in (solver_a, solver_b):
            solver.retries += 1
        jitter = deterministic_jitter("solver-retry:1", cfg.retry_jitter)
        relaxed = cfg.solve_budget_s * cfg.retry_budget_factor * (1 + jitter)
        assert relaxed >= 4.0
        assert solver_a.retries == solver_b.retries

    def test_greedy_primary_never_retries(self, monkeypatch):
        calls = {"n": 0}

        def boom(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_greedy", boom)
        solver = ResilientSolver(
            ResilienceConfig(fallback_chain=("greedy",)))
        with pytest.raises(SolverExhaustedError):
            solver.solve(problem(), primary="greedy")
        assert calls["n"] == 1  # no second greedy attempt
        assert solver.retries == 0

    def test_one_breaker_failure_per_solve(self, monkeypatch):
        def boom(problem, time_limit=None):
            raise RuntimeError("injected")
        monkeypatch.setattr(ilp, "_solve_milp", boom)
        solver = ResilientSolver(ResilienceConfig(breaker_threshold=3))
        p = problem()
        solver.solve(p)  # error + retry error + lp_round rescue
        assert solver._consecutive_failures == 1
        assert solver.attempt_outcomes["milp.error"] == 2
        assert solver.attempt_outcomes["lp_round.ok"] == 1

    def test_attempt_outcomes_persist_through_io(self, monkeypatch,
                                                 hetero_cluster, tmp_path):
        """Satellite 2: per-attempt outcomes flow into the metrics registry
        and survive a save/load round trip."""
        from repro import io
        real = ilp._solve_milp
        calls = {"n": 0}

        def flaky(problem, time_limit=None):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise RuntimeError("injected")
            return real(problem, time_limit=time_limit)
        monkeypatch.setattr(ilp, "_solve_milp", flaky)
        params = SiaPolicyParams(resilience=ResilienceConfig())
        sched = ResilientScheduler(SiaScheduler(params))
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.3)]
        result = simulate(hetero_cluster, sched, jobs, max_hours=100)
        counts = result.resilience_counts()
        assert counts.get("resilience.attempt.milp.ok", 0) > 0
        assert counts.get("resilience.attempt.milp.error", 0) > 0
        assert counts.get("resilience.primary_retries", 0) > 0
        path = tmp_path / "res.json"
        io.save_result(result, path)
        assert io.load_result(path).resilience_counts() == counts


class TestCarryForward:
    def _random_previous(self, cluster, rng, n_jobs):
        """Valid allocations on the full cluster, random but packed."""
        occupancy = {}
        previous = {}
        for i in range(n_jobs):
            node = rng.choice(cluster.nodes)
            free = node.num_gpus - occupancy.get(node.node_id, 0)
            if free <= 0:
                continue
            take = rng.randint(1, free)
            occupancy[node.node_id] = occupancy.get(node.node_id, 0) + take
            previous[f"j{i}"] = Allocation.build(node.gpu_type,
                                                 {node.node_id: take})
        return previous

    def test_never_oversubscribes_shrunken_cluster(self):
        """Property-style: for many random (allocations, shrink) draws the
        carried plan always validates on the surviving nodes."""
        full = presets.heterogeneous()
        for seed in range(30):
            rng = random.Random(seed)
            previous = self._random_previous(full, rng, n_jobs=10)
            survivors = [n for n in full.nodes if rng.random() > 0.4]
            if not survivors:
                survivors = [full.nodes[0]]
            shrunk = Cluster(nodes=tuple(survivors))
            views = [SimpleNamespace(job_id=jid) for jid in previous]
            plan = carry_forward_plan(previous, shrunk, views)
            plan.validate(shrunk)  # must never raise
            assert plan.backend == "carry" and plan.degraded
            down = {n.node_id for n in full.nodes} - \
                {n.node_id for n in shrunk.nodes}
            for alloc in plan.allocations.values():
                assert not (set(alloc.node_ids) & down)

    def test_drops_departed_jobs(self, hetero_cluster):
        previous = {"gone": Allocation.build("t4", {0: 2}),
                    "kept": Allocation.build("t4", {1: 2})}
        views = [SimpleNamespace(job_id="kept")]
        plan = carry_forward_plan(previous, hetero_cluster, views)
        assert set(plan.allocations) == {"kept"}

    def test_gpu_type_mismatch_dropped(self):
        cluster = Cluster.from_groups([NodeGroup("t4", 1, 4)])
        previous = {"j0": Allocation.build("a100", {0: 2})}
        views = [SimpleNamespace(job_id="j0")]
        plan = carry_forward_plan(previous, cluster, views)
        assert plan.allocations == {}
        plan.validate(cluster)


class _FlakyScheduler(Scheduler):
    """Delegates to Sia, but blows up (or emits garbage) on schedule."""

    name = "flaky"

    def __init__(self, every=3, mode="raise"):
        self.inner = SiaScheduler()
        self.round_duration = self.inner.round_duration
        self.calls = 0
        self.every = every
        self.mode = mode

    def make_estimator(self, job, cluster, profiling_mode):
        return self.inner.make_estimator(job, cluster, profiling_mode)

    def decide(self, views, cluster, previous, now):
        self.calls += 1
        if self.calls % self.every == 0:
            if self.mode == "raise":
                raise RuntimeError("injected scheduler failure")
            # Garbage plan: allocate a node that does not exist.
            return RoundPlan(allocations={
                views[0].job_id: Allocation.build("t4", {10**6: 1})})
        return self.inner.decide(views, cluster, previous, now)


class TestResilientScheduler:
    def test_wraps_exceptions_into_carry(self, hetero_cluster):
        jobs = [make_job(f"j{i}", "resnet18", 0.0, work_scale=0.4)
                for i in range(3)]
        sched = ResilientScheduler(_FlakyScheduler(every=3))
        result = simulate(hetero_cluster, sched, jobs, max_hours=100)
        assert all(j.completed for j in result.jobs)
        assert sched.caught_failures > 0
        assert result.degraded_rounds >= sched.caught_failures
        assert result.backend_counts().get("carry", 0) > 0

    def test_invalid_plans_are_caught(self, hetero_cluster):
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.3)]
        sched = ResilientScheduler(_FlakyScheduler(every=2, mode="garbage"))
        result = simulate(hetero_cluster, sched, jobs, max_hours=100)
        assert result.jobs[0].completed
        assert sched.caught_failures > 0

    def test_simulator_guard_requires_opt_in(self, hetero_cluster):
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.3)]
        with pytest.raises(RuntimeError, match="injected"):
            simulate(hetero_cluster, _FlakyScheduler(every=2), jobs,
                     max_hours=100)
        result = simulate(hetero_cluster, _FlakyScheduler(every=2), jobs,
                          max_hours=100, resilient=True)
        assert result.jobs[0].completed
        assert result.degraded_rounds > 0

    def test_delegates_estimators_and_cadence(self, hetero_cluster):
        inner = SiaScheduler()
        sched = ResilientScheduler(inner)
        assert sched.round_duration == inner.round_duration
        assert sched.name == "resilient-sia"
        assert "guarded" in sched.describe()


class TestChaos:
    def test_chaos_run_completes_with_degraded_telemetry(
            self, hetero_cluster, monkeypatch):
        """Acceptance: MILP failures + node crashes + stragglers in one run;
        every job finishes and degraded-round telemetry is nonzero."""
        real = ilp._solve_milp
        calls = {"n": 0}

        def flaky(problem, time_limit=None):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise RuntimeError("injected MILP failure")
            return real(problem, time_limit=time_limit)
        monkeypatch.setattr(ilp, "_solve_milp", flaky)

        params = SiaPolicyParams(
            resilience=ResilienceConfig(solve_budget_s=5.0,
                                        breaker_threshold=3,
                                        breaker_cooldown_rounds=5,
                                        retry_primary=False))
        scheduler = ResilientScheduler(SiaScheduler(params))
        jobs = [make_job(f"j{i}", "resnet18", 0.0, work_scale=0.4)
                for i in range(4)]
        result = simulate(
            hetero_cluster, scheduler, jobs, seed=1, max_hours=200,
            resilient=True,
            fault_models=[NodeCrashModel(rate=2.0, seed=41),
                          StragglerModel(rate=20.0, slowdown=0.4, seed=42),
                          JobCrashModel(rate=5.0, seed=43)])
        assert all(j.completed for j in result.jobs)
        assert result.degraded_rounds > 0
        assert result.total_fault_events > 0
        backends = result.backend_counts()
        assert backends.get("lp_round", 0) > 0  # the fallback chain engaged
        loaded_summary = result.fault_counts()
        assert loaded_summary  # structured fault telemetry survives

    def test_chaos_telemetry_round_trips(self, hetero_cluster, tmp_path,
                                         monkeypatch):
        from repro import io
        jobs = [make_job("j0", "resnet18", 0.0, work_scale=0.3)]
        result = simulate(hetero_cluster, SiaScheduler(), jobs, seed=2,
                          max_hours=100,
                          fault_models=[JobCrashModel(rate=60.0, seed=5)])
        assert result.total_fault_events > 0
        path = tmp_path / "res.json"
        io.save_result(result, path)
        loaded = io.load_result(path)
        assert loaded.fault_counts() == result.fault_counts()
        assert loaded.degraded_rounds == result.degraded_rounds
        assert loaded.backend_counts() == result.backend_counts()

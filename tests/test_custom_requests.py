"""Custom resource requests (Section 3.4): jobs with user-defined
parallelism pinned to a specific GPU count, type and/or batch size."""

import pytest

from repro.cluster import presets
from repro.core.types import AdaptivityMode
from repro.jobs.job import make_job
from repro.schedulers import SiaScheduler
from repro.sim import simulate


class TestFullyPinnedJobs:
    def test_count_type_and_batch_all_pinned(self, hetero_cluster):
        """A job tuned offline for 4x rtx at batch 48 must run exactly
        there, while Sia still schedules everything else freely."""
        pinned = make_job("pinned", "bert", 0.0,
                          adaptivity=AdaptivityMode.RIGID,
                          fixed_num_gpus=4, fixed_batch_size=48,
                          work_scale=0.1)
        pinned.fixed_gpu_type = "rtx"
        friends = [make_job(f"f{i}", "resnet18", 0.0, work_scale=0.05)
                   for i in range(4)]
        result = simulate(hetero_cluster, SiaScheduler(), [pinned, *friends],
                          max_hours=50)
        record = result.job("pinned")
        assert record.completed
        assert set(record.gpu_seconds) == {"rtx"}
        counts = {n for _, _, n in result.allocation_timeline("pinned")
                  if n > 0}
        assert counts == {4}

    def test_type_pinned_adaptive_job_still_scales(self, hetero_cluster):
        """Pinning only the GPU type leaves count/batch adaptivity alive."""
        job = make_job("typed", "deepspeech2", 0.0, work_scale=0.4)
        job.fixed_gpu_type = "rtx"
        result = simulate(hetero_cluster, SiaScheduler(), [job],
                          max_hours=50)
        record = result.job("typed")
        assert record.completed
        assert set(record.gpu_seconds) == {"rtx"}
        counts = {n for _, _, n in result.allocation_timeline("typed")
                  if n > 0}
        assert len(counts) > 1  # it scaled up over its life

    def test_pinned_type_with_no_capacity_queues(self, tiny_cluster):
        """A job pinned to a type the cluster lacks stays queued (censored)
        rather than crashing the policy."""
        job = make_job("stranded", "resnet18", 0.0, work_scale=0.05)
        job.fixed_gpu_type = "a100"  # tiny_cluster has quad + t4 only
        result = simulate(tiny_cluster, SiaScheduler(), [job], max_hours=0.2)
        assert result.censored == 1

"""Tests for Shockwave, Themis, FIFO and SRTF baselines."""

import math

import pytest

from repro.core.types import AdaptivityMode, Configuration, ProfilingMode
from repro.jobs.job import make_job
from repro.schedulers import (FIFOScheduler, ShockwaveScheduler,
                              SRTFScheduler, ThemisScheduler)
from repro.schedulers.base import JobView
from repro.schedulers.shockwave import fair_finish_ratio, place_rigid


def rigid_view(job_id, model, cluster, *, gpus=1, submit=0.0, progress=0.0,
               scheduler=None) -> JobView:
    job = make_job(job_id, model, submit, adaptivity=AdaptivityMode.RIGID,
                   fixed_num_gpus=gpus)
    scheduler = scheduler or ShockwaveScheduler()
    estimator = scheduler.make_estimator(job, cluster, ProfilingMode.ORACLE)
    return JobView(job=job, estimator=estimator, current_config=None,
                   age=0.0, num_restarts=0, progress=progress)


class TestFairFinishRatio:
    def test_fresh_job_low_ratio(self, hetero_cluster):
        view = rigid_view("j1", "bert", hetero_cluster)
        rho = fair_finish_ratio(view, hetero_cluster, 0.0, contention=10)
        assert 0 < rho < 1

    def test_starved_job_ratio_grows(self, hetero_cluster):
        view = rigid_view("j1", "bert", hetero_cluster)
        early = fair_finish_ratio(view, hetero_cluster, 0.0, contention=2)
        late = fair_finish_ratio(view, hetero_cluster, 10 * 3600.0,
                                 contention=2)
        assert late > early

    def test_infeasible_job_infinite(self, hetero_cluster):
        view = rigid_view("big", "bert", hetero_cluster, gpus=32)
        assert math.isinf(fair_finish_ratio(view, hetero_cluster, 0.0, 1))


class TestPlaceRigid:
    def test_picks_fastest_type_when_free(self, hetero_cluster):
        view = rigid_view("j1", "bert", hetero_cluster, gpus=2)
        alloc = place_rigid(view, hetero_cluster, {}, None)
        assert alloc.gpu_type == "a100"

    def test_prefers_current_type_when_competitive(self, hetero_cluster):
        """DeepSpeech2 on rtx is within 2x of its best type, so it stays
        put rather than paying a checkpoint-restore."""
        from repro.core.types import Allocation
        view = rigid_view("j1", "deepspeech2", hetero_cluster, gpus=2)
        rtx_node = hetero_cluster.nodes_of_type("rtx")[0].node_id
        prev = Allocation.build("rtx", {rtx_node: 2})
        alloc = place_rigid(view, hetero_cluster, {}, prev)
        assert alloc == prev  # stays put: no restart

    def test_migrates_when_current_type_is_terrible(self, hetero_cluster):
        """BERT stuck on t4 runs ~7x slower than on a100: worth a restart."""
        from repro.core.types import Allocation
        view = rigid_view("j1", "bert", hetero_cluster, gpus=2)
        t4_node = hetero_cluster.nodes_of_type("t4")[0].node_id
        prev = Allocation.build("t4", {t4_node: 2})
        alloc = place_rigid(view, hetero_cluster, {}, prev)
        assert alloc.gpu_type == "a100"

    def test_falls_back_when_best_full(self, hetero_cluster):
        occupancy = {n.node_id: n.num_gpus
                     for n in hetero_cluster.nodes_of_type("a100")}
        view = rigid_view("j1", "bert", hetero_cluster, gpus=2)
        alloc = place_rigid(view, hetero_cluster, occupancy, None)
        assert alloc is not None
        assert alloc.gpu_type != "a100"


class TestShockwaveAndThemis:
    @pytest.mark.parametrize("scheduler_cls", [ShockwaveScheduler,
                                               ThemisScheduler])
    def test_plan_valid(self, hetero_cluster, scheduler_cls):
        scheduler = scheduler_cls()
        views = [rigid_view(f"j{i}", "resnet18", hetero_cluster, gpus=2,
                            scheduler=scheduler) for i in range(8)]
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        plan.validate(hetero_cluster)
        assert plan.allocations

    @pytest.mark.parametrize("scheduler_cls", [ShockwaveScheduler,
                                               ThemisScheduler])
    def test_starved_job_prioritized(self, hetero_cluster, scheduler_cls):
        """A long-waiting job must be served before fresh arrivals when
        capacity is scarce."""
        scheduler = scheduler_cls()
        now = 8 * 3600.0
        starved = rigid_view("starved", "resnet50", hetero_cluster, gpus=16,
                             submit=0.0, scheduler=scheduler)
        fresh = [rigid_view(f"fresh{i}", "resnet50", hetero_cluster, gpus=16,
                            submit=now - 60.0, scheduler=scheduler)
                 for i in range(4)]  # total demand 80 > 64
        plan = scheduler.decide([*fresh, starved], hetero_cluster, {}, now)
        assert "starved" in plan.allocations

    def test_shockwave_efficiency_tier_is_sjf(self, hetero_cluster):
        """Among fair jobs (rho <= 1), Shockwave prefers the nearly-done one."""
        scheduler = ShockwaveScheduler()
        contention = 2
        nearly_done = rigid_view("done", "resnet50", hetero_cluster,
                                 scheduler=scheduler)
        nearly_done.progress = 0.9 * nearly_done.job.target_samples
        fresh = rigid_view("fresh", "resnet50", hetero_cluster,
                           scheduler=scheduler)
        p_done = scheduler._priority(nearly_done, hetero_cluster, 0.0,
                                     contention)
        p_fresh = scheduler._priority(fresh, hetero_cluster, 0.0, contention)
        assert p_done > p_fresh

    def test_shockwave_unfair_tier_beats_fair_tier(self, hetero_cluster):
        """A job past the unfairness threshold outranks any fair job."""
        scheduler = ShockwaveScheduler()
        now = 48 * 3600.0  # starved waited two days
        starved = rigid_view("starved", "resnet18", hetero_cluster,
                             scheduler=scheduler)
        fresh = rigid_view("fresh", "resnet18", hetero_cluster,
                           submit=now - 60.0, scheduler=scheduler)
        fresh.progress = 0.99 * fresh.job.target_samples
        p_starved = scheduler._priority(starved, hetero_cluster, now, 2)
        p_fresh = scheduler._priority(fresh, hetero_cluster, now, 2)
        assert p_starved[0] == 1  # at-risk tier
        assert p_starved > p_fresh

    def test_empty_views(self, hetero_cluster):
        for scheduler in (ShockwaveScheduler(), ThemisScheduler()):
            assert scheduler.decide([], hetero_cluster, {}, 0.0).allocations \
                == {}


class TestFIFO:
    def test_serves_in_submission_order(self, hetero_cluster):
        scheduler = FIFOScheduler()
        views = [rigid_view(f"j{i}", "resnet50", hetero_cluster, gpus=16,
                            submit=float(i), scheduler=scheduler)
                 for i in range(6)]  # demand 96 > 64
        plan = scheduler.decide(views, hetero_cluster, {}, 10.0)
        # 16-GPU jobs fit once per type (capacities 24/24/16): exactly the
        # three earliest-submitted jobs run.
        assert set(plan.allocations) == {"j0", "j1", "j2"}

    def test_never_preempts(self, hetero_cluster):
        scheduler = FIFOScheduler()
        views = [rigid_view("old", "resnet50", hetero_cluster, gpus=16,
                            submit=0.0, scheduler=scheduler)]
        first = scheduler.decide(views, hetero_cluster, {}, 0.0)
        views.append(rigid_view("new", "bert", hetero_cluster, gpus=16,
                                submit=1.0, scheduler=scheduler))
        second = scheduler.decide(views, hetero_cluster,
                                  first.allocations, 360.0)
        assert second.allocations["old"] == first.allocations["old"]


class TestSRTF:
    def test_shortest_first(self, hetero_cluster):
        scheduler = SRTFScheduler()
        short = rigid_view("short", "resnet18", hetero_cluster, gpus=16,
                           scheduler=scheduler)
        long_jobs = [rigid_view(f"long{i}", "resnet50", hetero_cluster,
                                gpus=16, scheduler=scheduler)
                     for i in range(4)]
        plan = scheduler.decide([*long_jobs, short], hetero_cluster, {}, 0.0)
        assert "short" in plan.allocations

    def test_progress_shortens_remaining(self, hetero_cluster):
        scheduler = SRTFScheduler()
        view = rigid_view("j1", "resnet50", hetero_cluster,
                          scheduler=scheduler)
        before = scheduler._remaining_time(view, hetero_cluster)
        view.progress = 0.5 * view.job.target_samples
        after = scheduler._remaining_time(view, hetero_cluster)
        assert after == pytest.approx(before / 2, rel=1e-6)

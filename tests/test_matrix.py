"""Tests for goodput-matrix normalization, restart factor (Equation 3) and
utility shaping (Section 3.4)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.matrix import (apply_restart_discount, build_goodput_matrix,
                               config_index, config_index_map, normalize_rows,
                               restart_factor, shape_utilities)
from repro.core.types import Configuration


class TestBuildMatrix:
    def test_basic(self):
        matrix = build_goodput_matrix([{0: 1.5, 2: 3.0}, {1: 2.0}], 3)
        assert matrix[0, 0] == 1.5
        assert math.isnan(matrix[0, 1])
        assert matrix[1, 1] == 2.0

    def test_nonpositive_marked_infeasible(self):
        matrix = build_goodput_matrix([{0: 0.0, 1: -1.0}], 2)
        assert math.isnan(matrix[0, 0]) and math.isnan(matrix[0, 1])

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            build_goodput_matrix([{5: 1.0}], 2)


class TestNormalization:
    def test_row_min_becomes_min_gpus(self):
        matrix = build_goodput_matrix([{0: 2.0, 1: 8.0}], 2)
        out = normalize_rows(matrix, [1])
        assert out[0, 0] == pytest.approx(1.0)
        assert out[0, 1] == pytest.approx(4.0)

    def test_min_gpus_scales_row(self):
        matrix = build_goodput_matrix([{0: 2.0, 1: 8.0}], 2)
        out = normalize_rows(matrix, [4])
        assert out[0, 0] == pytest.approx(4.0)
        assert out[0, 1] == pytest.approx(16.0)

    def test_empty_row_untouched(self):
        matrix = build_goodput_matrix([{}], 2)
        out = normalize_rows(matrix, [1])
        assert math.isnan(out[0, 0])

    def test_length_mismatch(self):
        matrix = build_goodput_matrix([{0: 1.0}], 1)
        with pytest.raises(ValueError):
            normalize_rows(matrix, [1, 1])

    @given(values=st.lists(st.floats(0.1, 1e4), min_size=1, max_size=8))
    def test_normalized_rows_at_least_min_gpus(self, values):
        matrix = build_goodput_matrix([dict(enumerate(values))], len(values))
        out = normalize_rows(matrix, [2])
        finite = out[0][~np.isnan(out[0])]
        assert finite.min() == pytest.approx(2.0)

    @given(values=st.lists(st.floats(0.1, 1e4), min_size=2, max_size=8),
           scale=st.floats(0.5, 100.0))
    def test_scale_invariance(self, values, scale):
        """Normalization makes rows unit-free: scaling all goodputs of a job
        leaves its normalized row unchanged."""
        m1 = build_goodput_matrix([dict(enumerate(values))], len(values))
        m2 = build_goodput_matrix(
            [dict(enumerate([v * scale for v in values]))], len(values))
        out1 = normalize_rows(m1, [1])
        out2 = normalize_rows(m2, [1])
        np.testing.assert_allclose(out1, out2, rtol=1e-9)


class TestRestartFactor:
    def test_never_started_is_neutral(self):
        assert restart_factor(0.0, 0, 0.0) == 1.0

    def test_young_job_heavily_discounted(self):
        """Equation 3: a 60 s old job with a 100 s restart cost should hate
        restarting."""
        assert restart_factor(60.0, 0, 100.0) < 0.5

    def test_old_job_approaches_one(self):
        assert restart_factor(1e6, 0, 100.0) > 0.99

    def test_restart_history_lowers_factor(self):
        clean = restart_factor(3600.0, 0, 100.0)
        churned = restart_factor(3600.0, 10, 100.0)
        assert churned < clean

    def test_clamped_to_unit_interval(self):
        assert restart_factor(10.0, 100, 100.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            restart_factor(-1.0, 0, 10.0)

    @given(age=st.floats(0, 1e7), restarts=st.integers(0, 100),
           cost=st.floats(0, 1e4))
    def test_always_in_unit_interval(self, age, restarts, cost):
        assert 0.0 <= restart_factor(age, restarts, cost) <= 1.0


class TestRestartDiscount:
    def test_only_non_current_entries_discounted(self):
        matrix = np.array([[2.0, 4.0, 8.0]])
        out = apply_restart_discount(matrix, [1], [0.5])
        assert out[0, 0] == 1.0
        assert out[0, 1] == 4.0  # current config untouched
        assert out[0, 2] == 4.0

    def test_queued_job_not_discounted(self):
        matrix = np.array([[2.0, 4.0]])
        out = apply_restart_discount(matrix, [None], [0.5])
        np.testing.assert_array_equal(out, matrix)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            apply_restart_discount(np.ones((1, 2)), [None, None], [1.0])


class TestShaping:
    def test_positive_p(self):
        matrix = np.array([[1.0, 4.0]])
        out = shape_utilities(matrix, p=0.5, allocation_incentive=1.1)
        assert out[0, 0] == pytest.approx(1.1 + 1.0)
        assert out[0, 1] == pytest.approx(1.1 + 2.0)

    def test_negative_p_preserves_ordering(self):
        """For p < 0 the objective flips; after our negation, better
        configurations must still have larger utility."""
        matrix = np.array([[1.0, 4.0]])
        out = shape_utilities(matrix, p=-0.5, allocation_incentive=1.1)
        assert out[0, 1] > out[0, 0]

    def test_negative_p_allocation_still_attractive(self):
        """With normalized goodputs >= 1 and lambda > 1, every feasible pair
        keeps positive utility so queued jobs get allocated if possible."""
        matrix = np.array([[1.0, 2.0, 16.0]])
        out = shape_utilities(matrix, p=-0.5, allocation_incentive=1.1)
        assert np.all(out[0] > 0)

    def test_p_zero_uniform(self):
        matrix = np.array([[1.0, 4.0]])
        out = shape_utilities(matrix, p=0.0, allocation_incentive=1.1)
        assert out[0, 0] == out[0, 1] == pytest.approx(2.1)

    def test_nan_preserved(self):
        matrix = np.array([[math.nan, 2.0]])
        out = shape_utilities(matrix, p=-0.5, allocation_incentive=1.1)
        assert math.isnan(out[0, 0])

    def test_zero_entry_becomes_infeasible_for_negative_p(self):
        """A zero restart factor zeroes an entry; 0^p is infinite for p<0,
        so the entry must drop out rather than poison the ILP."""
        matrix = np.array([[0.0, 2.0]])
        out = shape_utilities(matrix, p=-0.5, allocation_incentive=1.1)
        assert math.isnan(out[0, 0])
        assert math.isfinite(out[0, 1])

    def test_zeroed_restart_row_drops_out_for_negative_p(self):
        """Regression: a fully-zeroed row (restart factor 0 on a young job)
        must shape to all-nan for p < 0, not to +inf/huge utilities that
        would make the ILP chase a worthless restart."""
        matrix = np.array([[4.0, 2.0]])
        discounted = apply_restart_discount(matrix, [0], [0.0])
        assert discounted[0, 1] == 0.0
        out = shape_utilities(discounted, p=-0.5, allocation_incentive=1.1)
        assert math.isfinite(out[0, 0])  # the kept (current) config survives
        assert math.isnan(out[0, 1])

    def test_zero_entry_dropped_for_positive_p(self):
        """0^p is finite for p > 0, but a zero-goodput entry is still a
        worthless allocation and must not win utility lambda + 0."""
        matrix = np.array([[0.0, 2.0]])
        out = shape_utilities(matrix, p=0.5, allocation_incentive=1.1)
        assert math.isnan(out[0, 0])
        assert math.isfinite(out[0, 1])

    def test_zero_entry_dropped_for_p_zero(self):
        matrix = np.array([[0.0, 2.0, math.nan]])
        out = shape_utilities(matrix, p=0.0, allocation_incentive=1.1)
        assert math.isnan(out[0, 0])
        assert out[0, 1] == pytest.approx(2.1)
        assert math.isnan(out[0, 2])

    def test_rejects_negative_incentive(self):
        with pytest.raises(ValueError):
            shape_utilities(np.ones((1, 1)), p=0.5, allocation_incentive=-1)

    @given(p=st.floats(-1.0, 1.0), values=st.lists(
        st.floats(1.0, 100.0), min_size=2, max_size=6, unique=True))
    def test_ordering_preserved_for_all_p(self, p, values):
        matrix = np.array([sorted(values)])
        out = shape_utilities(matrix, p=p, allocation_incentive=1.1)
        diffs = np.diff(out[0])
        assert np.all(diffs >= -1e-12)


class TestConfigIndex:
    def test_found(self):
        configs = [Configuration(1, 1, "t4"), Configuration(1, 2, "t4")]
        assert config_index(configs, Configuration(1, 2, "t4")) == 1

    def test_none_input(self):
        assert config_index([], None) is None

    def test_missing(self):
        configs = [Configuration(1, 1, "t4")]
        assert config_index(configs, Configuration(1, 8, "a100")) is None

    def test_index_map_agrees_with_list_index(self):
        configs = [Configuration(1, 1, "t4"), Configuration(1, 2, "t4"),
                   Configuration(1, 8, "a100")]
        index_map = config_index_map(configs)
        assert index_map == {c: j for j, c in enumerate(configs)}
        for config in configs + [Configuration(2, 16, "rtx"), None]:
            assert config_index(configs, config, index_map) == \
                config_index(configs, config)

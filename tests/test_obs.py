"""Tests for the observability subsystem (repro.obs) and its wiring
through the scheduler-simulator stack."""

import json

import pytest

from repro import io
from repro.core.types import AdaptivityMode
from repro.jobs.job import make_job
from repro.obs.export import (chrome_trace, read_events_jsonl, run_digest,
                              span_digest, validate_chrome_trace,
                              write_chrome_trace, write_events_jsonl)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanStats, Tracer
from repro.schedulers import (FIFOScheduler, GavelScheduler, PolluxScheduler,
                              ShockwaveScheduler, SiaScheduler, SRTFScheduler,
                              ThemisScheduler)
from repro.schedulers.base import PLAN_PHASES
from repro.sim.engine import SimulatorConfig, simulate
from repro.sim.telemetry import JobRecord, RoundRecord, SimulationResult


def tiny_job(job_id="j1", model="resnet18", submit=0.0, **kw):
    return make_job(job_id, model, submit, work_scale=0.05, **kw)


def rigid_job(job_id="j1", model="resnet18", submit=0.0, gpus=1):
    return make_job(job_id, model, submit, work_scale=0.05,
                    adaptivity=AdaptivityMode.RIGID, fixed_num_gpus=gpus)


# -- tracer -------------------------------------------------------------------

class TestTracer:
    def test_records_span_with_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="test"):
            pass
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.attrs == {"kind": "test"}
        assert span.duration >= 0
        assert span.parent_id is None and span.depth == 0
        assert span.end == pytest.approx(span.start + span.duration)

    def test_nesting_tracks_parents_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert (by_name["outer"].depth, by_name["middle"].depth,
                by_name["inner"].depth) == (0, 1, 2)

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        parent = next(s for s in tracer.spans if s.name == "parent")
        kids = tracer.children(parent.span_id)
        assert sorted(s.name for s in kids) == ["a", "b"]

    def test_spans_close_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_annotate_mid_span(self):
        tracer = Tracer()
        with tracer.span("solve") as span:
            span.annotate(outcome="ok")
        assert tracer.spans[0].attrs["outcome"] == "ok"

    def test_instant_events(self):
        tracer = Tracer()
        tracer.instant("breaker_trip", backend="milp")
        assert len(tracer.events) == 1
        name, ts, attrs = tracer.events[0]
        assert name == "breaker_trip" and ts >= 0
        assert attrs == {"backend": "milp"}

    def test_span_stats_and_totals(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("solve"):
                pass
        stats = tracer.span_stats("solve")
        assert stats.count == 3
        assert stats.total >= stats.max >= stats.min >= 0
        assert stats.mean == pytest.approx(stats.total / 3)
        assert tracer.totals_by_name()["solve"] == pytest.approx(stats.total)
        assert tracer.span_stats("missing").count == 0
        assert SpanStats(name="x").mean == 0.0

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.instant("e")
        tracer.reset()
        assert tracer.spans == [] and tracer.events == []

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer.spans) == 1
        # The stack unwound: a new span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("work", attr=1) as span:
            span.annotate(more=2)
        tracer.instant("event")
        assert tracer.spans == () and tracer.events == ()
        assert not tracer.enabled

    def test_shared_singleton_span(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b", attr=1)
        assert a is b  # one shared no-op object: no per-call allocation

    def test_queries_are_empty(self):
        assert NULL_TRACER.span_stats("x").count == 0
        assert NULL_TRACER.totals_by_name() == {}
        assert NULL_TRACER.children(1) == []
        NULL_TRACER.reset()  # no-op, must not raise


# -- metrics ------------------------------------------------------------------

class TestMetrics:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("depth")
        g.set(4.5)
        assert g.value == 4.5

    def test_histogram(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_quantile_matches_numpy_reference(self):
        import numpy as np
        import random
        rng = random.Random(23)
        h = Histogram("t")
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(101)]
        for v in values:
            h.observe(v)
        for q in (0.0, 0.05, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(
                float(np.quantile(np.asarray(values), q, method="linear")),
                rel=1e-12)
        # percentile() is the [0, 100]-scaled view of the same definition.
        assert h.percentile(95) == h.quantile(0.95)

    def test_registry_items_exposes_types(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        items = reg.items()
        assert [name for name, _ in items] == ["a", "b"]  # sorted
        assert isinstance(items[0][1], Gauge)
        assert isinstance(items[1][1], Counter)

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")  # 'a' is already a counter

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("rounds").inc()
        reg.gauge("depth").set(2)
        reg.histogram("solve").observe(0.5)
        snap = reg.snapshot()
        assert snap["rounds"] == 1
        assert snap["depth"] == 2
        assert snap["solve.count"] == 1
        assert snap["solve.mean"] == pytest.approx(0.5)
        assert snap["solve.max"] == pytest.approx(0.5)

    def test_digest_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("rounds").inc(7)
        reg.histogram("solve").observe(1.0)
        text = reg.digest()
        assert "rounds" in text and "solve" in text


# -- exporters ----------------------------------------------------------------

class TestExport:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("round", index=0):
            with tracer.span("plan", scheduler="sia"):
                pass
        tracer.instant("marker", note="hi")
        return tracer

    def test_chrome_trace_is_valid(self):
        tracer = self._spans()
        payload = chrome_trace(tracer.spans, tracer.events)
        validate_chrome_trace(payload)  # must not raise
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"M", "X", "i"}
        plan = next(e for e in payload["traceEvents"]
                    if e.get("name") == "plan")
        rnd = next(e for e in payload["traceEvents"]
                   if e.get("name") == "round")
        assert plan["args"]["parent_id"] == rnd["args"]["span_id"]

    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        tracer = self._spans()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer.spans, path, tracer.events)
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        assert payload["displayTimeUnit"] == "ms"

    @pytest.mark.parametrize("payload", [
        [],                                             # not an object
        {},                                             # no traceEvents
        {"traceEvents": [{"ph": "X"}]},                 # no name
        {"traceEvents": [{"name": "a", "ph": "q"}]},    # bad phase
        {"traceEvents": [{"name": "a", "ph": "X", "ts": -1.0, "dur": 1.0,
                          "pid": 0, "tid": 0}]},        # negative ts
        {"traceEvents": [{"name": "a", "ph": "X", "ts": 0.0,
                          "pid": 0, "tid": 0}]},        # X without dur
        {"traceEvents": [{"name": "a", "ph": "i", "ts": 0.0,
                          "pid": "x", "tid": 0}]},      # non-int pid
    ])
    def test_validate_rejects_malformed(self, payload):
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)

    def test_events_jsonl_round_trip(self, tmp_path):
        tracer = self._spans()
        path = tmp_path / "events.jsonl"
        metrics = {"rounds": 3.0}
        write_events_jsonl(tracer.spans, path, tracer.events, metrics)
        spans, read_metrics = read_events_jsonl(path)
        assert read_metrics == metrics
        assert [s.name for s in spans] == [s.name for s in tracer.spans]
        assert [s.span_id for s in spans] == \
            [s.span_id for s in tracer.spans]
        assert [s.parent_id for s in spans] == \
            [s.parent_id for s in tracer.spans]
        assert spans[0].duration == pytest.approx(tracer.spans[0].duration)

    def test_span_digest_lists_names(self):
        tracer = self._spans()
        text = span_digest(tracer.spans)
        assert "round" in text and "plan" in text
        assert span_digest([]) == "(no spans recorded)"


# -- scheduler instrumentation ------------------------------------------------

SCHEDULER_CASES = [
    ("sia", SiaScheduler, tiny_job),
    ("pollux", PolluxScheduler, tiny_job),
    ("gavel", lambda: GavelScheduler(), lambda **kw: rigid_job(gpus=1, **kw)),
    ("themis", ThemisScheduler, lambda **kw: rigid_job(gpus=1, **kw)),
    ("shockwave", ShockwaveScheduler, lambda **kw: rigid_job(gpus=1, **kw)),
    ("fifo", FIFOScheduler, lambda **kw: rigid_job(gpus=1, **kw)),
    ("srtf", SRTFScheduler, lambda **kw: rigid_job(gpus=1, **kw)),
]


class TestSchedulerSpans:
    @pytest.mark.parametrize("name,factory,job_factory", SCHEDULER_CASES,
                             ids=[c[0] for c in SCHEDULER_CASES])
    def test_every_scheduler_emits_standard_phases(self, hetero_cluster,
                                                   name, factory,
                                                   job_factory):
        tracer = Tracer()
        result = simulate(hetero_cluster, factory(),
                          [job_factory(job_id="j1"),
                           job_factory(job_id="j2", submit=60.0)],
                          tracer=tracer, max_hours=3.0)
        names = {s.name for s in result.spans}
        assert {"round", "plan", "apply", "advance"} <= names
        assert set(PLAN_PHASES) <= names, f"{name} missing phase spans"

        by_id = {s.span_id: s for s in result.spans}
        plans = [s for s in result.spans if s.name == "plan"]
        rounds = [s for s in result.spans if s.name == "round"]
        assert len(plans) == len(rounds) == len(result.rounds)
        # plan nests under round; every phase span nests under a plan.
        for span in plans:
            assert by_id[span.parent_id].name == "round"
        for span in result.spans:
            if span.name in PLAN_PHASES:
                assert by_id[span.parent_id].name == "plan"

    def test_sia_phases_sum_to_solve_time(self, hetero_cluster):
        tracer = Tracer()
        result = simulate(hetero_cluster, SiaScheduler(),
                          [tiny_job("j1"), tiny_job("j2", submit=60.0)],
                          tracer=tracer, max_hours=3.0)
        breakdown = result.phase_time_breakdown()
        total_solve = sum(r.solve_time for r in result.rounds)
        assert all(v >= 0 for v in breakdown.values())
        phase_total = sum(breakdown.values())
        # Phases run inside the timed plan path, so they can never exceed
        # it, and they cover nearly all of it.
        assert phase_total <= total_solve
        assert phase_total >= 0.7 * total_solve

    def test_untraced_run_records_no_spans(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        assert result.spans == []
        assert result.final_metrics["rounds_planned"] == len(result.rounds)

    def test_identical_results_with_and_without_tracing(self, hetero_cluster):
        jobs = [tiny_job("j1"), tiny_job("j2", submit=120.0)]
        plain = simulate(hetero_cluster, SiaScheduler(), jobs)
        traced = simulate(hetero_cluster, SiaScheduler(), jobs,
                          tracer=Tracer())
        assert [j.finish_time for j in plain.jobs] == \
            [j.finish_time for j in traced.jobs]
        assert [r.allocations for r in plain.rounds] == \
            [r.allocations for r in traced.rounds]


# -- simulator metrics --------------------------------------------------------

class TestSimulatorMetrics:
    def test_round_metrics_snapshots(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(),
                          [tiny_job("j1"), tiny_job("j2", submit=60.0)])
        assert result.rounds
        last = result.rounds[-1].metrics
        assert last["rounds_planned"] == len(result.rounds)
        assert last["solve_time_s.count"] == len(result.rounds)
        assert any(k.startswith("util.") for k in last)
        # Snapshots are cumulative: monotone rounds_planned.
        planned = [r.metrics["rounds_planned"] for r in result.rounds]
        assert planned == sorted(planned)
        assert result.final_metrics == last

    def test_resilient_metrics_counts_caught_failures(self, hetero_cluster):
        class ExplodingScheduler(SiaScheduler):
            def decide(self, views, cluster, previous, now):
                raise RuntimeError("boom")

        result = simulate(hetero_cluster, ExplodingScheduler(),
                          [tiny_job()], resilient=True, max_hours=0.1)
        assert result.final_metrics["caught_scheduler_failures"] > 0
        assert result.final_metrics["carry_forward_rounds"] > 0


# -- SimulationResult accessors ----------------------------------------------

def _result_with_solve_times(times):
    result = SimulationResult(scheduler_name="s", cluster_description="c")
    for i, t in enumerate(times):
        result.rounds.append(RoundRecord(time=60.0 * i, active_jobs=1,
                                         running_jobs=1, solve_time=t))
    return result


class TestResultAccessors:
    def test_median_solve_time_odd(self):
        assert _result_with_solve_times([3.0, 1.0, 2.0]) \
            .median_solve_time() == 2.0

    def test_median_solve_time_even_averages_middles(self):
        assert _result_with_solve_times([4.0, 1.0, 3.0, 2.0]) \
            .median_solve_time() == pytest.approx(2.5)

    def test_median_solve_time_empty(self):
        assert _result_with_solve_times([]).median_solve_time() == 0.0

    def test_job_index_lookup(self):
        result = SimulationResult(scheduler_name="s", cluster_description="c")
        for i in range(5):
            result.jobs.append(JobRecord(
                job_id=f"j{i}", model_name="m", category="c", adaptivity="a",
                submit_time=0.0, first_start=None, finish_time=None,
                num_restarts=0))
        assert result.job("j3").job_id == "j3"
        # The index refreshes when jobs are added after the first lookup.
        result.jobs.append(JobRecord(
            job_id="late", model_name="m", category="c", adaptivity="a",
            submit_time=0.0, first_start=None, finish_time=None,
            num_restarts=0))
        assert result.job("late").job_id == "late"
        with pytest.raises(KeyError):
            result.job("missing")

    def test_span_stats_accessor(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()],
                          tracer=Tracer())
        stats = result.span_stats("plan")
        assert stats.count == len(result.rounds)
        assert stats.total > 0


# -- io round trip -------------------------------------------------------------

class TestIoObservability:
    def test_round_metrics_round_trip(self, hetero_cluster, tmp_path):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        path = tmp_path / "result.json"
        io.save_result(result, path)
        loaded = io.load_result(path)
        assert loaded.rounds[-1].metrics == result.rounds[-1].metrics
        assert loaded.final_metrics == result.final_metrics

    def test_counts_survive_without_rounds(self, hetero_cluster, tmp_path):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        path = tmp_path / "result.json"
        io.save_result(result, path, include_rounds=False)
        loaded = io.load_result(path)
        assert loaded.rounds == []
        assert loaded.fault_counts() == result.fault_counts()
        assert loaded.backend_counts() == result.backend_counts()


# -- digest -------------------------------------------------------------------

class TestRunDigest:
    def test_digest_for_traced_run(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()],
                          tracer=Tracer())
        text = run_digest(result)
        assert "phase breakdown" in text
        assert "rounds_planned" in text

    def test_digest_for_untraced_run(self, hetero_cluster):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        assert "tracing disabled" in run_digest(result)

    def test_digest_degenerate_result(self):
        """A bare result — no rounds, no spans, no metrics snapshot — must
        still digest cleanly, with an explicit line per missing section."""
        result = SimulationResult(scheduler_name="s", cluster_description="c")
        text = run_digest(result)
        assert "no per-round records" in text
        assert "tracing disabled" in text
        assert "no metrics snapshot" in text

    def test_digest_rounds_without_metrics(self, hetero_cluster, tmp_path):
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        path = tmp_path / "slim.json"
        io.save_result(result, path, include_rounds=False)
        text = run_digest(io.load_result(path))
        assert "no per-round records" in text
        assert "rounds_planned" in text  # final metrics still survive

    def test_digest_includes_alert_section(self, hetero_cluster):
        from repro.obs.slo import SLOEngine, SLORule
        from repro.obs.stream import SLOObserver
        engine = SLOEngine([SLORule(name="always", metric="rounds_planned",
                                    target=0.0, comparison="<=", window=4,
                                    error_budget=0.5, min_samples=1)])
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()],
                          observers=[SLOObserver(engine)])
        text = run_digest(result)
        assert "slo alerts:" in text
        assert "always: 1 alert(s)" in text

    def test_alert_digest_empty_without_slo(self, hetero_cluster):
        from repro.obs.export import alert_digest
        result = simulate(hetero_cluster, SiaScheduler(), [tiny_job()])
        assert alert_digest(result) == ""
        assert "slo alerts" not in run_digest(result)

"""Tests for the command-line interface."""

import pytest

from repro import io
from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "sia"
        assert args.cluster == "heterogeneous"
        assert args.p == -0.5

    def test_unknown_trace_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace-name", "borealis"])


class TestCatalog:
    def test_prints_models_and_gpus(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for token in ("resnet18", "gpt-2.8b", "a100", "Model zoo"):
            assert token in out


class TestTrace:
    def test_trace_summary(self, capsys):
        assert main(["trace", "--trace-name", "philly", "--seed", "1",
                     "--num-jobs", "12"]) == 0
        assert "12 jobs" in capsys.readouterr().out

    def test_trace_saved_and_reusable(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--trace-name", "helios", "--num-jobs", "6",
                     "--out", str(out)]) == 0
        trace = io.load_trace(out)
        assert trace.num_jobs == 6


class TestRun:
    def test_run_sia_and_save(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(["run", "--scheduler", "sia", "--trace-name", "philly",
                     "--num-jobs", "6", "--work-scale", "0.05",
                     "--window-hours", "0.25", "--out", str(out)])
        assert code == 0
        assert "avg_jct_h" in capsys.readouterr().out
        result = io.load_result(out)
        assert result.scheduler_name == "sia"
        assert len(result.jobs) == 6

    def test_run_from_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(["trace", "--trace-name", "philly", "--num-jobs", "5",
              "--work-scale", "0.05", "--window-hours", "0.25",
              "--out", str(trace_path)])
        capsys.readouterr()
        assert main(["run", "--scheduler", "gavel",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "gavel" in out

    def test_unknown_scheduler_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheduler", "warp", "--trace-name", "philly",
                  "--num-jobs", "4"])

    def test_run_with_failures(self, capsys):
        code = main(["run", "--scheduler", "sia", "--trace-name", "philly",
                     "--num-jobs", "4", "--work-scale", "0.05",
                     "--window-hours", "0.25", "--failure-rate", "2.0"])
        assert code == 0

    def test_run_checkpoints_and_resumes(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        base = ["--scheduler", "sia", "--trace-name", "philly",
                "--num-jobs", "4", "--work-scale", "0.05",
                "--window-hours", "0.25", "--invariants", "strict"]
        code = main(["run", *base, "--checkpoint-dir", str(ckpt_dir),
                     "--checkpoint-every", "3", "--checkpoint-keep", "0"])
        assert code == 0
        written = list(ckpt_dir.glob("ckpt-*.ckpt"))
        assert written
        capsys.readouterr()
        # resume the finished run from its last checkpoint: replays the
        # tail rounds and reports the same summary table
        code = main(["run", *base, "--resume-from", str(ckpt_dir)])
        assert code == 0
        assert "avg_jct_h" in capsys.readouterr().out


class TestGrayFlags:
    def test_gray_run_writes_health_events(self, tmp_path, capsys):
        out = tmp_path / "gray.json"
        events_path = tmp_path / "health.jsonl"
        code = main(["run", "--scheduler", "sia", "--trace-name", "philly",
                     "--num-jobs", "4", "--work-scale", "0.4",
                     "--profiling-mode", "oracle", "--seed", "4",
                     "--max-hours", "100",
                     "--gray-rate", "20", "--gray-slowdown", "0.3",
                     "--gray-duration", "14400", "--health",
                     "--health-events-out", str(events_path),
                     "--invariants", "strict", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "health:" in printed and "gray_failure" in printed
        result = io.load_result(out)
        assert result.health_counts().get("health.quarantine", 0) > 0
        assert io.load_health_events(events_path) == result.health_timeline()

    def test_gray_flag_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.gray_rate == 0.0
        assert args.placement_fail_prob == 0.0
        assert args.telemetry_corrupt_rate == 0.0
        assert not args.health


class TestChaosCommand:
    def test_chaos_equivalence_exit_code(self, tmp_path, capsys):
        code = main(["chaos", "--trace-name", "philly", "--num-jobs", "4",
                     "--work-scale", "0.05", "--window-hours", "0.25",
                     "--checkpoint-dir", str(tmp_path / "chaos"),
                     "--checkpoint-every", "3", "--kill-round", "5",
                     "--job-crash-rate", "2.0", "--resilient",
                     "--invariants", "strict", "--corrupt-latest"])
        assert code == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_gray_scenario_exit_code(self, tmp_path, capsys):
        code = main(["chaos", "--scenario", "gray",
                     "--checkpoint-dir", str(tmp_path / "chaos-gray")])
        assert code == 0
        captured = capsys.readouterr()
        assert "EQUIVALENT" in captured.out
        assert "scenario=gray" in captured.err


class TestCompare:
    def test_compare_three_schedulers(self, capsys):
        code = main(["compare", "--schedulers", "sia,gavel,fifo",
                     "--trace-name", "philly", "--num-jobs", "8",
                     "--work-scale", "0.05", "--window-hours", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("sia", "gavel", "fifo"):
            assert name in out

"""Tests for the cluster model: GPU catalog, nodes, clusters, presets."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import presets
from repro.cluster.cluster import Cluster, ClusterState
from repro.cluster.gpu import GPU_CATALOG, GPUSpec, gpu_spec, power_rank
from repro.cluster.node import (Node, NodeGroup, NodeState,
                                power_of_two_decomposition)


class TestGPUCatalog:
    def test_four_paper_types_present(self):
        assert set(GPU_CATALOG) == {"t4", "rtx", "a100", "quad"}

    def test_t4_is_reference(self):
        assert gpu_spec("t4").compute_scale == 1.0

    def test_a100_dominates_compute_and_memory(self):
        a100 = gpu_spec("a100")
        for other in ("t4", "rtx", "quad"):
            assert a100.compute_scale > gpu_spec(other).compute_scale
            assert a100.memory_gb > gpu_spec(other).memory_gb

    def test_rtx_has_smallest_memory(self):
        assert gpu_spec("rtx").memory_gb == min(
            s.memory_gb for s in GPU_CATALOG.values())

    def test_unknown_type_raises_with_known_list(self):
        with pytest.raises(KeyError, match="a100"):
            gpu_spec("h100")

    def test_power_order(self):
        # Section 4.3: a100 > quad > rtx > t4.
        assert power_rank("a100") < power_rank("quad") \
            < power_rank("rtx") < power_rank("t4")

    def test_power_rank_unknown_sorts_last(self):
        assert power_rank("h100") > power_rank("t4")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", memory_gb=0, compute_scale=1,
                    intra_node_bw_gbps=1, inter_node_bw_gbps=1)


class TestPowerOfTwoDecomposition:
    def test_exact_power(self):
        assert power_of_two_decomposition(8) == [8]

    def test_mixed(self):
        assert power_of_two_decomposition(12) == [8, 4]
        assert power_of_two_decomposition(7) == [4, 2, 1]

    def test_one(self):
        assert power_of_two_decomposition(1) == [1]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            power_of_two_decomposition(0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_parts_sum_to_value_and_are_powers(self, value):
        parts = power_of_two_decomposition(value)
        assert sum(parts) == value
        assert all(p & (p - 1) == 0 for p in parts)
        assert parts == sorted(parts, reverse=True)
        assert len(set(parts)) == len(parts)  # each power used at most once


class TestNode:
    def test_validates_gpu_type(self):
        with pytest.raises(KeyError):
            Node(0, "nope", 4)

    def test_physical_id_defaults_to_self(self):
        assert Node(3, "t4", 4).physical_id == 3

    def test_node_state_acquire_release(self):
        state = NodeState(Node(0, "t4", 4))
        state.acquire("j1", 3)
        assert state.free == 1
        with pytest.raises(ValueError):
            state.acquire("j2", 2)
        assert state.release("j1") == 3
        assert state.is_empty

    def test_release_unknown_job_is_noop(self):
        state = NodeState(Node(0, "t4", 4))
        assert state.release("ghost") == 0


class TestCluster:
    def test_from_groups_counts(self, hetero_cluster):
        assert hetero_cluster.total_gpus == 64
        assert hetero_cluster.capacity("t4") == 24
        assert hetero_cluster.capacity("rtx") == 24
        assert hetero_cluster.capacity("a100") == 16

    def test_gpu_types_ordered_by_appearance(self, hetero_cluster):
        assert hetero_cluster.gpu_types == ("t4", "rtx", "a100")

    def test_virtual_node_split(self):
        cluster = Cluster.from_groups([NodeGroup("t4", 1, 12)])
        sizes = sorted(n.num_gpus for n in cluster.nodes)
        assert sizes == [4, 8]
        # Both virtual nodes share one physical node.
        assert len({n.physical_id for n in cluster.nodes}) == 1

    def test_no_split_when_disabled(self):
        cluster = Cluster.from_groups([NodeGroup("t4", 1, 12)],
                                      split_virtual=False)
        assert [n.num_gpus for n in cluster.nodes] == [12]

    def test_homogeneous_flag(self, homo_cluster, hetero_cluster):
        assert homo_cluster.is_homogeneous
        assert not hetero_cluster.is_homogeneous

    def test_describe_mentions_all_types(self, hetero_cluster):
        text = hetero_cluster.describe()
        for t in ("t4", "rtx", "a100"):
            assert t in text

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster.from_groups([])

    def test_max_node_size_unknown_type(self, homo_cluster):
        with pytest.raises(KeyError):
            homo_cluster.max_node_size("a100")

    def test_scaled(self, hetero_cluster):
        doubled = hetero_cluster.scaled(2)
        assert doubled.total_gpus == 128
        for t in hetero_cluster.gpu_types:
            assert doubled.capacity(t) == 2 * hetero_cluster.capacity(t)


class TestClusterState:
    def test_free_and_used(self, tiny_cluster):
        state = ClusterState(tiny_cluster)
        assert state.free_gpus("t4") == 4
        node_id = tiny_cluster.nodes_of_type("t4")[0].node_id
        state.node_states[node_id].acquire("j1", 2)
        assert state.free_gpus("t4") == 2
        assert state.used_gpus("t4") == 2
        assert state.used_gpus() == 2

    def test_job_nodes_and_release(self, tiny_cluster):
        state = ClusterState(tiny_cluster)
        node_id = tiny_cluster.nodes_of_type("quad")[0].node_id
        state.node_states[node_id].acquire("j1", 2)
        assert state.job_nodes("j1") == {node_id: 2}
        state.release_job("j1")
        assert state.job_nodes("j1") == {}

    def test_clear(self, tiny_cluster):
        state = ClusterState(tiny_cluster)
        for st in state.node_states.values():
            st.acquire("x", 1)
        state.clear()
        assert state.used_gpus() == 0


class TestPresets:
    def test_physical_is_44_gpus(self):
        assert presets.physical().total_gpus == 44

    def test_homogeneous_is_64_t4(self):
        cluster = presets.homogeneous()
        assert cluster.total_gpus == 64
        assert cluster.gpu_types == ("t4",)

    def test_heterogeneous_is_64(self):
        assert presets.heterogeneous().total_gpus == 64

    def test_scaled_heterogeneous(self):
        assert presets.scaled_heterogeneous(2048).total_gpus == 2048
        with pytest.raises(ValueError):
            presets.scaled_heterogeneous(100)

    def test_by_name(self):
        assert presets.by_name("physical").total_gpus == 44
        with pytest.raises(KeyError):
            presets.by_name("galaxy")

"""Tests for trace generation and TunedJobs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import presets
from repro.core.types import AdaptivityMode
from repro.perf import profiles
from repro.workloads import (HELIOS, NEWTRACE, PHILLY, generate_trace,
                             helios_trace, newtrace_trace, philly_trace,
                             trace_by_name, tuned_jobs, with_adaptivity_mix)
from repro.workloads.trace import TraceSpec
from repro.workloads.tuning import EFFICIENCY_BAND, tune_job
import numpy as np


class TestSpecs:
    def test_philly_is_short_job_heavy(self):
        assert PHILLY.category_mix["S"] > 0.6

    def test_helios_heavier_than_philly(self):
        """Helios jobs request more GPUs and run longer (Section 4.1)."""
        philly_long = PHILLY.category_mix["L"] + PHILLY.category_mix["XL"]
        helios_long = HELIOS.category_mix["L"] + HELIOS.category_mix["XL"]
        assert helios_long > philly_long

    def test_newtrace_is_48h_bursty(self):
        assert NEWTRACE.window_hours == 48.0
        assert NEWTRACE.burst_probability > 0
        assert NEWTRACE.diurnal_amplitude > 0

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TraceSpec("bad", {"S": 0.5})

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec("bad", {"Q": 1.0})


class TestGeneration:
    def test_default_counts_match_paper(self):
        assert philly_trace(seed=0).num_jobs == 160
        assert helios_trace(seed=0).num_jobs == 160
        assert newtrace_trace(seed=0).num_jobs == 960

    def test_deterministic_given_seed(self):
        a = philly_trace(seed=42, num_jobs=30)
        b = philly_trace(seed=42, num_jobs=30)
        assert [(j.job_id, j.submit_time, j.model_name, j.target_samples)
                for j in a.jobs] == \
            [(j.job_id, j.submit_time, j.model_name, j.target_samples)
             for j in b.jobs]

    def test_different_seeds_differ(self):
        a = philly_trace(seed=1, num_jobs=30)
        b = philly_trace(seed=2, num_jobs=30)
        assert [j.model_name for j in a.jobs] != [j.model_name for j in b.jobs]

    def test_arrivals_sorted_within_window(self):
        trace = helios_trace(seed=0, num_jobs=100)
        times = [j.submit_time for j in trace.jobs]
        assert times == sorted(times)
        assert 0 <= times[0] and times[-1] <= 8 * 3600.0

    def test_window_override(self):
        trace = philly_trace(seed=0, num_jobs=50, window_hours=2.0)
        assert max(j.submit_time for j in trace.jobs) <= 2 * 3600.0

    def test_work_scale_factor(self):
        big = philly_trace(seed=0, num_jobs=20)
        small = philly_trace(seed=0, num_jobs=20, work_scale_factor=0.5)
        for a, b in zip(big.jobs, small.jobs):
            assert b.target_samples == pytest.approx(a.target_samples / 2)

    def test_category_mix_realized(self):
        trace = philly_trace(seed=0, num_jobs=400)
        counts = trace.models_used()
        small = counts.get("resnet18", 0)
        assert small / 400 == pytest.approx(0.72, abs=0.08)

    def test_no_xxl_in_standard_traces(self):
        trace = helios_trace(seed=0, num_jobs=200)
        assert "gpt-2.8b" not in trace.models_used()

    def test_trace_by_name(self):
        assert trace_by_name("philly", seed=0, num_jobs=10).num_jobs == 10
        with pytest.raises(KeyError):
            trace_by_name("borealis")

    def test_invalid_work_scale(self):
        with pytest.raises(ValueError):
            philly_trace(seed=0, work_scale_factor=0.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_all_jobs_valid(self, seed):
        trace = generate_trace(PHILLY, seed=seed, num_jobs=25)
        for job in trace.jobs:
            assert job.target_samples > 0
            assert job.max_gpus >= 1
            assert job.adaptivity is AdaptivityMode.ADAPTIVE


class TestAdaptivityMix:
    def test_fractions_realized(self):
        jobs = philly_trace(seed=0, num_jobs=100).jobs
        mixed = with_adaptivity_mix(jobs, strong_fraction=0.3,
                                    rigid_fraction=0.2, seed=1)
        strong = sum(1 for j in mixed
                     if j.adaptivity is AdaptivityMode.STRONG_SCALING)
        rigid = sum(1 for j in mixed if j.adaptivity is AdaptivityMode.RIGID)
        assert strong == 30 and rigid == 20

    def test_work_preserved(self):
        jobs = philly_trace(seed=0, num_jobs=50).jobs
        mixed = with_adaptivity_mix(jobs, rigid_fraction=1.0, seed=1)
        for a, b in zip(jobs, mixed):
            assert b.target_samples == a.target_samples

    def test_invalid_fractions(self):
        jobs = philly_trace(seed=0, num_jobs=10).jobs
        with pytest.raises(ValueError):
            with_adaptivity_mix(jobs, strong_fraction=0.8, rigid_fraction=0.5)

    def test_rigid_jobs_have_pinned_params(self):
        jobs = philly_trace(seed=0, num_jobs=20).jobs
        mixed = with_adaptivity_mix(jobs, rigid_fraction=1.0, seed=1)
        for job in mixed:
            assert job.fixed_num_gpus is not None
            assert job.fixed_batch_size is not None


class TestTunedJobs:
    def test_all_jobs_become_rigid(self):
        cluster = presets.heterogeneous()
        jobs = philly_trace(seed=0, num_jobs=30).jobs
        rigid = tuned_jobs(jobs, cluster, seed=0)
        assert all(j.adaptivity is AdaptivityMode.RIGID for j in rigid)
        assert all(j.fixed_num_gpus >= 1 for j in rigid)

    def test_strong_scaling_mode(self):
        cluster = presets.heterogeneous()
        jobs = philly_trace(seed=0, num_jobs=10).jobs
        strong = tuned_jobs(jobs, cluster, seed=0,
                            mode=AdaptivityMode.STRONG_SCALING)
        assert all(j.adaptivity is AdaptivityMode.STRONG_SCALING
                   for j in strong)
        assert all(j.fixed_num_gpus is None for j in strong)

    def test_adaptive_mode_rejected(self):
        cluster = presets.heterogeneous()
        jobs = philly_trace(seed=0, num_jobs=5).jobs
        with pytest.raises(ValueError):
            tuned_jobs(jobs, cluster, mode=AdaptivityMode.ADAPTIVE)

    def test_work_preserved(self):
        cluster = presets.heterogeneous()
        jobs = philly_trace(seed=0, num_jobs=20).jobs
        rigid = tuned_jobs(jobs, cluster, seed=0)
        for a, b in zip(jobs, rigid):
            assert b.target_samples == a.target_samples

    def test_tuned_pair_in_efficiency_band(self):
        """Tuned (count, bsz) must land in the paper's 50-80% band (when a
        multi-GPU option was chosen)."""
        cluster = presets.heterogeneous()
        rng = np.random.default_rng(0)
        from repro.jobs.job import make_job
        job = make_job("j", "bert", 0.0)
        count, bsz = tune_job(job, cluster, rng)
        if count > 1:
            profile = profiles.model_profile("bert")
            cap = profiles.max_local_bsz("bert", "a100")
            model = profiles.true_goodput_model("bert", "a100")
            base = model.goodput(1, 1, max_local_bsz=cap,
                                 max_total_bsz=profile.max_bsz,
                                 min_total_bsz=profile.min_bsz)
            node_size = cluster.max_node_size("a100")
            nodes = max(1, -(-count // node_size))
            rate = model.goodput(count, nodes, max_local_bsz=cap,
                                 max_total_bsz=profile.max_bsz,
                                 fixed_total_bsz=bsz)
            eff = rate / (base * count)
            assert EFFICIENCY_BAND[0] - 1e-9 <= eff <= EFFICIENCY_BAND[1] + 1e-9

    def test_counts_capped(self):
        cluster = presets.heterogeneous()
        jobs = helios_trace(seed=3, num_jobs=40).jobs
        rigid = tuned_jobs(jobs, cluster, seed=0, max_count=8)
        assert all(j.fixed_num_gpus <= 8 for j in rigid)

    def test_deterministic(self):
        cluster = presets.heterogeneous()
        jobs = philly_trace(seed=0, num_jobs=20).jobs
        a = tuned_jobs(jobs, cluster, seed=7)
        b = tuned_jobs(jobs, cluster, seed=7)
        assert [(j.fixed_num_gpus, j.fixed_batch_size) for j in a] == \
            [(j.fixed_num_gpus, j.fixed_batch_size) for j in b]

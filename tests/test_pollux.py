"""Tests for the Pollux baseline: type-blind estimator, GA, mixed-type
fix-up heuristic (Section 4.3)."""

import numpy as np
import pytest

from repro.core.types import Configuration, ProfilingMode
from repro.jobs.job import make_job
from repro.perf import profiles
from repro.perf.estimator import JobConstraints
from repro.perf.fitting import Observation
from repro.perf.throughput import ThroughputModel
from repro.schedulers.base import JobView
from repro.schedulers.pollux import (GAParams, PolluxEstimator,
                                     PolluxScheduler, VIRTUAL_NODE_SIZE)

TYPES = ("t4", "rtx", "a100")


def make_estimator(model="bert") -> PolluxEstimator:
    profile = profiles.model_profile(model)
    return PolluxEstimator(model, JobConstraints(profile.min_bsz,
                                                 profile.max_bsz), TYPES)


def true_obs(model, gpu_type, n, k, m) -> Observation:
    true_model = ThroughputModel(profiles.true_throughput_params(model, gpu_type))
    return Observation(gpu_type=gpu_type, num_nodes=n, num_gpus=k,
                       local_bsz=m, accum_steps=1,
                       iter_time=true_model.iter_time(m, k, n))


def view_for(job, cluster, *, current=None, age=3600.0) -> JobView:
    scheduler = PolluxScheduler()
    estimator = scheduler.make_estimator(job, cluster,
                                         ProfilingMode.BOOTSTRAP)
    # Seed with one observation so speedup tables are meaningful.
    estimator.add_observation(true_obs(job.model_name, "t4", 1, 1, 16))
    return JobView(job=job, estimator=estimator, current_config=current,
                   age=age, num_restarts=0, progress=0.0)


class TestPolluxEstimator:
    def test_no_initial_profiling(self):
        est = make_estimator()
        assert est.profile_initial() == 0.0

    def test_type_blindness_conflates_measurements(self):
        """Observations from different GPU types feed one model: after
        seeing both t4 and a100 data, predictions sit between the two —
        the 'noisy estimator' behaviour the paper describes."""
        est = make_estimator()
        est.add_observation(true_obs("bert", "t4", 1, 1, 16))
        est.add_observation(true_obs("bert", "a100", 1, 1, 16))
        blended = est.best_plan(1, 1)
        t4_truth = ThroughputModel(
            profiles.true_throughput_params("bert", "t4")).throughput(16, 1, 1)
        a100_truth = ThroughputModel(
            profiles.true_throughput_params("bert", "a100")).throughput(16, 1, 1)
        assert blended is not None
        assert t4_truth < blended.throughput < a100_truth

    def test_memory_cap_is_conservative(self):
        est = make_estimator()
        smallest = min(profiles.max_local_bsz("bert", t) for t in TYPES)
        assert est.max_local_bsz() == min(smallest, 384)

    def test_goodput_config_protocol(self):
        est = make_estimator()
        est.add_observation(true_obs("bert", "t4", 1, 1, 16))
        assert est.goodput(Configuration(1, 2, "t4")) > 0

    def test_cache_invalidation(self):
        est = make_estimator()
        est.add_observation(true_obs("bert", "t4", 1, 1, 16))
        before = est.best_plan(4, 1)
        est.add_observation(true_obs("bert", "t4", 1, 4, 16))
        after = est.best_plan(4, 1)
        assert after.goodput != before.goodput


class TestGA:
    def test_capacity_respected(self, hetero_cluster):
        scheduler = PolluxScheduler(GAParams(population=12, generations=5))
        views = [view_for(make_job(f"j{i}", "resnet18", 0.0), hetero_cluster)
                 for i in range(20)]
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        plan.validate(hetero_cluster)
        total = sum(a.num_gpus for a in plan.allocations.values())
        assert total <= hetero_cluster.total_gpus

    def test_deterministic_given_seed(self, hetero_cluster):
        def run():
            scheduler = PolluxScheduler(GAParams(population=8, generations=4,
                                                 seed=7))
            views = [view_for(make_job(f"j{i}", "bert", 0.0), hetero_cluster)
                     for i in range(5)]
            return scheduler.decide(views, hetero_cluster, {}, 0.0)
        a, b = run(), run()
        assert {k: v.num_gpus for k, v in a.allocations.items()} == \
            {k: v.num_gpus for k, v in b.allocations.items()}

    def test_single_job_gets_resources(self, hetero_cluster):
        scheduler = PolluxScheduler()
        views = [view_for(make_job("j1", "bert", 0.0), hetero_cluster)]
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        assert "j1" in plan.allocations

    def test_empty_views(self, hetero_cluster):
        plan = PolluxScheduler().decide([], hetero_cluster, {}, 0.0)
        assert plan.allocations == {}


class TestMixedTypeFixup:
    def test_allocations_never_mix_types(self, hetero_cluster):
        scheduler = PolluxScheduler(GAParams(population=12, generations=6))
        views = [view_for(make_job(f"j{i}", "yolov3", 0.0, max_gpus=16),
                          hetero_cluster) for i in range(6)]
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        for alloc in plan.allocations.values():
            types = {hetero_cluster.nodes[nid].gpu_type
                     for nid, _ in alloc.gpus_per_node}
            # node_id indexes into cluster.nodes by construction
            assert len({alloc.gpu_type}) == 1
            assert types == {alloc.gpu_type}

    def test_fixup_picks_majority_type(self, hetero_cluster):
        scheduler = PolluxScheduler()
        job = make_job("j1", "bert", 0.0)
        view = view_for(job, hetero_cluster)
        taken = [(hetero_cluster.nodes_of_type("t4")[0], 4),
                 (hetero_cluster.nodes_of_type("t4")[1], 4),
                 (hetero_cluster.nodes_of_type("rtx")[0], 2)]
        alloc = scheduler._fix_mixed_types(taken, view)
        assert alloc.gpu_type == "t4"
        assert alloc.num_gpus == 8

    def test_fixup_tie_prefers_powerful_type(self, hetero_cluster):
        scheduler = PolluxScheduler()
        view = view_for(make_job("j1", "bert", 0.0), hetero_cluster)
        taken = [(hetero_cluster.nodes_of_type("t4")[0], 4),
                 (hetero_cluster.nodes_of_type("a100")[0], 4)]
        alloc = scheduler._fix_mixed_types(taken, view)
        assert alloc.gpu_type == "a100"

    def test_fixup_below_minimum_drops_job(self, hetero_cluster):
        """If trimming to one type leaves fewer GPUs than the job's minimum,
        the job gets nothing this round."""
        scheduler = PolluxScheduler()
        job = make_job("j1", "bert", 0.0)
        job.min_gpus = 8
        view = view_for(job, hetero_cluster)
        taken = [(hetero_cluster.nodes_of_type("t4")[0], 4),
                 (hetero_cluster.nodes_of_type("rtx")[0], 2)]
        assert scheduler._fix_mixed_types(taken, view) is None


def test_virtual_node_size_is_four():
    assert VIRTUAL_NODE_SIZE == 4

"""Tests for the per-job Goodput Estimator: profiling modes, bootstrapping
lifecycle (Section 3.2), caching."""

import pytest

from repro.core.types import Configuration, ProfilingMode
from repro.perf import profiles
from repro.perf.estimator import JobConstraints, JobPerfEstimator
from repro.perf.fitting import Observation
from repro.perf.throughput import ThroughputModel

TYPES = ("t4", "rtx", "a100")


def make_estimator(mode=ProfilingMode.BOOTSTRAP, model="bert"):
    profile = profiles.model_profile(model)
    constraints = JobConstraints(min_bsz=profile.min_bsz,
                                 max_bsz=profile.max_bsz)
    return JobPerfEstimator(model, constraints, TYPES, mode)


def true_observation(model, gpu_type, n, k, m, s=1) -> Observation:
    true_model = ThroughputModel(profiles.true_throughput_params(model, gpu_type))
    return Observation(gpu_type=gpu_type, num_nodes=n, num_gpus=k,
                       local_bsz=m, accum_steps=s,
                       iter_time=true_model.iter_time(m, k, n, s))


class TestProfiling:
    def test_bootstrap_profiles_all_types(self):
        est = make_estimator()
        cost = est.profile_initial()
        assert cost > 0
        assert est.profiling_gpu_seconds == cost
        for t in TYPES:
            assert est.has_profile(t)

    def test_bootstrap_cost_is_small(self):
        """Section 3.2: < 20 GPU-seconds per GPU type on average."""
        est = make_estimator(model="resnet18")
        cost = est.profile_initial()
        assert cost < 20 * len(TYPES)

    def test_oracle_profiles_nothing(self):
        est = make_estimator(ProfilingMode.ORACLE)
        assert est.profile_initial() == 0.0
        assert not est.has_profile("t4")

    def test_no_prof_profiles_nothing(self):
        est = make_estimator(ProfilingMode.NO_PROF)
        assert est.profile_initial() == 0.0


class TestThroughputDispatch:
    def test_oracle_matches_truth(self):
        est = make_estimator(ProfilingMode.ORACLE)
        true_model = ThroughputModel(
            profiles.true_throughput_params("bert", "a100"))
        assert est.throughput("a100", 16, 8, 1) == pytest.approx(
            true_model.throughput(16, 8, 1))

    def test_single_gpu_fit_matches_truth_after_profiling(self):
        est = make_estimator()
        est.profile_initial()
        true_model = ThroughputModel(
            profiles.true_throughput_params("bert", "rtx"))
        assert est.throughput("rtx", 16, 1, 1) == pytest.approx(
            true_model.throughput(16, 1, 1), rel=0.05)

    def test_perfect_scaling_before_any_multi_gpu_run(self):
        """Section 3.2: with no multi-GPU experience anywhere, throughput of
        N replicas is assumed N x the single-replica rate."""
        est = make_estimator()
        est.profile_initial()
        single = est.throughput("t4", 16, 1, 1)
        assert est.throughput("t4", 16, 4, 1) == pytest.approx(4 * single,
                                                               rel=0.05)

    def test_bootstrap_after_multi_gpu_on_reference_type(self):
        """Once the job ran multi-GPU on A, estimates for B come from
        Equation (1) — below perfect scaling because A's sync cost leaks in."""
        est = make_estimator()
        est.profile_initial()
        for k in (2, 4):
            est.add_observation(true_observation("bert", "rtx", 1, k, 16))
        assert est.has_multi_gpu_experience("rtx")
        single_t4 = est.throughput("t4", 16, 1, 1)
        est_t4_multi = est.throughput("t4", 16, 4, 1)
        assert est_t4_multi < 4 * single_t4  # no longer perfect scaling
        assert est_t4_multi > single_t4

    def test_own_experience_overrides_bootstrap(self):
        est = make_estimator()
        est.profile_initial()
        for k in (2, 4):
            est.add_observation(true_observation("bert", "rtx", 1, k, 16))
            est.add_observation(true_observation("bert", "t4", 1, k, 16))
        truth = ThroughputModel(profiles.true_throughput_params("bert", "t4"))
        assert est.throughput("t4", 16, 4, 1) == pytest.approx(
            truth.throughput(16, 4, 1), rel=0.05)

    def test_no_prof_cold_start_is_type_blind(self):
        est = make_estimator(ProfilingMode.NO_PROF)
        assert est.throughput("t4", 16, 1, 1) == \
            est.throughput("a100", 16, 1, 1)

    def test_unknown_type_observation_rejected(self):
        est = make_estimator()
        with pytest.raises(KeyError):
            est.add_observation(true_observation("bert", "quad", 1, 1, 16))


class TestGoodput:
    def test_goodput_positive_after_profiling(self):
        est = make_estimator()
        est.profile_initial()
        for config in (Configuration(1, 1, "t4"), Configuration(1, 8, "a100")):
            assert est.goodput(config) > 0

    def test_goodput_zero_when_model_does_not_fit(self):
        est = make_estimator(model="gpt-2.8b")
        est.profile_initial()
        assert est.goodput(Configuration(1, 1, "a100")) == 0.0

    def test_a100_beats_t4_for_bert(self):
        est = make_estimator()
        est.profile_initial()
        assert est.goodput(Configuration(1, 1, "a100")) > \
            3 * est.goodput(Configuration(1, 1, "t4"))

    def test_fixed_batch_constraint_respected(self):
        profile = profiles.model_profile("bert")
        constraints = JobConstraints(min_bsz=profile.min_bsz,
                                     max_bsz=profile.max_bsz,
                                     fixed_total_bsz=48)
        est = JobPerfEstimator("bert", constraints, TYPES)
        est.profile_initial()
        plan = est.best_plan(Configuration(1, 2, "a100"))
        assert plan is not None
        assert plan.total_batch_size <= 48

    def test_goodput_cache_invalidated_by_observation(self):
        est = make_estimator()
        est.profile_initial()
        config = Configuration(1, 4, "rtx")
        before = est.goodput(config)
        for k in (2, 4):
            est.add_observation(true_observation("bert", "rtx", 1, k, 16))
        after = est.goodput(config)
        assert after != before  # sync costs now modeled

    def test_gradient_stats_update_changes_efficiency(self):
        est = make_estimator(ProfilingMode.NO_PROF)
        est.add_observation(true_observation("bert", "a100", 1, 1, 16))
        before = est.efficiency_model.params.grad_noise_scale
        true_phi = profiles.true_efficiency_params("bert").grad_noise_scale
        est.update_gradient_stats(true_phi)
        assert est.efficiency_model.params.grad_noise_scale > before

    def test_noop_gradient_update_keeps_cache(self):
        est = make_estimator()  # bootstrap: phi already true
        est.profile_initial()
        config = Configuration(1, 2, "a100")
        before = est.goodput(config)
        true_phi = profiles.true_efficiency_params("bert").grad_noise_scale
        est.update_gradient_stats(true_phi)
        assert est.goodput(config) == before


class TestIncrementalCacheInvalidation:
    """Per-GPU-type cache invalidation: a new observation on one type must
    not evict memoized plans whose estimates never read that type."""

    def test_observation_keeps_other_types_warm(self):
        est = make_estimator()
        est.profile_initial()
        t4 = Configuration(1, 1, "t4")
        a100 = Configuration(1, 1, "a100")
        rtx = Configuration(1, 1, "rtx")
        for config in (t4, a100, rtx):
            est.best_plan(config)  # populate
        est.cache_hits = est.cache_misses = 0
        est.add_observation(true_observation("bert", "rtx", 1, 2, 16))
        # Single-GPU estimates on t4/a100 come from those types' own fits,
        # whose epochs did not move: still cache hits.
        before_t4, before_a100 = est.goodput(t4), est.goodput(a100)
        assert est.cache_hits == 2 and est.cache_misses == 0
        # The rtx entry saw its type epoch move: recomputed.
        est.goodput(rtx)
        assert est.cache_misses == 1
        assert (before_t4, before_a100) == (est.goodput(t4),
                                            est.goodput(a100))

    def test_bootstrapped_entries_invalidated_by_any_observation(self):
        """Multi-GPU estimates without own multi-GPU experience read *every*
        type's observations (Equation 1 picks the reference type), so any
        new observation must invalidate them."""
        est = make_estimator()
        est.profile_initial()
        multi_t4 = Configuration(1, 4, "t4")
        before = est.goodput(multi_t4)
        est.cache_hits = est.cache_misses = 0
        # rtx multi-GPU data arrives: t4's 4-GPU estimate now bootstraps
        # from rtx instead of perfect scaling.
        for k in (2, 4):
            est.add_observation(true_observation("bert", "rtx", 1, k, 16))
        after = est.goodput(multi_t4)
        assert est.cache_misses == 1 and est.cache_hits == 0
        assert after != before

    def test_oracle_cache_survives_observations(self):
        est = make_estimator(ProfilingMode.ORACLE)
        config = Configuration(1, 4, "a100")
        est.goodput(config)
        est.cache_hits = est.cache_misses = 0
        est.add_observation(true_observation("bert", "a100", 1, 4, 16))
        est.goodput(config)
        assert est.cache_hits == 1 and est.cache_misses == 0

    def test_gradient_stats_change_invalidates_everything(self):
        est = make_estimator(ProfilingMode.NO_PROF)
        config = Configuration(1, 1, "t4")
        est.goodput(config)
        true_phi = profiles.true_efficiency_params("bert").grad_noise_scale
        est.update_gradient_stats(true_phi * 3)
        est.cache_hits = est.cache_misses = 0
        est.goodput(config)
        assert est.cache_misses == 1

    def test_steady_state_hit_rate_positive(self):
        """A running job re-evaluated across consecutive rounds with no new
        evidence answers from cache: the acceptance criterion is a strictly
        positive hit rate in steady state."""
        est = make_estimator()
        est.profile_initial()
        configs = [Configuration(1, k, t) for t in TYPES for k in (1, 2, 4)]
        for config in configs:  # round 1: cold
            est.goodput(config)
        est.cache_hits = est.cache_misses = 0
        for _ in range(3):  # rounds 2-4: steady state
            for config in configs:
                est.goodput(config)
            # converged noise-scale reports must not evict anything
            est.update_gradient_stats(
                est.efficiency_model.params.grad_noise_scale)
        assert est.cache_misses == 0
        assert est.cache_hit_rate == 1.0


class TestMemoryKnowledge:
    def test_max_local_bsz_capped_by_job_max(self):
        profile = profiles.model_profile("resnet18")
        constraints = JobConstraints(min_bsz=profile.min_bsz, max_bsz=256)
        est = JobPerfEstimator("resnet18", constraints, TYPES)
        assert est.max_local_bsz("a100") == 256

    def test_max_local_bsz_follows_memory(self):
        est = make_estimator()
        assert est.max_local_bsz("a100") > est.max_local_bsz("rtx")

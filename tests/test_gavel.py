"""Tests for the Gavel baseline: LP properties and round-based realization."""

import numpy as np
import pytest

from repro.core.types import AdaptivityMode, ProfilingMode
from repro.jobs.job import make_job
from repro.schedulers.base import JobView
from repro.schedulers.gavel import GavelScheduler


def rigid_view(job_id, model, cluster, *, gpus=1, bsz=None) -> JobView:
    job = make_job(job_id, model, 0.0, adaptivity=AdaptivityMode.RIGID,
                   fixed_num_gpus=gpus, fixed_batch_size=bsz)
    scheduler = GavelScheduler()
    estimator = scheduler.make_estimator(job, cluster, ProfilingMode.ORACLE)
    return JobView(job=job, estimator=estimator, current_config=None,
                   age=0.0, num_restarts=0, progress=0.0)


class TestLP:
    def test_throughput_matrix_positive_where_feasible(self, hetero_cluster):
        scheduler = GavelScheduler()
        views = [rigid_view("j1", "bert", hetero_cluster)]
        matrix = scheduler._throughput_matrix(views, hetero_cluster, [1])
        assert np.all(matrix > 0)

    def test_lp_respects_per_job_time_budget(self, hetero_cluster):
        scheduler = GavelScheduler()
        views = [rigid_view(f"j{i}", "resnet18", hetero_cluster)
                 for i in range(3)]
        xput = scheduler._throughput_matrix(views, hetero_cluster,
                                            [1, 1, 1])
        caps = [hetero_cluster.capacity(t) for t in hetero_cluster.gpu_types]
        solution = scheduler._solve_lp(xput, [1, 1, 1], caps)
        assert np.all(solution.sum(axis=1) <= 1.0 + 1e-9)

    def test_lp_respects_capacity(self, hetero_cluster):
        scheduler = GavelScheduler()
        views = [rigid_view(f"j{i}", "bert", hetero_cluster, gpus=8)
                 for i in range(20)]
        counts = [8] * 20
        xput = scheduler._throughput_matrix(views, hetero_cluster, counts)
        caps = [hetero_cluster.capacity(t) for t in hetero_cluster.gpu_types]
        solution = scheduler._solve_lp(xput, counts, caps)
        for k, cap in enumerate(caps):
            assert float(solution[:, k].sum() * 8) <= cap + 1e-6

    def test_lonely_job_gets_best_type_fully(self, hetero_cluster):
        """An uncontended BERT job's LP share should concentrate on a100."""
        scheduler = GavelScheduler()
        views = [rigid_view("j1", "bert", hetero_cluster)]
        xput = scheduler._throughput_matrix(views, hetero_cluster, [1])
        caps = [hetero_cluster.capacity(t) for t in hetero_cluster.gpu_types]
        solution = scheduler._solve_lp(xput, [1], caps)
        a100_idx = hetero_cluster.gpu_types.index("a100")
        assert solution[0, a100_idx] == pytest.approx(1.0, abs=1e-6)


class TestRoundMechanism:
    def test_plan_valid_and_within_capacity(self, hetero_cluster):
        scheduler = GavelScheduler()
        views = [rigid_view(f"j{i}", "resnet18", hetero_cluster, gpus=2)
                 for i in range(10)]
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        plan.validate(hetero_cluster)
        for alloc in plan.allocations.values():
            assert alloc.num_gpus == 2

    def test_saturation_serves_capacity_and_recovers(self, hetero_cluster):
        """max-sum-throughput is not fairness-aware: under saturation the LP
        picks a vertex and the same winners keep their share (this is what
        blows up Gavel's p99 in Table 3).  But the mechanism must stay
        work-conserving: when a winner completes, a starved job takes over."""
        scheduler = GavelScheduler()
        views = [rigid_view(f"j{i}", "resnet50", hetero_cluster, gpus=16)
                 for i in range(8)]  # demand 128 > capacity 64
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        # capacity supports at most 3 x 16-GPU jobs (24/24/16 per type)
        first_winners = set(plan.allocations)
        assert len(first_winners) == 3
        # One winner completes; someone new must be served next round.
        survivor_views = [v for v in views
                          if v.job_id != next(iter(first_winners))]
        plan2 = scheduler.decide(survivor_views, hetero_cluster,
                                 plan.allocations, 360.0)
        assert len(plan2.allocations) == 3
        assert set(plan2.allocations) - first_winners

    def test_rotation_when_lp_shares_are_fractional(self, hetero_cluster):
        """Five 8-GPU jobs on 16 a100-equivalent shares: every job holds a
        positive LP share, so the deficit mechanism must serve each of them
        within a few rounds."""
        scheduler = GavelScheduler()
        views = [rigid_view(f"j{i}", "resnet18", hetero_cluster, gpus=8)
                 for i in range(10)]  # demand 80 > capacity 64
        served: set[str] = set()
        previous = {}
        for round_idx in range(10):
            plan = scheduler.decide(views, hetero_cluster, previous,
                                    round_idx * 360.0)
            served |= set(plan.allocations)
            previous = plan.allocations
        assert len(served) >= 8  # near-universal service

    def test_prefers_staying_on_same_nodes(self, hetero_cluster):
        scheduler = GavelScheduler()
        views = [rigid_view("j1", "bert", hetero_cluster, gpus=2)]
        first = scheduler.decide(views, hetero_cluster, {}, 0.0)
        second = scheduler.decide(views, hetero_cluster,
                                  first.allocations, 360.0)
        assert second.allocations["j1"] == first.allocations["j1"]

    def test_empty_views(self, hetero_cluster):
        plan = GavelScheduler().decide([], hetero_cluster, {}, 0.0)
        assert plan.allocations == {}

    def test_oversized_job_skipped_gracefully(self, hetero_cluster):
        views = [rigid_view("big", "bert", hetero_cluster, gpus=32)]
        plan = GavelScheduler().decide(views, hetero_cluster, {}, 0.0)
        # 32 > any single type's capacity except none; t4/rtx have 24, a100 16
        assert "big" not in plan.allocations


class TestMaxMinFairnessPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            GavelScheduler(policy="round_robin")

    def test_max_min_rotates_where_max_sum_starves(self, hetero_cluster):
        """Identical saturating jobs: max-sum-throughput picks a vertex and
        serves the same winners; max-min fairness gives everyone a positive
        share, so the deficit mechanism rotates service across all jobs."""
        def run(policy):
            scheduler = GavelScheduler(policy=policy)
            views = [rigid_view(f"j{i}", "resnet50", hetero_cluster, gpus=16)
                     for i in range(8)]
            served: set[str] = set()
            previous = {}
            for round_idx in range(8):
                plan = scheduler.decide(views, hetero_cluster, previous,
                                        round_idx * 360.0)
                served |= set(plan.allocations)
                previous = plan.allocations
            return served

        assert len(run("max_min_fairness")) == 8
        assert len(run("max_sum_throughput")) < 8

    def test_max_min_lp_gives_equal_shares(self, hetero_cluster):
        scheduler = GavelScheduler(policy="max_min_fairness")
        views = [rigid_view(f"j{i}", "resnet50", hetero_cluster, gpus=16)
                 for i in range(8)]
        counts = [16] * 8
        xput = scheduler._throughput_matrix(views, hetero_cluster, counts)
        caps = [hetero_cluster.capacity(t) for t in hetero_cluster.gpu_types]
        solution = scheduler._solve_lp_max_min(xput, counts, caps)
        shares = (solution * xput).sum(axis=1) / xput.max(axis=1)
        assert shares.min() > 0
        assert shares.max() <= shares.min() * 1.7  # roughly equalized

    def test_max_min_plan_valid(self, hetero_cluster):
        scheduler = GavelScheduler(policy="max_min_fairness")
        views = [rigid_view(f"j{i}", "bert", hetero_cluster, gpus=4)
                 for i in range(10)]
        plan = scheduler.decide(views, hetero_cluster, {}, 0.0)
        plan.validate(hetero_cluster)

"""Tests for Equation (1) cross-GPU-type bootstrapping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bootstrap import (bootstrap_ratio, bootstrap_throughput,
                                  pick_reference_type)


class TestRatio:
    def test_ratio(self):
        assert bootstrap_ratio(20.0, 10.0) == 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bootstrap_ratio(0.0, 10.0)
        with pytest.raises(ValueError):
            bootstrap_ratio(10.0, 0.0)


class TestEquation1:
    def test_paper_formula(self):
        """est_xput_B(N) = xput_B(1)/xput_A(1) * xput_A(N)."""
        assert bootstrap_throughput(30.0, 10.0, 80.0) == pytest.approx(240.0)

    def test_identity_when_types_equal(self):
        assert bootstrap_throughput(10.0, 10.0, 55.0) == pytest.approx(55.0)

    def test_rejects_negative_reference(self):
        with pytest.raises(ValueError):
            bootstrap_throughput(10.0, 10.0, -1.0)

    @given(b1=st.floats(0.1, 1e3), a1=st.floats(0.1, 1e3),
           an=st.floats(0.0, 1e5))
    def test_scales_linearly_in_reference(self, b1, a1, an):
        single = bootstrap_throughput(b1, a1, an)
        double = bootstrap_throughput(b1, a1, 2 * an)
        assert double == pytest.approx(2 * single, rel=1e-9)


class TestPickReference:
    def test_prefers_fastest_experienced_type(self):
        experience = {"t4": True, "rtx": True, "a100": False}
        singles = {"t4": 10.0, "rtx": 25.0, "a100": 70.0}
        assert pick_reference_type(experience, singles) == "rtx"

    def test_none_when_no_experience(self):
        assert pick_reference_type({"t4": False}, {"t4": 10.0}) is None

    def test_none_when_experienced_type_has_no_single_profile(self):
        assert pick_reference_type({"t4": True}, {}) is None

    def test_ignores_types_missing_singles(self):
        experience = {"t4": True, "rtx": True}
        singles = {"t4": 10.0}
        assert pick_reference_type(experience, singles) == "t4"

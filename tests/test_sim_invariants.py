"""Simulator-wide invariants, checked over randomized scenarios.

These are conservation laws any correct round-based cluster simulator must
satisfy regardless of scheduler: capacity is never exceeded in any round,
GPU-seconds accounting is consistent with the allocation log, completion
times are causal, and contention statistics are well-formed.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import presets
from repro.core.types import AdaptivityMode
from repro.jobs.job import make_job
from repro.schedulers import (GavelScheduler, PolluxScheduler, SiaScheduler)
from repro.sim import simulate
from repro.workloads import philly_trace, tuned_jobs

SCHEDULERS = {
    "sia": lambda: SiaScheduler(),
    "pollux": lambda: PolluxScheduler(),
    "gavel": lambda: GavelScheduler(),
}


def run_random_scenario(seed: int, scheduler_name: str):
    cluster = presets.heterogeneous()
    trace = philly_trace(seed=seed, num_jobs=8, work_scale_factor=0.08,
                         window_hours=0.3)
    jobs = trace.jobs
    if scheduler_name == "gavel":
        jobs = tuned_jobs(jobs, cluster, seed=seed)
    result = simulate(cluster, SCHEDULERS[scheduler_name](), jobs,
                      seed=seed, max_hours=50)
    return cluster, jobs, result


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50),
       scheduler_name=st.sampled_from(sorted(SCHEDULERS)))
def test_capacity_never_exceeded(seed, scheduler_name):
    cluster, _, result = run_random_scenario(seed, scheduler_name)
    for rnd in result.rounds:
        for gpu_type, used in rnd.gpus_used.items():
            assert used <= cluster.capacity(gpu_type), \
                (scheduler_name, rnd.time)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50),
       scheduler_name=st.sampled_from(sorted(SCHEDULERS)))
def test_gpu_seconds_match_allocation_log(seed, scheduler_name):
    """Per-job GPU-second accounting must agree with the round log within
    one round per job (final partial rounds are charged exactly)."""
    _, _, result = run_random_scenario(seed, scheduler_name)
    dt = 360.0 if scheduler_name == "gavel" else 60.0
    logged: dict[str, float] = {}
    for rnd in result.rounds:
        for job_id, (_, count) in rnd.allocations.items():
            logged[job_id] = logged.get(job_id, 0.0) + count * dt
    for record in result.jobs:
        charged = sum(record.gpu_seconds.values())
        assert charged <= logged.get(record.job_id, 0.0) + 1e-6
        # a job is never charged more than one full round less than logged
        if record.job_id in logged:
            last_count = max(1, max(
                (count for rnd in result.rounds
                 for jid, (_, count) in rnd.allocations.items()
                 if jid == record.job_id), default=1))
            assert charged >= logged[record.job_id] - dt * last_count - 1e-6


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50),
       scheduler_name=st.sampled_from(sorted(SCHEDULERS)))
def test_completion_causality(seed, scheduler_name):
    _, _, result = run_random_scenario(seed, scheduler_name)
    for record in result.jobs:
        if record.first_start is not None:
            assert record.first_start >= record.submit_time
        if record.finish_time is not None:
            assert record.first_start is not None
            assert record.finish_time > record.first_start
        assert record.avg_contention >= 1.0


def test_non_preemptible_job_never_loses_resources():
    """A non-preemptible job keeps the same allocation from first start to
    finish, even under heavy competition (Section 3.4)."""
    cluster = presets.heterogeneous()
    pinned = make_job("pinned", "bert", 0.0, work_scale=0.3,
                      preemptible=False)
    competitors = [make_job(f"c{i}", "bert", 120.0, work_scale=0.1)
                   for i in range(12)]
    result = simulate(cluster, SiaScheduler(), [pinned, *competitors],
                      max_hours=50)
    timeline = [(gpu, n) for _, gpu, n in
                result.allocation_timeline("pinned") if n > 0]
    assert result.job("pinned").completed
    # one distinct allocation for its entire running life
    assert len(set(timeline)) == 1
    assert result.job("pinned").num_restarts == 0

"""Tests for decision-level observability: goodput ledger, allocation audit
trail, ledger JSONL round-trips, and the explain renderer."""

from __future__ import annotations

import pytest

from repro import io
from repro.analysis.explain import explain_job
from repro.analysis.report import build_report, decision_digest_section
from repro.cluster import presets
from repro.core.types import ProfilingMode
from repro.jobs.job import make_job
from repro.obs import audit
from repro.obs.audit import (AllocationEvent, AuditTrail, classify_change,
                             event_counts, migration_flows)
from repro.obs.ledger import GoodputLedger, LedgerEntry, queue_wait_by_job
from repro.schedulers import (FIFOScheduler, GavelScheduler, PolluxScheduler,
                              SiaScheduler)
from repro.sim.engine import simulate
from repro.workloads.tuning import tuned_jobs


def tiny_job(job_id="j1", model="resnet18", submit=0.0, scale=0.05, **kw):
    return make_job(job_id, model, submit, work_scale=scale, **kw)


@pytest.fixture(scope="module")
def sia_result():
    """Six staggered jobs under Sia with hardware-rate noise, so estimates
    start wrong and converge."""
    cluster = presets.heterogeneous()
    jobs = [make_job(f"j{i}", model, i * 400.0, work_scale=0.05)
            for i, model in enumerate(["resnet18", "bert", "resnet50",
                                       "yolov3", "deepspeech2", "resnet18"])]
    return simulate(cluster, SiaScheduler(), jobs, rate_noise=0.3, seed=1)


# -- event classification ------------------------------------------------------

A2 = ("a100", 2, (0,))
A4 = ("a100", 4, (0,))
T2 = ("t4", 2, (5,))


class TestClassifyChange:
    def test_no_change(self):
        assert classify_change("j", 0.0, held=None, new=None,
                               ran_before=False) is None
        assert classify_change("j", 0.0, held=A2, new=A2,
                               ran_before=True) is None

    def test_admit(self):
        event = classify_change("j", 1.0, held=None, new=A2, ran_before=False)
        assert event.kind == audit.ADMIT
        assert event.to_gpu_type == "a100" and event.to_gpus == 2
        assert event.from_gpu_type == ""

    def test_resume_vs_restart_after_fault(self):
        resumed = classify_change("j", 1.0, held=None, new=A2,
                                  ran_before=True)
        assert resumed.kind == audit.RESUME
        restarted = classify_change("j", 1.0, held=None, new=A2,
                                    ran_before=True, fault_hit=True)
        assert restarted.kind == audit.RESTART_AFTER_FAULT
        assert restarted.cause == audit.CAUSE_FAULT

    def test_preempt_cause(self):
        by_sched = classify_change("j", 1.0, held=A2, new=None,
                                   ran_before=True)
        assert by_sched.kind == audit.PREEMPT
        assert by_sched.cause == audit.CAUSE_SCHEDULER
        by_fault = classify_change("j", 1.0, held=A2, new=None,
                                   ran_before=True, fault_hit=True)
        assert by_fault.cause == audit.CAUSE_FAULT

    def test_scale_up_down(self):
        up = classify_change("j", 1.0, held=A2, new=A4, ran_before=True)
        assert up.kind == audit.SCALE_UP
        down = classify_change("j", 1.0, held=A4, new=A2, ran_before=True)
        assert down.kind == audit.SCALE_DOWN

    def test_migrate_across_types(self):
        event = classify_change("j", 1.0, held=A2, new=T2, ran_before=True)
        assert event.kind == audit.MIGRATE
        assert (event.from_gpu_type, event.to_gpu_type) == ("a100", "t4")

    def test_migrate_same_type_node_move(self):
        moved = ("a100", 2, (3,))
        event = classify_change("j", 1.0, held=A2, new=moved, ran_before=True)
        assert event.kind == audit.MIGRATE
        assert event.detail == "same-type node move"

    def test_fault_hit_with_resources_is_restart(self):
        event = classify_change("j", 1.0, held=A2, new=T2, ran_before=True,
                                fault_hit=True)
        assert event.kind == audit.RESTART_AFTER_FAULT
        assert event.cause == audit.CAUSE_FAULT

    def test_event_dict_round_trip(self):
        event = classify_change("j", 1.0, held=A2, new=T2, ran_before=True,
                                round_index=7)
        back = AllocationEvent.from_dict(event.to_dict())
        assert back == event

    def test_aggregations(self):
        events = [
            classify_change("a", 0.0, held=None, new=A2, ran_before=False),
            classify_change("b", 0.0, held=A2, new=T2, ran_before=True),
            classify_change("b", 1.0, held=T2, new=A2, ran_before=True),
        ]
        assert event_counts(events) == {"admit": 1, "migrate": 2}
        assert migration_flows(events) == {("a100", "t4"): 1,
                                           ("t4", "a100"): 1}
        trail = AuditTrail(events)
        assert len(trail.for_job("b")) == 2
        assert trail.counts()["migrate"] == 2


# -- ledger from a simulated run -----------------------------------------------

class TestLedgerFromRun:
    def test_entries_cover_every_allocation(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        assert len(ledger) == sum(len(r.allocations)
                                  for r in sia_result.rounds)
        assert ledger.job_ids() == [f"j{i}" for i in range(6)]

    def test_estimates_and_realized_recorded(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        with_estimate = [e for e in ledger.entries
                         if e.estimated_goodput is not None]
        with_realized = [e for e in ledger.entries
                         if e.realized_goodput is not None]
        assert len(with_estimate) >= 0.8 * len(ledger)
        assert len(with_realized) >= 0.8 * len(ledger)
        assert all(e.estimated_goodput > 0 for e in with_estimate)

    def test_error_series_and_median(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        series = ledger.error_series("j0")
        assert series
        assert all(err >= 0 for _, err in series)
        assert ledger.median_error() is not None

    def test_convergence_acceptance_criterion(self, sia_result):
        """The PR's acceptance criterion: under rate noise, Sia's pooled
        median estimation error shrinks from the early to the late
        job-age window as the bootstrap models are refined."""
        medians = GoodputLedger.from_result(sia_result)\
            .convergence_medians(num_windows=2)
        assert len(medians) == 2
        early, late = medians
        assert late < early
        assert early > 0.01  # noise made early estimates visibly wrong

    def test_oracle_estimates_near_exact(self):
        cluster = presets.heterogeneous()
        result = simulate(cluster, SiaScheduler(), [tiny_job()],
                          profiling_mode=ProfilingMode.ORACLE)
        median = GoodputLedger.from_result(result).median_error()
        assert median is not None and median < 1e-6

    def test_gpu_type_rounds(self, sia_result):
        counts = GoodputLedger.from_result(sia_result).gpu_type_rounds()
        assert counts and all(n > 0 for n in counts.values())

    def test_queue_wait_attribution(self):
        # Two rigid 2-GPU jobs on a 1-node x 2-GPU cluster: the second
        # queues until the first finishes.
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import NodeGroup
        cluster = Cluster.from_groups(
            [NodeGroup("a100", num_nodes=1, gpus_per_node=2)])
        jobs = [tiny_job("first", fixed_num_gpus=2, fixed_batch_size=256),
                tiny_job("second", fixed_num_gpus=2, fixed_batch_size=256)]
        result = simulate(cluster, FIFOScheduler(), jobs)
        waits = queue_wait_by_job(result)
        assert waits["second"] > 0
        assert waits["first"] == 0.0

    def test_rigid_and_adaptive_schedulers_record_estimates(self):
        cluster = presets.heterogeneous()
        jobs = [tiny_job("a"), tiny_job("b", model="bert", submit=100.0)]
        for scheduler, needs_tuning in ((PolluxScheduler(), False),
                                        (GavelScheduler(), True),
                                        (FIFOScheduler(), True)):
            run_jobs = tuned_jobs(jobs, cluster, seed=0) if needs_tuning \
                else jobs
            result = simulate(cluster, scheduler, run_jobs)
            assert sum(len(r.estimates) for r in result.rounds) > 0, \
                scheduler.name


# -- engine audit trail --------------------------------------------------------

class TestEngineAudit:
    def test_every_job_admitted_and_finished(self, sia_result):
        counts = event_counts(sia_result.allocation_events())
        assert counts["admit"] == 6
        assert counts["finish"] == 6

    def test_events_reference_known_jobs_and_rounds(self, sia_result):
        jobs = {r.job_id for r in sia_result.jobs}
        for event in sia_result.allocation_events():
            assert event.job_id in jobs
            assert 0 <= event.round_index < len(sia_result.rounds)
            assert event.kind in audit.EVENT_KINDS

    def test_fault_restart_classified(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import NodeGroup
        from repro.sim.faults import JobCrashModel
        cluster = Cluster.from_groups(
            [NodeGroup("a100", num_nodes=2, gpus_per_node=4)])
        jobs = [tiny_job(f"j{i}", scale=0.3) for i in range(2)]
        result = simulate(cluster, SiaScheduler(), jobs, seed=0,
                          fault_models=[JobCrashModel(rate=6.0)],
                          max_hours=100)
        assert result.fault_counts().get("job_crash", 0) > 0
        counts = event_counts(result.allocation_events())
        assert counts.get("restart_after_fault", 0) > 0
        restarts = [e for e in result.allocation_events()
                    if e.kind == audit.RESTART_AFTER_FAULT]
        assert all(e.cause == audit.CAUSE_FAULT for e in restarts)
        # Fault restarts never count as scheduler preemptions.
        assert all(j.num_preemptions == 0 for j in result.jobs)

    def test_preemption_counters_persisted(self, sia_result):
        preempts = {e.job_id for e in sia_result.allocation_events()
                    if e.kind == audit.PREEMPT
                    and e.cause == audit.CAUSE_SCHEDULER}
        for record in sia_result.jobs:
            if record.job_id in preempts:
                assert record.num_preemptions > 0
            assert record.num_migrations >= 0

    def test_alloc_event_metrics_counted(self, sia_result):
        # Counters snapshot cumulatively; the last round has the total.
        assert sia_result.rounds[-1].metrics["alloc_events.admit"] == 6


# -- serialization --------------------------------------------------------------

class TestLedgerIO:
    def test_result_round_trip_preserves_observability(self, sia_result,
                                                       tmp_path):
        path = tmp_path / "run.json"
        io.save_result(sia_result, path)
        loaded = io.load_result(path)
        assert [r.estimates for r in loaded.rounds] == \
            [r.estimates for r in sia_result.rounds]
        assert [r.realized for r in loaded.rounds] == \
            [r.realized for r in sia_result.rounds]
        assert [r.events for r in loaded.rounds] == \
            [r.events for r in sia_result.rounds]
        assert [(j.num_preemptions, j.num_migrations) for j in loaded.jobs] \
            == [(j.num_preemptions, j.num_migrations)
                for j in sia_result.jobs]

    def test_old_results_without_observability_load(self, sia_result,
                                                    tmp_path):
        import json
        path = tmp_path / "old.json"
        io.save_result(sia_result, path)
        payload = json.loads(path.read_text())
        for job in payload["jobs"]:
            del job["num_preemptions"], job["num_migrations"]
        for rnd in payload["rounds"]:
            for key in ("estimates", "realized", "throughputs", "events"):
                rnd.pop(key, None)
        path.write_text(json.dumps(payload))
        loaded = io.load_result(path)
        assert all(j.num_preemptions == 0 for j in loaded.jobs)
        assert all(not r.events for r in loaded.rounds)
        assert len(GoodputLedger.from_result(loaded)) == \
            len(GoodputLedger.from_result(sia_result))

    def test_ledger_jsonl_round_trip(self, sia_result, tmp_path):
        path = tmp_path / "ledger.jsonl"
        io.save_ledger(sia_result, path)
        ledger, events = io.load_ledger(path)
        original = GoodputLedger.from_result(sia_result)
        assert len(ledger) == len(original)
        assert ledger.entries[0] == original.entries[0]
        assert events == sia_result.allocation_events()
        assert ledger.median_error() == \
            pytest.approx(original.median_error())

    def test_ledger_rejects_non_ledger_files(self, tmp_path):
        bad_kind = tmp_path / "bad.jsonl"
        bad_kind.write_text('{"kind": "result"}\n')
        with pytest.raises(ValueError):
            io.load_ledger(bad_kind)
        no_header = tmp_path / "headerless.jsonl"
        no_header.write_text('{"kind": "ledger_entry", "round_index": 0, '
                             '"time": 0.0, "job_id": "j", '
                             '"gpu_type": "t4", "num_gpus": 1}\n')
        with pytest.raises(ValueError):
            io.load_ledger(no_header)

    def test_entry_dict_round_trip(self):
        entry = LedgerEntry(round_index=3, time=120.0, job_id="j",
                            gpu_type="t4", num_gpus=4,
                            estimated_goodput=10.0, realized_goodput=9.0,
                            realized_throughput=11.0)
        assert LedgerEntry.from_dict(entry.to_dict()) == entry
        sparse = LedgerEntry(round_index=0, time=0.0, job_id="j",
                             gpu_type="t4", num_gpus=1)
        assert LedgerEntry.from_dict(sparse.to_dict()) == sparse
        assert sparse.relative_error is None


# -- summary-count symmetry (fault/backend single code path) --------------------

class TestSummaryCounts:
    def test_counts_match_with_and_without_rounds(self, tmp_path):
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import NodeGroup
        from repro.sim.faults import JobCrashModel
        cluster = Cluster.from_groups(
            [NodeGroup("a100", num_nodes=2, gpus_per_node=4)])
        result = simulate(cluster, SiaScheduler(),
                          [tiny_job(f"j{i}", scale=0.3) for i in range(2)],
                          seed=0, fault_models=[JobCrashModel(rate=6.0)],
                          max_hours=100)
        assert result.fault_counts()  # the run actually faulted
        for include_rounds in (True, False):
            path = tmp_path / f"r{include_rounds}.json"
            io.save_result(result, path, include_rounds=include_rounds)
            loaded = io.load_result(path)
            assert loaded.fault_counts() == result.fault_counts(), \
                f"include_rounds={include_rounds}"
            assert loaded.backend_counts() == result.backend_counts(), \
                f"include_rounds={include_rounds}"

    def test_counts_empty_without_rounds_or_saved(self):
        from repro.sim.telemetry import SimulationResult
        result = SimulationResult(scheduler_name="x",
                                  cluster_description="c", end_time=0.0)
        assert result.fault_counts() == {}
        assert result.backend_counts() == {}


# -- explain + report -----------------------------------------------------------

class TestExplain:
    def test_timeline_mentions_lifecycle(self, sia_result):
        text = explain_job(sia_result, "j0")
        assert "j0" in text
        assert "admit" in text
        assert "finish" in text
        assert "JCT" in text

    def test_round_detail(self, sia_result):
        text = explain_job(sia_result, "j0", round_index=0)
        assert "round 0" in text
        assert "expected" in text or "held no GPUs" in text

    def test_unknown_job_raises(self, sia_result):
        with pytest.raises(KeyError):
            explain_job(sia_result, "nope")
        with pytest.raises(IndexError):
            explain_job(sia_result, "j0", round_index=10_000)

    def test_works_on_loaded_result(self, sia_result, tmp_path):
        path = tmp_path / "run.json"
        io.save_result(sia_result, path)
        assert explain_job(io.load_result(path), "j0") == \
            explain_job(sia_result, "j0")

    def test_report_includes_decision_digest(self, sia_result):
        digest = decision_digest_section(sia_result)
        assert "Decision digest" in digest
        assert "admit" in digest
        report = build_report([sia_result])
        assert "Decision digest" in report

    def test_digest_empty_without_rounds(self, sia_result, tmp_path):
        path = tmp_path / "bare.json"
        io.save_result(sia_result, path, include_rounds=False)
        assert decision_digest_section(io.load_result(path)) == ""


class TestLedgerIndex:
    """The memoized per-job index and the diff aligner's accessors."""

    def test_for_job_matches_linear_scan(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        for job_id in ledger.job_ids():
            assert ledger.for_job(job_id) == \
                [e for e in ledger.entries if e.job_id == job_id]

    def test_index_is_reused_until_entries_change(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        job_id = ledger.job_ids()[0]
        ledger.for_job(job_id)
        first = ledger._index()
        assert ledger._index() is first  # memoized, not rebuilt
        ledger.entries.append(LedgerEntry(round_index=10_000, time=0.0,
                                          job_id=job_id, gpu_type="t4",
                                          num_gpus=1))
        rebuilt = ledger._index()
        assert rebuilt is not first  # appended entry invalidates
        assert ledger.for_job(job_id)[-1].round_index == 10_000

    def test_for_job_returns_copies(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        job_id = ledger.job_ids()[0]
        rows = ledger.for_job(job_id)
        rows.clear()
        assert ledger.for_job(job_id)  # caller mutation cannot corrupt

    def test_rounds_accessor(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        rounds = ledger.rounds()
        assert rounds == sorted(set(rounds))
        assert rounds == sorted({e.round_index for e in ledger.entries})

    def test_for_round(self, sia_result):
        ledger = GoodputLedger.from_result(sia_result)
        index = ledger.rounds()[0]
        rows = ledger.for_round(index)
        assert rows and all(e.round_index == index for e in rows)

"""repro — reproduction of "Sia: Heterogeneity-aware, goodput-optimized
ML-cluster scheduling" (SOSP 2023).

Public API tour
---------------

* :mod:`repro.cluster`     — GPU catalog, nodes, preset testbeds.
* :mod:`repro.perf`        — throughput/efficiency/goodput models, the
  ground-truth catalog, and the per-job Goodput Estimator (bootstrapping).
* :mod:`repro.jobs`        — job abstraction, adaptivity modes, hybrid
  (pipeline x data parallel) jobs.
* :mod:`repro.core`        — Sia's configuration sets, goodput matrix, ILP,
  restart factor, policy, Placer.
* :mod:`repro.schedulers`  — Sia and the baselines (Pollux, Gavel,
  Shockwave, Themis, FIFO, SRTF).
* :mod:`repro.sim`         — the discrete-time trace-driven simulator.
* :mod:`repro.workloads`   — Philly/Helios/newTrace generators, TunedJobs.
* :mod:`repro.metrics`     — JCT stats, heterogeneous finish-time fairness.
* :mod:`repro.analysis`    — experiment drivers and table rendering.

Quickstart::

    from repro.cluster import presets
    from repro.schedulers import SiaScheduler
    from repro.sim import simulate
    from repro.workloads import philly_trace
    from repro.metrics import summarize

    trace = philly_trace(seed=0, num_jobs=40, work_scale_factor=0.25,
                         window_hours=2.0)
    result = simulate(presets.heterogeneous(), SiaScheduler(), trace.jobs)
    print(summarize(result).as_row())
"""

__version__ = "1.0.0"

"""Per-(job, GPU type) throughput model.

The paper reuses Pollux's throughput model family (Section 3.2): iteration
time decomposes into a gradient-computation phase that grows linearly with
per-GPU batch size, and a synchronization (all-reduce) phase that depends on
GPU count and whether the allocation crosses node boundaries.  The two
phases partially overlap, modeled with a gamma-norm::

    T_grad(m)       = alpha_c + beta_c * m
    T_sync(n, k)    = 0                                if k == 1
                    = alpha_r + beta_r * max(0, k - 2) if n == 1
                    = alpha_n + beta_n * max(0, k - 2) if n > 1
    T_iter(m,k,n,s) = (s - 1) * T_grad + (T_grad^g + T_sync^g)^(1/g)

where ``m`` is the local (per-GPU) batch size, ``k`` the GPU count, ``n`` the
node count, ``s >= 1`` the gradient-accumulation steps per iteration and
``g`` the overlap exponent GAMMA.  Throughput is ``k * m * s / T_iter``
samples per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

#: Overlap exponent; larger means less compute/communication overlap.
GAMMA: float = 1.6


@dataclass(frozen=True)
class ThroughputParams:
    """Fitted (or ground-truth) parameters of the throughput model."""

    alpha_c: float  # fixed per-step compute overhead (s)
    beta_c: float   # compute seconds per local sample
    alpha_r: float  # intra-node sync base cost (s)
    beta_r: float   # intra-node sync per extra GPU (s)
    alpha_n: float  # inter-node sync base cost (s)
    beta_n: float   # inter-node sync per extra GPU (s)
    gamma: float = GAMMA

    def __post_init__(self) -> None:
        if min(self.alpha_c, self.beta_c, self.alpha_r, self.beta_r,
               self.alpha_n, self.beta_n) < 0:
            raise ValueError("throughput parameters must be non-negative")
        if self.gamma < 1:
            raise ValueError("gamma must be >= 1")

    def scaled(self, factor: float) -> "ThroughputParams":
        """Uniformly scale all time components (e.g. to perturb ground truth)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            alpha_c=self.alpha_c * factor, beta_c=self.beta_c * factor,
            alpha_r=self.alpha_r * factor, beta_r=self.beta_r * factor,
            alpha_n=self.alpha_n * factor, beta_n=self.beta_n * factor,
        )


class ThroughputModel:
    """Evaluates iteration time and throughput from :class:`ThroughputParams`."""

    def __init__(self, params: ThroughputParams):
        self.params = params

    def grad_time(self, local_bsz: float) -> float:
        """Seconds for one gradient-computation step at local batch size m."""
        if local_bsz <= 0:
            raise ValueError("local_bsz must be positive")
        p = self.params
        return p.alpha_c + p.beta_c * local_bsz

    def sync_time(self, num_nodes: int, num_gpus: int) -> float:
        """Seconds for gradient synchronization across the allocation."""
        if num_gpus < 1 or num_nodes < 1 or num_nodes > num_gpus:
            raise ValueError("invalid allocation shape")
        if num_gpus == 1:
            return 0.0
        p = self.params
        extra = max(0, num_gpus - 2)
        if num_nodes == 1:
            return p.alpha_r + p.beta_r * extra
        return p.alpha_n + p.beta_n * extra

    def iter_time(self, local_bsz: float, num_gpus: int, num_nodes: int,
                  accum_steps: int = 1) -> float:
        """Seconds per training iteration (one optimizer step)."""
        if accum_steps < 1:
            raise ValueError("accum_steps must be >= 1")
        t_grad = self.grad_time(local_bsz)
        t_sync = self.sync_time(num_nodes, num_gpus)
        g = self.params.gamma
        overlapped = (t_grad ** g + t_sync ** g) ** (1.0 / g)
        return (accum_steps - 1) * t_grad + overlapped

    def throughput(self, local_bsz: float, num_gpus: int, num_nodes: int,
                   accum_steps: int = 1) -> float:
        """Samples processed per second for the given execution plan."""
        total = num_gpus * local_bsz * accum_steps
        return total / self.iter_time(local_bsz, num_gpus, num_nodes, accum_steps)

    # -- vectorized entry points ------------------------------------------

    def iter_time_batch(self, local_bsz: np.ndarray, num_gpus: int,
                        num_nodes: int,
                        accum_steps: np.ndarray | int = 1) -> np.ndarray:
        """Vectorized :meth:`iter_time` over arrays of (local_bsz, accum).

        The allocation shape ``(num_gpus, num_nodes)`` is fixed — the sync
        phase is one scalar — while per-GPU batch size and accumulation
        steps vary elementwise.  One call evaluates a whole candidate grid,
        which is what keeps the per-round goodput pass off the scalar
        Python path.
        """
        local = np.asarray(local_bsz, dtype=float)
        accum = np.asarray(accum_steps, dtype=float)
        if local.size and local.min() <= 0:
            raise ValueError("local_bsz must be positive")
        if accum.size and accum.min() < 1:
            raise ValueError("accum_steps must be >= 1")
        p = self.params
        t_grad = p.alpha_c + p.beta_c * local
        t_sync = self.sync_time(num_nodes, num_gpus)
        g = p.gamma
        overlapped = (t_grad ** g + t_sync ** g) ** (1.0 / g)
        return (accum - 1) * t_grad + overlapped

    def throughput_batch(self, local_bsz: np.ndarray, num_gpus: int,
                         num_nodes: int,
                         accum_steps: np.ndarray | int = 1) -> np.ndarray:
        """Vectorized :meth:`throughput` over arrays of (local_bsz, accum)."""
        local = np.asarray(local_bsz, dtype=float)
        accum = np.asarray(accum_steps, dtype=float)
        total = num_gpus * local * accum
        return total / self.iter_time_batch(local, num_gpus, num_nodes, accum)


def perfect_scaling_estimate(single_gpu_throughput: float, num_gpus: int) -> float:
    """The one-time "perfect scaling" assumption from Section 3.2: before any
    multi-GPU run, throughput of N replicas is N x the single-replica rate."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    return single_gpu_throughput * num_gpus


def validate_params_finite(params: ThroughputParams) -> bool:
    """True if every parameter is finite (guards fitted models)."""
    return all(map(math.isfinite, (
        params.alpha_c, params.beta_c, params.alpha_r,
        params.beta_r, params.alpha_n, params.beta_n, params.gamma,
    )))

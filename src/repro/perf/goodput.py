"""Goodput model: throughput x statistical efficiency, with batch-size
co-optimization (Sections 3.1-3.2).

Given an allocation shape (GPU type, GPU count ``k``, node count ``n``), the
Adaptive Executor picks the per-GPU batch size and gradient-accumulation
steps maximizing goodput, subject to

* the GPU type's memory limit on local batch size,
* the submitter's ``max_bsz`` cap on total batch size,
* a floor of the reference batch size ``M0`` (training below the submitted
  batch size is never beneficial: efficiency is capped and throughput falls).

Gradient accumulation lets memory-limited GPUs reach statistically-optimal
total batch sizes (Section 3.1, "Heterogeneous Execution").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.efficiency import EfficiencyModel
from repro.perf.throughput import ThroughputModel

#: Cap on gradient-accumulation sub-steps considered per iteration.
MAX_ACCUM_STEPS: int = 16


@dataclass(frozen=True)
class BatchPlan:
    """An executable batch-size decision with its predicted rates."""

    local_bsz: int
    accum_steps: int
    total_batch_size: int
    throughput: float    # samples / second
    efficiency: float    # effective samples per sample
    goodput: float       # effective samples / second


def candidate_local_sizes(lo: int, hi: int, *, max_candidates: int = 24) -> list[int]:
    """A geometric grid of candidate local batch sizes in [lo, hi]."""
    if lo < 1 or hi < lo:
        return []
    sizes: set[int] = {lo, hi}
    value = float(lo)
    ratio = (hi / lo) ** (1.0 / max(1, max_candidates - 1)) if hi > lo else 1.0
    for _ in range(max_candidates):
        sizes.add(int(round(value)))
        value *= ratio
        if value > hi:
            break
    return sorted(s for s in sizes if lo <= s <= hi)


class GoodputModel:
    """Combines one throughput model with the job's efficiency model."""

    def __init__(self, throughput_model: ThroughputModel,
                 efficiency_model: EfficiencyModel):
        self.throughput_model = throughput_model
        self.efficiency_model = efficiency_model

    def evaluate(self, local_bsz: int, num_gpus: int, num_nodes: int,
                 accum_steps: int = 1) -> BatchPlan:
        """Predicted rates for one fully-specified execution plan."""
        total = num_gpus * local_bsz * accum_steps
        xput = self.throughput_model.throughput(
            local_bsz, num_gpus, num_nodes, accum_steps)
        eff = self.efficiency_model.efficiency(total)
        return BatchPlan(local_bsz=local_bsz, accum_steps=accum_steps,
                         total_batch_size=total, throughput=xput,
                         efficiency=eff, goodput=xput * eff)

    def optimize_batch_size(self, num_gpus: int, num_nodes: int, *,
                            max_local_bsz: int,
                            max_total_bsz: int,
                            min_total_bsz: int | None = None,
                            fixed_total_bsz: int | None = None) -> BatchPlan | None:
        """Best batch plan for an allocation shape, or None if infeasible.

        ``fixed_total_bsz`` implements strong-scaling/rigid jobs: the total
        batch size is pinned and only its (local, accumulation) split is
        optimized.
        """
        if num_gpus < 1 or max_local_bsz < 1:
            return None
        if fixed_total_bsz is not None:
            return self._plan_fixed_total(num_gpus, num_nodes,
                                          fixed_total_bsz, max_local_bsz)

        floor_total = min_total_bsz or 1
        if floor_total > max_total_bsz:
            return None
        best: BatchPlan | None = None
        for accum in range(1, MAX_ACCUM_STEPS + 1):
            # Local size must keep the total within [floor, cap].
            lo = max(1, -(-floor_total // (num_gpus * accum)))  # ceil div
            hi = min(max_local_bsz, max_total_bsz // (num_gpus * accum))
            if hi < lo:
                continue
            for local in candidate_local_sizes(lo, hi):
                plan = self.evaluate(local, num_gpus, num_nodes, accum)
                if best is None or plan.goodput > best.goodput:
                    best = plan
            # Accumulation only helps when memory-limited; once the full
            # range is reachable without accumulation there is no gain.
            if accum == 1 and max_local_bsz * num_gpus >= max_total_bsz:
                break
        return best

    def _plan_fixed_total(self, num_gpus: int, num_nodes: int,
                          total: int, max_local_bsz: int) -> BatchPlan | None:
        """Split a pinned total batch size into (local, accumulation)."""
        if total < num_gpus:
            return None  # cannot give every GPU at least one sample
        best: BatchPlan | None = None
        for accum in range(1, MAX_ACCUM_STEPS + 1):
            local = total // (num_gpus * accum)
            if local < 1:
                break
            if local > max_local_bsz:
                continue
            plan = self.evaluate(local, num_gpus, num_nodes, accum)
            if best is None or plan.goodput > best.goodput:
                best = plan
        return best

    def goodput(self, num_gpus: int, num_nodes: int, *,
                max_local_bsz: int, max_total_bsz: int,
                min_total_bsz: int | None = None,
                fixed_total_bsz: int | None = None) -> float:
        """Convenience: maximum achievable goodput for an allocation shape."""
        plan = self.optimize_batch_size(
            num_gpus, num_nodes, max_local_bsz=max_local_bsz,
            max_total_bsz=max_total_bsz, min_total_bsz=min_total_bsz,
            fixed_total_bsz=fixed_total_bsz)
        return plan.goodput if plan is not None else 0.0

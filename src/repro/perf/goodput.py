"""Goodput model: throughput x statistical efficiency, with batch-size
co-optimization (Sections 3.1-3.2).

Given an allocation shape (GPU type, GPU count ``k``, node count ``n``), the
Adaptive Executor picks the per-GPU batch size and gradient-accumulation
steps maximizing goodput, subject to

* the GPU type's memory limit on local batch size,
* the submitter's ``max_bsz`` cap on total batch size,
* a floor of the reference batch size ``M0`` (training below the submitted
  batch size is never beneficial: efficiency is capped and throughput falls).

Gradient accumulation lets memory-limited GPUs reach statistically-optimal
total batch sizes (Section 3.1, "Heterogeneous Execution").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.efficiency import EfficiencyModel
from repro.perf.throughput import ThroughputModel

#: Cap on gradient-accumulation sub-steps considered per iteration.
MAX_ACCUM_STEPS: int = 16

#: Relative slack when shortlisting grid maxima in the vectorized pass.
#: Vectorized numpy ``pow`` can differ from CPython's by an ulp, so every
#: candidate within this band of the vectorized maximum is re-evaluated
#: through the scalar path and the scalar tie-break rule applied — making
#: the vectorized optimizer *exactly* equivalent to the scalar loop.
_SHORTLIST_RTOL: float = 1e-12

#: Candidate grids are pure functions of (shape, batch-size caps); one
#: cluster-wide scheduling round asks for the same few dozen grids hundreds
#: of times (every job of a model on every GPU type), so the vectorized
#: path memoizes them together with their numpy column views.
_GRID_CACHE: dict[tuple, tuple[list[tuple[int, int]],
                               "np.ndarray", "np.ndarray"]] = {}
_GRID_CACHE_MAX = 4096


@dataclass(frozen=True)
class BatchPlan:
    """An executable batch-size decision with its predicted rates."""

    local_bsz: int
    accum_steps: int
    total_batch_size: int
    throughput: float    # samples / second
    efficiency: float    # effective samples per sample
    goodput: float       # effective samples / second


def candidate_local_sizes(lo: int, hi: int, *, max_candidates: int = 24) -> list[int]:
    """A geometric grid of candidate local batch sizes in [lo, hi]."""
    if lo < 1 or hi < lo:
        return []
    sizes: set[int] = {lo, hi}
    value = float(lo)
    ratio = (hi / lo) ** (1.0 / max(1, max_candidates - 1)) if hi > lo else 1.0
    for _ in range(max_candidates):
        sizes.add(int(round(value)))
        value *= ratio
        if value > hi:
            break
    return sorted(s for s in sizes if lo <= s <= hi)


class GoodputModel:
    """Combines one throughput model with the job's efficiency model.

    ``vectorized`` selects the batched grid evaluation (one numpy pass over
    the whole (accum_steps x candidate-local-bsz) grid) over the legacy
    scalar loop.  Both produce identical plans: the vectorized pass ranks
    candidates in bulk, then re-evaluates the (tiny) shortlist of maxima
    through the scalar path so returned numbers are bit-identical.
    """

    def __init__(self, throughput_model: ThroughputModel,
                 efficiency_model: EfficiencyModel, *,
                 vectorized: bool = True):
        self.throughput_model = throughput_model
        self.efficiency_model = efficiency_model
        self.vectorized = vectorized and hasattr(throughput_model,
                                                 "throughput_batch")

    def evaluate(self, local_bsz: int, num_gpus: int, num_nodes: int,
                 accum_steps: int = 1) -> BatchPlan:
        """Predicted rates for one fully-specified execution plan."""
        total = num_gpus * local_bsz * accum_steps
        xput = self.throughput_model.throughput(
            local_bsz, num_gpus, num_nodes, accum_steps)
        eff = self.efficiency_model.efficiency(total)
        return BatchPlan(local_bsz=local_bsz, accum_steps=accum_steps,
                         total_batch_size=total, throughput=xput,
                         efficiency=eff, goodput=xput * eff)

    def optimize_batch_size(self, num_gpus: int, num_nodes: int, *,
                            max_local_bsz: int,
                            max_total_bsz: int,
                            min_total_bsz: int | None = None,
                            fixed_total_bsz: int | None = None) -> BatchPlan | None:
        """Best batch plan for an allocation shape, or None if infeasible.

        ``fixed_total_bsz`` implements strong-scaling/rigid jobs: the total
        batch size is pinned and only its (local, accumulation) split is
        optimized.
        """
        if num_gpus < 1 or max_local_bsz < 1:
            return None
        if fixed_total_bsz is not None:
            key = ("fixed", num_gpus, fixed_total_bsz, max_local_bsz)
            build = lambda: self._fixed_total_grid(  # noqa: E731
                num_gpus, fixed_total_bsz, max_local_bsz)
        else:
            floor_total = min_total_bsz or 1
            if floor_total > max_total_bsz:
                return None
            key = ("adaptive", num_gpus, max_local_bsz, max_total_bsz,
                   floor_total)
            build = lambda: self._adaptive_grid(  # noqa: E731
                num_gpus, max_local_bsz, max_total_bsz, floor_total)
        if not self.vectorized:
            pairs = build()
            if not pairs:
                return None
            return self._best_of_grid_scalar(pairs, num_gpus, num_nodes)
        pairs, accums, locals_ = self._cached_grid(key, build)
        if not pairs:
            return None
        return self._best_of_grid_vectorized(pairs, accums, locals_,
                                             num_gpus, num_nodes)

    @staticmethod
    def _cached_grid(key, build):
        entry = _GRID_CACHE.get(key)
        if entry is None:
            pairs = build()
            accums = np.fromiter((a for a, _ in pairs), dtype=np.int64,
                                 count=len(pairs))
            locals_ = np.fromiter((m for _, m in pairs), dtype=np.int64,
                                  count=len(pairs))
            if len(_GRID_CACHE) >= _GRID_CACHE_MAX:
                _GRID_CACHE.clear()
            _GRID_CACHE[key] = entry = (pairs, accums, locals_)
        return entry

    # -- candidate grids ---------------------------------------------------

    @staticmethod
    def _adaptive_grid(num_gpus: int, max_local_bsz: int, max_total_bsz: int,
                       floor_total: int) -> list[tuple[int, int]]:
        """(accum, local) candidates for an adaptive-batch-size job."""
        pairs: list[tuple[int, int]] = []
        for accum in range(1, MAX_ACCUM_STEPS + 1):
            # Local size must keep the total within [floor, cap].
            lo = max(1, -(-floor_total // (num_gpus * accum)))  # ceil div
            hi = min(max_local_bsz, max_total_bsz // (num_gpus * accum))
            if hi < lo:
                continue
            pairs.extend((accum, local)
                         for local in candidate_local_sizes(lo, hi))
            # Accumulation only helps when memory-limited; once the full
            # range is reachable without accumulation there is no gain.
            if accum == 1 and max_local_bsz * num_gpus >= max_total_bsz:
                break
        return pairs

    @staticmethod
    def _fixed_total_grid(num_gpus: int, total: int,
                          max_local_bsz: int) -> list[tuple[int, int]]:
        """(accum, local) splits of a pinned total batch size."""
        if total < num_gpus:
            return []  # cannot give every GPU at least one sample
        pairs: list[tuple[int, int]] = []
        for accum in range(1, MAX_ACCUM_STEPS + 1):
            local = total // (num_gpus * accum)
            if local < 1:
                break
            if local > max_local_bsz:
                continue
            pairs.append((accum, local))
        return pairs

    # -- grid evaluation ---------------------------------------------------

    def _best_of_grid_scalar(self, pairs: list[tuple[int, int]],
                             num_gpus: int, num_nodes: int) -> BatchPlan | None:
        """The legacy per-candidate loop (reference implementation)."""
        best: BatchPlan | None = None
        for accum, local in pairs:
            plan = self.evaluate(local, num_gpus, num_nodes, accum)
            if best is None or plan.goodput > best.goodput:
                best = plan
        return best

    def _best_of_grid_vectorized(self, pairs: list[tuple[int, int]],
                                 accums: np.ndarray, locals_: np.ndarray,
                                 num_gpus: int,
                                 num_nodes: int) -> BatchPlan | None:
        """Rank the whole grid in one batched pass, then pin the winner to
        the scalar path so the returned plan is bit-identical to
        :meth:`_best_of_grid_scalar`."""
        xput = self.throughput_model.throughput_batch(
            locals_, num_gpus, num_nodes, accums)
        totals = num_gpus * locals_ * accums
        goodput = xput * self.efficiency_model.efficiency_batch(totals)
        best = float(np.max(goodput))
        shortlist = np.flatnonzero(goodput >= best - _SHORTLIST_RTOL
                                   * abs(best))
        if shortlist.size == 0:  # non-finite grid; defer to the reference
            return self._best_of_grid_scalar(pairs, num_gpus, num_nodes)
        best_plan: BatchPlan | None = None
        for idx in shortlist:
            plan = self.evaluate(int(locals_[idx]), num_gpus, num_nodes,
                                 int(accums[idx]))
            if best_plan is None or plan.goodput > best_plan.goodput:
                best_plan = plan
        return best_plan

    def goodput(self, num_gpus: int, num_nodes: int, *,
                max_local_bsz: int, max_total_bsz: int,
                min_total_bsz: int | None = None,
                fixed_total_bsz: int | None = None) -> float:
        """Convenience: maximum achievable goodput for an allocation shape."""
        plan = self.optimize_batch_size(
            num_gpus, num_nodes, max_local_bsz=max_local_bsz,
            max_total_bsz=max_total_bsz, min_total_bsz=min_total_bsz,
            fixed_total_bsz=fixed_total_bsz)
        return plan.goodput if plan is not None else 0.0

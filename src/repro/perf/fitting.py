"""Online fitting of throughput-model parameters from observations.

Adaptive Executors report measured iteration times for whatever allocation a
job currently runs on (Section 3.5, every 30 s).  The Goodput Estimator
turns these measurements into :class:`~repro.perf.throughput.ThroughputParams`
for each GPU type the job has run on:

* 1-GPU observations pin the compute phase (``alpha_c``, ``beta_c``) — a
  linear fit of step time against local batch size;
* multi-GPU observations are inverted through the gamma-norm to recover the
  sync time, then fitted linearly against GPU count (separately for
  single-node and multi-node allocations).

The fits are deliberately simple (non-negative least squares on one or two
points when that is all we have): the paper's point is that *little* data
suffices once it is routed through the right model family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.throughput import GAMMA, ThroughputParams


@dataclass(frozen=True)
class Observation:
    """One measured iteration on a concrete allocation."""

    gpu_type: str
    num_nodes: int
    num_gpus: int
    local_bsz: int
    accum_steps: int
    iter_time: float

    def __post_init__(self) -> None:
        if self.iter_time <= 0:
            raise ValueError("iter_time must be positive")
        if self.num_gpus < self.num_nodes or self.num_nodes < 1:
            raise ValueError("invalid allocation shape")
        if self.local_bsz < 1 or self.accum_steps < 1:
            raise ValueError("invalid batch plan")


def _nonneg_linear_fit(xs: np.ndarray, ys: np.ndarray) -> tuple[float, float]:
    """Least-squares fit ``y = a + b*x`` with both coefficients clamped >= 0."""
    if len(xs) == 1:
        # One point: attribute a small fixed share to the intercept.
        y, x = float(ys[0]), float(xs[0])
        if x <= 0:
            return max(y, 0.0), 0.0
        return 0.1 * y, 0.9 * y / x
    design = np.stack([np.ones_like(xs, dtype=float), xs.astype(float)], axis=1)
    coef, *_ = np.linalg.lstsq(design, ys.astype(float), rcond=None)
    a, b = float(coef[0]), float(coef[1])
    if a < 0 or b < 0:
        # Clamp and re-fit the free coefficient for stability.
        if b < 0:
            return float(np.mean(ys)), 0.0
        return 0.0, float(np.sum(xs * ys) / np.sum(xs * xs))
    return a, b


def fit_compute_params(observations: list[Observation]) -> tuple[float, float]:
    """Fit (alpha_c, beta_c) from 1-GPU observations.

    With one GPU there is no sync phase, so step time is
    ``iter_time / accum_steps = alpha_c + beta_c * local_bsz``.  If the job
    has never run on one GPU (possible for schedulers without a start-small
    rule, e.g. Pollux), the smallest GPU count observed stands in — its step
    times include some sync, so the compute estimate is conservative until
    real 1-GPU data arrives.
    """
    if not observations:
        raise ValueError("need at least one observation")
    smallest = min(obs.num_gpus for obs in observations)
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for obs in observations:
        if obs.num_gpus != smallest:
            continue
        step_time = obs.iter_time / obs.accum_steps
        sums[obs.local_bsz] = sums.get(obs.local_bsz, 0.0) + step_time
        counts[obs.local_bsz] = counts.get(obs.local_bsz, 0) + 1
    xs = np.array(sorted(sums))
    ys = np.array([sums[x] / counts[x] for x in xs])
    return _nonneg_linear_fit(xs, ys)


def invert_sync_time(iter_time: float, grad_time: float,
                     accum_steps: int, gamma: float = GAMMA) -> float:
    """Recover T_sync from a measured multi-GPU iteration time."""
    overlapped = iter_time - (accum_steps - 1) * grad_time
    if overlapped <= grad_time:
        return 0.0
    return (overlapped ** gamma - grad_time ** gamma) ** (1.0 / gamma)


def fit_sync_params(points: list[tuple[int, float]]) -> tuple[float, float]:
    """Fit (alpha, beta) of ``t_sync = alpha + beta * max(0, k - 2)``."""
    if not points:
        raise ValueError("need at least one sync observation")
    xs = np.array([max(0, k - 2) for k, _ in points], dtype=float)
    ys = np.array([t for _, t in points], dtype=float)
    if len(set(xs.tolist())) == 1:
        mean_t = float(np.mean(ys))
        return mean_t, 0.05 * mean_t
    return _nonneg_linear_fit(xs, ys)


@dataclass
class FitResult:
    """Fitted parameters plus which phases were actually observed."""

    params: ThroughputParams
    has_single_gpu: bool
    has_intra_node: bool  # multi-GPU, single-node observations seen
    has_inter_node: bool  # multi-node observations seen

    @property
    def has_multi_gpu(self) -> bool:
        return self.has_intra_node or self.has_inter_node


def fit_throughput_params(observations: list[Observation],
                          gamma: float = GAMMA) -> FitResult:
    """Full fit for one GPU type from all observations on that type.

    Unobserved sync regimes are extrapolated conservatively: missing
    inter-node parameters reuse intra-node ones (scaled up) and vice versa;
    with no sync observations at all both default to zero — callers are
    expected to treat such models with the bootstrap/perfect-scaling logic
    of Section 3.2 rather than trusting zero-cost communication.
    """
    if not observations:
        raise ValueError("need at least one observation")
    alpha_c, beta_c = fit_compute_params(observations)

    intra_points: list[tuple[int, float]] = []
    inter_points: list[tuple[int, float]] = []
    for obs in observations:
        if obs.num_gpus == 1:
            continue
        grad = alpha_c + beta_c * obs.local_bsz
        sync = invert_sync_time(obs.iter_time, grad, obs.accum_steps, gamma)
        target = intra_points if obs.num_nodes == 1 else inter_points
        target.append((obs.num_gpus, sync))

    alpha_r = beta_r = alpha_n = beta_n = 0.0
    if intra_points:
        alpha_r, beta_r = fit_sync_params(intra_points)
    if inter_points:
        alpha_n, beta_n = fit_sync_params(inter_points)
    if intra_points and not inter_points:
        # Crossing nodes is never cheaper than staying inside one.
        alpha_n, beta_n = alpha_r * 3.0, beta_r * 3.0
    elif inter_points and not intra_points:
        alpha_r, beta_r = alpha_n / 3.0, beta_n / 3.0

    params = ThroughputParams(alpha_c=alpha_c, beta_c=beta_c,
                              alpha_r=alpha_r, beta_r=beta_r,
                              alpha_n=alpha_n, beta_n=beta_n, gamma=gamma)
    return FitResult(
        params=params,
        has_single_gpu=any(o.num_gpus == 1 for o in observations),
        has_intra_node=bool(intra_points),
        has_inter_node=bool(inter_points),
    )

"""Per-job Goodput Estimator (Figure 3, steps 2/7/8).

One estimator exists per job.  It owns

* the job's observations and fitted throughput parameters per GPU type,
* the job's statistical-efficiency model (one per job, shared across types),
* the profiling mode (Oracle / No-Prof / Bootstrap, Section 5.7).

The central query is :meth:`goodput`: the best achievable goodput for a
configuration, after optimizing the batch plan under the job's adaptivity
constraints.  Throughput estimates route through a dispatch that mirrors
Section 3.2:

1. Oracle mode, or a fitted model whose communication behaviour has actually
   been observed -> trust the model.
2. Multi-GPU on a type we only have a 1-GPU profile for, while some *other*
   type has multi-GPU experience -> Equation (1) bootstrap.
3. Multi-GPU with no multi-GPU experience anywhere -> the one-time perfect
   scaling assumption (zero communication time).
4. No data at all for a type (No-Prof mode) -> a type-blind prior, so the
   policy can still allocate and learn.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

import numpy as np

from repro.core.bootstrap import bootstrap_throughput, pick_reference_type
from repro.core.types import Configuration, ProfilingMode
from repro.perf import profiles
from repro.perf.efficiency import EfficiencyModel, EfficiencyParams
from repro.perf.fitting import FitResult, Observation, fit_throughput_params
from repro.perf.goodput import BatchPlan, GoodputModel
from repro.perf.throughput import ThroughputModel, ThroughputParams

#: Type-blind prior used when nothing at all is known (No-Prof cold start).
_PRIOR_PARAMS = ThroughputParams(alpha_c=0.05, beta_c=0.01,
                                 alpha_r=0.01, beta_r=0.001,
                                 alpha_n=0.05, beta_n=0.005)

#: Batch sizes profiled per GPU type during bootstrap (Section 3.2 profiles
#: "typically 10 batchsizes per GPU type").
PROFILE_POINTS_PER_TYPE = 10

#: Process-wide default for new estimators: evaluate batch-plan grids with
#: the vectorized pipeline (True) or the legacy scalar loop (False).  The
#: perf benchmarks and equivalence tests flip this to compare both paths.
DEFAULT_VECTORIZED = True


@dataclass
class JobConstraints:
    """The submitter-declared and adaptivity-derived limits for one job."""

    min_bsz: int
    max_bsz: int
    min_gpus: int = 1
    max_gpus: int | None = None
    #: strong-scaling / rigid jobs pin the total batch size.
    fixed_total_bsz: int | None = None


@dataclass
class _TypeState:
    """What the estimator knows about one GPU type."""

    observations: list[Observation] = field(default_factory=list)
    fit: FitResult | None = None
    dirty: bool = False
    #: bumped on every new observation for this type; cache entries that
    #: depended only on this type's fit revalidate against it.
    epoch: int = 0
    #: per batch-plan key ``(num_gpus, num_nodes, local_bsz, accum_steps)``:
    #: recently *accepted* iteration times — the MAD-defense window new
    #: reports are judged against.
    recent: dict[tuple, list[float]] = field(default_factory=dict)


class JobPerfEstimator:
    """Goodput estimator for one job across all GPU types."""

    #: observation-defense knobs (gray-failure hardening; class attrs so
    #: tests and subclasses can tune them).  A report is rejected when it
    #: is non-finite/non-positive, or — once ``OUTLIER_MIN_SAMPLES``
    #: accepted reports exist for the same (gpu_type, batch-plan) key —
    #: when it deviates from the window median by more than
    #: ``OUTLIER_MAD_SIGMAS`` robust z-scores *and* more than
    #: ``OUTLIER_RATIO_CAP``x.  The ratio guard keeps the defense honest
    #: under near-zero observation noise (identical history -> MAD 0 ->
    #: every deviation is "infinite sigmas"): execution-side slowdowns
    #: like a 2x straggler must pass, while an 8x-scaled corrupt report
    #: must not.
    OUTLIER_MIN_SAMPLES = 4
    OUTLIER_MAD_SIGMAS = 6.0
    OUTLIER_RATIO_CAP = 3.0
    OUTLIER_WINDOW = 16

    def __init__(self, model_name: str, constraints: JobConstraints,
                 gpu_types: tuple[str, ...],
                 mode: ProfilingMode = ProfilingMode.BOOTSTRAP,
                 *, vectorized: bool | None = None):
        self.model_name = model_name
        self.constraints = constraints
        self.gpu_types = gpu_types
        self.mode = mode
        self.vectorized = DEFAULT_VECTORIZED if vectorized is None \
            else vectorized
        self._types: dict[str, _TypeState] = {t: _TypeState() for t in gpu_types}
        self.profiling_gpu_seconds = 0.0
        self._efficiency = self._initial_efficiency()
        #: memoized goodput-per-configuration results with the epoch token
        #: they were computed under.  Invalidation is *per GPU type*: a new
        #: observation on one type only stales entries whose dispatch read
        #: that type's fit (or the cross-type bootstrap state), so running
        #: jobs keep cache hits on every other type between rounds.
        self._goodput_cache: dict[
            Configuration, tuple[tuple, BatchPlan | None]] = {}
        #: epoch counters backing cache validation: one per GPU type (in
        #: ``_TypeState``), one global observation epoch (cross-type
        #: bootstrap estimates read *all* types), one efficiency epoch.
        self._obs_epoch = 0
        self._eff_epoch = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: reports the input defense refused to fold into any fit.
        self.rejected_observations = 0

    # -- initialization ----------------------------------------------------

    def _initial_efficiency(self) -> EfficiencyModel:
        true_params = profiles.true_efficiency_params(self.model_name)
        if self.mode is ProfilingMode.NO_PROF:
            # Without profiling there is no gradient-noise estimate yet:
            # start pessimistic (large batches look inefficient) and learn.
            return EfficiencyModel(EfficiencyParams(
                grad_noise_scale=float(true_params.init_batch_size),
                init_batch_size=true_params.init_batch_size))
        return EfficiencyModel(EfficiencyParams(
            grad_noise_scale=true_params.grad_noise_scale,
            init_batch_size=true_params.init_batch_size))

    def profile_initial(self) -> float:
        """Run the initial profiling pass (Figure 3, step 2).

        In Bootstrap mode this measures ~10 batch sizes on one GPU of each
        type (from the ground-truth model — the simulated equivalent of
        running a few mini-batches).  Returns GPU-seconds spent, also
        accumulated on :attr:`profiling_gpu_seconds`.
        """
        if self.mode is not ProfilingMode.BOOTSTRAP:
            return 0.0
        spent = 0.0
        for gpu_type in self.gpu_types:
            cap = self.max_local_bsz(gpu_type)
            if cap < 1:
                continue
            lo = max(1, min(self.constraints.min_bsz, cap))
            sizes = sorted({max(1, int(round(lo * (cap / lo) ** (i / max(1, PROFILE_POINTS_PER_TYPE - 1)))))
                            for i in range(PROFILE_POINTS_PER_TYPE)})
            true_model = ThroughputModel(
                profiles.true_throughput_params(self.model_name, gpu_type))
            for bsz in sizes:
                iter_time = true_model.iter_time(bsz, 1, 1)
                self.add_observation(Observation(
                    gpu_type=gpu_type, num_nodes=1, num_gpus=1,
                    local_bsz=bsz, accum_steps=1, iter_time=iter_time))
                spent += iter_time
        self.profiling_gpu_seconds += spent
        return spent

    # -- observation intake --------------------------------------------------

    def add_observation(self, obs: Observation) -> bool:
        """Fold one executor report into the fit state.

        Returns True when accepted.  Input defense (gray-failure
        hardening, independent of the health layer): non-finite or
        non-positive iteration times are refused outright, and MAD-based
        outliers against the recent accepted window for the same
        (gpu_type, batch plan) are refused so one corrupt report cannot
        poison a fit.  Rejected reports bump :attr:`rejected_observations`
        and leave every cache epoch untouched.
        """
        if obs.gpu_type not in self._types:
            raise KeyError(f"estimator does not track GPU type {obs.gpu_type!r}")
        state = self._types[obs.gpu_type]
        if not self._observation_credible(state, obs):
            self.rejected_observations += 1
            return False
        key = (obs.num_gpus, obs.num_nodes, obs.local_bsz, obs.accum_steps)
        window = state.recent.setdefault(key, [])
        window.append(obs.iter_time)
        if len(window) > self.OUTLIER_WINDOW:
            del window[0]
        state.observations.append(obs)
        state.dirty = True
        # Per-type invalidation: only entries whose cache token referenced
        # this type's epoch (or the global epoch, for bootstrapped
        # estimates) fail revalidation; everything else stays warm.
        state.epoch += 1
        self._obs_epoch += 1
        return True

    def _observation_credible(self, state: _TypeState,
                              obs: Observation) -> bool:
        iter_time = obs.iter_time
        if not (isinstance(iter_time, (int, float))
                and math.isfinite(iter_time) and iter_time > 0):
            return False
        window = state.recent.get((obs.num_gpus, obs.num_nodes,
                                   obs.local_bsz, obs.accum_steps))
        if window is None or len(window) < self.OUTLIER_MIN_SAMPLES:
            return True
        median = statistics.median(window)
        mad = statistics.median(abs(x - median) for x in window)
        # Floor the MAD so an identical-history window (MAD 0) does not
        # make every deviation infinitely significant.
        floor = max(mad, 1e-3 * median)
        if abs(iter_time - median) <= self.OUTLIER_MAD_SIGMAS * floor:
            return True
        return (median / self.OUTLIER_RATIO_CAP <= iter_time
                <= median * self.OUTLIER_RATIO_CAP)

    def update_gradient_stats(self, observed_noise_scale: float) -> None:
        """Fold a reported gradient-noise-scale measurement into the
        efficiency model (Adaptive Executor reports, Section 3.5)."""
        current = self._efficiency.params.grad_noise_scale
        if abs(observed_noise_scale - current) <= 1e-9 * max(current, 1.0):
            return  # already converged; keep memoized goodputs valid
        self._efficiency.update_noise_scale(observed_noise_scale)
        self._eff_epoch += 1

    def _fit(self, gpu_type: str) -> FitResult | None:
        state = self._types[gpu_type]
        if state.dirty and state.observations:
            state.fit = fit_throughput_params(state.observations)
            state.dirty = False
        return state.fit

    # -- knowledge queries ---------------------------------------------------

    def has_profile(self, gpu_type: str) -> bool:
        return bool(self._types[gpu_type].observations)

    def has_multi_gpu_experience(self, gpu_type: str) -> bool:
        fit = self._fit(gpu_type)
        return fit is not None and fit.has_multi_gpu

    def max_local_bsz(self, gpu_type: str) -> int:
        """Per-GPU batch-size cap on this type (memory limit).

        Discovered during the profiling pass (profiling increases batch size
        until it hits GPU memory limits — Section 3.2), so it is known in
        every mode.
        """
        cap = profiles.max_local_bsz(self.model_name, gpu_type)
        return min(cap, self.constraints.max_bsz) if cap else 0

    # -- throughput dispatch --------------------------------------------------

    def _single_gpu_xput(self, gpu_type: str, local_bsz: int) -> float | None:
        """Estimated 1-GPU throughput on a type, if any data exists."""
        fit = self._fit(gpu_type)
        if fit is None or not fit.has_single_gpu:
            return None
        model = ThroughputModel(fit.params)
        return model.throughput(local_bsz, 1, 1)

    def throughput(self, gpu_type: str, local_bsz: int, num_gpus: int,
                   num_nodes: int, accum_steps: int = 1) -> float:
        """Estimated samples/second on a concrete execution plan."""
        if self.mode is ProfilingMode.ORACLE:
            true_model = ThroughputModel(
                profiles.true_throughput_params(self.model_name, gpu_type))
            return true_model.throughput(local_bsz, num_gpus, num_nodes,
                                         accum_steps)

        fit = self._fit(gpu_type)
        if fit is not None and (num_gpus == 1 or fit.has_multi_gpu):
            return ThroughputModel(fit.params).throughput(
                local_bsz, num_gpus, num_nodes, accum_steps)

        if fit is not None and fit.has_single_gpu:
            # Multi-GPU on a type we have only profiled at 1 GPU.
            estimate = self._bootstrap_multi_gpu(
                gpu_type, local_bsz, num_gpus, num_nodes, accum_steps)
            if estimate is not None:
                return estimate
            # Perfect-scaling assumption (Section 3.2): N replicas run at
            # N x the single-replica rate (accumulation scales samples and
            # time equally, so the rate is unchanged by accum_steps).
            single = self._single_gpu_xput(gpu_type, local_bsz)
            assert single is not None
            return single * num_gpus

        # Nothing known for this type (No-Prof cold start): type-blind prior.
        return ThroughputModel(_PRIOR_PARAMS).throughput(
            local_bsz, num_gpus, num_nodes, accum_steps)

    def throughput_batch(self, gpu_type: str, local_bsz: np.ndarray,
                         num_gpus: int, num_nodes: int,
                         accum_steps: np.ndarray | int = 1) -> np.ndarray:
        """Vectorized :meth:`throughput`: one dispatch decision per
        (type, shape), then a single batched model evaluation over the
        whole (local_bsz, accum_steps) grid.

        The dispatch branch taken is identical to the scalar path because
        none of the routing conditions depend on the batch plan; only the
        Equation (1) reference-type choice can vary per grid point, and
        the bootstrap branch replicates that selection elementwise.
        """
        local = np.asarray(local_bsz, dtype=np.int64)
        if self.mode is ProfilingMode.ORACLE:
            true_model = ThroughputModel(
                profiles.true_throughput_params(self.model_name, gpu_type))
            return true_model.throughput_batch(local, num_gpus, num_nodes,
                                               accum_steps)

        fit = self._fit(gpu_type)
        if fit is not None and (num_gpus == 1 or fit.has_multi_gpu):
            return ThroughputModel(fit.params).throughput_batch(
                local, num_gpus, num_nodes, accum_steps)

        if fit is not None and fit.has_single_gpu:
            estimate = self._bootstrap_multi_gpu_batch(
                gpu_type, local, num_gpus, num_nodes, accum_steps)
            if estimate is not None:
                return estimate
            # Perfect-scaling assumption: N x the single-replica rate at
            # accumulation 1 (matching the scalar path exactly).
            singles = ThroughputModel(fit.params).throughput_batch(
                local, 1, 1, 1)
            return singles * num_gpus

        return ThroughputModel(_PRIOR_PARAMS).throughput_batch(
            local, num_gpus, num_nodes, accum_steps)

    def _bootstrap_multi_gpu(self, gpu_type: str, local_bsz: int,
                             num_gpus: int, num_nodes: int,
                             accum_steps: int) -> float | None:
        """Equation (1): rescale a multi-GPU-experienced reference type."""
        experience = {t: self.has_multi_gpu_experience(t) for t in self.gpu_types}
        singles: dict[str, float] = {}
        for t in self.gpu_types:
            xput = self._single_gpu_xput(t, local_bsz)
            if xput is not None:
                singles[t] = xput
        reference = pick_reference_type(experience, singles)
        if reference is None or gpu_type not in singles:
            return None
        ref_fit = self._fit(reference)
        assert ref_fit is not None
        ref_multi = ThroughputModel(ref_fit.params).throughput(
            local_bsz, num_gpus, num_nodes, accum_steps)
        return bootstrap_throughput(singles[gpu_type], singles[reference],
                                    ref_multi)

    def _bootstrap_multi_gpu_batch(self, gpu_type: str, local: np.ndarray,
                                   num_gpus: int, num_nodes: int,
                                   accum_steps: np.ndarray | int,
                                   ) -> np.ndarray | None:
        """Vectorized Equation (1): per grid point, rescale the fastest
        multi-GPU-experienced reference type (the scalar path's
        ``pick_reference_type`` argmax, applied elementwise)."""
        singles: dict[str, np.ndarray] = {}
        for t in self.gpu_types:
            fit_t = self._fit(t)
            if fit_t is not None and fit_t.has_single_gpu:
                singles[t] = ThroughputModel(fit_t.params).throughput_batch(
                    local, 1, 1, 1)
        experienced = [t for t in self.gpu_types
                       if self.has_multi_gpu_experience(t) and t in singles]
        if not experienced or gpu_type not in singles:
            return None
        # Reference selection mirrors pick_reference_type: the experienced
        # type with the largest 1-GPU throughput, first listed winning ties.
        stacked = np.stack([singles[t] for t in experienced])
        masked = np.where(stacked > 0, stacked, -np.inf)
        ref_idx = np.argmax(masked, axis=0)
        points = np.arange(local.shape[0])
        ref_single = stacked[ref_idx, points]
        multis = np.stack([
            ThroughputModel(self._fit(t).params).throughput_batch(
                local, num_gpus, num_nodes, accum_steps)
            for t in experienced])
        ref_multi = multis[ref_idx, points]
        with np.errstate(divide="ignore", invalid="ignore"):
            estimate = singles[gpu_type] / ref_single * ref_multi
        # Points where no experienced type has positive 1-GPU throughput
        # fall back to perfect scaling, exactly like the scalar dispatch.
        fallback = singles[gpu_type] * num_gpus
        return np.where(np.isfinite(ref_single) & (ref_single > 0),
                        estimate, fallback)

    # -- goodput -------------------------------------------------------------

    def _cache_token(self, gpu_type: str, num_gpus: int) -> tuple:
        """The epochs a cached plan for (type, shape) depends on.

        A cached entry is valid while its token matches the current one:

        * Oracle estimates read only the (immutable) ground truth, so they
          revalidate on the efficiency epoch alone;
        * trusted fits read one type's observations, so a new observation
          on another GPU type leaves them warm (the per-type invalidation
          this cache exists for);
        * bootstrapped / perfect-scaling estimates read *all* types (the
          Equation (1) reference can change with any observation), so they
          key on the global observation epoch.
        """
        if self.mode is ProfilingMode.ORACLE:
            return ("oracle", self._eff_epoch)
        state = self._types[gpu_type]
        fit = self._fit(gpu_type)
        if fit is None:
            return ("prior", gpu_type, state.epoch, self._eff_epoch)
        if num_gpus == 1 or fit.has_multi_gpu:
            return ("fit", gpu_type, state.epoch, self._eff_epoch)
        return ("boot", self._obs_epoch, self._eff_epoch)

    def goodput(self, config: Configuration) -> float:
        """Best achievable goodput for a configuration (0 if infeasible)."""
        plan = self.best_plan(config)
        return plan.goodput if plan is not None else 0.0

    def goodput_batch(self, configs: list[Configuration]) -> np.ndarray:
        """Goodput for every configuration in one call — fills a whole
        utility row of the policy's matrix at once.  Each cache miss costs
        one batched grid evaluation instead of ~hundreds of scalar model
        calls; hits cost one dict probe."""
        out = np.empty(len(configs))
        for i, config in enumerate(configs):
            plan = self.best_plan(config)
            out[i] = plan.goodput if plan is not None else 0.0
        return out

    def best_plan(self, config: Configuration) -> BatchPlan | None:
        """Optimized batch plan for a configuration under the job's limits."""
        token = self._cache_token(config.gpu_type, config.num_gpus)
        cached = self._goodput_cache.get(config)
        if cached is not None and cached[0] == token:
            self.cache_hits += 1
            return cached[1]
        self.cache_misses += 1
        plan = self._best_plan_uncached(config)
        self._goodput_cache[config] = (token, plan)
        return plan

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of goodput queries answered from the per-type cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def _best_plan_uncached(self, config: Configuration) -> BatchPlan | None:
        cap = self.max_local_bsz(config.gpu_type)
        if cap < 1:
            return None
        adapter = _ThroughputAdapter(self, config.gpu_type)
        model = GoodputModel(adapter, self._efficiency,
                             vectorized=self.vectorized)
        return model.optimize_batch_size(
            config.num_gpus, config.num_nodes,
            max_local_bsz=cap,
            max_total_bsz=self.constraints.max_bsz,
            min_total_bsz=self.constraints.min_bsz,
            fixed_total_bsz=self.constraints.fixed_total_bsz)

    @property
    def efficiency_model(self) -> EfficiencyModel:
        return self._efficiency


class _ThroughputAdapter:
    """Presents the estimator's dispatch as a ThroughputModel-like object so
    :class:`~repro.perf.goodput.GoodputModel` can optimize batch plans on it."""

    def __init__(self, estimator: JobPerfEstimator, gpu_type: str):
        self._estimator = estimator
        self._gpu_type = gpu_type

    def throughput(self, local_bsz: float, num_gpus: int, num_nodes: int,
                   accum_steps: int = 1) -> float:
        return self._estimator.throughput(
            self._gpu_type, int(local_bsz), num_gpus, num_nodes, accum_steps)

    def throughput_batch(self, local_bsz: np.ndarray, num_gpus: int,
                         num_nodes: int,
                         accum_steps: np.ndarray | int = 1) -> np.ndarray:
        return self._estimator.throughput_batch(
            self._gpu_type, local_bsz, num_gpus, num_nodes, accum_steps)

"""Performance models: throughput, statistical efficiency, goodput,
ground-truth catalog, online fitting, and the per-job Goodput Estimator."""

from repro.perf.efficiency import EfficiencyModel, EfficiencyParams
from repro.perf.estimator import JobConstraints, JobPerfEstimator
from repro.perf.fitting import (FitResult, Observation, fit_compute_params,
                                fit_sync_params, fit_throughput_params,
                                invert_sync_time)
from repro.perf.goodput import BatchPlan, GoodputModel
from repro.perf.profiles import (CATEGORY_MODELS, MODEL_ZOO, ModelProfile,
                                 max_local_bsz, model_profile,
                                 target_effective_samples,
                                 true_efficiency_params, true_goodput_model,
                                 true_throughput_params)
from repro.perf.throughput import (GAMMA, ThroughputModel, ThroughputParams,
                                   perfect_scaling_estimate)

__all__ = [
    "EfficiencyModel", "EfficiencyParams",
    "JobConstraints", "JobPerfEstimator",
    "FitResult", "Observation", "fit_compute_params", "fit_sync_params",
    "fit_throughput_params", "invert_sync_time",
    "BatchPlan", "GoodputModel",
    "CATEGORY_MODELS", "MODEL_ZOO", "ModelProfile", "max_local_bsz",
    "model_profile", "target_effective_samples", "true_efficiency_params",
    "true_goodput_model", "true_throughput_params",
    "GAMMA", "ThroughputModel", "ThroughputParams", "perfect_scaling_estimate",
]

"""Ground-truth performance catalog for the Table 2 model zoo.

The paper seeds its simulator with throughput/efficiency profiles measured on
real hardware.  We have no hardware, so this module *synthesizes* the
ground truth: for each (model, GPU type) pair it derives Pollux-style
throughput parameters from

* a per-model compute cost on the reference GPU (t4),
* a per-model, per-GPU-type speedup factor encoding the heterogeneity the
  paper reports (Figure 2/6: BERT strongly prefers A100; DeepSpeech2 scales
  best on RTX; small CNNs under-utilize big GPUs),
* the model's gradient size and the GPU type's interconnect bandwidths
  (which determine all-reduce costs and hence *scaling* differences across
  types — the "distinct compute-to-network-bandwidth ratios" of Section 1),
* the model's memory footprint and the GPU's memory (which bound the local
  batch size, driving gradient accumulation and Gavel's under-utilization
  of large-memory GPUs).

Schedulers never read this catalog directly: the simulator uses it to
generate profiling measurements and execution outcomes, and each scheduler
fits its own models from those observations (Section 3.2).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.cluster.gpu import GPU_CATALOG, gpu_spec
from repro.perf.efficiency import EfficiencyModel, EfficiencyParams
from repro.perf.goodput import GoodputModel
from repro.perf.throughput import GAMMA, ThroughputModel, ThroughputParams

#: base network latency terms (seconds) for all-reduce setup.
_INTER_NODE_LATENCY_S = 0.008
_INTRA_NODE_LATENCY_S = 0.002


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one Table 2 model."""

    name: str
    category: str           # S / M / L / XL / XXL (by total GPU time)
    task: str
    dataset: str
    min_bsz: int            # reference batch size M0 (efficiency == 1)
    max_bsz: int            # submitter-declared maximum total batch size
    optimizer: str          # 'sgd' or 'adamw' (selects LR scaling rule)
    alpha_c_t4: float       # fixed per-step compute overhead on t4 (s)
    beta_c_t4: float        # compute seconds per sample on t4
    speedup: dict[str, float]   # per-GPU-type compute speedup over t4
    grad_size_gb: float     # gradient/all-reduce payload (GB)
    fixed_mem_gb: float     # weights + optimizer state resident per GPU
    per_sample_mem_gb: float    # activation memory per local sample
    grad_noise_scale: float     # efficiency model phi
    restart_delay_s: float      # checkpoint-restore cost (25-250 s range)
    target_t4_hours: float      # isolated 1x t4 runtime, sets total work


#: Table 2 model zoo.  XXL (2.8B GPT) is hybrid-parallel and handled by
#: :mod:`repro.jobs.hybrid`; it still appears here for efficiency/restart
#: parameters and A100/RTX compute costs.
MODEL_ZOO: dict[str, ModelProfile] = {
    "resnet18": ModelProfile(
        name="resnet18", category="S", task="image-classification",
        dataset="cifar10", min_bsz=128, max_bsz=4096, optimizer="sgd",
        alpha_c_t4=0.004, beta_c_t4=0.0008,
        speedup={"t4": 1.0, "rtx": 2.2, "a100": 4.0, "quad": 2.4},
        grad_size_gb=0.045, fixed_mem_gb=0.5, per_sample_mem_gb=0.003,
        grad_noise_scale=1500.0, restart_delay_s=25.0, target_t4_hours=0.6),
    "deepspeech2": ModelProfile(
        name="deepspeech2", category="M", task="speech-recognition",
        dataset="cmu-arctic", min_bsz=20, max_bsz=640, optimizer="sgd",
        alpha_c_t4=0.010, beta_c_t4=0.010,
        speedup={"t4": 1.0, "rtx": 2.8, "a100": 3.5, "quad": 2.5},
        grad_size_gb=0.14, fixed_mem_gb=1.0, per_sample_mem_gb=0.08,
        grad_noise_scale=300.0, restart_delay_s=40.0, target_t4_hours=3.0),
    "bert": ModelProfile(
        name="bert", category="M", task="question-answering",
        dataset="squad", min_bsz=12, max_bsz=384, optimizer="adamw",
        alpha_c_t4=0.010, beta_c_t4=0.035,
        speedup={"t4": 1.0, "rtx": 1.8, "a100": 7.5, "quad": 2.8},
        grad_size_gb=0.42, fixed_mem_gb=1.5, per_sample_mem_gb=0.35,
        grad_noise_scale=150.0, restart_delay_s=90.0, target_t4_hours=5.0),
    "yolov3": ModelProfile(
        name="yolov3", category="L", task="object-detection",
        dataset="pascal-voc", min_bsz=8, max_bsz=512, optimizer="sgd",
        alpha_c_t4=0.010, beta_c_t4=0.025,
        speedup={"t4": 1.0, "rtx": 2.3, "a100": 4.5, "quad": 2.5},
        grad_size_gb=0.24, fixed_mem_gb=1.2, per_sample_mem_gb=0.25,
        grad_noise_scale=100.0, restart_delay_s=70.0, target_t4_hours=20.0),
    "resnet50": ModelProfile(
        name="resnet50", category="XL", task="image-classification",
        dataset="imagenet-1k", min_bsz=200, max_bsz=12800, optimizer="sgd",
        alpha_c_t4=0.008, beta_c_t4=0.012,
        speedup={"t4": 1.0, "rtx": 2.0, "a100": 5.5, "quad": 2.5},
        grad_size_gb=0.10, fixed_mem_gb=1.0, per_sample_mem_gb=0.035,
        grad_noise_scale=8000.0, restart_delay_s=140.0, target_t4_hours=120.0),
    "gpt-2.8b": ModelProfile(
        name="gpt-2.8b", category="XXL", task="llm-finetuning",
        dataset="squad", min_bsz=48, max_bsz=384, optimizer="adamw",
        alpha_c_t4=0.05, beta_c_t4=0.9,
        speedup={"t4": 1.0, "rtx": 1.9, "a100": 7.0, "quad": 2.6},
        grad_size_gb=5.6, fixed_mem_gb=44.8, per_sample_mem_gb=0.9,
        grad_noise_scale=200.0, restart_delay_s=250.0, target_t4_hours=400.0),
}

#: Models by total-GPU-time category, used by the trace generators.
CATEGORY_MODELS: dict[str, tuple[str, ...]] = {
    "S": ("resnet18",),
    "M": ("bert", "deepspeech2"),
    "L": ("yolov3",),
    "XL": ("resnet50",),
    "XXL": ("gpt-2.8b",),
}


def model_profile(name: str) -> ModelProfile:
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


@functools.lru_cache(maxsize=None)
def true_throughput_params(model_name: str, gpu_type: str) -> ThroughputParams:
    """Ground-truth throughput parameters for (model, GPU type)."""
    profile = model_profile(model_name)
    spec = gpu_spec(gpu_type)
    speedup = profile.speedup.get(gpu_type, spec.compute_scale)

    # Compute phase: per-sample cost shrinks with the model-specific speedup;
    # fixed overheads shrink more slowly (kernel-launch latencies don't get
    # tensor-core speedups).
    alpha_c = profile.alpha_c_t4 / speedup ** 0.5
    beta_c = profile.beta_c_t4 / speedup

    # Sync phase: ring all-reduce moves ~2x the gradient payload; time is
    # payload / bandwidth plus a latency term, with a small per-extra-GPU
    # increment for the longer ring.
    payload_gbit = 2.0 * profile.grad_size_gb * 8.0
    intra = payload_gbit / spec.intra_node_bw_gbps
    inter = payload_gbit / spec.inter_node_bw_gbps
    alpha_r = _INTRA_NODE_LATENCY_S + intra
    beta_r = 0.05 * intra
    alpha_n = _INTER_NODE_LATENCY_S + inter
    beta_n = 0.06 * inter
    return ThroughputParams(alpha_c=alpha_c, beta_c=beta_c,
                            alpha_r=alpha_r, beta_r=beta_r,
                            alpha_n=alpha_n, beta_n=beta_n, gamma=GAMMA)


def max_local_bsz(model_name: str, gpu_type: str) -> int:
    """Largest per-GPU batch size that fits the GPU's memory (0 if the model
    does not fit at all — e.g. 2.8B GPT on any single GPU)."""
    profile = model_profile(model_name)
    spec = gpu_spec(gpu_type)
    headroom = spec.memory_gb - profile.fixed_mem_gb
    if headroom <= 0:
        return 0
    return max(0, int(headroom / profile.per_sample_mem_gb))


def true_efficiency_params(model_name: str) -> EfficiencyParams:
    profile = model_profile(model_name)
    return EfficiencyParams(grad_noise_scale=profile.grad_noise_scale,
                            init_batch_size=profile.min_bsz)


def true_goodput_model(model_name: str, gpu_type: str) -> GoodputModel:
    """Ground-truth goodput model for (model, GPU type)."""
    return GoodputModel(
        ThroughputModel(true_throughput_params(model_name, gpu_type)),
        EfficiencyModel(true_efficiency_params(model_name)),
    )


@functools.lru_cache(maxsize=None)
def reference_goodput(model_name: str) -> float:
    """Goodput of the model on a single t4 GPU at its optimal batch size.

    Used to convert ``target_t4_hours`` into total effective samples.
    """
    profile = model_profile(model_name)
    local_cap = max_local_bsz(model_name, "t4")
    if local_cap == 0:
        # Model doesn't fit one t4 (XXL); use an un-memory-limited rate as
        # the reference so work totals remain well-defined.
        local_cap = profile.min_bsz
    model = true_goodput_model(model_name, "t4")
    value = model.goodput(1, 1, max_local_bsz=local_cap,
                          max_total_bsz=profile.max_bsz,
                          min_total_bsz=profile.min_bsz)
    if value <= 0:
        raise RuntimeError(f"reference goodput for {model_name} is zero")
    return value


def target_effective_samples(model_name: str) -> float:
    """Total effective samples a job of this model must process to finish."""
    profile = model_profile(model_name)
    return profile.target_t4_hours * 3600.0 * reference_goodput(model_name)


def all_gpu_types() -> tuple[str, ...]:
    return tuple(GPU_CATALOG)

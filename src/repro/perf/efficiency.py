"""Statistical-efficiency model (gradient noise scale).

Sia borrows Pollux's statistical-efficiency model: training with total batch
size ``M`` makes progress per sample proportional to::

    E(M) = (phi + M0) / (phi + M)

where ``phi`` is the (pre-conditioned) gradient noise scale and ``M0`` the
job's reference batch size.  ``E(M0) == 1`` by construction; doubling the
batch far above the noise scale roughly halves per-sample progress, while
jobs with large ``phi`` scale batch size almost for free.

Goodput = throughput(samples/s) * E(M), measured in *effective* samples per
second (Section 2, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EfficiencyParams:
    """Parameters of the statistical-efficiency model."""

    #: gradient noise scale; larger => large batches stay efficient.
    grad_noise_scale: float
    #: reference (initial) total batch size M0 at which efficiency == 1.
    init_batch_size: int

    def __post_init__(self) -> None:
        if self.grad_noise_scale <= 0:
            raise ValueError("grad_noise_scale must be positive")
        if self.init_batch_size < 1:
            raise ValueError("init_batch_size must be >= 1")


class EfficiencyModel:
    """Evaluates statistical efficiency for total batch sizes."""

    def __init__(self, params: EfficiencyParams):
        self.params = params

    def efficiency(self, total_batch_size: float) -> float:
        """Per-sample statistical efficiency at total batch size M.

        Always in ``(0, (phi+M0)/(phi+1)]``; equals 1 at ``M == M0``.
        """
        if total_batch_size <= 0:
            raise ValueError("total_batch_size must be positive")
        p = self.params
        return (p.grad_noise_scale + p.init_batch_size) / (
            p.grad_noise_scale + total_batch_size)

    def efficiency_batch(self, total_batch_sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`efficiency` over an array of total batch sizes."""
        totals = np.asarray(total_batch_sizes, dtype=float)
        if totals.size and totals.min() <= 0:
            raise ValueError("total_batch_size must be positive")
        p = self.params
        return (p.grad_noise_scale + p.init_batch_size) / (
            p.grad_noise_scale + totals)

    def efficiency_is_constant(self) -> bool:
        """Whether efficiency is (effectively) batch-size independent."""
        return False

    def update_noise_scale(self, observed: float, *, smoothing: float = 0.7) -> None:
        """Online refinement: exponentially smooth a new gradient-noise-scale
        measurement into the model (Adaptive Executors report these every
        30 s; Section 3.5)."""
        if observed <= 0:
            raise ValueError("observed noise scale must be positive")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        p = self.params
        p.grad_noise_scale = smoothing * p.grad_noise_scale + (1 - smoothing) * observed


class ConstantEfficiency(EfficiencyModel):
    """Unit statistical efficiency at every batch size.

    Used for workloads whose progress is purely throughput-bound — batch
    inference jobs (Section 3.4, "Scheduling other workload types") and
    strong-scaling comparisons where goodput is proportional to throughput.
    """

    def __init__(self) -> None:
        super().__init__(EfficiencyParams(grad_noise_scale=1.0,
                                          init_batch_size=1))

    def efficiency(self, total_batch_size: float) -> float:
        if total_batch_size <= 0:
            raise ValueError("total_batch_size must be positive")
        return 1.0

    def efficiency_batch(self, total_batch_sizes: np.ndarray) -> np.ndarray:
        totals = np.asarray(total_batch_sizes, dtype=float)
        if totals.size and totals.min() <= 0:
            raise ValueError("total_batch_size must be positive")
        return np.ones_like(totals)

    def efficiency_is_constant(self) -> bool:
        return True

    def update_noise_scale(self, observed: float, *, smoothing: float = 0.7) -> None:
        """Inference workloads carry no gradient statistics; ignore."""

"""Serialization: save/load traces and simulation results as JSON.

Traces round-trip exactly (including hybrid specs and inference metadata)
so experiments can be pinned to files and re-run; results serialize the
per-job and per-round records every metric is derived from.

Every writer in this module goes through :func:`atomic_write_text` /
:func:`atomic_write_bytes` — write to a temporary sibling, then
``os.replace`` over the destination — so a crash mid-save never truncates
an existing artifact.  The checkpoint subsystem
(:mod:`repro.sim.checkpoint`) uses the same helper for its snapshots.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.atomicio import atomic_write_bytes as atomic_write_bytes
from repro.atomicio import atomic_write_text as atomic_write_text
from repro.core.health import HealthEvent
from repro.core.types import AdaptivityMode
from repro.jobs.hybrid import HybridSpec
from repro.jobs.job import Job
from repro.obs.audit import AllocationEvent
from repro.obs.diff import RunDiff
from repro.obs.ledger import GoodputLedger, LedgerEntry
from repro.obs.slo import Alert
from repro.sim.telemetry import (FaultEvent, JobRecord, RoundRecord,
                                 SimulationResult)
from repro.workloads.trace import Trace

FORMAT_VERSION = 1


# The atomic-write helpers live in :mod:`repro.atomicio` (shared with the
# checkpoint subsystem without an import cycle) and are re-exported above
# so existing ``repro.io.atomic_write_*`` callers keep working.

# -- traces ------------------------------------------------------------------

def job_to_dict(job: Job) -> dict[str, Any]:
    data: dict[str, Any] = {
        "job_id": job.job_id,
        "model_name": job.model_name,
        "submit_time": job.submit_time,
        "target_samples": job.target_samples,
        "adaptivity": job.adaptivity.value,
        "min_gpus": job.min_gpus,
        "max_gpus": job.max_gpus,
        "fixed_batch_size": job.fixed_batch_size,
        "fixed_num_gpus": job.fixed_num_gpus,
        "fixed_gpu_type": job.fixed_gpu_type,
        "preemptible": job.preemptible,
        "workload": job.workload,
        "latency_slo": job.latency_slo,
    }
    if job.hybrid is not None:
        data["hybrid"] = {
            "stages_per_type": dict(job.hybrid.stages_per_type),
            "micro_batch_size": job.hybrid.micro_batch_size,
            "num_microbatches": job.hybrid.num_microbatches,
        }
    return data


def job_from_dict(data: dict[str, Any]) -> Job:
    hybrid = None
    if "hybrid" in data and data["hybrid"] is not None:
        spec = data["hybrid"]
        hybrid = HybridSpec(stages_per_type=dict(spec["stages_per_type"]),
                            micro_batch_size=spec["micro_batch_size"],
                            num_microbatches=spec["num_microbatches"])
    return Job(
        job_id=data["job_id"],
        model_name=data["model_name"],
        submit_time=data["submit_time"],
        target_samples=data["target_samples"],
        adaptivity=AdaptivityMode(data["adaptivity"]),
        min_gpus=data.get("min_gpus", 1),
        max_gpus=data["max_gpus"],
        fixed_batch_size=data.get("fixed_batch_size"),
        fixed_num_gpus=data.get("fixed_num_gpus"),
        fixed_gpu_type=data.get("fixed_gpu_type"),
        preemptible=data.get("preemptible", True),
        hybrid=hybrid,
        workload=data.get("workload", "training"),
        latency_slo=data.get("latency_slo"),
    )


def save_trace(trace: Trace, path: str | Path) -> None:
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "trace",
        "name": trace.name,
        "seed": trace.seed,
        "jobs": [job_to_dict(job) for job in trace.jobs],
    }
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_trace(path: str | Path) -> Trace:
    payload = json.loads(Path(path).read_text())
    _check_payload(payload, "trace")
    jobs = [job_from_dict(item) for item in payload["jobs"]]
    return Trace(name=payload["name"], jobs=jobs, seed=payload.get("seed", 0))


# -- results -----------------------------------------------------------------

def _record_to_dict(record: JobRecord) -> dict[str, Any]:
    return {
        "job_id": record.job_id,
        "model_name": record.model_name,
        "category": record.category,
        "adaptivity": record.adaptivity,
        "submit_time": record.submit_time,
        "first_start": record.first_start,
        "finish_time": record.finish_time,
        "num_restarts": record.num_restarts,
        "num_preemptions": record.num_preemptions,
        "num_migrations": record.num_migrations,
        "gpu_seconds": dict(record.gpu_seconds),
        "profiling_gpu_seconds": record.profiling_gpu_seconds,
        "avg_contention": record.avg_contention,
        "target_samples": record.target_samples,
    }


def _round_to_dict(record: RoundRecord) -> dict[str, Any]:
    data: dict[str, Any] = {
        "time": record.time,
        "active_jobs": record.active_jobs,
        "running_jobs": record.running_jobs,
        "solve_time": record.solve_time,
        "allocations": {jid: list(alloc)
                        for jid, alloc in record.allocations.items()},
        "gpus_used": dict(record.gpus_used),
    }
    # Robustness telemetry is only written when present, so results from
    # fault-free runs stay byte-compatible with older readers.
    if record.backend:
        data["backend"] = record.backend
    if record.degraded:
        data["degraded"] = True
    if record.fault_events:
        data["fault_events"] = [{
            "kind": e.kind, "time": e.time,
            "target": e.target, "detail": e.detail,
        } for e in record.fault_events]
    if record.metrics:
        data["metrics"] = dict(record.metrics)
    # Decision-level observability (goodput ledger + audit trail) is also
    # written only when present, keeping fault-free pre-ledger results
    # byte-compatible.
    if record.estimates:
        data["estimates"] = dict(record.estimates)
    if record.realized:
        data["realized"] = dict(record.realized)
    if record.throughputs:
        data["throughputs"] = dict(record.throughputs)
    if record.events:
        data["events"] = [e.to_dict() for e in record.events]
    if record.health_events:
        data["health_events"] = [e.to_dict() for e in record.health_events]
    if record.alerts:
        data["alerts"] = [a.to_dict() for a in record.alerts]
    return data


def save_result(result: SimulationResult, path: str | Path, *,
                include_rounds: bool = True) -> None:
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "result",
        "scheduler_name": result.scheduler_name,
        "cluster_description": result.cluster_description,
        "end_time": result.end_time,
        "censored": result.censored,
        "node_failures": result.node_failures,
        "jobs": [_record_to_dict(record) for record in result.jobs],
        "rounds": [_round_to_dict(record) for record in result.rounds]
        if include_rounds else [],
        # Summaries survive even when per-round records are dropped.
        "fault_counts": result.fault_counts(),
        "backend_counts": result.backend_counts(),
    }
    alert_counts = result.alert_counts()
    if alert_counts:
        payload["alert_counts"] = alert_counts
    if result.final_metrics:
        payload["final_metrics"] = dict(result.final_metrics)
    counts = result.resilience_counts()
    if counts:
        payload["resilience_counts"] = counts
    if result.run_spec:
        payload["run_spec"] = result.run_spec
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_result(path: str | Path) -> SimulationResult:
    payload = json.loads(Path(path).read_text())
    _check_payload(payload, "result")
    result = SimulationResult(
        scheduler_name=payload["scheduler_name"],
        cluster_description=payload["cluster_description"],
        end_time=payload["end_time"],
        censored=payload.get("censored", 0),
        node_failures=payload.get("node_failures", 0),
        final_metrics=dict(payload.get("final_metrics", {})),
        saved_fault_counts=payload.get("fault_counts"),
        saved_backend_counts=payload.get("backend_counts"),
        saved_alert_counts=payload.get("alert_counts"),
        run_spec=payload.get("run_spec"),
    )
    for item in payload["jobs"]:
        result.jobs.append(JobRecord(
            job_id=item["job_id"], model_name=item["model_name"],
            category=item["category"], adaptivity=item["adaptivity"],
            submit_time=item["submit_time"], first_start=item["first_start"],
            finish_time=item["finish_time"],
            num_restarts=item["num_restarts"],
            num_preemptions=item.get("num_preemptions", 0),
            num_migrations=item.get("num_migrations", 0),
            gpu_seconds=dict(item["gpu_seconds"]),
            profiling_gpu_seconds=item.get("profiling_gpu_seconds", 0.0),
            avg_contention=item.get("avg_contention", 0.0),
            target_samples=item.get("target_samples", 0.0)))
    for item in payload.get("rounds", []):
        result.rounds.append(RoundRecord(
            time=item["time"], active_jobs=item["active_jobs"],
            running_jobs=item["running_jobs"], solve_time=item["solve_time"],
            allocations={jid: (alloc[0], int(alloc[1]))
                         for jid, alloc in item["allocations"].items()},
            gpus_used={t: int(n) for t, n in item["gpus_used"].items()},
            backend=item.get("backend", ""),
            degraded=item.get("degraded", False),
            fault_events=[FaultEvent(kind=e["kind"], time=e["time"],
                                     target=e["target"],
                                     detail=e.get("detail", ""))
                          for e in item.get("fault_events", [])],
            metrics=dict(item.get("metrics", {})),
            estimates=dict(item.get("estimates", {})),
            realized=dict(item.get("realized", {})),
            throughputs=dict(item.get("throughputs", {})),
            events=[AllocationEvent.from_dict(e)
                    for e in item.get("events", [])],
            health_events=[HealthEvent.from_dict(e)
                           for e in item.get("health_events", [])],
            alerts=[Alert.from_dict(a) for a in item.get("alerts", [])]))
    return result


# -- goodput ledger (JSONL) ---------------------------------------------------

def save_ledger(result: SimulationResult, path: str | Path) -> None:
    """Export the run's goodput ledger and audit trail as JSONL: a header
    line, one ``ledger_entry`` line per (round, job) allocation, and one
    ``alloc_event`` line per classified allocation change.  This is the
    CLI's ``--ledger-out`` format; :func:`load_ledger` round-trips it."""
    ledger = GoodputLedger.from_result(result)
    lines = [json.dumps({
        "kind": "ledger", "format_version": FORMAT_VERSION,
        "scheduler_name": result.scheduler_name,
        "num_rounds": len(result.rounds),
    })]
    for entry in ledger.entries:
        lines.append(json.dumps({"kind": "ledger_entry", **entry.to_dict()}))
    for event in result.allocation_events():
        # The event's own dict carries a "kind" (the event kind), so it is
        # nested rather than spread into the line.
        lines.append(json.dumps({"kind": "alloc_event",
                                 "event": event.to_dict()}))
    atomic_write_text(path, "\n".join(lines) + "\n")


def load_ledger(path: str | Path,
                ) -> tuple[GoodputLedger, list[AllocationEvent]]:
    """Read a ``--ledger-out`` JSONL file back into a
    :class:`~repro.obs.ledger.GoodputLedger` plus its allocation events."""
    entries: list[LedgerEntry] = []
    events: list[AllocationEvent] = []
    header_seen = False
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        item = json.loads(line)
        kind = item.get("kind")
        if kind == "ledger":
            _check_payload(item, "ledger")
            header_seen = True
        elif kind == "ledger_entry":
            entries.append(LedgerEntry.from_dict(item))
        elif kind == "alloc_event":
            events.append(AllocationEvent.from_dict(item["event"]))
        elif kind == "ledger_end":
            # Completeness trailer appended by the live streamer
            # (:class:`repro.obs.stream.LedgerStreamObserver`); its absence
            # on a ``.part`` file marks a truncated crash prefix.
            pass
        else:
            raise ValueError(f"unknown ledger line kind {kind!r}")
    if not header_seen:
        raise ValueError(f"{path} is not a ledger JSONL (missing header)")
    return GoodputLedger(entries), events


# -- SLO alerts (JSONL) --------------------------------------------------------

def save_alerts(result: SimulationResult, path: str | Path) -> None:
    """Export every fired SLO alert as JSONL: a header line plus one
    ``alert`` line per alert, in round order.  This matches the live
    stream written by :class:`repro.obs.stream.AlertStreamObserver`
    (which adds an ``alerts_end`` trailer); :func:`load_alerts` reads
    both."""
    lines = [json.dumps({
        "kind": "alerts", "format_version": FORMAT_VERSION,
        "scheduler_name": result.scheduler_name,
    })]
    for _, alert in result.alerts_timeline():
        lines.append(json.dumps({"kind": "alert", **alert.to_dict()}))
    atomic_write_text(path, "\n".join(lines) + "\n")


def load_alerts(path: str | Path) -> list[Alert]:
    """Read an alerts JSONL file (``--alerts-out``) back into
    :class:`~repro.obs.slo.Alert` objects, in file order."""
    alerts: list[Alert] = []
    header_seen = False
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        item = json.loads(line)
        kind = item.get("kind")
        if kind == "alerts":
            _check_payload(item, "alerts")
            header_seen = True
        elif kind == "alert":
            alerts.append(Alert.from_dict(item))
        elif kind == "alerts_end":
            pass  # streamer's completeness trailer
        else:
            raise ValueError(f"unknown alerts line kind {kind!r}")
    if not header_seen:
        raise ValueError(f"{path} is not an alerts JSONL (missing header)")
    return alerts


# -- health events (JSONL) ----------------------------------------------------

def save_health_events(result: SimulationResult, path: str | Path) -> None:
    """Export every node-health transition as JSONL: a header line plus one
    ``health_event`` line per event, tagged with its round index.  This is
    the CLI's ``--health-events-out`` format and the CI chaos artifact;
    :func:`load_health_events` round-trips it."""
    lines = [json.dumps({
        "kind": "health_events", "format_version": FORMAT_VERSION,
        "scheduler_name": result.scheduler_name,
        "num_rounds": len(result.rounds),
    })]
    for index, rnd in enumerate(result.rounds):
        for event in rnd.health_events:
            # The event's own dict carries a "kind" (the transition kind),
            # so it is nested rather than spread into the line.
            lines.append(json.dumps({"kind": "health_event", "round": index,
                                     "event": event.to_dict()}))
    atomic_write_text(path, "\n".join(lines) + "\n")


def load_health_events(path: str | Path,
                       ) -> list[tuple[int, HealthEvent]]:
    """Read a ``--health-events-out`` JSONL file back into
    ``(round_index, HealthEvent)`` pairs, in file order."""
    events: list[tuple[int, HealthEvent]] = []
    header_seen = False
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        item = json.loads(line)
        kind = item.get("kind")
        if kind == "health_events":
            _check_payload(item, "health_events")
            header_seen = True
        elif kind == "health_event":
            events.append((item["round"],
                           HealthEvent.from_dict(item["event"])))
        else:
            raise ValueError(f"unknown health-event line kind {kind!r}")
    if not header_seen:
        raise ValueError(f"{path} is not a health-events JSONL "
                         "(missing header)")
    return events


# -- counterfactual run diffs --------------------------------------------------

def save_run_diff(diff: RunDiff, path: str | Path) -> None:
    """Persist a counterfactual :class:`~repro.obs.diff.RunDiff`
    (``repro replay --diff-out``) as JSON; :func:`load_run_diff`
    round-trips it exactly."""
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "run_diff",
        **diff.to_dict(),
    }
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_run_diff(path: str | Path) -> RunDiff:
    payload = json.loads(Path(path).read_text())
    _check_payload(payload, "run_diff")
    return RunDiff.from_dict(payload)


def _check_payload(payload: dict[str, Any], kind: str) -> None:
    if payload.get("kind") != kind:
        raise ValueError(f"file is a {payload.get('kind')!r}, expected {kind!r}")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r} "
                         f"(this build reads version {FORMAT_VERSION})")

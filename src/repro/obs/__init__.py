"""repro.obs — dependency-free observability: spans, metrics, exporters.

* :mod:`repro.obs.tracer`  — :class:`Tracer` (nestable spans, instant
  events) and the near-zero-cost :data:`NULL_TRACER` default.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges,
  and histograms, snapshotted per round by the simulator.
* :mod:`repro.obs.export`  — Chrome/Perfetto ``trace_event`` JSON, JSONL
  event logs, and human-readable digests.
* :mod:`repro.obs.ledger`  — per-job goodput ledger: estimated vs realized
  goodput per round, estimation-error series, queue-wait attribution.
* :mod:`repro.obs.audit`   — decision audit trail: classified
  allocation-change events (admit/scale/migrate/preempt/resume/finish).
* :mod:`repro.obs.diff`    — cross-run decision diff: align two futures of
  one run (:class:`RunDiff`, divergence detection, ledger alignment) for
  the counterfactual replay engine.
* :mod:`repro.obs.window`  — O(1)-per-round online aggregates: rolling
  percentile windows, EMAs, and rates over per-round series.
* :mod:`repro.obs.slo`     — declarative SLO rules evaluated live each
  round, firing :class:`Alert` events with ledger/audit/health-backed
  causal context (burn-rate semantics).
* :mod:`repro.obs.stream`  — live exporters: incremental JSONL streaming
  with atomic finalize, Prometheus text exposition, an in-flight HTTP
  endpoint, and the ``repro watch`` terminal view.

Attach a tracer to a simulation via ``SimulatorConfig(tracer=Tracer())``
(the CLI's ``--trace-out``/``--events-out`` do this for you), then read
``SimulationResult.spans`` / ``phase_time_breakdown()`` / ``span_stats()``
or export with :func:`repro.obs.export.write_chrome_trace`.
"""

from repro.obs.audit import (AllocationEvent, AuditTrail, classify_change,
                             event_counts, events_for_job, migration_flows)
from repro.obs.diff import (AllocDelta, DivergencePoint, MetricDelta,
                            RoundDelta, RunDiff, aligned_ledger_deltas,
                            compare_runs, fault_recovery_seconds)
from repro.obs.export import (alert_digest, chrome_trace, read_events_jsonl,
                              run_diff_markdown, run_digest, span_digest,
                              validate_chrome_trace, write_chrome_trace,
                              write_events_jsonl, write_run_diff_jsonl)
from repro.obs.ledger import (GoodputLedger, LedgerEntry, queue_wait_by_job,
                              round_entries)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               interpolated_quantile)
from repro.obs.slo import (Alert, SLOEngine, SLORule, alert_summary,
                           default_rules, evaluate_result, parse_rules)
from repro.obs.stream import (AlertStreamObserver, EventStreamObserver,
                              JsonlStreamWriter, LedgerStreamObserver,
                              MetricsHTTPServer, PrometheusSnapshotObserver,
                              RoundObserver, SLOObserver, WatchView,
                              parse_prometheus_text, prometheus_text)
from repro.obs.tracer import (NULL_TRACER, PLAN_PHASES, NullTracer,
                              SpanRecord, SpanStats, Tracer)
from repro.obs.window import EMA, RollingRate, RollingWindow

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "PLAN_PHASES", "SpanRecord",
    "SpanStats",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "write_events_jsonl", "read_events_jsonl", "span_digest", "run_digest",
    "alert_digest",
    "GoodputLedger", "LedgerEntry", "queue_wait_by_job",
    "AllocationEvent", "AuditTrail", "classify_change", "event_counts",
    "events_for_job", "migration_flows",
    "AllocDelta", "DivergencePoint", "MetricDelta", "RoundDelta", "RunDiff",
    "aligned_ledger_deltas", "compare_runs", "fault_recovery_seconds",
    "run_diff_markdown", "write_run_diff_jsonl",
    "interpolated_quantile", "round_entries",
    "RollingWindow", "EMA", "RollingRate",
    "Alert", "SLORule", "SLOEngine", "default_rules", "parse_rules",
    "evaluate_result", "alert_summary",
    "RoundObserver", "JsonlStreamWriter", "EventStreamObserver",
    "LedgerStreamObserver", "AlertStreamObserver", "SLOObserver",
    "PrometheusSnapshotObserver", "MetricsHTTPServer", "WatchView",
    "prometheus_text", "parse_prometheus_text",
]

"""repro.obs — dependency-free observability: spans, metrics, exporters.

* :mod:`repro.obs.tracer`  — :class:`Tracer` (nestable spans, instant
  events) and the near-zero-cost :data:`NULL_TRACER` default.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges,
  and histograms, snapshotted per round by the simulator.
* :mod:`repro.obs.export`  — Chrome/Perfetto ``trace_event`` JSON, JSONL
  event logs, and human-readable digests.
* :mod:`repro.obs.ledger`  — per-job goodput ledger: estimated vs realized
  goodput per round, estimation-error series, queue-wait attribution.
* :mod:`repro.obs.audit`   — decision audit trail: classified
  allocation-change events (admit/scale/migrate/preempt/resume/finish).
* :mod:`repro.obs.diff`    — cross-run decision diff: align two futures of
  one run (:class:`RunDiff`, divergence detection, ledger alignment) for
  the counterfactual replay engine.

Attach a tracer to a simulation via ``SimulatorConfig(tracer=Tracer())``
(the CLI's ``--trace-out``/``--events-out`` do this for you), then read
``SimulationResult.spans`` / ``phase_time_breakdown()`` / ``span_stats()``
or export with :func:`repro.obs.export.write_chrome_trace`.
"""

from repro.obs.audit import (AllocationEvent, AuditTrail, classify_change,
                             event_counts, events_for_job, migration_flows)
from repro.obs.diff import (AllocDelta, DivergencePoint, MetricDelta,
                            RoundDelta, RunDiff, aligned_ledger_deltas,
                            compare_runs, fault_recovery_seconds)
from repro.obs.export import (chrome_trace, read_events_jsonl,
                              run_diff_markdown, run_digest, span_digest,
                              validate_chrome_trace, write_chrome_trace,
                              write_events_jsonl, write_run_diff_jsonl)
from repro.obs.ledger import GoodputLedger, LedgerEntry, queue_wait_by_job
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (NULL_TRACER, PLAN_PHASES, NullTracer,
                              SpanRecord, SpanStats, Tracer)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "PLAN_PHASES", "SpanRecord",
    "SpanStats",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "write_events_jsonl", "read_events_jsonl", "span_digest", "run_digest",
    "GoodputLedger", "LedgerEntry", "queue_wait_by_job",
    "AllocationEvent", "AuditTrail", "classify_change", "event_counts",
    "events_for_job", "migration_flows",
    "AllocDelta", "DivergencePoint", "MetricDelta", "RoundDelta", "RunDiff",
    "aligned_ledger_deltas", "compare_runs", "fault_recovery_seconds",
    "run_diff_markdown", "write_run_diff_jsonl",
]

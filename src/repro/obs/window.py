"""Online windowed aggregation over per-round series.

The live telemetry plane (:mod:`repro.obs.slo`, ``repro watch``) needs
percentiles, moving averages, and rates over the most recent N scheduler
rounds *while the run is in flight* — without re-scanning the full history
every round the way :class:`~repro.obs.metrics.Histogram` does post hoc.

Every aggregator here does bounded work per update:

* :class:`RollingWindow` — last-N values in a ring buffer plus a sorted
  mirror maintained incrementally with :mod:`bisect` (O(log n) search,
  O(n) memmove on a small ``n``; nothing ever walks the full series), with
  running sum/quantiles/extrema over exactly the window.
* :class:`EMA` — exponential moving average, O(1).
* :class:`RollingRate` — fraction of true indicators in the last N rounds,
  O(1) via a running count.

Quantiles use the exact interpolation of
:func:`repro.obs.metrics.interpolated_quantile`, so an online rolling p95
and a post-hoc ``Histogram.quantile(0.95)`` over the same values agree to
the bit.  Non-finite inputs (NaN/inf) are rejected at the door and counted,
never silently folded into a percentile — corrupted telemetry must not be
able to poison an SLO evaluation.
"""

from __future__ import annotations

import bisect
import math
from collections import deque

from repro.obs.metrics import interpolated_quantile


class RollingWindow:
    """Order statistics over the last ``size`` finite observations."""

    __slots__ = ("size", "_ring", "_sorted", "_sum", "nan_count")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self.size = size
        self._ring: deque[float] = deque()
        self._sorted: list[float] = []
        self._sum = 0.0
        #: non-finite inputs rejected (NaN/inf never enter the window).
        self.nan_count = 0

    def push(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            self.nan_count += 1
            return
        self._ring.append(value)
        bisect.insort(self._sorted, value)
        self._sum += value
        if len(self._ring) > self.size:
            evicted = self._ring.popleft()
            index = bisect.bisect_left(self._sorted, evicted)
            self._sorted.pop(index)
            self._sum -= evicted

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def full(self) -> bool:
        return len(self._ring) == self.size

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._ring) if self._ring else 0.0

    @property
    def min(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the window, q in [0, 1]."""
        return interpolated_quantile(self._sorted, q)

    def values(self) -> list[float]:
        """Window contents in arrival order (oldest first)."""
        return list(self._ring)


class EMA:
    """Exponential moving average: ``v <- alpha * x + (1 - alpha) * v``."""

    __slots__ = ("alpha", "value", "count", "nan_count")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: float | None = None
        self.count = 0
        self.nan_count = 0

    def push(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            self.nan_count += 1
            return
        if self.value is None:
            self.value = value
        else:
            self.value = self.alpha * value + (1.0 - self.alpha) * self.value
        self.count += 1


class RollingRate:
    """Fraction of true indicators among the last ``size`` rounds."""

    __slots__ = ("size", "_ring", "_true")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self.size = size
        self._ring: deque[bool] = deque()
        self._true = 0

    def push(self, hit: bool) -> None:
        hit = bool(hit)
        self._ring.append(hit)
        self._true += hit
        if len(self._ring) > self.size:
            self._true -= self._ring.popleft()

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def rate(self) -> float:
        return self._true / len(self._ring) if self._ring else 0.0

    @property
    def count(self) -> int:
        return self._true

"""Metrics registry: counters, gauges, and histograms for one run.

Schedulers and the simulator update named metrics through a shared
:class:`MetricsRegistry`; the simulator snapshots the registry into every
:class:`~repro.sim.telemetry.RoundRecord` so per-round series (queue depth,
per-GPU-type utilization, fault counts) survive into results and
serialization.  Dependency-free, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import math


def interpolated_quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted list, q in [0, 1].

    The single quantile definition shared by post-hoc histograms
    (:meth:`Histogram.quantile`) and the online rolling windows
    (:mod:`repro.obs.window`), matching numpy's default ("linear")
    interpolation — so live SLO evaluation and after-the-fact analysis
    always agree on what "p95" means.  Empty input reports 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    if not ordered:
        return 0.0
    pos = (len(ordered) - 1) * q
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


class Counter:
    """Monotonically increasing count (rounds planned, faults injected...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution summary; keeps every observation.

    Runs are bounded (one observation per round at most), so exact storage
    is cheap and percentiles stay honest.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        return self.quantile(q / 100.0)

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, q in [0, 1] — numpy's default
        interpolation, shared with the rolling windows of
        :mod:`repro.obs.window` via :func:`interpolated_quantile`."""
        return interpolated_quantile(sorted(self.values), q)


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(metric).__name__}, not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def items(self) -> list[tuple[str, "Counter | Gauge | Histogram"]]:
        """(name, metric) pairs in sorted name order — the exporter view
        (:func:`repro.obs.stream.prometheus_text` needs metric *types*,
        which the flat :meth:`snapshot` erases)."""
        return [(name, self._metrics[name]) for name in sorted(self._metrics)]

    def snapshot(self) -> dict[str, float]:
        """Flat name -> value view of every metric (histograms contribute
        ``<name>.count`` / ``<name>.mean`` / ``<name>.max``)."""
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.mean"] = metric.mean
                out[f"{name}.max"] = metric.max
            else:
                out[name] = metric.value
        return out

    def digest(self) -> str:
        """Human-readable one-metric-per-line summary."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"{name}: n={metric.count} mean={metric.mean:.4g} "
                    f"p50={metric.percentile(50):.4g} "
                    f"p99={metric.percentile(99):.4g} max={metric.max:.4g}")
            else:
                lines.append(f"{name}: {metric.value:g}")
        return "\n".join(lines)

"""Per-job goodput ledger: estimated vs realized goodput, round by round.

Sia's policy runs on *bootstrapped* throughput models that start wrong and
converge as profiling observations arrive (Section 4.2), so the central
observability question is: how far off was the goodput estimate the ILP
optimized, compared with what the executor actually delivered?  The ledger
answers it per (round, job): one :class:`LedgerEntry` for every allocation
the simulator applied, carrying the scheduler's estimate and the realized
rates.

The ledger is derived from the per-round records (``RoundRecord.estimates``
/ ``realized`` / ``throughputs``), so it works identically on a live
:class:`~repro.sim.telemetry.SimulationResult` and on one loaded from JSON
by :mod:`repro.io` — which is what lets ``repro explain`` reconstruct a
decision timeline from a saved run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class LedgerEntry:
    """One (round, job) line: what was promised vs what was delivered."""

    round_index: int
    time: float
    job_id: str
    gpu_type: str
    num_gpus: int
    #: goodput the policy believed this allocation would deliver when it
    #: chose it (None when the scheduler did not report an estimate, e.g.
    #: a carried-forward round).
    estimated_goodput: float | None = None
    #: goodput the executor actually delivered (0.0 for a round fully
    #: spent in checkpoint-restore; None when the round never ran).
    realized_goodput: float | None = None
    #: realized raw throughput, samples/s (None when the round never ran).
    realized_throughput: float | None = None

    @property
    def relative_error(self) -> float | None:
        """|estimated - realized| / realized, or None when undefined
        (missing estimate, or a restore round with zero realized rate)."""
        if self.estimated_goodput is None or self.realized_goodput is None:
            return None
        if self.realized_goodput <= 0:
            return None
        return (abs(self.estimated_goodput - self.realized_goodput)
                / self.realized_goodput)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "round_index": self.round_index, "time": self.time,
            "job_id": self.job_id, "gpu_type": self.gpu_type,
            "num_gpus": self.num_gpus,
        }
        if self.estimated_goodput is not None:
            data["estimated_goodput"] = self.estimated_goodput
        if self.realized_goodput is not None:
            data["realized_goodput"] = self.realized_goodput
        if self.realized_throughput is not None:
            data["realized_throughput"] = self.realized_throughput
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "LedgerEntry":
        return LedgerEntry(
            round_index=data["round_index"], time=data["time"],
            job_id=data["job_id"], gpu_type=data["gpu_type"],
            num_gpus=int(data["num_gpus"]),
            estimated_goodput=data.get("estimated_goodput"),
            realized_goodput=data.get("realized_goodput"),
            realized_throughput=data.get("realized_throughput"))


def round_entries(rnd: Any, round_index: int) -> list[LedgerEntry]:
    """Ledger entries of one :class:`RoundRecord`, in the canonical sorted
    job order.  Shared by :meth:`GoodputLedger.from_result` and the live
    JSONL streamer (:mod:`repro.obs.stream`), so a ledger streamed round by
    round loads back identical to one rebuilt post hoc."""
    return [LedgerEntry(
        round_index=round_index, time=rnd.time, job_id=job_id,
        gpu_type=rnd.allocations[job_id][0],
        num_gpus=rnd.allocations[job_id][1],
        estimated_goodput=rnd.estimates.get(job_id),
        realized_goodput=rnd.realized.get(job_id),
        realized_throughput=rnd.throughputs.get(job_id))
        for job_id in sorted(rnd.allocations)]


class GoodputLedger:
    """Every (round, job) allocation of one run, with derived series."""

    def __init__(self, entries: Sequence[LedgerEntry] = ()):
        self.entries = list(entries)
        self._by_job: dict[str, list[LedgerEntry]] | None = None
        #: number of entries covered by ``_by_job`` — an O(1) staleness
        #: check (entries are append-only in practice, so a length match
        #: means the memoized index is current).
        self._indexed_len = -1

    @classmethod
    def from_result(cls, result: Any) -> "GoodputLedger":
        """Build the ledger from a ``SimulationResult``-like object (live,
        or loaded from JSON; requires per-round records)."""
        entries: list[LedgerEntry] = []
        for idx, rnd in enumerate(result.rounds):
            entries.extend(round_entries(rnd, idx))
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def job_ids(self) -> list[str]:
        return sorted({e.job_id for e in self.entries})

    def for_job(self, job_id: str) -> list[LedgerEntry]:
        return list(self._index().get(job_id, ()))

    def _index(self) -> dict[str, list[LedgerEntry]]:
        """The per-job index, rebuilt only when the entry count changed
        since it was last built (O(1) staleness check)."""
        by_job = self._by_job
        if by_job is None or self._indexed_len != len(self.entries):
            by_job = {}
            for entry in self.entries:
                by_job.setdefault(entry.job_id, []).append(entry)
            self._by_job = by_job
            self._indexed_len = len(self.entries)
        return by_job

    def rounds(self) -> list[int]:
        """Sorted distinct round indices with at least one entry — the
        alignment axis the cross-run diff (:mod:`repro.obs.diff`) walks."""
        return sorted({e.round_index for e in self.entries})

    def for_round(self, round_index: int) -> list[LedgerEntry]:
        """Entries of one round, in input order."""
        return [e for e in self.entries if e.round_index == round_index]

    # -- derived series --------------------------------------------------------

    def error_series(self, job_id: str) -> list[tuple[float, float]]:
        """(time, relative estimation error) per round the job ran — the
        per-job bootstrap-convergence curve.  Rounds with an undefined
        error (no estimate, or zero realized rate) are skipped."""
        series = []
        for entry in self.for_job(job_id):
            error = entry.relative_error
            if error is not None:
                series.append((entry.time, error))
        return series

    def convergence_medians(self, num_windows: int = 2) -> list[float]:
        """Median relative estimation error per *job-age window*.

        Every defined error is indexed by how many running rounds its job
        had completed at that point; the per-job indices are split into
        ``num_windows`` equal spans and each window's pooled median is
        returned.  A converging estimator (the bootstrap -> refined loop of
        Figure 3) shows a nonincreasing sequence; an oracle shows ~zeros.
        Windows with no data report NaN-free 0.0 only if genuinely empty —
        they are simply omitted from the comparison by callers.
        """
        if num_windows < 1:
            raise ValueError("num_windows must be >= 1")
        indexed: list[tuple[int, float]] = []
        max_age = 0
        for job_id in self.job_ids():
            age = 0
            for entry in self.for_job(job_id):
                error = entry.relative_error
                if error is not None:
                    indexed.append((age, error))
                    max_age = max(max_age, age)
                age += 1
        if not indexed:
            return []
        span = (max_age + 1) / num_windows
        windows: list[list[float]] = [[] for _ in range(num_windows)]
        for age, error in indexed:
            windows[min(int(age / span), num_windows - 1)].append(error)
        return [_median(w) for w in windows if w]

    def median_error(self) -> float | None:
        """Pooled median relative estimation error over the whole run."""
        errors = [e.relative_error for e in self.entries
                  if e.relative_error is not None]
        return _median(errors) if errors else None

    def gpu_type_rounds(self) -> dict[str, int]:
        """Rounds of service per GPU type (allocation-log marginal)."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.gpu_type] = counts.get(entry.gpu_type, 0) + 1
        return counts


def _median(values: Iterable[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def queue_wait_by_job(result: Any) -> dict[str, float]:
    """Seconds each job spent active but holding no GPUs (queue-wait
    attribution).  Derived from the per-round records plus each job's
    submit/finish times; jobs that never waited report 0.0."""
    waits = {record.job_id: 0.0 for record in result.jobs}
    rounds = result.rounds
    for i, rnd in enumerate(rounds):
        if i + 1 < len(rounds):
            dt = rounds[i + 1].time - rnd.time
        else:
            dt = max(result.end_time - rnd.time, 0.0)
        for record in result.jobs:
            if record.submit_time > rnd.time:
                continue
            if record.finish_time is not None \
                    and record.finish_time <= rnd.time:
                continue
            if record.job_id not in rnd.allocations:
                waits[record.job_id] += dt
    return waits

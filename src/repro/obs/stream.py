"""Live streaming exporters: JSONL-as-you-go, Prometheus, HTTP, watch.

Everything the obs stack used to write *after* the run ends (events,
ledger, metrics) can now stream *during* it, through round observers the
engine invokes after each recorded round (``SimulatorConfig.observers``).
The contract every observer here honors:

* **read-only** with respect to simulation state — an observed run is
  bit-identical to an unobserved one (the only writes are ``record.alerts``
  and ``slo.*``/``stream.*`` metrics, both excluded from the chaos
  determinism oracle exactly like wall-clock timing);
* **crash-durable** — stream files are flushed at every round boundary, so
  killing the process mid-run leaves a valid, parseable JSONL prefix at
  ``<path>.part``; a clean finish atomically renames it over the final
  path (the same write-tmp-then-rename discipline as
  :mod:`repro.atomicio`);
* **resume-aware** — each observer tracks a round cursor into
  ``result.rounds``, so attaching to a run resumed from a checkpoint first
  catches up on the restored history before streaming new rounds.
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from pathlib import Path
from typing import Any, TextIO

from repro.obs.ledger import round_entries
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.obs.window import RollingWindow

#: kept in lockstep with :data:`repro.io.FORMAT_VERSION` (not imported —
#: ``repro.io`` loads this package's ``__init__``, so a module-level import
#: back into it would be circular).
_FORMAT_VERSION = 1


# -- observer protocol ---------------------------------------------------------

class RoundObserver:
    """Base class for per-round engine hooks.

    The engine calls :meth:`on_round` after appending each
    :class:`~repro.sim.telemetry.RoundRecord` and :meth:`on_finalize` once
    the result is complete.  The cursor loop makes observers resume-aware:
    the first ``on_round`` after a checkpoint restore walks every
    already-recorded round before the new one.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def on_round(self, result: Any, round_index: int, dt: float) -> None:
        rounds = result.rounds
        while self._cursor < len(rounds):
            index = self._cursor
            self._cursor += 1
            self.observe(rounds[index], index, dt)

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        """Process one recorded round (override)."""

    def on_finalize(self, result: Any) -> None:
        """The run completed normally (override; flush/rename here)."""

    def close(self) -> None:
        """The run is over (normally or not); release file handles.  Never
        renames a part file — an aborted stream must stay a ``.part``."""


# -- JSONL streaming writer ----------------------------------------------------

class JsonlStreamWriter:
    """Incremental JSONL writer with an atomic finalize.

    Lines land in ``<path>.part``; :meth:`flush` (call it at round
    boundaries) pushes them to the OS so a crash leaves a parseable
    prefix; :meth:`finalize` fsyncs and atomically renames the part file
    over ``path``.  A reader can therefore distinguish three states: final
    file (complete), ``.part`` file (truncated prefix of a crashed run),
    nothing (never started).

    Writes buffer in memory and :meth:`flush` emits them as one raw
    ``os.write`` — the per-round flush contract puts this on the
    scheduling hot path, and a single syscall per round beats the
    ``TextIOWrapper``/``BufferedWriter`` stack by a wide margin there.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.part_path = self.path.with_name(self.path.name + ".part")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: int | None = os.open(
            self.part_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        self._pending: list[str] = []
        self.lines = 0
        self.finalized = False

    def write(self, obj: dict[str, Any]) -> None:
        if self._fd is None:
            raise ValueError(f"stream {self.path} is closed")
        self._pending.append(json.dumps(obj) + "\n")
        self.lines += 1

    def write_lines(self, lines: list[str]) -> None:
        """Batched fast path: ``lines`` are pre-serialized JSON documents,
        each already newline-terminated."""
        if self._fd is None:
            raise ValueError(f"stream {self.path} is closed")
        self._pending.extend(lines)
        self.lines += len(lines)

    def flush(self) -> None:
        if self._fd is None or not self._pending:
            return
        view = memoryview("".join(self._pending).encode("utf-8"))
        self._pending.clear()
        while view:
            view = view[os.write(self._fd, view):]

    def finalize(self) -> None:
        """Durably complete the stream: fsync the part file and atomically
        rename it to the final path."""
        if self.finalized:
            return
        if self._fd is None:
            raise ValueError(f"stream {self.path} was closed before finalize")
        self.flush()
        os.fsync(self._fd)
        os.close(self._fd)
        self._fd = None
        os.replace(self.part_path, self.path)
        self.finalized = True

    def close(self) -> None:
        """Abort path: flush and close, leaving the ``.part`` prefix."""
        if self._fd is not None:
            self.flush()
            os.close(self._fd)
            self._fd = None


# -- streaming observers -------------------------------------------------------

class EventStreamObserver(RoundObserver):
    """Streams tracer spans/instants as JSONL while the run is live.

    The final file is read back by
    :func:`repro.obs.export.read_events_jsonl` exactly like the old
    end-of-run dump: spans stream in completion order, instants interleave
    (the reader ignores ordering), and finalize appends the metrics
    snapshot plus a ``stream_end`` completeness trailer.
    """

    def __init__(self, tracer: Any, path: str | Path,
                 metrics: MetricsRegistry | None = None):
        super().__init__()
        self.tracer = tracer
        self.writer = JsonlStreamWriter(path)
        self._rounds_counter = (metrics.counter("stream.events_rounds")
                                if metrics is not None else None)
        self._span_cursor = 0
        self._event_cursor = 0

    def on_round(self, result: Any, round_index: int, dt: float) -> None:
        self._drain()
        if self._rounds_counter is not None:
            self._rounds_counter.inc()
        self.writer.flush()

    def _drain(self) -> None:
        # Hand-rolled span lines (parse-identical to the json.dumps dict
        # form), batched into one buffered write: this drain sits on the
        # per-round hot path and serializing ~10 spans a round through
        # dict-building json.dumps calls measurably bends the overhead
        # budget the stream stack is gated on.
        dumps = json.dumps
        lines: list[str] = []
        spans = self.tracer.spans
        while self._span_cursor < len(spans):
            span = spans[self._span_cursor]
            self._span_cursor += 1
            attrs = dumps(span.attrs) if span.attrs else "{}"
            parent = (span.parent_id if span.parent_id is not None
                      else "null")
            lines.append(
                f'{{"kind": "span", "name": {dumps(span.name)}, '
                f'"start": {span.start!r}, '
                f'"duration": {span.duration!r}, '
                f'"span_id": {span.span_id}, "parent_id": {parent}, '
                f'"depth": {span.depth}, "attrs": {attrs}}}\n')
        events = self.tracer.events
        while self._event_cursor < len(events):
            name, ts, attrs = events[self._event_cursor]
            self._event_cursor += 1
            lines.append(
                f'{{"kind": "event", "name": {dumps(name)}, '
                f'"time": {ts!r}, "attrs": {dumps(dict(attrs))}}}\n')
        if lines:
            self.writer.write_lines(lines)

    def on_finalize(self, result: Any) -> None:
        self._drain()
        self.writer.write({"kind": "metrics",
                           "values": dict(result.final_metrics)})
        self.writer.write({"kind": "stream_end",
                           "spans": self._span_cursor,
                           "events": self._event_cursor})
        self.writer.finalize()

    def close(self) -> None:
        self.writer.close()


class LedgerStreamObserver(RoundObserver):
    """Streams the goodput ledger + audit trail (``--ledger-out``) live.

    Writes the same header/entry/event lines as
    :func:`repro.io.save_ledger`, interleaved round by round instead of
    grouped, and a ``ledger_end`` trailer on finalize;
    :func:`repro.io.load_ledger` reads both layouts back identically
    (it splits lines by kind, and the per-kind relative order matches).
    """

    def __init__(self, path: str | Path, scheduler_name: str):
        super().__init__()
        self.writer = JsonlStreamWriter(path)
        # Streamed header: num_rounds is unknowable at open time; the
        # trailer carries it instead (the loader reads neither).
        self.writer.write({"kind": "ledger",
                           "format_version": _FORMAT_VERSION,
                           "scheduler_name": scheduler_name})

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        dumps = json.dumps
        lines = [dumps({"kind": "ledger_entry", **entry.to_dict()}) + "\n"
                 for entry in round_entries(record, round_index)]
        lines += [dumps({"kind": "alloc_event", "event": event.to_dict()})
                  + "\n" for event in record.events]
        if lines:
            self.writer.write_lines(lines)
        self.writer.flush()

    def on_finalize(self, result: Any) -> None:
        self.on_round(result, len(result.rounds) - 1, 0.0)  # drain stragglers
        self.writer.write({"kind": "ledger_end",
                           "num_rounds": len(result.rounds)})
        self.writer.finalize()

    def close(self) -> None:
        self.writer.close()


class AlertStreamObserver(RoundObserver):
    """Streams fired SLO alerts (``--alerts-out``) as JSONL.

    One header line, one ``alert`` line per fired alert (reading back via
    :func:`repro.io.load_alerts`), and an ``alerts_end`` trailer.  Attach
    it *after* the :class:`SLOObserver` in ``observers`` so each round's
    alerts exist by the time this observer sees the record.
    """

    def __init__(self, path: str | Path, scheduler_name: str = ""):
        super().__init__()
        self.writer = JsonlStreamWriter(path)
        self.count = 0
        self.writer.write({"kind": "alerts",
                           "format_version": _FORMAT_VERSION,
                           "scheduler_name": scheduler_name})

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        for alert in getattr(record, "alerts", ()):
            self.writer.write({"kind": "alert", **alert.to_dict()})
            self.count += 1
        self.writer.flush()

    def on_finalize(self, result: Any) -> None:
        self.on_round(result, len(result.rounds) - 1, 0.0)
        self.writer.write({"kind": "alerts_end", "num_alerts": self.count})
        self.writer.finalize()

    def close(self) -> None:
        self.writer.close()


class SLOObserver(RoundObserver):
    """Runs an :class:`~repro.obs.slo.SLOEngine` against each round and
    attaches the fired alerts to the round record (idempotent on resume
    catch-up: re-evaluating a restored round reproduces the same alerts,
    so assignment — not append — keeps replays duplicate-free)."""

    def __init__(self, engine: SLOEngine | None = None):
        super().__init__()
        self.engine = engine or SLOEngine()

    @property
    def alerts(self) -> list:
        return self.engine.alerts

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        fired = self.engine.observe_round(record, round_index, dt)
        record.alerts = list(fired)


class PrometheusSnapshotObserver(RoundObserver):
    """Rewrites a Prometheus text-exposition snapshot of the metrics
    registry (``--prom-out``) — a node-exporter-textfile-style file a
    scraper can poll while the run is live.

    Per-round snapshots are atomic for readers (write-tmp-then-rename)
    but deliberately *not* fsynced, and are throttled to at most one per
    ``min_interval_s`` of wall clock: the file is overwritten on the next
    round anyway, so per-round durability buys nothing and an fsync per
    round would dominate fast rounds.  Only the finalize write (the
    snapshot that outlives the run) goes through the durable
    :mod:`repro.atomicio` path."""

    def __init__(self, metrics: MetricsRegistry, path: str | Path, *,
                 min_interval_s: float = 0.25):
        super().__init__()
        self.metrics = metrics
        self.path = Path(path)
        self.min_interval_s = min_interval_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._last_write = float("-inf")

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        now = time.monotonic()
        if now - self._last_write < self.min_interval_s:
            return
        self._last_write = now
        self._tmp.write_text(prometheus_text(self.metrics),
                             encoding="utf-8")
        os.replace(self._tmp, self.path)

    def on_finalize(self, result: Any) -> None:
        from repro.atomicio import atomic_write_text
        atomic_write_text(self.path, prometheus_text(self.metrics))


# -- Prometheus text exposition ------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"           # metric name
    r"(\{[^{}]*\})?"                          # optional labels
    r"\s+(-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|NaN|[+-]?Inf))$")  # value


def prometheus_name(name: str) -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized[:1].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def prometheus_text(metrics: MetricsRegistry | dict[str, float]) -> str:
    """Render a registry (or a flat snapshot dict) in Prometheus text
    exposition format 0.0.4: counters as ``counter``, gauges as ``gauge``,
    histograms as ``summary`` (quantiles + ``_sum``/``_count``)."""
    lines: list[str] = []
    if isinstance(metrics, dict):
        for name in sorted(metrics):
            prom = prometheus_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {float(metrics[name]):g}")
        return "\n".join(lines) + "\n" if lines else ""
    for name, metric in metrics.items():
        prom = prometheus_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {metric.value:g}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {metric.value:g}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(f'{prom}{{quantile="{q:g}"}} '
                             f"{metric.quantile(q):g}")
            lines.append(f"{prom}_sum {metric.total:g}")
            lines.append(f"{prom}_count {metric.count:g}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Strict parser/validator for the exposition format we emit: returns
    ``{name or name{labels}: value}`` and raises ``ValueError`` on any
    malformed line — the CI gate that ``/metrics`` output actually parses."""
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE" and parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: bad metric type {parts[3]!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, labels, value = match.groups()
        samples[name + (labels or "")] = float(value)
    return samples


# -- HTTP endpoint -------------------------------------------------------------

class MetricsHTTPServer(RoundObserver):
    """Serves an in-flight run over stdlib HTTP (``--serve PORT``).

    Endpoints: ``/metrics`` (Prometheus text exposition of the live
    registry), ``/healthz`` (JSON run status: rounds recorded, sim time,
    jobs), ``/alerts`` (JSON list of every SLO alert fired so far).  Runs a
    ``ThreadingHTTPServer`` on a daemon thread; the handler only *reads*
    engine-owned structures (safe under the GIL for these append-only
    lists/dicts), so serving adds nothing to the scheduling path.
    """

    def __init__(self, metrics: MetricsRegistry, *,
                 slo: SLOEngine | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        super().__init__()
        self.metrics = metrics
        self.slo = slo
        self.host = host
        self.port = port
        self.state: dict[str, Any] = {"status": "starting", "rounds": 0,
                                      "sim_time": 0.0, "active_jobs": 0,
                                      "running_jobs": 0}
        self._httpd = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path == "/metrics":
                    body = prometheus_text(server.metrics).encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path == "/healthz":
                    body = json.dumps(server.state).encode()
                    ctype = "application/json"
                elif self.path == "/alerts":
                    alerts = server.slo.alerts if server.slo else []
                    body = json.dumps(
                        [a.to_dict() for a in alerts]).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # never spam the run's stdout per scrape

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._httpd.server_address[1]
        self.state["status"] = "running"
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True,
                                        name="repro-metrics-http")
        self._thread.start()
        return self.port

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        self.state.update(rounds=round_index + 1, sim_time=record.time,
                          active_jobs=record.active_jobs,
                          running_jobs=record.running_jobs)

    def on_finalize(self, result: Any) -> None:
        self.state["status"] = "finished"

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None


# -- live terminal view --------------------------------------------------------

class WatchView(RoundObserver):
    """``repro watch``: one compact line per round plus inline alerts.

    Plain append-only output (no cursor control) so it behaves identically
    on a terminal, piped through ``tee``, and in CI logs.
    """

    def __init__(self, out: TextIO | None = None, *,
                 slo: SLOEngine | None = None):
        super().__init__()
        self.out = out or sys.stdout
        self.slo = slo
        self._latency = RollingWindow(20)
        self._alerts = 0

    def observe(self, record: Any, round_index: int, dt: float) -> None:
        self._latency.push(record.solve_time)
        queue = record.active_jobs - record.running_jobs
        gpus = sum(record.gpus_used.values())
        flags = " DEGRADED" if record.degraded else ""
        line = (f"r{round_index:>5} t={record.time / 3600.0:7.2f}h "
                f"jobs {record.running_jobs}/{record.active_jobs} "
                f"queue {queue:>3} gpus {gpus:>4} "
                f"solve_p95 {self._latency.quantile(0.95) * 1e3:7.1f}ms "
                f"backend {record.backend or '-'}{flags}")
        print(line, file=self.out, flush=True)
        for alert in getattr(record, "alerts", ()):
            self._alerts += 1
            print(f"       ALERT {alert.describe()}", file=self.out,
                  flush=True)

    def on_finalize(self, result: Any) -> None:
        finished = sum(1 for j in result.jobs if j.completed)
        print(f"done: {len(result.rounds)} rounds, "
              f"{finished}/{len(result.jobs)} jobs finished, "
              f"{self._alerts} alert(s)", file=self.out, flush=True)

"""Structured tracing spans: nestable, low-overhead, dependency-free.

A :class:`Tracer` records *spans* — named wall-clock intervals with
attributes and parent/child structure::

    tracer = Tracer()
    with tracer.span("plan", scheduler="sia", jobs=12):
        with tracer.span("solve", backend="milp"):
            ...

Every finished span becomes an immutable-ish :class:`SpanRecord` on
``tracer.spans``; nesting is tracked with an explicit stack, so spans opened
inside an open span become its children without any caller bookkeeping.

The default tracer everywhere in this repo is :data:`NULL_TRACER`, whose
``span()`` hands back one shared no-op context manager — uninstrumented runs
pay a single method call and dict construction per span site, nothing more,
and record nothing.  Exporters for the recorded spans (Chrome ``trace_event``
JSON, JSONL, digest) live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

#: the standard phase spans every scheduler emits inside its ``plan`` span
#: (Figure 9's solve-time scalar, split into where the time actually goes).
#: Canonical home — ``repro.schedulers.base`` and ``repro.sim.telemetry``
#: both alias this tuple.
PLAN_PHASES = ("bootstrap", "goodput_eval", "solve", "placement")

#: the solver-layer spans nested under a plan's ``solve`` phase, outermost
#: first: ``solve_attempt`` (one per :class:`~repro.core.resilience.
#: ResilientSolver` backend tried), ``ilp_solve`` (one per
#: :func:`~repro.core.ilp.solve_assignment` call, annotated with the
#: resolved tier when ``backend='tiered'``), ``reuse_check`` (the LP-bound
#: pricing of a warm start), and ``solve_partition`` (one per decomposed
#: sub-problem, annotated with gpu_type/cohort/vars).  Canonical home for
#: the taxonomy; tests and exporters reference this tuple.
SOLVER_SPANS = ("solve_attempt", "ilp_solve", "reuse_check",
                "solve_partition")


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    #: seconds since the tracer's epoch (its construction time).
    start: float
    #: wall-clock seconds the span was open.
    duration: float
    span_id: int
    #: id of the enclosing span, or None for a root span.
    parent_id: int | None
    #: nesting depth (0 for root spans).
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SpanStats:
    """Aggregate statistics over every span sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Span:
    """Context manager for one live span (real tracer only)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_span_id",
                 "_parent_id", "_depth", "record")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        #: the finished SpanRecord, populated on exit.
        self.record: SpanRecord | None = None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is open (e.g. outcomes
        discovered mid-body, like a solver timeout)."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self._parent_id = stack[-1] if stack else None
        self._depth = len(stack)
        self._span_id = tracer._next_id
        tracer._next_id += 1
        stack.append(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._stack.pop()
        self.record = SpanRecord(
            name=self._name,
            start=self._start - tracer._epoch,
            duration=end - self._start,
            span_id=self._span_id,
            parent_id=self._parent_id,
            depth=self._depth,
            attrs=self._attrs,
        )
        tracer.spans.append(self.record)
        return False


class Tracer:
    """Collects spans and instant events for one run."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        #: instant (zero-duration) events: (name, time-since-epoch, attrs).
        self.events: list[tuple[str, float, dict[str, Any]]] = []
        self._stack: list[int] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a span; use as a context manager."""
        return _Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker event (e.g. a breaker trip)."""
        self.events.append((name, time.perf_counter() - self._epoch, attrs))

    # -- queries ---------------------------------------------------------------

    def span_stats(self, name: str) -> SpanStats:
        count, total = 0, 0.0
        lo, hi = math.inf, 0.0
        for span in self.spans:
            if span.name != name:
                continue
            count += 1
            total += span.duration
            lo = min(lo, span.duration)
            hi = max(hi, span.duration)
        return SpanStats(name=name, count=count, total=total, min=lo, max=hi)

    def totals_by_name(self) -> dict[str, float]:
        """Total seconds spent in spans of each name."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def children(self, span_id: int) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span_id]

    def reset(self) -> None:
        """Drop recorded spans/events (the epoch is kept)."""
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self._next_id = 1


class _NullSpan:
    """Shared no-op span: entering/exiting does nothing."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: records nothing, costs (almost) nothing."""

    enabled = False
    #: immutable empties so callers can iterate without branching.
    spans: tuple[SpanRecord, ...] = ()
    events: tuple = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        pass

    def span_stats(self, name: str) -> SpanStats:
        return SpanStats(name=name)

    def totals_by_name(self) -> dict[str, float]:
        return {}

    def children(self, span_id: int) -> list[SpanRecord]:
        return []

    def reset(self) -> None:
        pass


#: process-wide no-op tracer; safe to share (it holds no state).
NULL_TRACER = NullTracer()

"""Decision audit trail: classified allocation-change events.

The simulator diffs each job's allocation between consecutive rounds and
records one :class:`AllocationEvent` per change, answering *what the
scheduler decided* for every job: when it was admitted, scaled, migrated
across GPU types, preempted, resumed, restarted after a fault, and
finished.  Together with the goodput ledger (:mod:`repro.obs.ledger`) this
is the decision-level counterpart to the phase-timing spans.

Events are plain data — this module stays dependency-free like the rest of
``repro.obs``; allocations are passed in as ``(gpu_type, num_gpus,
node_ids)`` tuples so the classifier also works on records loaded from
JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

#: event kinds, in rough lifecycle order.
ADMIT = "admit"                            #: first resources ever
SCALE_UP = "scale_up"                      #: same GPU type, more GPUs
SCALE_DOWN = "scale_down"                  #: same GPU type, fewer GPUs
MIGRATE = "migrate"                        #: moved (GPU type and/or nodes)
PREEMPT = "preempt"                        #: resources taken away
RESUME = "resume"                          #: resources back after a preempt
RESTART_AFTER_FAULT = "restart_after_fault"  #: resources back after a fault
FINISH = "finish"                          #: job completed

EVENT_KINDS = (ADMIT, SCALE_UP, SCALE_DOWN, MIGRATE, PREEMPT, RESUME,
               RESTART_AFTER_FAULT, FINISH)

#: why a change happened: the scheduler chose it, or a fault forced it.
CAUSE_SCHEDULER = "scheduler"
CAUSE_FAULT = "fault"

#: an allocation as the audit layer sees it.
AllocTuple = "tuple[str, int, tuple[int, ...]]"


@dataclass(frozen=True)
class AllocationEvent:
    """One classified allocation change for one job."""

    kind: str
    time: float
    job_id: str
    #: allocation before the change ('' / 0 when the job held nothing).
    from_gpu_type: str = ""
    from_gpus: int = 0
    #: allocation after the change ('' / 0 when the job holds nothing).
    to_gpu_type: str = ""
    to_gpus: int = 0
    #: scheduling round the change took effect in (-1 when unknown).
    round_index: int = -1
    cause: str = CAUSE_SCHEDULER
    detail: str = ""

    def describe(self) -> str:
        """One-line human-readable rendering (used by ``repro explain``)."""
        before = (f"{self.from_gpus}x {self.from_gpu_type}"
                  if self.from_gpu_type else "-")
        after = (f"{self.to_gpus}x {self.to_gpu_type}"
                 if self.to_gpu_type else "-")
        text = f"{self.kind}: {before} -> {after}"
        if self.cause != CAUSE_SCHEDULER:
            text += f" [{self.cause}]"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind, "time": self.time, "job_id": self.job_id,
            "round_index": self.round_index,
        }
        if self.from_gpu_type:
            data["from"] = [self.from_gpu_type, self.from_gpus]
        if self.to_gpu_type:
            data["to"] = [self.to_gpu_type, self.to_gpus]
        if self.cause != CAUSE_SCHEDULER:
            data["cause"] = self.cause
        if self.detail:
            data["detail"] = self.detail
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "AllocationEvent":
        before = data.get("from") or ("", 0)
        after = data.get("to") or ("", 0)
        return AllocationEvent(
            kind=data["kind"], time=data["time"], job_id=data["job_id"],
            from_gpu_type=before[0], from_gpus=int(before[1]),
            to_gpu_type=after[0], to_gpus=int(after[1]),
            round_index=data.get("round_index", -1),
            cause=data.get("cause", CAUSE_SCHEDULER),
            detail=data.get("detail", ""))


def classify_change(job_id: str, time: float, *,
                    held: "tuple[str, int, tuple[int, ...]] | None",
                    new: "tuple[str, int, tuple[int, ...]] | None",
                    ran_before: bool, fault_hit: bool = False,
                    round_index: int = -1,
                    detail: str = "") -> AllocationEvent | None:
    """Classify one job's round-over-round allocation change.

    ``held``/``new`` are ``(gpu_type, num_gpus, node_ids)`` or None for the
    allocation at the start and end of the scheduling step.  ``ran_before``
    says whether the job ever held resources before this round;
    ``fault_hit`` says a fault evicted/crashed the job since it last ran
    (so regaining resources is a restart, not a scheduler decision).
    Returns None when nothing changed.
    """
    if new is None:
        if held is None:
            return None
        return AllocationEvent(
            kind=PREEMPT, time=time, job_id=job_id,
            from_gpu_type=held[0], from_gpus=held[1],
            round_index=round_index,
            cause=CAUSE_FAULT if fault_hit else CAUSE_SCHEDULER,
            detail=detail)
    if held is None:
        if not ran_before:
            kind = ADMIT
        elif fault_hit:
            kind = RESTART_AFTER_FAULT
        else:
            kind = RESUME
        return AllocationEvent(
            kind=kind, time=time, job_id=job_id,
            to_gpu_type=new[0], to_gpus=new[1], round_index=round_index,
            cause=CAUSE_FAULT if kind == RESTART_AFTER_FAULT
            else CAUSE_SCHEDULER,
            detail=detail)
    if fault_hit:
        # Crashed or evicted mid-round and holding resources again: the
        # change was forced, whatever shape it took.
        return AllocationEvent(
            kind=RESTART_AFTER_FAULT, time=time, job_id=job_id,
            from_gpu_type=held[0], from_gpus=held[1],
            to_gpu_type=new[0], to_gpus=new[1], round_index=round_index,
            cause=CAUSE_FAULT, detail=detail)
    if held[0] != new[0]:
        return AllocationEvent(
            kind=MIGRATE, time=time, job_id=job_id,
            from_gpu_type=held[0], from_gpus=held[1],
            to_gpu_type=new[0], to_gpus=new[1], round_index=round_index,
            detail=detail)
    if held[1] != new[1]:
        kind = SCALE_UP if new[1] > held[1] else SCALE_DOWN
        return AllocationEvent(
            kind=kind, time=time, job_id=job_id,
            from_gpu_type=held[0], from_gpus=held[1],
            to_gpu_type=new[0], to_gpus=new[1], round_index=round_index,
            detail=detail)
    if held[2] != new[2]:
        return AllocationEvent(
            kind=MIGRATE, time=time, job_id=job_id,
            from_gpu_type=held[0], from_gpus=held[1],
            to_gpu_type=new[0], to_gpus=new[1], round_index=round_index,
            detail=detail or "same-type node move")
    return None


# -- aggregation ---------------------------------------------------------------

def events_for_job(events: Iterable[AllocationEvent],
                   job_id: str) -> list[AllocationEvent]:
    return [e for e in events if e.job_id == job_id]


def event_counts(events: Iterable[AllocationEvent]) -> dict[str, int]:
    """Events by kind (keys restricted to kinds that occurred)."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def migration_flows(events: Iterable[AllocationEvent],
                    ) -> dict[tuple[str, str], int]:
    """(from GPU type, to GPU type) -> count over MIGRATE events — the
    per-GPU-type migration flow the Gavel comparison is judged by."""
    flows: dict[tuple[str, str], int] = {}
    for event in events:
        if event.kind != MIGRATE:
            continue
        key = (event.from_gpu_type, event.to_gpu_type)
        flows[key] = flows.get(key, 0) + 1
    return flows


def allocation_persistence(rounds: Sequence[Any]) -> float | None:
    """Fraction of job -> allocation pairs unchanged round-to-round.

    Over every consecutive round pair, a job allocated in the earlier
    round *persists* when the later round gives it the identical
    ``(gpu_type, num_gpus)`` allocation — the same notion of identity the
    ILP warm start uses (its join key is the configuration, not the
    nodes), so this is exactly the fraction of last round's solution the
    solver can reuse.  Jobs that finished or were preempted count as
    churn; jobs admitted later enter the denominator once allocated.
    Returns None when fewer than two rounds carry allocations (nothing to
    compare — e.g. results saved with ``include_rounds=False``).

    Pollux observes (and Sia's round structure inherits) that this ratio
    is high in steady state, which is what makes the warm-start/reuse
    solver tier pay off; ``repro.analysis.report`` surfaces it per run.
    """
    kept = 0
    total = 0
    for earlier, later in zip(rounds, rounds[1:]):
        for job_id, alloc in earlier.allocations.items():
            total += 1
            after = later.allocations.get(job_id)
            # tuple() both sides: JSON round trips turn tuples into lists.
            if after is not None and tuple(after) == tuple(alloc):
                kept += 1
    if total == 0:
        return None
    return kept / total


class AuditTrail:
    """All allocation events of one run, with per-job and aggregate views."""

    def __init__(self, events: Sequence[AllocationEvent] = ()):
        self.events = list(events)

    @classmethod
    def from_result(cls, result: Any) -> "AuditTrail":
        """Collect the per-round events of a ``SimulationResult``-like
        object (live, or loaded from JSON by :mod:`repro.io`)."""
        events: list[AllocationEvent] = []
        for rnd in result.rounds:
            events.extend(rnd.events)
        return cls(events)

    def for_job(self, job_id: str) -> list[AllocationEvent]:
        return events_for_job(self.events, job_id)

    def counts(self) -> dict[str, int]:
        return event_counts(self.events)

    def migration_flows(self) -> dict[tuple[str, str], int]:
        return migration_flows(self.events)

    def __len__(self) -> int:
        return len(self.events)

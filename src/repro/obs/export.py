"""Exporters for recorded spans and metrics.

Three formats:

* **Chrome/Perfetto trace** — the ``trace_event`` JSON format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev (open the file directly).
  Spans become complete ("X") events; instant events become "i" events.
* **JSONL event log** — one JSON object per line (spans, instant events,
  and a final metrics snapshot), for ad-hoc ``jq``/pandas analysis.
  Round-trips through :func:`read_events_jsonl`.
* **Digest** — a human-readable per-run summary (phase breakdown, span
  stats, metrics) printed by the CLI's ``--metrics-digest``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.tracer import SpanRecord

#: trace_event phases we emit (complete spans, instants, metadata).
_VALID_PHASES = {"X", "i", "M"}


# -- Chrome / Perfetto trace_event JSON --------------------------------------

def chrome_trace(spans: Sequence[SpanRecord],
                 events: Iterable[tuple[str, float, dict[str, Any]]] = (),
                 *, process_name: str = "repro") -> dict[str, Any]:
    """Build a ``trace_event`` JSON payload (the "JSON object format":
    a dict with a ``traceEvents`` list) from recorded spans."""
    trace_events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for span in spans:
        event: dict[str, Any] = {
            "name": span.name,
            "ph": "X",
            "ts": span.start * 1e6,        # trace_event wants microseconds
            "dur": span.duration * 1e6,
            "pid": 0,
            "tid": 0,
        }
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event["args"] = args
        trace_events.append(event)
    for name, ts, attrs in events:
        trace_events.append({
            "name": name, "ph": "i", "ts": ts * 1e6,
            "pid": 0, "tid": 0, "s": "t", "args": dict(attrs),
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[SpanRecord], path: str | Path,
                       events: Iterable[tuple[str, float, dict[str, Any]]] = (),
                       ) -> None:
    payload = chrome_trace(spans, events)
    validate_chrome_trace(payload)
    Path(path).write_text(json.dumps(payload))


def validate_chrome_trace(payload: Any) -> None:
    """Raise ValueError unless ``payload`` is a well-formed trace_event
    JSON object (the schema Perfetto/chrome://tracing loads)."""
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ValueError("trace payload needs a 'traceEvents' list")
    for i, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}] lacks a string 'name'")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"traceEvents[{i}] has unsupported ph={phase!r}")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            raise ValueError(f"traceEvents[{i}] lacks a non-negative 'ts'")
        if phase == "X" and (not isinstance(event.get("dur"), (int, float))
                             or event["dur"] < 0):
            raise ValueError(f"traceEvents[{i}] ('X') lacks a valid 'dur'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"traceEvents[{i}] lacks integer {key!r}")


# -- JSONL event log ----------------------------------------------------------

def write_events_jsonl(spans: Sequence[SpanRecord], path: str | Path,
                       events: Iterable[tuple[str, float, dict[str, Any]]] = (),
                       metrics: dict[str, float] | None = None) -> None:
    """One JSON object per line: spans in completion order, then instant
    events, then a final ``metrics`` snapshot line (when given)."""
    lines = []
    for span in spans:
        lines.append(json.dumps({
            "kind": "span", "name": span.name, "start": span.start,
            "duration": span.duration, "span_id": span.span_id,
            "parent_id": span.parent_id, "depth": span.depth,
            "attrs": span.attrs,
        }))
    for name, ts, attrs in events:
        lines.append(json.dumps({
            "kind": "event", "name": name, "time": ts, "attrs": dict(attrs),
        }))
    if metrics is not None:
        lines.append(json.dumps({"kind": "metrics", "values": metrics}))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def read_events_jsonl(path: str | Path,
                      ) -> tuple[list[SpanRecord], dict[str, float]]:
    """Round-trip reader: (spans, final metrics snapshot)."""
    spans: list[SpanRecord] = []
    metrics: dict[str, float] = {}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        item = json.loads(line)
        kind = item.get("kind")
        if kind == "span":
            spans.append(SpanRecord(
                name=item["name"], start=item["start"],
                duration=item["duration"], span_id=item["span_id"],
                parent_id=item["parent_id"], depth=item["depth"],
                attrs=item.get("attrs", {})))
        elif kind == "metrics":
            metrics = dict(item.get("values", {}))
    return spans, metrics


# -- counterfactual run diffs --------------------------------------------------

def write_run_diff_jsonl(diff: Any, path: str | Path) -> None:
    """One JSON object per line for a :class:`~repro.obs.diff.RunDiff`:
    a header (fork round, overrides, schedulers, identity verdict), one
    ``round_delta`` line per differing round, one ``metric`` line per
    outcome delta, and one ``job_delta`` line per job — the ``jq``-friendly
    sibling of the exact ``diff.json`` written by
    :func:`repro.io.save_run_diff`."""
    lines = [json.dumps({
        "kind": "run_diff", "fork_round": diff.fork_round,
        "overrides": dict(diff.overrides),
        "base_scheduler": diff.base_scheduler,
        "fork_scheduler": diff.fork_scheduler,
        "base_rounds": diff.base_rounds, "fork_rounds": diff.fork_rounds,
        "identical": diff.identical,
        "divergence": diff.divergence.to_dict() if diff.divergence else None,
    })]
    for rnd in diff.round_deltas:
        lines.append(json.dumps({"kind": "round_delta", **rnd.to_dict()}))
    for metric in diff.metrics:
        lines.append(json.dumps({"kind": "metric", **metric.to_dict()}))
    for job_id, vals in diff.job_deltas.items():
        lines.append(json.dumps({"kind": "job_delta", "job_id": job_id,
                                 **vals}))
    Path(path).write_text("\n".join(lines) + "\n")


def run_diff_markdown(diff: Any) -> str:
    """Render a :class:`~repro.obs.diff.RunDiff` as a markdown section —
    shared by the report's decision-diff section and standalone export."""
    over = ", ".join(f"`{k}={v}`" for k, v in diff.overrides.items()) \
        or "*(none — identity fork)*"
    lines = [
        "## Counterfactual diff",
        "",
        f"Base `{diff.base_scheduler}` ({diff.base_rounds} rounds) vs fork "
        f"`{diff.fork_scheduler}` ({diff.fork_rounds} rounds), "
        f"branched at round {diff.fork_round}.",
        f"Overrides: {over}.",
        "",
    ]
    if diff.identical:
        lines.append("The two futures are **bit-identical** (modulo "
                     "wall-clock telemetry).")
    elif diff.divergence is not None:
        d = diff.divergence
        lines.append(f"**Divergence at round {d.round_index}** "
                     f"(t={d.time:.0f}s): {d.reason}. "
                     f"Jobs: {', '.join(d.jobs) or '-'}.")
    if diff.metrics:
        lines += ["", "| metric | base | fork | delta |",
                  "| --- | --- | --- | --- |"]
        for metric in diff.metrics:
            lines.append(f"| {metric.name} | {metric.base:.3f} "
                         f"| {metric.fork:.3f} | {metric.delta:+.3f} |")
    if diff.round_deltas:
        shown = diff.round_deltas[:20]
        lines += ["", f"{len(diff.round_deltas)} differing round(s)"
                  + (f" (first {len(shown)} shown)"
                     if len(shown) < len(diff.round_deltas) else "") + ":",
                  ""]
        for rnd in shown:
            tag = f" [only in {rnd.only_in}]" if rnd.only_in else ""
            changes = "; ".join(c.describe() for c in rnd.changes)
            lines.append(f"- round {rnd.round_index} "
                         f"(t={rnd.time:.0f}s){tag}: {changes}")
    return "\n".join(lines) + "\n"


# -- human-readable digest -----------------------------------------------------

def span_digest(spans: Sequence[SpanRecord]) -> str:
    """Per-name span table: count, total, mean, max (seconds)."""
    stats: dict[str, list[float]] = {}
    for span in spans:
        stats.setdefault(span.name, []).append(span.duration)
    if not stats:
        return "(no spans recorded)"
    width = max(len(name) for name in stats)
    lines = [f"{'span':<{width}}  {'count':>6}  {'total_s':>9}  "
             f"{'mean_s':>9}  {'max_s':>9}"]
    for name in sorted(stats, key=lambda n: -sum(stats[n])):
        durs = stats[name]
        lines.append(f"{name:<{width}}  {len(durs):>6}  {sum(durs):>9.4f}  "
                     f"{sum(durs) / len(durs):>9.6f}  {max(durs):>9.6f}")
    return "\n".join(lines)


def alert_digest(result: Any) -> str:
    """Alert/SLO digest block: fired alerts by rule plus the final burn-rate
    gauges.  Empty string when the run was not SLO-observed (nothing to
    say), so callers can splice it in conditionally."""
    counts = result.alert_counts() if hasattr(result, "alert_counts") else {}
    metrics = getattr(result, "final_metrics", None) or {}
    burns = {k[len("slo.burn_rate."):]: v for k, v in metrics.items()
             if k.startswith("slo.burn_rate.")}
    if not counts and not burns:
        return ""
    lines = ["slo alerts:"]
    if counts:
        for rule in sorted(counts, key=lambda r: (-counts[r], r)):
            burn = burns.pop(rule, None)
            tail = f" (final burn rate {burn:.2f})" if burn is not None else ""
            lines.append(f"  {rule}: {counts[rule]} alert(s){tail}")
    else:
        lines.append("  (none fired)")
    for rule in sorted(burns):
        lines.append(f"  {rule}: 0 alert(s) "
                     f"(final burn rate {burns[rule]:.2f})")
    return "\n".join(lines)


def run_digest(result: Any) -> str:
    """Observability digest for one :class:`SimulationResult`-like object
    (anything with ``spans``, ``final_metrics``, ``rounds``).  Degenerate
    inputs — no rounds (saved with ``include_rounds=False``), no spans, or
    no metrics snapshot — each get an explicit line instead of a silently
    missing section."""
    sections = [f"== observability digest: {result.scheduler_name} =="]
    rounds = result.rounds
    if rounds:
        breakdown = result.phase_time_breakdown()
        total_solve = sum(r.solve_time for r in rounds)
        if any(v > 0 for v in breakdown.values()):
            parts = ", ".join(f"{k}={v:.4f}s" for k, v in breakdown.items())
            sections.append(f"phase breakdown: {parts} "
                            f"(recorded solve_time total: {total_solve:.4f}s)")
    else:
        sections.append("(no per-round records; the result was saved "
                        "without rounds)")
    if result.spans:
        sections.append(span_digest(result.spans))
    else:
        sections.append("(tracing disabled; rerun with --trace-out or "
                        "--events-out for spans)")
    alerts = alert_digest(result)
    if alerts:
        sections.append(alerts)
    if result.final_metrics:
        sections.append("metrics:")
        sections.extend(f"  {k}: {v:g}"
                        for k, v in sorted(result.final_metrics.items()))
    else:
        sections.append("(no metrics snapshot recorded)")
    return "\n".join(sections)

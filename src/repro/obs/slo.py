"""Online SLO engine: declarative rules, burn-rate alerting, causality.

Sia's goodput objective is only operable in production if breaches of the
scheduler's service-level objectives — slow policy rounds, solver
fallbacks, runaway queue waits, diverging goodput estimates, quarantined
capacity — surface *while the run is live*, with enough causal context to
act on.  This module evaluates a declarative ruleset against every
:class:`~repro.sim.telemetry.RoundRecord` as the engine records it and
emits structured :class:`Alert` events whose context (which jobs, nodes,
faults, and solver backends drove the breach) is pulled from the same
decision trails :mod:`repro.obs.ledger`, :mod:`repro.obs.audit`, and the
health tracker already persist.

Rule semantics (documented in DESIGN.md "Live telemetry & SLOs"):

* each rule names a **series** — a built-in online aggregate
  (``round_latency_p95``, ``solver_fallback_rate``, ``queue_wait_p99``,
  ``estimation_error_median``, ``quarantined_nodes``) or any
  ``RoundRecord.metrics`` key with an ``agg`` (``last``/``mean``/``max``/
  ``p50``/``p95``/``p99``);
* the per-round series value is compared against ``target`` (``<=`` or
  ``>=``); the boolean outcome feeds a rolling **error-budget window**;
* ``burn_rate = violating fraction / error_budget``; the rule fires when
  ``burn_rate >= rule.burn_rate`` with at least ``min_samples`` rounds of
  evidence, then stays quiet for ``cooldown`` rounds.

Determinism: the engine only *reads* round records — it never touches the
simulation's RNG or state — so a run evaluated with SLOs is bit-identical
to one without (the chaos ``diff_results`` oracle excludes the alert and
``slo.*``-metric fields, the same carve-out as wall-clock timing, because
rules over ``round_latency_*`` are legitimately host-timing-dependent).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import interpolated_quantile
from repro.obs.window import RollingRate, RollingWindow

#: built-in online series (everything else resolves via RoundRecord.metrics).
BUILTIN_SERIES = ("round_latency_p95", "solver_fallback_rate",
                  "queue_wait_p99", "estimation_error_median",
                  "quarantined_nodes")
#: window aggregations for metrics-key rules.
METRIC_AGGS = ("last", "mean", "max", "p50", "p95", "p99")
COMPARISONS = ("<=", ">=")
SEVERITIES = ("info", "warn", "page")


@dataclass(frozen=True)
class Alert:
    """One structured SLO breach, persisted into the round it fired in."""

    rule: str
    metric: str
    round_index: int
    time: float
    #: the series value that breached (the aggregate, not a raw sample).
    value: float
    target: float
    comparison: str
    #: error-budget burn multiple at fire time (>= the rule's threshold).
    burn_rate: float
    window: int
    severity: str = "warn"
    #: causal context from the ledger/audit/health trails: offending jobs,
    #: nodes, fault kinds, and solver backends over the rule's window.
    context: dict[str, Any] = field(default_factory=dict, compare=False)

    def describe(self) -> str:
        parts = [f"[{self.severity}] {self.rule}: {self.metric}="
                 f"{self.value:.4g} {self.comparison} {self.target:.4g} "
                 f"violated (burn {self.burn_rate:.1f}x over "
                 f"{self.window} rounds)"]
        jobs = self.context.get("jobs")
        if jobs:
            parts.append("jobs " + ",".join(jobs[:4]))
        nodes = self.context.get("nodes")
        if nodes:
            parts.append("nodes " + ",".join(str(n) for n in nodes[:6]))
        faults = self.context.get("faults")
        if faults:
            parts.append("faults " + ",".join(
                f"{k}={v}" for k, v in sorted(faults.items())))
        backends = self.context.get("backends")
        if backends:
            parts.append("backends " + ",".join(
                f"{k or '?'}={v}" for k, v in sorted(backends.items())))
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rule": self.rule, "metric": self.metric,
            "round_index": self.round_index, "time": self.time,
            "value": self.value, "target": self.target,
            "comparison": self.comparison, "burn_rate": self.burn_rate,
            "window": self.window, "severity": self.severity,
        }
        if self.context:
            data["context"] = self.context
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Alert":
        return Alert(
            rule=data["rule"], metric=data["metric"],
            round_index=data["round_index"], time=data["time"],
            value=data["value"], target=data["target"],
            comparison=data["comparison"], burn_rate=data["burn_rate"],
            window=data["window"], severity=data.get("severity", "warn"),
            context=dict(data.get("context", {})))


@dataclass(frozen=True)
class SLORule:
    """One declarative objective (see module docstring for semantics)."""

    name: str
    metric: str
    target: float
    comparison: str = "<="
    #: rolling evaluation window, rounds (both the series statistic and
    #: the error-budget indicator use it).
    window: int = 20
    #: allowed violating fraction of the window (the error budget).
    error_budget: float = 0.25
    #: fire when violating_fraction / error_budget reaches this multiple.
    burn_rate: float = 1.0
    #: evidence floor: no alert before this many rounds are in the window.
    min_samples: int = 5
    #: rounds to stay quiet after firing (re-arms automatically).
    cooldown: int = 10
    severity: str = "warn"
    #: aggregation for metrics-key rules (ignored for built-in series).
    agg: str = "last"

    def __post_init__(self) -> None:
        if self.comparison not in COMPARISONS:
            raise ValueError(f"rule {self.name!r}: comparison must be one "
                             f"of {COMPARISONS}, got {self.comparison!r}")
        if self.window < 1:
            raise ValueError(f"rule {self.name!r}: window must be >= 1")
        if not 0.0 < self.error_budget <= 1.0:
            raise ValueError(f"rule {self.name!r}: error_budget must be in "
                             f"(0, 1], got {self.error_budget!r}")
        if self.burn_rate <= 0:
            raise ValueError(f"rule {self.name!r}: burn_rate must be > 0")
        if self.min_samples < 1:
            raise ValueError(f"rule {self.name!r}: min_samples must be >= 1")
        if self.severity not in SEVERITIES:
            raise ValueError(f"rule {self.name!r}: severity must be one of "
                             f"{SEVERITIES}, got {self.severity!r}")
        if self.metric not in BUILTIN_SERIES and self.agg not in METRIC_AGGS:
            raise ValueError(f"rule {self.name!r}: agg must be one of "
                             f"{METRIC_AGGS}, got {self.agg!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "metric": self.metric,
                "target": self.target, "comparison": self.comparison,
                "window": self.window, "error_budget": self.error_budget,
                "burn_rate": self.burn_rate, "min_samples": self.min_samples,
                "cooldown": self.cooldown, "severity": self.severity,
                "agg": self.agg}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "SLORule":
        known = {f for f in SLORule.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SLO rule keys: {sorted(unknown)}")
        return SLORule(**data)


def default_rules() -> list[SLORule]:
    """The stock ruleset the CLI's ``--slo default`` evaluates: one rule
    per operational failure mode the obs stack can already attribute."""
    return [
        SLORule(name="round-latency", metric="round_latency_p95",
                target=1.0, comparison="<=", window=20, error_budget=0.25,
                severity="warn"),
        SLORule(name="solver-fallbacks", metric="solver_fallback_rate",
                target=0.25, comparison="<=", window=20, error_budget=0.25,
                severity="page"),
        SLORule(name="queue-wait", metric="queue_wait_p99",
                target=4 * 3600.0, comparison="<=", window=20,
                error_budget=0.25, severity="warn"),
        SLORule(name="estimation-error", metric="estimation_error_median",
                target=1.0, comparison="<=", window=30, error_budget=0.5,
                severity="info"),
        SLORule(name="quarantined-capacity", metric="quarantined_nodes",
                target=0.0, comparison="<=", window=10, error_budget=0.2,
                min_samples=2, severity="page"),
    ]


def parse_rules(source: Any) -> list[SLORule]:
    """Parse a ruleset from a dict/list, a JSON/YAML file path, or the
    literal string ``"default"``.

    Accepted shapes: a list of rule dicts, or ``{"rules": [...]}``.  YAML
    files need PyYAML; when it is missing, a clear error tells the user to
    use JSON (the container does not grow a dependency for it).
    """
    if source is None or source == "default":
        return default_rules()
    if isinstance(source, (str, Path)):
        path = Path(source)
        text = path.read_text()
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env dependent
                raise ValueError(
                    f"{path} is YAML but PyYAML is not installed; "
                    "use a JSON ruleset instead") from exc
            source = yaml.safe_load(text)
        else:
            source = json.loads(text)
    if isinstance(source, dict):
        source = source.get("rules", source)
    if not isinstance(source, list):
        raise ValueError("SLO ruleset must be a list of rules or "
                         "{'rules': [...]}")
    rules = [rule if isinstance(rule, SLORule) else SLORule.from_dict(rule)
             for rule in source]
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate SLO rule names: {sorted(names)}")
    return rules


class _QueueWaitTracker:
    """Online per-job queue-wait attribution (the live sibling of
    :func:`repro.obs.ledger.queue_wait_by_job`).

    Jobs are discovered from admit events and allocations; a round spent
    active without GPUs adds ``dt`` to the job's wait; FINISH events retire
    it.  O(active jobs) per round — never re-derived from history.
    """

    def __init__(self) -> None:
        self.waits: dict[str, float] = {}
        self._finished: set[str] = set()

    def observe(self, record: Any, dt: float) -> None:
        for event in record.events:
            if event.kind == "finish":
                self._finished.add(event.job_id)
                self.waits.pop(event.job_id, None)
            elif event.job_id not in self._finished:
                self.waits.setdefault(event.job_id, 0.0)
        for job_id in record.allocations:
            if job_id not in self._finished:
                self.waits.setdefault(job_id, 0.0)
        for job_id in self.waits:
            if job_id not in record.allocations:
                self.waits[job_id] += dt

    def queued_waits(self, record: Any) -> list[tuple[str, float]]:
        """(job_id, accumulated wait) for jobs queued this round, worst
        first."""
        queued = [(jid, wait) for jid, wait in self.waits.items()
                  if jid not in record.allocations]
        queued.sort(key=lambda item: (-item[1], item[0]))
        return queued


def _round_error_median(record: Any) -> float:
    """Median relative goodput-estimation error of one round (NaN when no
    job has both sides of the ledger), matching
    :meth:`LedgerEntry.relative_error`."""
    errors = []
    for job_id, realized in record.realized.items():
        estimate = record.estimates.get(job_id)
        if estimate is None or realized is None or realized <= 0:
            continue
        errors.append(abs(estimate - realized) / realized)
    if not errors:
        return float("nan")
    errors.sort()
    mid = len(errors) // 2
    if len(errors) % 2:
        return errors[mid]
    return (errors[mid - 1] + errors[mid]) / 2.0


class SLOEngine:
    """Evaluates a ruleset against each round; collects :class:`Alert`s.

    Read-only with respect to the simulation: safe to attach to a live
    engine (via :class:`repro.obs.stream.SLOObserver`) or to replay over a
    loaded result (:func:`evaluate_result`).
    """

    def __init__(self, rules: Sequence[SLORule] | None = None, *,
                 metrics: Any = None):
        self.rules = list(rules) if rules is not None else default_rules()
        #: optional MetricsRegistry: burn-rate gauges + alert counters land
        #: under ``slo.*`` (excluded from the determinism oracle).
        self.metrics = metrics
        self.alerts: list[Alert] = []
        self.rounds_evaluated = 0
        self._queue = _QueueWaitTracker()
        max_window = max((r.window for r in self.rules), default=1)
        #: bounded history for causality extraction (never the full run).
        self._recent: deque_like = _BoundedRecords(max_window)
        self._series: dict[str, RollingWindow] = {}
        self._fallback_rate = RollingRate(max(
            (r.window for r in self.rules
             if r.metric == "solver_fallback_rate"), default=20))
        self._burn: dict[str, RollingRate] = {
            r.name: RollingRate(r.window) for r in self.rules}
        #: per-rule burn gauges resolved once — the f-string + registry
        #: lookup per rule per round is measurable on the hot path.
        self._burn_gauges = (
            {r.name: metrics.gauge(f"slo.burn_rate.{r.name}")
             for r in self.rules} if metrics is not None else None)
        self._last_fired: dict[str, int] = {}

    # -- series ----------------------------------------------------------------

    def _window_for(self, rule: SLORule) -> RollingWindow:
        window = self._series.get(rule.name)
        if window is None:
            window = self._series[rule.name] = RollingWindow(rule.window)
        return window

    def _series_value(self, rule: SLORule, record: Any) -> float:
        metric = rule.metric
        if metric == "round_latency_p95":
            window = self._window_for(rule)
            window.push(record.solve_time)
            return window.quantile(0.95)
        if metric == "solver_fallback_rate":
            return self._fallback_rate.rate
        if metric == "queue_wait_p99":
            waits = [wait for _, wait in self._queue.queued_waits(record)]
            waits.reverse()  # ascending for the shared interpolation
            return interpolated_quantile(waits, 0.99)
        if metric == "estimation_error_median":
            window = self._window_for(rule)
            window.push(_round_error_median(record))
            return window.quantile(0.5) if len(window) else float("nan")
        if metric == "quarantined_nodes":
            return float(record.metrics.get("health.quarantined_nodes", 0.0))
        # Generic: any RoundRecord.metrics key, windowed by rule.agg.
        raw = record.metrics.get(metric)
        if raw is None:
            return float("nan")
        if rule.agg == "last":
            return float(raw)
        window = self._window_for(rule)
        window.push(float(raw))
        if rule.agg == "mean":
            return window.mean
        if rule.agg == "max":
            return window.max
        return window.quantile({"p50": 0.5, "p95": 0.95,
                                "p99": 0.99}[rule.agg])

    # -- evaluation ------------------------------------------------------------

    def observe_round(self, record: Any, round_index: int,
                      dt: float) -> list[Alert]:
        """Fold one finished round in and return the alerts it fired."""
        self.rounds_evaluated += 1
        self._queue.observe(record, dt)
        self._fallback_rate.push(bool(record.degraded))
        self._recent.push(record)
        fired: list[Alert] = []
        for rule in self.rules:
            value = self._series_value(rule, record)
            violated = _violates(value, rule)
            burn = self._burn[rule.name]
            burn.push(violated)
            burn_rate = burn.rate / rule.error_budget
            if self._burn_gauges is not None:
                self._burn_gauges[rule.name].set(burn_rate)
            if len(burn) < rule.min_samples \
                    or burn_rate < rule.burn_rate:
                continue
            last = self._last_fired.get(rule.name)
            if last is not None and round_index - last < rule.cooldown:
                continue
            self._last_fired[rule.name] = round_index
            alert = Alert(
                rule=rule.name, metric=rule.metric,
                round_index=round_index, time=record.time,
                value=value, target=rule.target,
                comparison=rule.comparison, burn_rate=burn_rate,
                window=rule.window, severity=rule.severity,
                context=self._causes(rule, record))
            fired.append(alert)
            self.alerts.append(alert)
            if self.metrics is not None:
                self.metrics.counter("slo.alerts").inc()
                self.metrics.counter(f"slo.alert.{rule.name}").inc()
        return fired

    def _causes(self, rule: SLORule, record: Any) -> dict[str, Any]:
        """Causal context for a breach, from the trails the recent rounds
        already carry: audit/ledger (jobs), faults + health (nodes), and
        the solver-backend history."""
        context: dict[str, Any] = {}
        recent = self._recent.records
        faults: dict[str, int] = {}
        nodes: list[int] = []
        backends: dict[str, int] = {}
        for rnd in recent:
            backends[rnd.backend] = backends.get(rnd.backend, 0) + 1
            for event in rnd.fault_events:
                faults[event.kind] = faults.get(event.kind, 0) + 1
                target = getattr(event, "target", "")
                if target.startswith("node:"):
                    try:
                        nodes.append(int(target.split(":", 1)[1]))
                    except ValueError:
                        pass
            for event in getattr(rnd, "health_events", []):
                if event.kind in ("probation", "quarantine", "drain"):
                    nodes.append(event.node_id)
        if rule.metric == "queue_wait_p99":
            context["jobs"] = [jid for jid, _
                               in self._queue.queued_waits(record)[:5]]
        elif rule.metric == "estimation_error_median":
            worst = sorted(
                ((abs(record.estimates[jid] - realized) / realized, jid)
                 for jid, realized in record.realized.items()
                 if realized and realized > 0
                 and record.estimates.get(jid) is not None),
                reverse=True)
            context["jobs"] = [jid for _, jid in worst[:5]]
        if nodes:
            context["nodes"] = sorted(set(nodes))
        if faults:
            context["faults"] = faults
        if rule.metric in ("round_latency_p95", "solver_fallback_rate") \
                or record.degraded:
            context["backends"] = backends
        return context


class _BoundedRecords:
    """Tiny bounded FIFO of round records (causality lookback)."""

    __slots__ = ("size", "records")

    def __init__(self, size: int):
        self.size = max(1, size)
        self.records: list[Any] = []

    def push(self, record: Any) -> None:
        self.records.append(record)
        if len(self.records) > self.size:
            del self.records[0]


deque_like = _BoundedRecords  # typing alias for the engine attribute


def _violates(value: float, rule: SLORule) -> bool:
    if value != value:  # NaN: no evidence either way — not a violation
        return False
    if rule.comparison == "<=":
        return value > rule.target
    return value < rule.target


def evaluate_result(result: Any,
                    rules: Sequence[SLORule] | None = None) -> list[Alert]:
    """Post-hoc SLO evaluation over a finished/loaded result: replays the
    recorded rounds through a fresh engine, producing exactly the alerts a
    live run with the same ruleset would have produced (wall-clock rules
    track the recorded ``solve_time``)."""
    engine = SLOEngine(rules)
    rounds = result.rounds
    alerts: list[Alert] = []
    for index, record in enumerate(rounds):
        if index + 1 < len(rounds):
            dt = rounds[index + 1].time - record.time
        else:
            dt = max(result.end_time - record.time, 0.0)
        alerts.extend(engine.observe_round(record, index, dt))
    return alerts


def alert_summary(alerts: Iterable[Alert]) -> dict[str, int]:
    """Alert counts by rule name (report/digest convenience)."""
    counts: dict[str, int] = {}
    for alert in alerts:
        counts[alert.rule] = counts.get(alert.rule, 0) + 1
    return counts

"""Cross-run decision diff: align two futures of one run, round by round.

The counterfactual replay engine (:mod:`repro.analysis.replay`) forks a
recorded run at round N and plays out an alternate future; this module
holds the *artifact* that comparison produces — :class:`RunDiff` — and the
pure alignment machinery that builds its pieces from two
``SimulationResult``-like objects (live or JSON-loaded, like everything in
``repro.obs``):

* per-round allocation deltas, each classified with the
  :mod:`repro.obs.audit` event taxonomy applied across runs (base -> fork);
* divergence-point detection: the first round the two plans differ, with a
  reason derived from what else differed there (fault draws, plan backend,
  or a pure scheduling decision);
* ledger alignment: per-round realized/estimated goodput sums from two
  :class:`~repro.obs.ledger.GoodputLedger`\\ s on a shared round axis;
* fault-recovery attribution from audit events (time from fault-caused
  resource loss to the matching restart).

Everything serializes via ``to_dict``/``from_dict`` so :mod:`repro.io` can
round-trip ``diff.json`` artifacts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs import audit
from repro.obs.ledger import GoodputLedger

#: allocation as the diff sees it: (gpu_type, num_gpus), or None.
AllocPair = "tuple[str, int] | None"


def _classify(job_id: str, time: float, base: "tuple[str, int] | None",
              fork: "tuple[str, int] | None") -> str:
    """Label a cross-run allocation difference with the audit taxonomy.

    The base run's allocation plays the role of "held", the fork's of
    "new": a job running in the fork but idle in the base classifies as
    ``resume``, the reverse as ``preempt``, type changes as ``migrate``,
    size changes as ``scale_up``/``scale_down``.
    """
    held = (base[0], base[1], ()) if base is not None else None
    new = (fork[0], fork[1], ()) if fork is not None else None
    event = audit.classify_change(job_id, time, held=held, new=new,
                                  ran_before=True)
    return event.kind if event is not None else ""


@dataclass(frozen=True)
class AllocDelta:
    """One job whose allocation differs between the two futures, in one
    round: ``base``/``fork`` are ``(gpu_type, num_gpus)`` or None."""

    job_id: str
    base: "tuple[str, int] | None" = None
    fork: "tuple[str, int] | None" = None
    #: audit-taxonomy label of the base -> fork change ('' when identical).
    kind: str = ""

    def describe(self) -> str:
        def _fmt(alloc: "tuple[str, int] | None") -> str:
            return f"{alloc[1]}x {alloc[0]}" if alloc else "-"
        return (f"{self.job_id}: {_fmt(self.base)} -> {_fmt(self.fork)}"
                + (f" [{self.kind}]" if self.kind else ""))

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"job_id": self.job_id}
        if self.base is not None:
            data["base"] = list(self.base)
        if self.fork is not None:
            data["fork"] = list(self.fork)
        if self.kind:
            data["kind"] = self.kind
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "AllocDelta":
        base = data.get("base")
        fork = data.get("fork")
        return AllocDelta(
            job_id=data["job_id"],
            base=(base[0], int(base[1])) if base else None,
            fork=(fork[0], int(fork[1])) if fork else None,
            kind=data.get("kind", ""))


@dataclass(frozen=True)
class RoundDelta:
    """One round where the two futures differ."""

    round_index: int
    time: float
    changes: tuple[AllocDelta, ...] = ()
    #: 'base' / 'fork' when only one future has this round (different run
    #: lengths); '' when both have it and the allocations differ.
    only_in: str = ""

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "round_index": self.round_index, "time": self.time,
            "changes": [c.to_dict() for c in self.changes],
        }
        if self.only_in:
            data["only_in"] = self.only_in
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "RoundDelta":
        return RoundDelta(
            round_index=data["round_index"], time=data["time"],
            changes=tuple(AllocDelta.from_dict(c)
                          for c in data.get("changes", [])),
            only_in=data.get("only_in", ""))


@dataclass(frozen=True)
class DivergencePoint:
    """The first round the two futures planned differently, and why."""

    round_index: int
    time: float
    #: jobs whose allocations differed in that round.
    jobs: tuple[str, ...] = ()
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"round_index": self.round_index, "time": self.time,
                "jobs": list(self.jobs), "reason": self.reason}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "DivergencePoint":
        return DivergencePoint(
            round_index=data["round_index"], time=data["time"],
            jobs=tuple(data.get("jobs", [])),
            reason=data.get("reason", ""))


@dataclass(frozen=True)
class MetricDelta:
    """One scalar outcome, both sides."""

    name: str
    base: float
    fork: float

    @property
    def delta(self) -> float:
        return self.fork - self.base

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "base": self.base, "fork": self.fork}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "MetricDelta":
        return MetricDelta(name=data["name"], base=data["base"],
                           fork=data["fork"])


@dataclass
class RunDiff:
    """Everything a counterfactual fork changed, relative to its base run.

    Produced by :func:`repro.analysis.replay.replay`; serialized by
    :func:`repro.io.save_run_diff`; rendered by
    :func:`repro.obs.export.run_diff_markdown` and consumed by
    ``repro explain --counterfactual``.
    """

    #: round the fork branched at (rounds < fork_round are shared history).
    fork_round: int
    #: overrides applied to the fork, by name (empty = identity fork).
    overrides: dict[str, str] = field(default_factory=dict)
    base_scheduler: str = ""
    fork_scheduler: str = ""
    base_rounds: int = 0
    fork_rounds: int = 0
    #: strict equivalence-oracle mismatches (the PR 5 resume-equivalence
    #: diff, wall-clock metrics excluded).  Empty = bit-identical futures.
    mismatches: list[str] = field(default_factory=list)
    divergence: DivergencePoint | None = None
    round_deltas: list[RoundDelta] = field(default_factory=list)
    metrics: list[MetricDelta] = field(default_factory=list)
    #: per-job outcome deltas: job id -> {base_jct, fork_jct,
    #: base_queue_wait, fork_queue_wait} in seconds (None = job missing on
    #: that side, e.g. admitted in only one future).
    job_deltas: dict[str, dict[str, float | None]] = field(
        default_factory=dict)

    @property
    def identical(self) -> bool:
        """True when the fork reproduced the base run bit-identically
        (modulo wall-clock telemetry) — the zero-override guarantee."""
        return not self.mismatches

    def metric(self, name: str) -> MetricDelta | None:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def job_changes(self, job_id: str) -> dict[int, AllocDelta]:
        """round index -> this job's cross-run allocation delta (rounds the
        two futures agree on are absent) — the overlay ``repro explain
        --counterfactual`` paints onto the base timeline."""
        changes: dict[int, AllocDelta] = {}
        for rnd in self.round_deltas:
            for change in rnd.changes:
                if change.job_id == job_id:
                    changes[rnd.round_index] = change
        return changes

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "fork_round": self.fork_round,
            "overrides": dict(self.overrides),
            "base_scheduler": self.base_scheduler,
            "fork_scheduler": self.fork_scheduler,
            "base_rounds": self.base_rounds,
            "fork_rounds": self.fork_rounds,
            "identical": self.identical,
            "mismatches": list(self.mismatches),
            "round_deltas": [r.to_dict() for r in self.round_deltas],
            "metrics": [m.to_dict() for m in self.metrics],
            "job_deltas": {jid: dict(vals)
                           for jid, vals in self.job_deltas.items()},
        }
        if self.divergence is not None:
            data["divergence"] = self.divergence.to_dict()
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "RunDiff":
        divergence = data.get("divergence")
        return RunDiff(
            fork_round=data["fork_round"],
            overrides=dict(data.get("overrides", {})),
            base_scheduler=data.get("base_scheduler", ""),
            fork_scheduler=data.get("fork_scheduler", ""),
            base_rounds=data.get("base_rounds", 0),
            fork_rounds=data.get("fork_rounds", 0),
            mismatches=list(data.get("mismatches", [])),
            divergence=DivergencePoint.from_dict(divergence)
            if divergence else None,
            round_deltas=[RoundDelta.from_dict(r)
                          for r in data.get("round_deltas", [])],
            metrics=[MetricDelta.from_dict(m)
                     for m in data.get("metrics", [])],
            job_deltas={jid: dict(vals)
                        for jid, vals in
                        data.get("job_deltas", {}).items()})


# -- alignment -----------------------------------------------------------------

def _round_changes(base_rnd: Any, fork_rnd: Any,
                   ) -> tuple[AllocDelta, ...]:
    """Per-job allocation deltas between two aligned rounds."""
    changes = []
    for job_id in sorted(set(base_rnd.allocations)
                         | set(fork_rnd.allocations)):
        base = base_rnd.allocations.get(job_id)
        fork = fork_rnd.allocations.get(job_id)
        if base == fork:
            continue
        changes.append(AllocDelta(
            job_id=job_id, base=base, fork=fork,
            kind=_classify(job_id, base_rnd.time, base, fork)))
    return tuple(changes)


def _one_sided(rnd: Any, side: str, index: int) -> RoundDelta:
    """A round present in only one future: every allocation is a delta."""
    changes = []
    for job_id in sorted(rnd.allocations):
        alloc = rnd.allocations[job_id]
        if side == "base":
            changes.append(AllocDelta(job_id=job_id, base=alloc, fork=None,
                                      kind=_classify(job_id, rnd.time,
                                                     alloc, None)))
        else:
            changes.append(AllocDelta(job_id=job_id, base=None, fork=alloc,
                                      kind=_classify(job_id, rnd.time,
                                                     None, alloc)))
    return RoundDelta(round_index=index, time=rnd.time,
                      changes=changes and tuple(changes) or (),
                      only_in=side)


def _divergence_reason(base_rnd: Any, fork_rnd: Any,
                       changes: tuple[AllocDelta, ...]) -> str:
    """Why the first differing round differed, from what else changed."""
    base_faults = [(e.kind, e.target) for e in base_rnd.fault_events]
    fork_faults = [(e.kind, e.target) for e in fork_rnd.fault_events]
    if base_faults != fork_faults:
        return (f"fault draws differ (base: {base_faults or 'none'}, "
                f"fork: {fork_faults or 'none'})")
    if base_rnd.backend != fork_rnd.backend:
        return (f"plan backend differs "
                f"(base: {base_rnd.backend or 'none'}, "
                f"fork: {fork_rnd.backend or 'none'})")
    kinds = sorted({c.kind for c in changes if c.kind})
    return (f"scheduler chose different allocations for "
            f"{len(changes)} job(s)"
            + (f" ({', '.join(kinds)})" if kinds else ""))


def compare_runs(base: Any, fork: Any,
                 ) -> tuple[list[RoundDelta], DivergencePoint | None]:
    """Align two ``SimulationResult``-like futures round by round.

    Returns every differing round plus the divergence point (None when the
    allocation logs are identical).  Rounds past the shorter run count as
    one-sided deltas, so a fork that finishes earlier or later is fully
    accounted for.
    """
    deltas: list[RoundDelta] = []
    divergence: DivergencePoint | None = None
    common = min(len(base.rounds), len(fork.rounds))
    for index in range(common):
        base_rnd, fork_rnd = base.rounds[index], fork.rounds[index]
        changes = _round_changes(base_rnd, fork_rnd)
        if not changes:
            continue
        deltas.append(RoundDelta(round_index=index, time=base_rnd.time,
                                 changes=changes))
        if divergence is None:
            divergence = DivergencePoint(
                round_index=index, time=base_rnd.time,
                jobs=tuple(c.job_id for c in changes),
                reason=_divergence_reason(base_rnd, fork_rnd, changes))
    for index in range(common, len(base.rounds)):
        deltas.append(_one_sided(base.rounds[index], "base", index))
    for index in range(common, len(fork.rounds)):
        deltas.append(_one_sided(fork.rounds[index], "fork", index))
    if divergence is None and len(base.rounds) != len(fork.rounds):
        side = base if len(base.rounds) > len(fork.rounds) else fork
        rnd = side.rounds[common]
        divergence = DivergencePoint(
            round_index=common, time=rnd.time,
            jobs=tuple(sorted(rnd.allocations)),
            reason=(f"futures end at different rounds "
                    f"(base: {len(base.rounds)}, fork: "
                    f"{len(fork.rounds)})"))
    return deltas, divergence


def aligned_ledger_deltas(base: GoodputLedger, fork: GoodputLedger,
                          ) -> list[tuple[int, float, float]]:
    """Per-round realized-goodput sums of two ledgers on a shared round
    axis: ``(round_index, base_sum, fork_sum)`` for every round either
    ledger covers (0.0 where one side has no entries)."""
    axis = sorted(set(base.rounds()) | set(fork.rounds()))
    out = []
    for index in axis:
        base_sum = sum(e.realized_goodput or 0.0
                       for e in base.for_round(index))
        fork_sum = sum(e.realized_goodput or 0.0
                       for e in fork.for_round(index))
        out.append((index, base_sum, fork_sum))
    return out


def fault_recovery_seconds(events: Iterable[audit.AllocationEvent]) -> float:
    """Total seconds jobs spent between losing resources to a fault and
    getting them back (summed over all fault-caused outages in an event
    stream).  Same-round crash-and-restart events contribute zero."""
    lost_at: dict[str, float] = {}
    total = 0.0
    for event in events:
        if event.kind == audit.PREEMPT and event.cause == audit.CAUSE_FAULT:
            lost_at.setdefault(event.job_id, event.time)
        elif event.kind == audit.RESTART_AFTER_FAULT:
            start = lost_at.pop(event.job_id, None)
            if start is not None:
                total += max(0.0, event.time - start)
    return total

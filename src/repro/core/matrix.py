"""Normalized goodput matrix and utility shaping (Section 3.4).

Pipeline, per scheduling round:

1. raw goodput matrix ``G`` — one row per job, one column per configuration,
   from each job's Goodput Estimator (nan where infeasible);
2. row normalization — ``G_ij <- N_i_min * G_ij / min_j G_ij`` makes rows
   comparable across jobs (the row minimum becomes the job's minimum GPU
   count, so every feasible entry is a unitless multiple of the job's worst
   option);
3. restart factor (Equation 3) — entries whose configuration differs from
   the job's current one are discounted by the job's historical useful-time
   fraction;
4. fairness power ``p`` — entries are raised to ``p``; for ``p < 0`` the
   objective flips to minimization, which we encode by negating utilities so
   the ILP always maximizes.

The allocation incentive ``lambda`` is folded into each pair's utility (an
allocated job always gains ``lambda`` over staying queued).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import Configuration


def build_goodput_matrix(goodputs: list[dict[int, float]],
                         n_configs: int) -> np.ndarray:
    """Assemble the raw matrix from per-job ``{config_index: goodput}`` maps.

    Entries absent from a job's map, or with non-positive goodput, are
    marked infeasible (nan).
    """
    matrix = np.full((len(goodputs), n_configs), math.nan)
    for i, row in enumerate(goodputs):
        for j, value in row.items():
            if not 0 <= j < n_configs:
                raise IndexError(f"config index {j} out of range")
            if value > 0 and math.isfinite(value):
                matrix[i, j] = value
    return matrix


def normalize_rows(matrix: np.ndarray, min_gpus: list[int]) -> np.ndarray:
    """Row-min normalization: ``G_ij <- N_i_min * G_ij / min_j G_ij``."""
    if matrix.shape[0] != len(min_gpus):
        raise ValueError("min_gpus length must match the number of rows")
    out = matrix.copy()
    for i in range(out.shape[0]):
        row = out[i]
        finite = row[~np.isnan(row)]
        if finite.size == 0:
            continue
        row_min = float(finite.min())
        if row_min <= 0:
            raise ValueError(f"row {i} has non-positive goodput {row_min}")
        out[i] = min_gpus[i] * row / row_min
    return out


def restart_factor(age: float, num_restarts: int, restart_cost: float) -> float:
    """Equation (3): the job's projected useful-time fraction after one more
    restart, clamped to [0, 1].

    ``age`` is seconds since the job first started running, ``num_restarts``
    how many times it restarted before, ``restart_cost`` the GPU-seconds one
    checkpoint-restore wastes.  Young jobs and restart-heavy jobs get small
    factors, making configuration changes unattractive for them.
    """
    if age < 0 or num_restarts < 0 or restart_cost < 0:
        raise ValueError("restart-factor inputs must be non-negative")
    if age == 0 and restart_cost == 0:
        return 1.0
    useful = max(0.0, age - num_restarts * restart_cost)
    factor = useful / (age + restart_cost)
    return min(1.0, max(0.0, factor))


def apply_restart_discount(matrix: np.ndarray,
                           current_config_index: list[int | None],
                           factors: list[float]) -> np.ndarray:
    """Discount entries that would restart the job (config != current)."""
    n_rows = matrix.shape[0]
    if len(current_config_index) != n_rows or len(factors) != n_rows:
        raise ValueError("per-job inputs must match the number of rows")
    out = matrix.copy()
    for i in range(n_rows):
        current = current_config_index[i]
        if current is None:
            continue  # queued jobs start fresh; no restart is involved
        factor = factors[i]
        for j in range(out.shape[1]):
            if j != current and not math.isnan(out[i, j]):
                out[i, j] *= factor
    return out


def shape_utilities(matrix: np.ndarray, *, p: float,
                    allocation_incentive: float) -> np.ndarray:
    """Fairness power + allocation incentive -> final ILP utilities.

    For ``p > 0`` the utility of a pair is ``lambda + G^p`` (maximize).  For
    ``p < 0`` the paper minimizes ``sum G^p``; we negate so the ILP keeps
    maximizing: utility ``lambda - G^p``.  ``p == 0`` degenerates to "every
    feasible configuration is equally good" (utility ``lambda + 1``).
    """
    if allocation_incentive < 0:
        raise ValueError("allocation incentive must be non-negative")
    out = np.full_like(matrix, math.nan)
    feasible = ~np.isnan(matrix)
    values = matrix[feasible]
    if values.size and values.min() <= 0:
        # A zero restart factor can zero out entries; drop them (a restart
        # with no projected useful time is never worth taking).
        pass
    with np.errstate(divide="ignore", invalid="ignore"):
        if p > 0:
            shaped = allocation_incentive + np.power(values, p)
        elif p < 0:
            shaped = allocation_incentive - np.power(values, p)
        else:
            shaped = np.full_like(values, allocation_incentive + 1.0)
    shaped = np.where(np.isfinite(shaped), shaped, math.nan)
    out[feasible] = shaped
    return out


def config_index(configs: list[Configuration],
                 config: Configuration | None) -> int | None:
    """Index of ``config`` in the round's configuration list, if present."""
    if config is None:
        return None
    try:
        return configs.index(config)
    except ValueError:
        return None

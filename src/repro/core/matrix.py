"""Normalized goodput matrix and utility shaping (Section 3.4).

Pipeline, per scheduling round:

1. raw goodput matrix ``G`` — one row per job, one column per configuration,
   from each job's Goodput Estimator (nan where infeasible);
2. row normalization — ``G_ij <- N_i_min * G_ij / min_j G_ij`` makes rows
   comparable across jobs (the row minimum becomes the job's minimum GPU
   count, so every feasible entry is a unitless multiple of the job's worst
   option);
3. restart factor (Equation 3) — entries whose configuration differs from
   the job's current one are discounted by the job's historical useful-time
   fraction;
4. fairness power ``p`` — entries are raised to ``p``; for ``p < 0`` the
   objective flips to minimization, which we encode by negating utilities so
   the ILP always maximizes.

The allocation incentive ``lambda`` is folded into each pair's utility (an
allocated job always gains ``lambda`` over staying queued).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import Configuration


def build_goodput_matrix(goodputs: list[dict[int, float]],
                         n_configs: int) -> np.ndarray:
    """Assemble the raw matrix from per-job ``{config_index: goodput}`` maps.

    Entries absent from a job's map, or with non-positive goodput, are
    marked infeasible (nan).
    """
    matrix = np.full((len(goodputs), n_configs), math.nan)
    for i, row in enumerate(goodputs):
        if not row:
            continue
        idx = np.fromiter(row.keys(), dtype=np.int64, count=len(row))
        values = np.fromiter(row.values(), dtype=float, count=len(row))
        if idx.size and (idx.min() < 0 or idx.max() >= n_configs):
            bad = idx[(idx < 0) | (idx >= n_configs)][0]
            raise IndexError(f"config index {bad} out of range")
        keep = (values > 0) & np.isfinite(values)
        matrix[i, idx[keep]] = values[keep]
    return matrix


def normalize_rows(matrix: np.ndarray, min_gpus: list[int]) -> np.ndarray:
    """Row-min normalization: ``G_ij <- N_i_min * G_ij / min_j G_ij``."""
    if matrix.shape[0] != len(min_gpus):
        raise ValueError("min_gpus length must match the number of rows")
    if matrix.size == 0:
        return matrix.copy()
    # Row minima over feasible entries only; empty rows stay untouched.
    lifted = np.where(np.isnan(matrix), np.inf, matrix)
    row_min = lifted.min(axis=1)
    has_feasible = np.isfinite(row_min)
    if np.any(has_feasible & (row_min <= 0)):
        i = int(np.flatnonzero(has_feasible & (row_min <= 0))[0])
        raise ValueError(f"row {i} has non-positive goodput {row_min[i]}")
    scale_num = np.asarray(min_gpus, dtype=float)[:, None]
    divisor = np.where(has_feasible, row_min, 1.0)[:, None]
    # Same elementwise op order as the scalar loop: (min_gpus * G) / row_min.
    out = np.where(has_feasible[:, None],
                   scale_num * matrix / divisor, matrix)
    return out


def restart_factor(age: float, num_restarts: int, restart_cost: float) -> float:
    """Equation (3): the job's projected useful-time fraction after one more
    restart, clamped to [0, 1].

    ``age`` is seconds since the job first started running, ``num_restarts``
    how many times it restarted before, ``restart_cost`` the GPU-seconds one
    checkpoint-restore wastes.  Young jobs and restart-heavy jobs get small
    factors, making configuration changes unattractive for them.
    """
    if age < 0 or num_restarts < 0 or restart_cost < 0:
        raise ValueError("restart-factor inputs must be non-negative")
    if age == 0 and restart_cost == 0:
        return 1.0
    useful = max(0.0, age - num_restarts * restart_cost)
    factor = useful / (age + restart_cost)
    return min(1.0, max(0.0, factor))


def apply_restart_discount(matrix: np.ndarray,
                           current_config_index: list[int | None],
                           factors: list[float]) -> np.ndarray:
    """Discount entries that would restart the job (config != current)."""
    n_rows = matrix.shape[0]
    if len(current_config_index) != n_rows or len(factors) != n_rows:
        raise ValueError("per-job inputs must match the number of rows")
    out = matrix.copy()
    if out.size == 0:
        return out
    # Queued jobs (current is None) start fresh; no restart is involved.
    running = np.fromiter((c is not None for c in current_config_index),
                          dtype=bool, count=n_rows)
    current = np.fromiter((c if c is not None else -1
                           for c in current_config_index),
                          dtype=np.int64, count=n_rows)
    cols = np.arange(out.shape[1])
    mask = running[:, None] & (cols[None, :] != current[:, None])
    factor_col = np.asarray(factors, dtype=float)[:, None]
    out = np.where(mask, out * factor_col, out)
    return out


def apply_health_discount(matrix: np.ndarray, config_types: list[str],
                          discounts: dict[str, float]) -> np.ndarray:
    """Discount goodputs on GPU types with probation nodes (gray defense).

    ``discounts`` maps gpu_type -> factor in (0, 1] from
    :meth:`repro.core.health.HealthTracker.type_discounts`; absent types
    keep 1.0.  Applied to the *goodput-domain* matrix before
    :func:`shape_utilities`: shaving ``G`` by ``d < 1`` reduces a column's
    attractiveness under both signs of the fairness power, whereas scaling
    shaped utilities would invert the incentive for ``p < 0`` (where
    utility is ``lambda - G^p`` and can be negative).  Returns ``matrix``
    unchanged (same object) when no discount applies.
    """
    if matrix.size and matrix.shape[1] != len(config_types):
        raise ValueError("config_types must match the number of columns")
    if not discounts:
        return matrix
    for gpu_type, factor in discounts.items():
        if not 0 < factor <= 1:
            raise ValueError(f"discount for {gpu_type!r} must be in (0, 1], "
                             f"got {factor}")
    column = np.array([discounts.get(t, 1.0) for t in config_types])
    if matrix.size == 0 or np.all(column == 1.0):
        return matrix
    return matrix * column[None, :]


def shape_utilities(matrix: np.ndarray, *, p: float,
                    allocation_incentive: float) -> np.ndarray:
    """Fairness power + allocation incentive -> final ILP utilities.

    For ``p > 0`` the utility of a pair is ``lambda + G^p`` (maximize).  For
    ``p < 0`` the paper minimizes ``sum G^p``; we negate so the ILP keeps
    maximizing: utility ``lambda - G^p``.  ``p == 0`` degenerates to "every
    feasible configuration is equally good" (utility ``lambda + 1``).
    """
    if allocation_incentive < 0:
        raise ValueError("allocation incentive must be non-negative")
    out = np.full_like(matrix, math.nan)
    feasible = ~np.isnan(matrix)
    values = matrix[feasible]
    # A zero restart factor can zero out entries; drop them before powering
    # (a restart with no projected useful time is never worth taking, and
    # 0^p explodes for p < 0).
    values = np.where(values > 0, values, math.nan)
    with np.errstate(divide="ignore", invalid="ignore"):
        if p > 0:
            shaped = allocation_incentive + np.power(values, p)
        elif p < 0:
            shaped = allocation_incentive - np.power(values, p)
        else:
            shaped = np.where(np.isnan(values), math.nan,
                              allocation_incentive + 1.0)
    shaped = np.where(np.isfinite(shaped), shaped, math.nan)
    out[feasible] = shaped
    return out


def config_index_map(configs: list[Configuration]) -> dict[Configuration, int]:
    """One ``{Configuration: index}`` lookup table for a round's config list.

    Built once per round and shared by every per-job lookup; replaces the
    O(n_configs) ``list.index`` scans the policy used to issue per job.
    """
    return {config: j for j, config in enumerate(configs)}


def config_index(configs: list[Configuration],
                 config: Configuration | None,
                 index_map: dict[Configuration, int] | None = None) -> int | None:
    """Index of ``config`` in the round's configuration list, if present."""
    if config is None:
        return None
    if index_map is not None:
        return index_map.get(config)
    try:
        return configs.index(config)
    except ValueError:
        return None


def warm_start_pairs(job_ids: list[str], previous: dict,
                     config_pos: dict[Configuration, int],
                     ) -> dict[int, int]:
    """Translate last round's allocations into this round's ILP warm start.

    Row/column indices are positional and shift every round as jobs arrive
    and finish and the configuration set changes, so an
    ``AssignmentSolution`` cannot be reused directly; the stable join keys
    are the job id and the :class:`Configuration` value.  Returns
    ``{row: col}`` for each job in ``job_ids`` whose previous allocation's
    configuration still exists in this round's set — feasibility against
    this round's utilities is the solver's problem
    (:func:`repro.core.ilp._clean_warm_start`).
    """
    warm: dict[int, int] = {}
    for i, job_id in enumerate(job_ids):
        alloc = previous.get(job_id)
        if alloc is None:
            continue
        col = config_pos.get(alloc.configuration())
        if col is not None:
            warm[i] = col
    return warm

"""Sia's core: configuration sets, goodput matrix, ILP, restart factor,
bootstrapping, policy and placement."""

from repro.core.bootstrap import (bootstrap_ratio, bootstrap_throughput,
                                  pick_reference_type)
from repro.core.configs import (build_config_set, feasible_for_job,
                                multi_node_configs, powers_of_two_up_to,
                                single_node_configs)
from repro.core.health import (HealthConfig, HealthEvent, HealthTracker,
                               NodeHealth, deterministic_jitter,
                               placement_backoff)
from repro.core.ilp import (AssignmentProblem, AssignmentSolution,
                            solve_assignment)
from repro.core.matrix import (apply_health_discount, apply_restart_discount,
                               build_goodput_matrix, config_index,
                               normalize_rows, restart_factor,
                               shape_utilities)
from repro.core.placement import Placer, PlacementResult
from repro.core.policy import SiaPolicy, SiaPolicyParams
from repro.core.types import (AdaptivityMode, Allocation, BatchScale,
                              Configuration, JobStatus, PolicyDecision,
                              ProfilingMode)

__all__ = [
    "bootstrap_ratio", "bootstrap_throughput", "pick_reference_type",
    "build_config_set", "feasible_for_job", "multi_node_configs",
    "powers_of_two_up_to", "single_node_configs",
    "AssignmentProblem", "AssignmentSolution", "solve_assignment",
    "apply_health_discount", "apply_restart_discount",
    "build_goodput_matrix", "config_index",
    "normalize_rows", "restart_factor", "shape_utilities",
    "HealthConfig", "HealthEvent", "HealthTracker", "NodeHealth",
    "deterministic_jitter", "placement_backoff",
    "Placer", "PlacementResult",
    "SiaPolicy", "SiaPolicyParams",
    "AdaptivityMode", "Allocation", "BatchScale", "Configuration",
    "JobStatus", "PolicyDecision", "ProfilingMode",
]

"""Core value types shared across the Sia reproduction.

The vocabulary here follows Section 3 of the paper:

* A *configuration* is a bundle of resources ``(n, r, t)``: ``n`` nodes
  containing a total of ``r`` GPUs of type ``t`` (Section 3.3).
* An *allocation* binds a configuration to concrete nodes of the cluster.
* Jobs have an *adaptivity mode*: fully adaptive (batch size, GPU count and
  type), strong-scaling (fixed batch size), or rigid (fixed batch size and
  GPU count; only the GPU type may be optimized) — Section 3.4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AdaptivityMode(enum.Enum):
    """How much of a job's execution the scheduler may adapt (Section 3.4)."""

    #: Batch size, GPU count and GPU type may all be optimized.
    ADAPTIVE = "adaptive"
    #: Batch size is fixed by the submitter; GPU count/type may be optimized.
    STRONG_SCALING = "strong_scaling"
    #: Batch size and GPU count are fixed; only the GPU type may be optimized.
    RIGID = "rigid"


class ProfilingMode(enum.Enum):
    """How throughput models are seeded for new jobs (Section 5.7)."""

    #: Scheduler knows the true throughput of every possible allocation.
    ORACLE = "oracle"
    #: No initial profiling; models are learned purely as the job runs.
    NO_PROF = "no_prof"
    #: Paper default: profile one minimum-sized allocation per GPU type and
    #: bootstrap cross-type estimates with Equation (1).
    BOOTSTRAP = "bootstrap"


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    RESTARTING = "restarting"
    COMPLETED = "completed"


@dataclass(frozen=True, order=True)
class Configuration:
    """A resource bundle ``(n, r, t)``: ``num_gpus`` GPUs of ``gpu_type``
    spread over ``num_nodes`` nodes (Section 3.3).

    For single-node configurations ``num_nodes == 1`` and ``num_gpus`` is a
    power of two at most the node size.  Multi-node configurations use whole
    nodes, so ``num_gpus`` is ``num_nodes`` times the node size.
    """

    num_nodes: int
    num_gpus: int
    gpu_type: str

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.num_gpus < self.num_nodes:
            raise ValueError(
                f"num_gpus ({self.num_gpus}) must be >= num_nodes ({self.num_nodes})"
            )

    @property
    def gpus_per_node(self) -> float:
        return self.num_gpus / self.num_nodes

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"({self.num_nodes}, {self.num_gpus}, {self.gpu_type})"


@dataclass(frozen=True)
class Allocation:
    """A configuration bound to concrete cluster nodes.

    ``gpus_per_node`` maps node id -> number of GPUs used on that node.  All
    nodes in one allocation have the same GPU type (Sia never mixes types
    within a job).
    """

    gpu_type: str
    gpus_per_node: tuple[tuple[int, int], ...]  # ((node_id, n_gpus), ...)

    @property
    def num_gpus(self) -> int:
        return sum(n for _, n in self.gpus_per_node)

    @property
    def num_nodes(self) -> int:
        return len(self.gpus_per_node)

    @property
    def node_ids(self) -> tuple[int, ...]:
        return tuple(node_id for node_id, _ in self.gpus_per_node)

    def configuration(self) -> Configuration:
        return Configuration(self.num_nodes, self.num_gpus, self.gpu_type)

    @staticmethod
    def build(gpu_type: str, gpus_per_node: dict[int, int]) -> "Allocation":
        """Construct an allocation from a ``{node_id: gpu_count}`` mapping."""
        if not gpus_per_node:
            raise ValueError("allocation must use at least one node")
        if any(count <= 0 for count in gpus_per_node.values()):
            raise ValueError("per-node GPU counts must be positive")
        items = tuple(sorted(gpus_per_node.items()))
        return Allocation(gpu_type=gpu_type, gpus_per_node=items)


@dataclass
class BatchScale:
    """The batch-size decision for one allocation.

    ``total_batch_size = num_replicas * local_bsz * accum_steps`` where
    ``accum_steps`` counts gradient-accumulation sub-steps per iteration
    (>= 1; 1 means no accumulation).
    """

    local_bsz: int
    accum_steps: int = 1

    def total(self, num_replicas: int) -> int:
        return num_replicas * self.local_bsz * self.accum_steps


@dataclass
class PolicyDecision:
    """Output of a scheduling policy for one round."""

    #: job id -> configuration chosen (jobs absent receive no resources).
    assignments: dict[str, Configuration] = field(default_factory=dict)
    #: wall-clock seconds the policy optimization took (for Figure 9).
    solve_time: float = 0.0
    #: objective value reached by the solver, if applicable.
    objective: float | None = None
    #: solver backend that produced the decision ('' when not reported).
    backend: str = ""
    #: True when the decision came from a degraded mode (solver fallback).
    degraded: bool = False
    #: job id -> the goodput estimate the policy optimized for the chosen
    #: configuration (feeds the goodput ledger; absent for unassigned jobs).
    estimates: dict[str, float] = field(default_factory=dict)

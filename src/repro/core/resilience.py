"""Resilient policy layer: solver fallback chain + scheduler guard.

Figure 9 shows policy solve time growing with cluster scale, and a
production round-based scheduler must produce *some* feasible decision
every round (Gavel, Pollux make the same argument).  This module adds two
degradation layers:

* :class:`ResilientSolver` wraps :func:`repro.core.ilp.solve_assignment`
  with a per-round wall-clock budget, a fallback chain
  (``primary -> lp_round -> greedy -> carry`` by default, configurable via
  :attr:`ResilienceConfig.fallback_chain`), and a circuit breaker that
  skips the primary for a cooldown after repeated timeouts/failures.
  ``SiaPolicyParams`` accepts a :class:`ResilienceConfig` to route its ILP
  through one.  The LP-rounding tier sits ahead of greedy because it
  shares the MILP's constraint system at a fraction of the cost — a
  budget-blown MILP usually still affords one LP solve.
* :class:`ResilientScheduler` wraps any scheduler: exceptions and invalid
  :class:`~repro.schedulers.base.RoundPlan`\\ s are caught and replaced by
  :func:`carry_forward_plan` — the previous round's still-feasible
  allocations intersected with the surviving cluster — so one bad round
  never kills a run.  The simulator applies the same guard when
  ``SimulatorConfig.resilient`` is set.

Both layers report what they did through ``RoundPlan.backend`` /
``RoundPlan.degraded``, which the simulator records per round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core import ilp
from repro.core.health import HealthTracker, deterministic_jitter
from repro.core.ilp import AssignmentProblem, AssignmentSolution
from repro.core.types import Allocation
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.schedulers.base import JobView, RoundPlan, Scheduler


class SolverExhaustedError(RuntimeError):
    """Every backend in the fallback chain failed for this round."""


@dataclass
class ResilienceConfig:
    """Degradation knobs shared by the solver and scheduler wrappers."""

    #: wall-clock seconds the primary solver may spend per round; also
    #: passed to HiGHS as its time limit so the MILP stops at the budget.
    solve_budget_s: float = 5.0
    #: consecutive primary-solver failures/timeouts that open the breaker.
    breaker_threshold: int = 3
    #: rounds the breaker stays open (primary solver skipped) once tripped.
    breaker_cooldown_rounds: int = 10
    #: retry a failed/overrun primary attempt once with a relaxed budget
    #: before degrading to greedy (skipped when the primary *is* greedy —
    #: a relaxed time budget only means something to the budgeted MILP).
    retry_primary: bool = True
    #: relaxed-budget multiplier for the retry attempt.
    retry_budget_factor: float = 2.0
    #: deterministic jitter amplitude (fraction) on the relaxed budget.
    retry_jitter: float = 0.25
    #: backends tried, in order, after the primary fails — the fast tiers
    #: between the primary solver and carry-forward.  Entries equal to the
    #: primary are skipped; every non-final tier runs under the round
    #: budget, the final tier runs unbudgeted (it must produce *something*).
    #: ``("greedy",)`` restores the pre-tier chain.
    fallback_chain: tuple[str, ...] = ("lp_round", "greedy")

    def __post_init__(self) -> None:
        if self.solve_budget_s <= 0:
            raise ValueError("solve_budget_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_rounds < 1:
            raise ValueError("breaker_cooldown_rounds must be >= 1")
        if self.retry_budget_factor < 1:
            raise ValueError("retry_budget_factor must be >= 1")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")
        self.fallback_chain = tuple(self.fallback_chain)
        for backend in self.fallback_chain:
            if backend not in ilp.BACKENDS:
                raise ValueError(f"unknown fallback backend {backend!r}; "
                                 f"choose from {ilp.BACKENDS}")


class ResilientSolver:
    """Budgeted, circuit-broken wrapper around ``solve_assignment``.

    :meth:`solve` never raises on solver trouble: it degrades through the
    chain primary -> ``config.fallback_chain`` (default
    ``lp_round -> greedy``) and returns ``(solution, backend, degraded)``.
    Only when *every* backend fails does it raise
    :class:`SolverExhaustedError`, signalling the caller to carry forward.
    """

    #: observability tracer; emits one ``solve_attempt`` span per backend
    #: tried, annotated with its outcome (ok / timeout / error).
    tracer: Tracer = NULL_TRACER
    #: shared metrics registry (injected by the owning policy/scheduler);
    #: mirrors :attr:`stats` into ``resilience.*`` counters so breaker trips
    #: and per-backend rounds reach round snapshots and saved results.
    metrics: MetricsRegistry | None = None

    def __init__(self, config: ResilienceConfig | None = None):
        self.config = config or ResilienceConfig()
        self._consecutive_failures = 0
        self._breaker_open_rounds = 0
        #: backend name -> rounds served by it (plus breaker trip count).
        self.stats: dict[str, int] = {"breaker_trips": 0}
        #: "<backend>.<outcome>" -> attempt count (ok / timeout / error),
        #: mirrored into ``resilience.attempt.*`` counters so per-attempt
        #: outcomes persist through saved results.
        self.attempt_outcomes: dict[str, int] = {}
        #: lifetime relaxed-budget retries; also the jitter token, so the
        #: retry budget varies deterministically without RNG state.
        self.retries = 0

    @property
    def breaker_open(self) -> bool:
        return self._breaker_open_rounds > 0

    def _count(self, backend: str) -> None:
        self.stats[backend] = self.stats.get(backend, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(f"resilience.backend.{backend}").inc()

    def _record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.breaker_threshold:
            self._breaker_open_rounds = self.config.breaker_cooldown_rounds
            self.stats["breaker_trips"] += 1
            if self.metrics is not None:
                self.metrics.counter("resilience.breaker_trips").inc()
            self._consecutive_failures = 0

    def _record_attempt(self, backend: str, outcome: str) -> None:
        key = f"{backend}.{outcome}"
        self.attempt_outcomes[key] = self.attempt_outcomes.get(key, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(f"resilience.attempt.{key}").inc()

    def _attempt(self, problem: AssignmentProblem, backend: str,
                 budget: float, *, retry: bool = False,
                 warm_start: dict[int, int] | None = None,
                 reuse_tolerance: float | None = None,
                 ) -> tuple[AssignmentSolution | None, str]:
        """One budgeted attempt; returns (solution-or-None, outcome)."""
        attrs = {"backend": backend}
        if retry:
            attrs["retry"] = True
        with self.tracer.span("solve_attempt", **attrs) as attempt:
            try:
                start = time.perf_counter()
                solution = ilp.solve_assignment(problem, backend=backend,
                                                time_limit=budget,
                                                tracer=self.tracer,
                                                warm_start=warm_start,
                                                reuse_tolerance=reuse_tolerance)
                elapsed = time.perf_counter() - start
                if elapsed > budget:
                    attempt.annotate(outcome="timeout")
                    self._record_attempt(backend, "timeout")
                    return solution, "timeout"
                attempt.annotate(outcome="ok")
                self._record_attempt(backend, "ok")
                return solution, "ok"
            except Exception:
                attempt.annotate(outcome="error")
                self._record_attempt(backend, "error")
                return None, "error"

    def solve(self, problem: AssignmentProblem, primary: str = "milp",
              warm_start: dict[int, int] | None = None,
              reuse_tolerance: float | None = None,
              ) -> tuple[AssignmentSolution, str, bool]:
        """Solve with fallback; returns (solution, backend_used, degraded).

        ``warm_start``/``reuse_tolerance`` are forwarded to every backend
        attempt (see :func:`repro.core.ilp.solve_assignment`); the returned
        backend name is the solution's concrete backend when it differs
        from the tier tried (``tiered`` resolution, ``reuse`` skips).
        """
        budget = self.config.solve_budget_s
        if self._breaker_open_rounds > 0:
            self._breaker_open_rounds -= 1
            self.tracer.instant("breaker_skip", backend=primary,
                                rounds_left=self._breaker_open_rounds)
        else:
            solution, outcome = self._attempt(
                problem, primary, budget,
                warm_start=warm_start, reuse_tolerance=reuse_tolerance)
            if outcome == "ok":
                self._consecutive_failures = 0
                name = solution.backend or primary
                self._count(name)
                return solution, name, False
            if self.config.retry_primary and primary != "greedy":
                # Many MILP timeouts are borderline; one retry with a
                # slightly longer leash often beats dropping straight to
                # greedy quality.  The budget is a solver knob (not a
                # sleep), and its jitter is hash-derived so resumes replay
                # identical budgets.  At most one breaker failure is
                # recorded per solve() call either way.
                self.retries += 1
                relaxed = budget * self.config.retry_budget_factor * (
                    1.0 + deterministic_jitter(f"solver-retry:{self.retries}",
                                               self.config.retry_jitter))
                self.tracer.instant("solve_retry", backend=primary,
                                    budget=round(relaxed, 3))
                if self.metrics is not None:
                    self.metrics.counter("resilience.primary_retries").inc()
                retry_solution, retry_outcome = self._attempt(
                    problem, primary, relaxed, retry=True,
                    warm_start=warm_start, reuse_tolerance=reuse_tolerance)
                if retry_outcome == "ok":
                    self._consecutive_failures = 0
                    name = retry_solution.backend or primary
                    self._count(name)
                    return retry_solution, name, True
                if retry_outcome == "timeout":
                    solution, outcome = retry_solution, retry_outcome
            if outcome == "timeout":
                # Budget overrun (and the retry, if any, overran too):
                # keep the (possibly incumbent) answer but count one
                # failure toward the breaker and mark the round.
                self._record_failure()
                self._count(primary)
                return solution, primary, True
            self._record_failure()
        # Fallback tiers: each non-final tier runs under the round budget
        # (an overrun there still yields a usable rounding), the final tier
        # runs unbudgeted.  No reuse check on fallbacks — the primary
        # already priced it if asked.
        chain = [b for b in self.config.fallback_chain if b != primary]
        for pos, backend in enumerate(chain):
            fallback_budget = float("inf") if pos == len(chain) - 1 \
                else budget
            solution, outcome = self._attempt(problem, backend,
                                              fallback_budget,
                                              warm_start=warm_start)
            if solution is not None and outcome in ("ok", "timeout"):
                name = solution.backend or backend
                self._count(name)
                return solution, name, True
        self._count("exhausted")
        raise SolverExhaustedError(
            f"all solver backends failed (primary={primary!r}, "
            f"chain={chain!r}); caller should carry forward the previous "
            "round")


def carry_forward_plan(previous: dict[str, Allocation], cluster: Cluster,
                       views: list[JobView]) -> RoundPlan:
    """Last-resort plan: keep the previous round's allocations that are
    still feasible on the (possibly shrunken) cluster.

    An allocation survives only if the job is still active and every node
    it touches exists, has the right GPU type, and is not over-subscribed
    once earlier survivors are counted.  The result always passes
    ``RoundPlan.validate``.
    """
    nodes = {n.node_id: n for n in cluster.nodes}
    active_ids = {v.job_id for v in views}
    used: dict[int, int] = {}
    allocations: dict[str, Allocation] = {}
    for job_id in sorted(previous):
        alloc = previous[job_id]
        if job_id not in active_ids or alloc is None:
            continue
        feasible = True
        for node_id, count in alloc.gpus_per_node:
            node = nodes.get(node_id)
            if node is None or node.gpu_type != alloc.gpu_type \
                    or used.get(node_id, 0) + count > node.num_gpus:
                feasible = False
                break
        if not feasible:
            continue
        for node_id, count in alloc.gpus_per_node:
            used[node_id] = used.get(node_id, 0) + count
        allocations[job_id] = alloc
    return RoundPlan(allocations=allocations, solve_time=0.0,
                     backend="carry", degraded=True)


class ResilientScheduler(Scheduler):
    """Wraps any scheduler so a bad round degrades instead of crashing.

    ``decide`` runs the inner scheduler and validates its plan; any
    exception (solver blow-up, placement bug, invalid plan) is caught and
    replaced with :func:`carry_forward_plan`.  Estimator construction and
    round cadence delegate to the inner scheduler.
    """

    #: optional :class:`~repro.core.health.HealthTracker`.  When attached
    #: (the engine does this when ``SimulatorConfig.health`` is set),
    #: quarantined/drained nodes are filtered out of the cluster view the
    #: inner scheduler sees, and probation-node goodput discounts are
    #: forwarded through :attr:`health_discounts`.
    health: HealthTracker | None = None

    def __init__(self, inner: Scheduler,
                 config: ResilienceConfig | None = None):
        self.inner = inner
        self.config = config or ResilienceConfig()
        self.name = f"resilient-{inner.name}"
        self.round_duration = inner.round_duration
        self.oracle_estimators = inner.oracle_estimators
        #: rounds rescued by carry-forward after an inner failure.
        self.caught_failures = 0
        #: most recent inner exception, for postmortems.
        self.last_error: Exception | None = None

    def make_estimator(self, job, cluster, profiling_mode) -> object:
        return self.inner.make_estimator(job, cluster, profiling_mode)

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        self.inner.tracer = self.tracer
        self.inner.metrics = self.metrics
        if self.health is not None:
            cluster = self.health.healthy_view(cluster)
            self.health_discounts = \
                self.health.type_discounts(cluster) or None
        self.inner.health_discounts = self.health_discounts
        try:
            plan = self.inner.decide(views, cluster, previous, now)
            plan.validate(cluster)
            return plan
        except Exception as exc:
            self.caught_failures += 1
            self.last_error = exc
            if self.metrics is not None:
                self.metrics.counter("resilience.caught_failures").inc()
            with self.tracer.span("carry_forward", scheduler=self.inner.name,
                                  error=type(exc).__name__):
                return carry_forward_plan(previous, cluster, views)

    def describe(self) -> str:
        return f"{self.name} (round={self.round_duration:.0f}s, guarded)"

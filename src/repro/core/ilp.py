"""0/1 ILP solver for the Sia assignment problem (Section 3.4).

The problem: choose at most one configuration per job, maximizing the sum of
(job, configuration) utilities plus an allocation incentive ``lambda`` per
allocated job, subject to per-GPU-type capacity.  Equation (2)'s penalty
``lambda * (1 - ||A_i||_1)`` is, up to a constant, an extra ``lambda`` of
utility on every feasible pair, which is how we encode it.

Three interchangeable backends:

* ``milp``   — scipy's HiGHS mixed-integer solver (the default; stands in
  for the paper's CVXPY/GLPK_MI).
* ``greedy`` — utility-density greedy rounding (ablation baseline; fast but
  not optimal).
* ``exact``  — pure-Python branch-and-bound (reference implementation used
  by tests to certify MILP optimality on small instances, and fallback if
  scipy is unavailable).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer

try:  # scipy is an install dependency, but keep the pure-Python path alive.
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import csr_array
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False


@dataclass
class AssignmentProblem:
    """One round's assignment instance.

    ``utilities[i][j]`` is the value of giving job ``i`` configuration ``j``
    (allocation incentive included); ``math.nan`` marks infeasible pairs.
    ``config_gpus[j]``/``config_types[j]`` give each configuration's GPU
    demand and type; ``capacities`` bounds total GPUs per type.  ``forced``
    pins jobs (non-preemptive jobs / reservations) to a configuration index.
    """

    utilities: np.ndarray
    config_gpus: np.ndarray
    config_types: list[str]
    capacities: dict[str, int]
    forced: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.utilities = np.asarray(self.utilities, dtype=float)
        self.config_gpus = np.asarray(self.config_gpus, dtype=int)
        n_jobs, n_configs = self.utilities.shape
        if len(self.config_gpus) != n_configs or len(self.config_types) != n_configs:
            raise ValueError("configuration arrays disagree on length")
        for row, col in self.forced.items():
            if not (0 <= row < n_jobs and 0 <= col < n_configs):
                raise ValueError(f"forced pair ({row}, {col}) out of range")
            if math.isnan(self.utilities[row, col]):
                raise ValueError(f"forced pair ({row}, {col}) is infeasible")

    @property
    def n_jobs(self) -> int:
        return self.utilities.shape[0]

    @property
    def n_configs(self) -> int:
        return self.utilities.shape[1]

    def feasible_pairs(self) -> list[tuple[int, int]]:
        rows, cols = np.where(~np.isnan(self.utilities))
        return list(zip(rows.tolist(), cols.tolist()))


@dataclass
class AssignmentSolution:
    """Chosen configuration per job (jobs absent receive nothing)."""

    assignment: dict[int, int]
    objective: float
    solve_time: float

    def gpus_used(self, problem: AssignmentProblem) -> dict[str, int]:
        used: dict[str, int] = {}
        for _, col in self.assignment.items():
            t = problem.config_types[col]
            used[t] = used.get(t, 0) + int(problem.config_gpus[col])
        return used


def solve_assignment(problem: AssignmentProblem, backend: str = "milp",
                     time_limit: float | None = None,
                     tracer: Tracer | None = None) -> AssignmentSolution:
    """Solve one assignment instance with the chosen backend.

    ``time_limit`` (seconds) is forwarded to the MILP backend as a solver
    time budget; a timed-out solve returns the best incumbent found, or
    raises if none exists.  Other backends ignore it.  ``tracer`` records
    an ``ilp_solve`` span around the backend call.
    """
    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span("ilp_solve", backend=backend, jobs=problem.n_jobs,
                     configs=problem.n_configs):
        start = time.perf_counter()
        if backend == "milp":
            if _HAVE_SCIPY:
                solution = _solve_milp(problem, time_limit=time_limit)
            else:  # pragma: no cover
                solution = _solve_exact(problem)
        elif backend == "greedy":
            solution = _solve_greedy(problem)
        elif backend == "exact":
            solution = _solve_exact(problem)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        solution.solve_time = time.perf_counter() - start
        _validate(problem, solution)
    return solution


def _validate(problem: AssignmentProblem, solution: AssignmentSolution) -> None:
    used = solution.gpus_used(problem)
    for gpu_type, count in used.items():
        cap = problem.capacities.get(gpu_type, 0)
        if count > cap:
            raise RuntimeError(
                f"solver over-allocated {gpu_type}: {count} > {cap}")
    for row, col in problem.forced.items():
        if solution.assignment.get(row) != col:
            raise RuntimeError(f"solver dropped forced assignment for job {row}")


# -- MILP backend (HiGHS via scipy) -----------------------------------------

def _solve_milp(problem: AssignmentProblem,
                time_limit: float | None = None) -> AssignmentSolution:
    """Sparse constraint assembly: one variable per feasible (job, config)
    pair; each constraint row touches only its own pairs, so the matrix has
    exactly ``2 * n_vars`` potential nonzeros regardless of problem size
    (the old dense assembly allocated ``n_rows * n_vars`` zeros)."""
    util = problem.utilities
    pair_jobs, pair_cols = np.nonzero(~np.isnan(util))  # row-major order
    n_vars = int(pair_jobs.size)
    if n_vars == 0:
        return AssignmentSolution({}, 0.0, 0.0)
    cost = -util[pair_jobs, pair_cols]

    # (a) each job picks at most one configuration.  ``np.unique`` returns
    # jobs ascending, which for row-major pairs matches first appearance.
    unique_jobs, job_row = np.unique(pair_jobs, return_inverse=True)
    n_job_rows = int(unique_jobs.size)

    # (b) per-GPU-type capacity, one row per type with >= 1 feasible pair,
    # in ``capacities`` iteration order.
    cap_types = list(problem.capacities)
    type_pos = {t: k for k, t in enumerate(cap_types)}
    config_type_pos = np.fromiter(
        (type_pos.get(t, -1) for t in problem.config_types),
        dtype=np.int64, count=len(problem.config_types))
    pair_type = config_type_pos[pair_cols]
    typed = np.flatnonzero(pair_type >= 0)
    hit_types = np.unique(pair_type[typed])  # sorted == capacities order
    type_row = np.full(len(cap_types), -1, dtype=np.int64)
    type_row[hit_types] = n_job_rows + np.arange(hit_types.size)

    entry_rows = np.concatenate([job_row, type_row[pair_type[typed]]])
    entry_cols = np.concatenate([np.arange(n_vars), typed])
    entry_vals = np.concatenate([
        np.ones(n_vars),
        problem.config_gpus[pair_cols[typed]].astype(float),
    ])
    n_rows = n_job_rows + int(hit_types.size)
    a_matrix = csr_array((entry_vals, (entry_rows, entry_cols)),
                         shape=(n_rows, n_vars))
    uppers = np.concatenate([
        np.ones(n_job_rows),
        np.array([float(problem.capacities[cap_types[k]])
                  for k in hit_types.tolist()]),
    ])

    lb = np.zeros(n_vars)
    ub = np.ones(n_vars)
    if problem.forced:
        pair_index = {(int(i), int(j)): idx for idx, (i, j)
                      in enumerate(zip(pair_jobs, pair_cols))}
        for row_job, col in problem.forced.items():
            lb[pair_index[(row_job, col)]] = 1.0

    constraints = LinearConstraint(a_matrix, -np.inf, uppers)
    options = {"time_limit": time_limit} if time_limit is not None else None
    result = milp(c=cost, constraints=constraints,
                  integrality=np.ones(n_vars),
                  bounds=Bounds(lb, ub), options=options)
    # status 0 = optimal; 1 = iteration/time limit reached, in which case
    # HiGHS may still hand back a feasible incumbent worth using.
    if result.status not in (0, 1) or result.x is None:
        raise RuntimeError(f"MILP failed: {result.message}")
    assignment: dict[int, int] = {}
    for idx in np.flatnonzero(result.x > 0.5):
        assignment[int(pair_jobs[idx])] = int(pair_cols[idx])
    objective = float(sum(problem.utilities[i, j]
                          for i, j in assignment.items()))
    return AssignmentSolution(assignment, objective, 0.0)


# -- greedy backend ----------------------------------------------------------

def _solve_greedy(problem: AssignmentProblem) -> AssignmentSolution:
    """Assign pairs in order of utility per GPU, honouring forced pairs."""
    remaining = dict(problem.capacities)
    assignment: dict[int, int] = {}

    def try_assign(i: int, j: int) -> bool:
        gpu_type = problem.config_types[j]
        need = int(problem.config_gpus[j])
        if remaining.get(gpu_type, 0) < need:
            return False
        remaining[gpu_type] -= need
        assignment[i] = j
        return True

    for i, j in problem.forced.items():
        if not try_assign(i, j):
            raise RuntimeError(f"cannot satisfy forced assignment ({i}, {j})")

    pairs = [(i, j) for i, j in problem.feasible_pairs()
             if i not in assignment]
    pairs.sort(key=lambda ij: (
        -problem.utilities[ij] / max(1, problem.config_gpus[ij[1]]),
        problem.config_gpus[ij[1]],
    ))
    for i, j in pairs:
        if i in assignment or problem.utilities[i, j] <= 0:
            continue
        try_assign(i, j)
    objective = float(sum(problem.utilities[i, j]
                          for i, j in assignment.items()))
    return AssignmentSolution(assignment, objective, 0.0)


# -- exact branch-and-bound backend ------------------------------------------

def _solve_exact(problem: AssignmentProblem) -> AssignmentSolution:
    """Depth-first branch-and-bound over jobs; exact but exponential.

    Intended for small instances (tests, tiny clusters).  Jobs are visited
    in order; the bound adds each remaining job's best feasible utility,
    ignoring capacity (admissible, hence never prunes the optimum).
    """
    n = problem.n_jobs
    options: list[list[tuple[float, int]]] = []
    for i in range(n):
        row = problem.utilities[i]
        feasible = [(float(row[j]), j) for j in range(problem.n_configs)
                    if not math.isnan(row[j])]
        feasible.sort(reverse=True)
        if i in problem.forced:
            feasible = [(u, j) for u, j in feasible if j == problem.forced[i]]
        options.append(feasible)
    best_tail = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        top = max((u for u, _ in options[i]), default=0.0)
        best_tail[i] = best_tail[i + 1] + max(0.0, top)

    best_obj = -math.inf
    best_assignment: dict[int, int] = {}

    def dfs(i: int, value: float, remaining: dict[str, int],
            chosen: dict[int, int]) -> None:
        nonlocal best_obj, best_assignment
        if value + best_tail[i] <= best_obj:
            return
        if i == n:
            if value > best_obj:
                best_obj = value
                best_assignment = dict(chosen)
            return
        # Option: skip this job (not allowed if forced).
        if i not in problem.forced:
            dfs(i + 1, value, remaining, chosen)
        for utility, j in options[i]:
            gpu_type = problem.config_types[j]
            need = int(problem.config_gpus[j])
            if remaining.get(gpu_type, 0) < need:
                continue
            remaining[gpu_type] -= need
            chosen[i] = j
            dfs(i + 1, value + utility, remaining, chosen)
            del chosen[i]
            remaining[gpu_type] += need

    dfs(0, 0.0, dict(problem.capacities), {})
    if not math.isfinite(best_obj):
        raise RuntimeError("exact solver found no feasible assignment")
    return AssignmentSolution(best_assignment, best_obj, 0.0)

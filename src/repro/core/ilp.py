"""0/1 ILP solver for the Sia assignment problem (Section 3.4).

The problem: choose at most one configuration per job, maximizing the sum of
(job, configuration) utilities plus an allocation incentive ``lambda`` per
allocated job, subject to per-GPU-type capacity.  Equation (2)'s penalty
``lambda * (1 - ||A_i||_1)`` is, up to a constant, an extra ``lambda`` of
utility on every feasible pair, which is how we encode it.

Interchangeable backends (:data:`BACKENDS`):

* ``milp``       — scipy's HiGHS mixed-integer solver (the default; stands
  in for the paper's CVXPY/GLPK_MI).
* ``lp_round``   — HiGHS LP relaxation + deterministic rounding (Gavel's
  trick: the relaxation is near-integral for this constraint shape, so
  rounding its support by goodput-per-GPU and repairing capacity greedily
  lands within a small optimality gap at a fraction of the MILP cost).
* ``decomposed`` — partition by GPU type (capacity rows never couple
  types), sub-partition oversized types by job cohort, solve partitions
  independently, stitch with a greedy repair pass over leftover capacity.
* ``tiered``     — pick one of the above by problem size (feasible-pair
  count): ``milp`` up to :data:`TIER_LP_VARS`, then ``lp_round`` up to
  :data:`TIER_DECOMPOSE_VARS`, then ``decomposed``.
* ``greedy``     — utility-density greedy rounding (ablation baseline and
  last-resort fallback; fast but not optimal).
* ``exact``      — pure-Python branch-and-bound (reference implementation
  used by tests to certify MILP optimality on small instances, and
  fallback if scipy is unavailable).

Warm starting: callers may pass last round's assignment (rows/cols already
mapped onto *this* problem's indices) as ``warm_start``.  scipy's ``milp``
exposes no incumbent API, so the MILP cannot consume it directly; instead
the warm start powers (a) the *reuse check* — when ``reuse_tolerance`` is
set and the previous assignment is still feasible and within that tolerance
of the fresh LP bound, the solve is skipped entirely — and (b) rounding
stability in ``lp_round``/``decomposed``, where warm pairs win ties so
allocations do not churn between equivalent optima.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer

try:  # scipy is an install dependency, but keep the pure-Python path alive.
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import csr_array
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

#: every backend :func:`solve_assignment` accepts, in quality order.
#: ``repro.core.fork`` re-exports this tuple so the replay CLI stays in
#: sync; add backends here, nowhere else.
BACKENDS = ("milp", "lp_round", "decomposed", "tiered", "greedy", "exact")

#: ``tiered`` thresholds, in feasible (job, config) pairs: up to
#: TIER_LP_VARS the exact MILP is affordable; past it the LP relaxation +
#: rounding takes over; past TIER_DECOMPOSE_VARS even one LP is worth
#: splitting by GPU type.
TIER_LP_VARS = 4096
TIER_DECOMPOSE_VARS = 32768

#: cohort split threshold: a per-GPU-type partition whose feasible-pair
#: count exceeds this is further split into job cohorts with proportional
#: capacity shares (the stitch pass re-pools whatever a cohort strands).
DECOMPOSE_MAX_PARTITION_VARS = 16384

#: solve per-GPU-type partitions on a thread pool.  Off by default: HiGHS
#: solves release the GIL, but partition problems are usually small enough
#: that pool overhead wins; the 4k-GPU bench flips this to measure both.
DECOMPOSE_PARALLEL = False

#: LP-support epsilon: rounding considers pairs the relaxation weighted
#: above this before falling back to the full feasible set.
_LP_EPS = 1e-9


@dataclass
class AssignmentProblem:
    """One round's assignment instance.

    ``utilities[i][j]`` is the value of giving job ``i`` configuration ``j``
    (allocation incentive included); ``math.nan`` marks infeasible pairs.
    ``config_gpus[j]``/``config_types[j]`` give each configuration's GPU
    demand and type; ``capacities`` bounds total GPUs per type.  ``forced``
    pins jobs (non-preemptive jobs / reservations) to a configuration index.
    """

    utilities: np.ndarray
    config_gpus: np.ndarray
    config_types: list[str]
    capacities: dict[str, int]
    forced: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.utilities = np.asarray(self.utilities, dtype=float)
        self.config_gpus = np.asarray(self.config_gpus, dtype=int)
        n_jobs, n_configs = self.utilities.shape
        if len(self.config_gpus) != n_configs or len(self.config_types) != n_configs:
            raise ValueError("configuration arrays disagree on length")
        for row, col in self.forced.items():
            if not (0 <= row < n_jobs and 0 <= col < n_configs):
                raise ValueError(f"forced pair ({row}, {col}) out of range")
            if math.isnan(self.utilities[row, col]):
                raise ValueError(f"forced pair ({row}, {col}) is infeasible")

    @property
    def n_jobs(self) -> int:
        return self.utilities.shape[0]

    @property
    def n_configs(self) -> int:
        return self.utilities.shape[1]

    @property
    def n_feasible_pairs(self) -> int:
        """Variable count of the (MI)LP — the tier-selection size measure."""
        return int(np.count_nonzero(~np.isnan(self.utilities)))

    def feasible_pairs(self) -> list[tuple[int, int]]:
        rows, cols = np.where(~np.isnan(self.utilities))
        return list(zip(rows.tolist(), cols.tolist()))


@dataclass
class AssignmentSolution:
    """Chosen configuration per job (jobs absent receive nothing)."""

    assignment: dict[int, int]
    objective: float
    solve_time: float
    #: concrete backend that produced the solution ('' for hand-built
    #: instances; 'reuse' marks a skipped solve serving the warm start).
    backend: str = ""
    #: LP-relaxation optimum, when a relaxation was solved on the way
    #: (lp_round, reuse check) — the certificate the optimality gap and
    #: the reuse tolerance are measured against.
    lp_bound: float | None = None
    #: the solve was skipped: the warm start passed the reuse check.
    reused: bool = False
    #: a warm start was threaded into the backend that produced this.
    warm_started: bool = False
    #: partitions solved when the backend decomposed the problem.
    partitions: int = 0

    def gpus_used(self, problem: AssignmentProblem) -> dict[str, int]:
        used: dict[str, int] = {}
        for _, col in self.assignment.items():
            t = problem.config_types[col]
            used[t] = used.get(t, 0) + int(problem.config_gpus[col])
        return used


def select_backend(problem: AssignmentProblem) -> str:
    """Resolve the ``tiered`` backend for one instance by variable count."""
    n_vars = problem.n_feasible_pairs
    if n_vars > TIER_DECOMPOSE_VARS:
        return "decomposed"
    if n_vars > TIER_LP_VARS:
        return "lp_round"
    return "milp"


def solve_assignment(problem: AssignmentProblem, backend: str = "milp",
                     time_limit: float | None = None,
                     tracer: Tracer | None = None,
                     warm_start: dict[int, int] | None = None,
                     reuse_tolerance: float | None = None,
                     ) -> AssignmentSolution:
    """Solve one assignment instance with the chosen backend.

    ``time_limit`` (seconds) is forwarded to the HiGHS backends as a solver
    time budget; a timed-out solve returns the best incumbent found, or
    raises if none exists.  Other backends ignore it.  ``tracer`` records
    an ``ilp_solve`` span around the backend call (annotated with the
    resolved backend when ``backend='tiered'``).

    ``warm_start`` maps job row -> config column of a previous assignment
    already translated onto this problem's indices; infeasible entries are
    dropped silently (jobs finish, configs change).  When
    ``reuse_tolerance`` is also given, a still-feasible warm start whose
    objective is within ``reuse_tolerance`` (relative) of the fresh LP
    bound is returned directly with ``reused=True`` — no solve happens.
    """
    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span("ilp_solve", backend=backend, jobs=problem.n_jobs,
                     configs=problem.n_configs) as span:
        start = time.perf_counter()
        resolved = backend
        if backend == "tiered":
            resolved = select_backend(problem)
            span.annotate(resolved=resolved)
        warm = _clean_warm_start(problem, warm_start)
        if warm is not None and reuse_tolerance is not None \
                and resolved not in ("exact",) and _HAVE_SCIPY:
            with tracer.span("reuse_check", pairs=len(warm)):
                solution = _try_reuse(problem, warm, reuse_tolerance,
                                      time_limit)
            if solution is not None:
                solution.solve_time = time.perf_counter() - start
                _validate(problem, solution)
                return solution
        if resolved == "milp":
            if _HAVE_SCIPY:
                solution = _solve_milp(problem, time_limit=time_limit)
            else:  # pragma: no cover
                solution = _solve_exact(problem)
        elif resolved == "lp_round":
            if _HAVE_SCIPY:
                solution = _solve_lp_round(problem, time_limit=time_limit,
                                           warm_start=warm)
            else:  # pragma: no cover
                solution = _solve_greedy(problem)
        elif resolved == "decomposed":
            solution = _solve_decomposed(problem, time_limit=time_limit,
                                         tracer=tracer, warm_start=warm)
        elif resolved == "greedy":
            solution = _solve_greedy(problem)
        elif resolved == "exact":
            solution = _solve_exact(problem)
        else:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        solution.backend = resolved
        solution.warm_started = warm is not None \
            and resolved in ("lp_round", "decomposed")
        solution.solve_time = time.perf_counter() - start
        _validate(problem, solution)
    return solution


def _validate(problem: AssignmentProblem, solution: AssignmentSolution) -> None:
    used = solution.gpus_used(problem)
    for gpu_type, count in used.items():
        cap = problem.capacities.get(gpu_type, 0)
        if count > cap:
            raise RuntimeError(
                f"solver over-allocated {gpu_type}: {count} > {cap}")
    for row, col in problem.forced.items():
        if solution.assignment.get(row) != col:
            raise RuntimeError(f"solver dropped forced assignment for job {row}")


# -- warm start / reuse check -------------------------------------------------

def _clean_warm_start(problem: AssignmentProblem,
                      warm_start: dict[int, int] | None,
                      ) -> dict[int, int] | None:
    """Restrict a warm start to pairs feasible in *this* problem.

    Out-of-range rows/cols and nan pairs are dropped (jobs finished, the
    config set changed); forced pairs always override the warm choice for
    their row.  Returns None when nothing survives.
    """
    if not warm_start:
        return None
    util = problem.utilities
    n_jobs, n_configs = util.shape
    warm: dict[int, int] = {}
    for row, col in warm_start.items():
        if not (0 <= row < n_jobs and 0 <= col < n_configs):
            continue
        if math.isnan(util[row, col]):
            continue
        warm[row] = col
    warm.update(problem.forced)
    return warm or None


def _warm_objective(problem: AssignmentProblem,
                    warm: dict[int, int]) -> float | None:
    """Objective of a warm assignment, or None if it is not reusable.

    Non-forced pairs with non-positive utility are dropped (a fresh solve
    would never pick them); the rest must fit the capacities.
    """
    kept: dict[int, int] = {}
    for row, col in warm.items():
        if row in problem.forced or problem.utilities[row, col] > 0:
            kept[row] = col
    for row, col in problem.forced.items():
        if kept.get(row) != col:
            return None
    used: dict[str, int] = {}
    for _, col in kept.items():
        t = problem.config_types[col]
        used[t] = used.get(t, 0) + int(problem.config_gpus[col])
    for gpu_type, count in used.items():
        if count > problem.capacities.get(gpu_type, 0):
            return None
    warm.clear()
    warm.update(kept)
    return float(sum(problem.utilities[i, j] for i, j in kept.items()))


def _try_reuse(problem: AssignmentProblem, warm: dict[int, int],
               tolerance: float, time_limit: float | None,
               ) -> AssignmentSolution | None:
    """The reuse check: previous assignment still feasible *and* within
    ``tolerance`` (relative) of the fresh LP bound -> skip the solve."""
    objective = _warm_objective(problem, warm)
    if objective is None:
        return None
    try:
        bound, _, _, _ = _solve_lp_relaxation(problem, time_limit=time_limit)
    except RuntimeError:
        return None
    if bound is None:
        return None
    if objective >= bound - tolerance * max(1.0, abs(bound)):
        return AssignmentSolution(dict(warm), objective, 0.0,
                                  backend="reuse", lp_bound=bound,
                                  reused=True, warm_started=True)
    return None


# -- HiGHS backends (MILP and LP relaxation via scipy) ------------------------

@dataclass
class _PairSystem:
    """Sparse constraint system over the feasible (job, config) pairs."""

    pair_jobs: np.ndarray
    pair_cols: np.ndarray
    cost: np.ndarray
    constraints: "LinearConstraint"
    lb: np.ndarray
    ub: np.ndarray

    @property
    def n_vars(self) -> int:
        return int(self.pair_jobs.size)


def _assemble(problem: AssignmentProblem) -> _PairSystem | None:
    """Sparse constraint assembly: one variable per feasible (job, config)
    pair; each constraint row touches only its own pairs, so the matrix has
    exactly ``2 * n_vars`` potential nonzeros regardless of problem size
    (the old dense assembly allocated ``n_rows * n_vars`` zeros).  Returns
    None when no pair is feasible."""
    util = problem.utilities
    pair_jobs, pair_cols = np.nonzero(~np.isnan(util))  # row-major order
    n_vars = int(pair_jobs.size)
    if n_vars == 0:
        return None
    cost = -util[pair_jobs, pair_cols]

    # (a) each job picks at most one configuration.  ``np.unique`` returns
    # jobs ascending, which for row-major pairs matches first appearance.
    unique_jobs, job_row = np.unique(pair_jobs, return_inverse=True)
    n_job_rows = int(unique_jobs.size)

    # (b) per-GPU-type capacity, one row per type with >= 1 feasible pair,
    # in ``capacities`` iteration order.
    cap_types = list(problem.capacities)
    type_pos = {t: k for k, t in enumerate(cap_types)}
    config_type_pos = np.fromiter(
        (type_pos.get(t, -1) for t in problem.config_types),
        dtype=np.int64, count=len(problem.config_types))
    pair_type = config_type_pos[pair_cols]
    typed = np.flatnonzero(pair_type >= 0)
    hit_types = np.unique(pair_type[typed])  # sorted == capacities order
    type_row = np.full(len(cap_types), -1, dtype=np.int64)
    type_row[hit_types] = n_job_rows + np.arange(hit_types.size)

    entry_rows = np.concatenate([job_row, type_row[pair_type[typed]]])
    entry_cols = np.concatenate([np.arange(n_vars), typed])
    entry_vals = np.concatenate([
        np.ones(n_vars),
        problem.config_gpus[pair_cols[typed]].astype(float),
    ])
    n_rows = n_job_rows + int(hit_types.size)
    a_matrix = csr_array((entry_vals, (entry_rows, entry_cols)),
                         shape=(n_rows, n_vars))
    uppers = np.concatenate([
        np.ones(n_job_rows),
        np.array([float(problem.capacities[cap_types[k]])
                  for k in hit_types.tolist()]),
    ])

    lb = np.zeros(n_vars)
    ub = np.ones(n_vars)
    if problem.forced:
        pair_index = {(int(i), int(j)): idx for idx, (i, j)
                      in enumerate(zip(pair_jobs, pair_cols))}
        for row_job, col in problem.forced.items():
            lb[pair_index[(row_job, col)]] = 1.0

    return _PairSystem(pair_jobs=pair_jobs, pair_cols=pair_cols, cost=cost,
                       constraints=LinearConstraint(a_matrix, -np.inf, uppers),
                       lb=lb, ub=ub)


def _highs_solve(problem: AssignmentProblem, *, integral: bool,
                 time_limit: float | None,
                 ) -> tuple[np.ndarray, _PairSystem] | None:
    """One HiGHS solve (MILP when ``integral``, else the LP relaxation);
    returns ``(x, system)`` or None for an empty instance."""
    system = _assemble(problem)
    if system is None:
        return None
    integrality = np.ones(system.n_vars) if integral \
        else np.zeros(system.n_vars)
    options = {"time_limit": time_limit} if time_limit is not None else None
    result = milp(c=system.cost, constraints=system.constraints,
                  integrality=integrality,
                  bounds=Bounds(system.lb, system.ub), options=options)
    # status 0 = optimal; 1 = iteration/time limit reached, in which case
    # HiGHS may still hand back a feasible incumbent worth using.
    if result.status not in (0, 1) or result.x is None:
        raise RuntimeError(f"{'MILP' if integral else 'LP'} failed: "
                           f"{result.message}")
    return np.asarray(result.x, dtype=float), system


def _solve_milp(problem: AssignmentProblem,
                time_limit: float | None = None) -> AssignmentSolution:
    solved = _highs_solve(problem, integral=True, time_limit=time_limit)
    if solved is None:
        return AssignmentSolution({}, 0.0, 0.0)
    x, system = solved
    assignment: dict[int, int] = {}
    for idx in np.flatnonzero(x > 0.5):
        assignment[int(system.pair_jobs[idx])] = int(system.pair_cols[idx])
    objective = float(sum(problem.utilities[i, j]
                          for i, j in assignment.items()))
    return AssignmentSolution(assignment, objective, 0.0)


def _solve_lp_relaxation(problem: AssignmentProblem,
                         time_limit: float | None = None,
                         ) -> tuple[float | None, np.ndarray | None,
                                    np.ndarray | None, np.ndarray | None]:
    """LP relaxation of the instance: ``(bound, x, pair_jobs, pair_cols)``.

    ``bound`` is the relaxation optimum — an upper bound on any integral
    objective — or None for an empty instance.  Kept as a standalone entry
    point so the reuse check and tests can price a bound without rounding.
    """
    solved = _highs_solve(problem, integral=False, time_limit=time_limit)
    if solved is None:
        return None, None, None, None
    x, system = solved
    bound = float(-system.cost @ x)
    return bound, x, system.pair_jobs, system.pair_cols


# -- LP relaxation + deterministic rounding backend ---------------------------

def _solve_lp_round(problem: AssignmentProblem,
                    time_limit: float | None = None,
                    warm_start: dict[int, int] | None = None,
                    ) -> AssignmentSolution:
    """Solve the LP relaxation, then round deterministically.

    The relaxation of this constraint shape (one row per job, one capacity
    row per GPU type) is integral except where jobs tie over scarce
    capacity, so most of ``x`` lands on {0, 1} already.  Rounding walks the
    LP support by utility-per-GPU (warm pairs win ties, then larger LP
    weight), taking a pair whenever the job is free and capacity remains —
    capacity violations are repaired by construction.  A final fill pass
    over the full feasible set catches jobs the LP zeroed out but cheap
    leftover capacity can still serve.
    """
    bound, x, pair_jobs, pair_cols = _solve_lp_relaxation(
        problem, time_limit=time_limit)
    if bound is None:
        return AssignmentSolution({}, 0.0, 0.0)

    remaining = dict(problem.capacities)
    assignment: dict[int, int] = {}

    def try_assign(i: int, j: int) -> bool:
        gpu_type = problem.config_types[j]
        need = int(problem.config_gpus[j])
        if remaining.get(gpu_type, 0) < need:
            return False
        remaining[gpu_type] -= need
        assignment[i] = j
        return True

    for i, j in sorted(problem.forced.items()):
        if not try_assign(i, j):
            raise RuntimeError(f"cannot satisfy forced assignment ({i}, {j})")

    warm = warm_start or {}
    util = problem.utilities
    gpus = problem.config_gpus

    support = np.flatnonzero(x > _LP_EPS)
    candidates = []
    for idx in support.tolist():
        i, j = int(pair_jobs[idx]), int(pair_cols[idx])
        if i in assignment or util[i, j] <= 0:
            continue
        candidates.append((
            -util[i, j] / max(1, int(gpus[j])),  # goodput per GPU, desc
            0 if warm.get(i) == j else 1,        # sticky: warm pairs first
            -float(x[idx]),                      # then larger LP weight
            int(gpus[j]), i, j,
        ))
    candidates.sort()
    for _, _, _, _, i, j in candidates:
        if i not in assignment:
            try_assign(i, j)

    # Fill pass: jobs the LP support left out, over the leftover capacity.
    _greedy_fill(problem, assignment, remaining, warm)

    objective = float(sum(util[i, j] for i, j in assignment.items()))
    return AssignmentSolution(assignment, objective, 0.0, lp_bound=bound)


def _greedy_fill(problem: AssignmentProblem, assignment: dict[int, int],
                 remaining: dict[str, int],
                 warm: dict[int, int] | None = None) -> None:
    """Assign still-free jobs' positive-utility pairs into leftover
    capacity, highest utility-per-GPU first (ties: warm pair, fewer GPUs,
    then job id / config id — fully deterministic).  Shared by the
    rounding, decomposition-stitch, and greedy backends; mutates
    ``assignment``/``remaining`` in place."""
    warm = warm or {}
    util = problem.utilities
    gpus = problem.config_gpus
    pairs = []
    for i, j in problem.feasible_pairs():
        if i in assignment or util[i, j] <= 0:
            continue
        pairs.append((
            -util[i, j] / max(1, int(gpus[j])),
            0 if warm.get(i) == j else 1,
            int(gpus[j]), i, j,
        ))
    pairs.sort()
    for _, _, _, i, j in pairs:
        if i in assignment:
            continue
        gpu_type = problem.config_types[j]
        need = int(gpus[j])
        if remaining.get(gpu_type, 0) >= need:
            remaining[gpu_type] -= need
            assignment[i] = j


# -- decomposition backend ----------------------------------------------------

def _home_types(problem: AssignmentProblem) -> dict[int, str]:
    """Each free job's partition: the GPU type of its best feasible pair
    (deterministic — ``nanargmax`` takes the first maximum in column
    order).  Jobs with no feasible pair are left out."""
    homes: dict[int, str] = {}
    util = problem.utilities
    feasible_rows = np.flatnonzero(np.any(~np.isnan(util), axis=1))
    for i in feasible_rows.tolist():
        if i in problem.forced:
            continue
        best = int(np.nanargmax(util[i]))
        homes[i] = problem.config_types[best]
    return homes


def _cohort_shares(capacity: int, cohorts: int) -> list[int]:
    """Split a type's capacity across job cohorts, remainder to the first."""
    base, extra = divmod(capacity, cohorts)
    return [base + (1 if c < extra else 0) for c in range(cohorts)]


def _solve_decomposed(problem: AssignmentProblem,
                      time_limit: float | None = None,
                      tracer: Tracer | None = None,
                      warm_start: dict[int, int] | None = None,
                      inner_backend: str | None = None,
                      parallel: bool | None = None,
                      ) -> AssignmentSolution:
    """Partition by GPU type (and job cohort), solve, stitch.

    Capacity constraints never couple GPU types — jobs do, because a job's
    feasible set can span types.  Each free job therefore joins the
    partition of its *best* feasible pair; partitions are independent
    instances (type-t columns, the type's leftover capacity) solved with
    ``inner_backend`` (auto: ``milp`` for small partitions, ``lp_round``
    past :data:`TIER_LP_VARS`).  Oversized partitions split into job
    cohorts with proportional capacity shares.  The stitch pass pools
    whatever capacity partitions strand and greedily serves the jobs they
    could not — including jobs whose best type filled up but whose
    second-best has room.  Forced pairs are pre-assigned globally so no
    partition can strand one.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if parallel is None:
        parallel = DECOMPOSE_PARALLEL
    util = problem.utilities
    remaining = dict(problem.capacities)
    assignment: dict[int, int] = {}
    for i, j in sorted(problem.forced.items()):
        gpu_type = problem.config_types[j]
        need = int(problem.config_gpus[j])
        if remaining.get(gpu_type, 0) < need:
            raise RuntimeError(f"cannot satisfy forced assignment ({i}, {j})")
        remaining[gpu_type] -= need
        assignment[i] = j

    homes = _home_types(problem)
    type_cols: dict[str, list[int]] = {}
    for j, t in enumerate(problem.config_types):
        type_cols.setdefault(t, []).append(j)

    # Build the partition worklist: (gpu_type, cohort_index, rows, share).
    warm = warm_start or {}
    worklist: list[tuple[str, int, list[int], int]] = []
    for gpu_type in problem.capacities:
        rows = sorted(i for i, home in homes.items() if home == gpu_type)
        if not rows or gpu_type not in type_cols:
            continue
        cols = type_cols[gpu_type]
        n_vars = int(np.count_nonzero(
            ~np.isnan(util[np.ix_(rows, cols)])))
        cohorts = max(1, -(-n_vars // DECOMPOSE_MAX_PARTITION_VARS))
        cohorts = min(cohorts, len(rows))
        shares = _cohort_shares(remaining.get(gpu_type, 0), cohorts)
        chunk = -(-len(rows) // cohorts)
        for c in range(cohorts):
            cohort_rows = rows[c * chunk:(c + 1) * chunk]
            if cohort_rows:
                worklist.append((gpu_type, c, cohort_rows, shares[c]))

    def solve_partition(entry: tuple[str, int, list[int], int],
                        ) -> tuple[list[int], list[int], dict[int, int]]:
        gpu_type, cohort, rows, share = entry
        cols = type_cols[gpu_type]
        sub_util = util[np.ix_(rows, cols)].copy()
        sub = AssignmentProblem(
            utilities=sub_util,
            config_gpus=problem.config_gpus[cols],
            config_types=[gpu_type] * len(cols),
            capacities={gpu_type: share},
        )
        backend = inner_backend
        if backend is None:
            backend = "milp" if sub.n_feasible_pairs <= TIER_LP_VARS \
                else "lp_round"
        col_pos = {j: k for k, j in enumerate(cols)}
        sub_warm = {}
        for local, i in enumerate(rows):
            w = warm.get(i)
            if w is not None and w in col_pos \
                    and not math.isnan(sub_util[local, col_pos[w]]):
                sub_warm[local] = col_pos[w]
        with tracer.span("solve_partition", gpu_type=gpu_type, cohort=cohort,
                         jobs=len(rows), vars=sub.n_feasible_pairs,
                         backend=backend):
            sub_solution = solve_assignment(sub, backend=backend,
                                            time_limit=time_limit,
                                            tracer=tracer,
                                            warm_start=sub_warm or None)
        return rows, cols, sub_solution.assignment

    if parallel and len(worklist) > 1:
        # Results are merged in worklist order, so the stitch is
        # deterministic regardless of completion order.
        with ThreadPoolExecutor(max_workers=min(8, len(worklist))) as pool:
            results = list(pool.map(solve_partition, worklist))
    else:
        results = [solve_partition(entry) for entry in worklist]

    for rows, cols, sub_assignment in results:
        for local_row, local_col in sorted(sub_assignment.items()):
            i, j = rows[local_row], cols[local_col]
            gpu_type = problem.config_types[j]
            need = int(problem.config_gpus[j])
            if i in assignment or remaining.get(gpu_type, 0) < need:
                continue  # stitched away below, on pooled capacity
            remaining[gpu_type] -= need
            assignment[i] = j

    # Stitch: jobs no partition served, over the pooled leftover capacity
    # (cohort strands and cross-type spillover both end up here).
    _greedy_fill(problem, assignment, remaining, warm)

    objective = float(sum(util[i, j] for i, j in assignment.items()))
    return AssignmentSolution(assignment, objective, 0.0,
                              partitions=len(worklist))


# -- greedy backend ----------------------------------------------------------

def _solve_greedy(problem: AssignmentProblem) -> AssignmentSolution:
    """Assign pairs in order of utility per GPU, honouring forced pairs.

    Ties break by GPU count, then job id, then config id — never by dict
    or insertion order — so the fallback tier is reproducible across
    partition stitching and seed changes.
    """
    remaining = dict(problem.capacities)
    assignment: dict[int, int] = {}

    for i, j in sorted(problem.forced.items()):
        gpu_type = problem.config_types[j]
        need = int(problem.config_gpus[j])
        if remaining.get(gpu_type, 0) < need:
            raise RuntimeError(f"cannot satisfy forced assignment ({i}, {j})")
        remaining[gpu_type] -= need
        assignment[i] = j

    _greedy_fill(problem, assignment, remaining)
    objective = float(sum(problem.utilities[i, j]
                          for i, j in assignment.items()))
    return AssignmentSolution(assignment, objective, 0.0)


# -- exact branch-and-bound backend ------------------------------------------

def _solve_exact(problem: AssignmentProblem) -> AssignmentSolution:
    """Depth-first branch-and-bound over jobs; exact but exponential.

    Intended for small instances (tests, tiny clusters).  Jobs are visited
    in order; the bound adds each remaining job's best feasible utility,
    ignoring capacity (admissible, hence never prunes the optimum).
    """
    n = problem.n_jobs
    options: list[list[tuple[float, int]]] = []
    for i in range(n):
        row = problem.utilities[i]
        feasible = [(float(row[j]), j) for j in range(problem.n_configs)
                    if not math.isnan(row[j])]
        feasible.sort(reverse=True)
        if i in problem.forced:
            feasible = [(u, j) for u, j in feasible if j == problem.forced[i]]
        options.append(feasible)
    best_tail = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        top = max((u for u, _ in options[i]), default=0.0)
        best_tail[i] = best_tail[i + 1] + max(0.0, top)

    best_obj = -math.inf
    best_assignment: dict[int, int] = {}

    def dfs(i: int, value: float, remaining: dict[str, int],
            chosen: dict[int, int]) -> None:
        nonlocal best_obj, best_assignment
        if value + best_tail[i] <= best_obj:
            return
        if i == n:
            if value > best_obj:
                best_obj = value
                best_assignment = dict(chosen)
            return
        # Option: skip this job (not allowed if forced).
        if i not in problem.forced:
            dfs(i + 1, value, remaining, chosen)
        for utility, j in options[i]:
            gpu_type = problem.config_types[j]
            need = int(problem.config_gpus[j])
            if remaining.get(gpu_type, 0) < need:
                continue
            remaining[gpu_type] -= need
            chosen[i] = j
            dfs(i + 1, value + utility, remaining, chosen)
            del chosen[i]
            remaining[gpu_type] += need

    dfs(0, 0.0, dict(problem.capacities), {})
    if not math.isfinite(best_obj):
        raise RuntimeError("exact solver found no feasible assignment")
    return AssignmentSolution(best_assignment, best_obj, 0.0)

"""Configuration-set construction (Section 3.3).

For a cluster with ``N`` nodes of ``R`` GPUs each (per GPU type ``X``), the
valid set is::

    C = {(1, 1, X), (1, 2, X), ..., (1, R, X)}            # powers of two
      U {(2, 2R, X), ..., (N, N*R, X)}                    # whole nodes

The single-node set restricts GPU counts to powers of two (virtual-node
decomposition in :mod:`repro.cluster` guarantees node sizes are powers of
two).  The multi-node set uses whole nodes only, which — per the Submesh
Shape Covering argument the paper cites — guarantees a placement exists for
every valid allocation mix with no two distributed jobs sharing nodes.

The set size is ``O(N + log2 R)`` per GPU type, which is what lets Sia's ILP
scale to thousands of GPUs (Figure 9).
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.types import Configuration


def powers_of_two_up_to(limit: int) -> list[int]:
    """All powers of two <= limit, ascending.  ``limit`` must be >= 1."""
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    values = []
    v = 1
    while v <= limit:
        values.append(v)
        v *= 2
    return values


def single_node_configs(gpu_type: str, node_size: int) -> list[Configuration]:
    """Single-node configurations: powers of two up to the node size."""
    return [Configuration(1, g, gpu_type) for g in powers_of_two_up_to(node_size)]


def multi_node_configs(gpu_type: str, num_nodes: int, node_size: int,
                       *, max_nodes: int | None = None) -> list[Configuration]:
    """Multi-node configurations: whole nodes, 2..num_nodes.

    ``max_nodes`` optionally caps the span (used to respect per-job GPU
    limits without generating useless configurations).
    """
    top = num_nodes if max_nodes is None else min(num_nodes, max_nodes)
    return [Configuration(n, n * node_size, gpu_type) for n in range(2, top + 1)]


def build_config_set(cluster: Cluster,
                     *, max_gpus: int | None = None) -> list[Configuration]:
    """The full valid configuration set ``C`` for a cluster.

    Per GPU type, node sizes may differ after virtual-node decomposition;
    single-node configurations go up to the largest node of the type, and
    multi-node configurations use the *most common* node size of the type
    (whole-node allocations must be uniform so the placement guarantee
    holds).  ``max_gpus`` truncates configurations larger than a per-job cap.
    """
    configs: list[Configuration] = []
    for gpu_type in cluster.gpu_types:
        nodes = cluster.nodes_of_type(gpu_type)
        largest = max(n.num_gpus for n in nodes)
        configs.extend(single_node_configs(gpu_type, largest))

        # Whole-node set: only nodes of the modal (most common) size take
        # part in multi-node allocations for this type.
        sizes: dict[int, int] = {}
        for n in nodes:
            sizes[n.num_gpus] = sizes.get(n.num_gpus, 0) + 1
        modal_size = max(sizes, key=lambda s: (sizes[s], s))
        modal_count = sizes[modal_size]
        configs.extend(multi_node_configs(gpu_type, modal_count, modal_size))

    if max_gpus is not None:
        configs = [c for c in configs if c.num_gpus <= max_gpus]
    # Deterministic order: by type appearance then size.
    order = {t: i for i, t in enumerate(cluster.gpu_types)}
    configs.sort(key=lambda c: (order[c.gpu_type], c.num_gpus, c.num_nodes))
    return configs


def feasible_for_job(configs: list[Configuration], *, min_gpus: int = 1,
                     max_gpus: int | None = None,
                     current_gpus: int = 0,
                     scale_up_factor: int = 2,
                     gpu_types: tuple[str, ...] | None = None) -> list[Configuration]:
    """Filter a configuration set down to what one job may use this round.

    Implements Sia's scale-up policy (Section 3.1): a job starts at its
    minimum size and may at most double (``scale_up_factor``) its GPU count
    per scheduling round.  ``min_gpus``/``max_gpus`` are the submitter's
    declared limits; ``gpu_types`` optionally restricts types (rigid-type
    jobs or hybrid-parallel jobs profiled for specific types).
    """
    if current_gpus > 0:
        growth_cap = current_gpus * scale_up_factor
    else:
        # A pending job starts small: at min_gpus (1 for data-parallel jobs).
        growth_cap = max(min_gpus, 1)
    out = []
    for c in configs:
        if c.num_gpus < min_gpus:
            continue
        if max_gpus is not None and c.num_gpus > max_gpus:
            continue
        if c.num_gpus > growth_cap:
            continue
        if gpu_types is not None and c.gpu_type not in gpu_types:
            continue
        out.append(c)
    return out

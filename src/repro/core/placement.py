"""Placer: bind configurations to concrete nodes (Sections 3.1 and 3.3).

Placement rules from the paper:

(a) partial-node allocations must not be split across two nodes;
(b) whole-node allocations must take whole nodes;
(c) if fragmentation prevents (a)/(b), evict some jobs and try again.

The placement is incremental: jobs keeping their configuration keep their
exact GPUs (no gratuitous migration); everything else is (re)placed with a
best-fit heuristic that prefers a job's previous nodes.  If the incremental
pass fails, a full repack (largest-first) runs; jobs that still cannot be
placed are dropped from the round's assignment (they stay queued), which is
the "evict and retry" rule — the paper observes such evictions are rare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster, ClusterState
from repro.core.types import Allocation, Configuration


@dataclass
class PlacementResult:
    """Outcome of placing one round's assignments."""

    #: job id -> concrete allocation (jobs absent were evicted/unplaceable).
    allocations: dict[str, Allocation] = field(default_factory=dict)
    #: jobs that had an assignment but could not be placed this round.
    evicted: list[str] = field(default_factory=list)
    #: jobs whose placement is unchanged from the previous round.
    unchanged: list[str] = field(default_factory=list)


class Placer:
    """Stateless placement engine; operates on a fresh occupancy each call."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def place(self, assignments: dict[str, Configuration],
              previous: dict[str, Allocation],
              pinned: frozenset[str] | set[str] = frozenset()) -> PlacementResult:
        """Place ``assignments`` given the previous round's allocations.

        ``pinned`` jobs (non-preemptive jobs and reservations, Section 3.4)
        must keep their exact previous GPUs: they are immovable even during
        a fragmentation repack.
        """
        result = PlacementResult()
        state = ClusterState(self.cluster)

        # Pass 1: pin jobs whose configuration did not change.
        pending: list[tuple[str, Configuration]] = []
        for job_id, config in assignments.items():
            prev = previous.get(job_id)
            if prev is not None and prev.configuration() == config:
                for node_id, count in prev.gpus_per_node:
                    state.node_states[node_id].acquire(job_id, count)
                result.allocations[job_id] = prev
                result.unchanged.append(job_id)
            else:
                if job_id in pinned and prev is not None:
                    raise ValueError(
                        f"pinned job {job_id!r} cannot change configuration")
                pending.append((job_id, config))

        # Pass 2: place changed/new jobs, multi-node (whole-node) first,
        # then larger single-node allocations.
        pending.sort(key=lambda item: (-item[1].num_nodes, -item[1].num_gpus))
        failed: list[tuple[str, Configuration]] = []
        for job_id, config in pending:
            allocation = self._try_place(state, job_id, config,
                                         previous.get(job_id))
            if allocation is None:
                failed.append((job_id, config))
            else:
                result.allocations[job_id] = allocation

        if not failed:
            return result

        # Pass 3 (rule c): fragmentation — full repack from scratch.
        return self._repack(assignments, previous, pinned)

    # -- internals -----------------------------------------------------------

    def _try_place(self, state: ClusterState, job_id: str,
                   config: Configuration,
                   previous: Allocation | None) -> Allocation | None:
        if config.num_nodes > 1:
            return self._place_whole_nodes(state, job_id, config, previous)
        return self._place_single_node(state, job_id, config, previous)

    def _place_whole_nodes(self, state: ClusterState, job_id: str,
                           config: Configuration,
                           previous: Allocation | None) -> Allocation | None:
        """Rule (b): multi-node allocations take whole, empty nodes."""
        per_node = config.num_gpus // config.num_nodes
        if per_node * config.num_nodes != config.num_gpus:
            return None
        preferred = set(previous.node_ids) if previous is not None else set()
        candidates = [
            st for st in state.nodes_of_type(config.gpu_type)
            if st.is_empty and st.node.num_gpus == per_node
        ]
        if len(candidates) < config.num_nodes:
            return None
        candidates.sort(key=lambda st: (st.node.node_id not in preferred,
                                        st.node.node_id))
        chosen = candidates[:config.num_nodes]
        for st in chosen:
            st.acquire(job_id, per_node)
        return Allocation.build(config.gpu_type,
                                {st.node.node_id: per_node for st in chosen})

    def _place_single_node(self, state: ClusterState, job_id: str,
                           config: Configuration,
                           previous: Allocation | None) -> Allocation | None:
        """Rule (a): a partial-node allocation fits inside one node.

        Best-fit: the node with the least sufficient free capacity, with the
        job's previous node winning ties, and whole-node requests preferring
        empty nodes to keep fragmentation down.
        """
        preferred = set(previous.node_ids) if previous is not None else set()
        best = None
        best_key = None
        for st in state.nodes_of_type(config.gpu_type):
            if st.free < config.num_gpus:
                continue
            key = (st.free, st.node.node_id not in preferred, st.node.node_id)
            if best_key is None or key < best_key:
                best, best_key = st, key
        if best is None:
            return None
        best.acquire(job_id, config.num_gpus)
        return Allocation.build(config.gpu_type,
                                {best.node.node_id: config.num_gpus})

    def _repack(self, assignments: dict[str, Configuration],
                previous: dict[str, Allocation],
                pinned: frozenset[str] | set[str] = frozenset()) -> PlacementResult:
        """Place everything from an empty cluster, largest first; jobs that
        do not fit are evicted (stay queued this round).  Pinned jobs keep
        their exact previous GPUs and are re-acquired first."""
        result = PlacementResult()
        state = ClusterState(self.cluster)
        for job_id in sorted(pinned):
            prev = previous.get(job_id)
            if prev is None or job_id not in assignments:
                continue
            for node_id, count in prev.gpus_per_node:
                state.node_states[node_id].acquire(job_id, count)
            result.allocations[job_id] = prev
            result.unchanged.append(job_id)
        ordered = sorted(
            ((jid, cfg) for jid, cfg in assignments.items()
             if jid not in result.allocations),
            key=lambda item: (-item[1].num_nodes,
                              -item[1].num_gpus, item[0]))
        for job_id, config in ordered:
            allocation = self._try_place(state, job_id, config,
                                         previous.get(job_id))
            if allocation is None:
                result.evicted.append(job_id)
                continue
            result.allocations[job_id] = allocation
            prev = previous.get(job_id)
            if prev is not None and prev == allocation:
                result.unchanged.append(job_id)
        return result

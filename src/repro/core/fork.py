"""Fork-time construction and re-binding for counterfactual replay.

The replay engine (:mod:`repro.analysis.replay`) restores a recorded run's
state at a chosen round and plays out an alternate future under overridden
conditions.  Everything that builds or rewires the pieces of that alternate
future lives here, argparse-free so the CLI and the programmatic API share
one code path:

* :func:`make_scheduler` / :func:`make_fault_models` — the scheduler and
  fault-injector factories ``repro.cli`` delegates to, keyed by the same
  knob names the CLI exposes;
* :func:`parse_cluster_delta` / :func:`apply_cluster_delta` — structured
  capacity edits (``+64xa100``, ``-8xt4``) applied to a base cluster while
  preserving existing node ids, so restored allocations stay meaningful;
* :func:`rebind_solver` — swap a (possibly wrapped) Sia scheduler's ILP
  backend in place, mid-run;
* :func:`reseed_fault_models` — deterministically re-bind every fault
  model's RNG, resetting outage/slowdown windows for a "different luck"
  fork.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, power_of_two_decomposition
from repro.core import ilp as ilp_backends
from repro.core.policy import SiaPolicyParams
from repro.core.resilience import ResilienceConfig, ResilientScheduler
from repro.schedulers.base import Scheduler
from repro.sim.faults import (CheckpointRestoreFaultModel, FaultModel,
                              GrayFailureModel, JobCrashModel,
                              PlacementFailureModel, StragglerModel,
                              TelemetryCorruptionModel)

#: schedulers that auto-tune jobs (run the raw adaptive trace).
ADAPTIVE_SCHEDULERS = ("sia", "pollux")
#: schedulers that need TunedJobs (fixed batch size and GPU count).
RIGID_SCHEDULERS = ("gavel", "shockwave", "themis", "fifo", "srtf")

#: ILP backends :func:`rebind_solver` accepts (SiaPolicyParams.solver).
#: Aliases :data:`repro.core.ilp.BACKENDS` so the replay CLI's
#: ``--solver-backend`` choices can never drift from the solver registry.
SOLVER_BACKENDS = ilp_backends.BACKENDS


def make_scheduler(name: str, *, round_duration: float = 60.0,
                   p: float = -0.5, lam: float = 1.1, solver: str = "milp",
                   gavel_policy: str = "max_sum_throughput",
                   resilient: bool = False,
                   solve_budget: float = 5.0) -> Scheduler:
    """Build a scheduler by name with the CLI's knobs and defaults.

    ``round_duration`` applies to the round-cadence-configurable schedulers
    (sia, pollux); the rigid baselines keep their own defaults, exactly as
    the CLI has always built them.  Raises ``ValueError`` for an unknown
    name (the CLI turns that into a clean exit).
    """
    from repro.schedulers import (FIFOScheduler, GavelScheduler,
                                  PolluxScheduler, ShockwaveScheduler,
                                  SiaScheduler, SRTFScheduler,
                                  ThemisScheduler)

    resilience = None
    if resilient:
        resilience = ResilienceConfig(solve_budget_s=solve_budget)
    if name == "sia":
        params = SiaPolicyParams(p=p, allocation_incentive=lam,
                                 solver=solver, resilience=resilience)
        scheduler: Scheduler = SiaScheduler(params,
                                            round_duration=round_duration)
    else:
        builders = {
            "pollux": lambda: PolluxScheduler(round_duration=round_duration),
            "gavel": lambda: GavelScheduler(policy=gavel_policy),
            "shockwave": ShockwaveScheduler,
            "themis": ThemisScheduler,
            "fifo": FIFOScheduler,
            "srtf": SRTFScheduler,
        }
        if name not in builders:
            known = ", ".join(ADAPTIVE_SCHEDULERS + RIGID_SCHEDULERS)
            raise ValueError(f"unknown scheduler {name!r}; "
                             f"choose from: {known}")
        scheduler = builders[name]()
    if resilience is not None:
        scheduler = ResilientScheduler(scheduler, resilience)
    return scheduler


#: fault-model knobs with the CLI's defaults; :func:`make_fault_models`
#: accepts any subset of these keys.
FAULT_OPTION_DEFAULTS = {
    "straggler_rate": 0.0, "straggler_slowdown": 0.5,
    "straggler_duration": 1800.0,
    "job_crash_rate": 0.0,
    "restore_failure_prob": 0.0,
    "gray_rate": 0.0, "gray_slowdown": 0.35, "gray_duration": 7200.0,
    "placement_fail_prob": 0.0,
    "telemetry_corrupt_rate": 0.0,
}


def make_fault_models(options: dict | None = None) -> list[FaultModel]:
    """Fault injectors from a knob dict (the CLI's flag names; node crashes
    keep riding the legacy ``node_failure_rate`` path inside the simulator).
    Unknown keys raise so a typo in a saved run spec cannot silently drop a
    fault model."""
    opts = dict(FAULT_OPTION_DEFAULTS)
    if options:
        unknown = set(options) - set(opts)
        if unknown:
            raise ValueError(f"unknown fault options: {sorted(unknown)}")
        opts.update(options)
    models: list[FaultModel] = []
    if opts["straggler_rate"] > 0:
        models.append(StragglerModel(rate=opts["straggler_rate"],
                                     slowdown=opts["straggler_slowdown"],
                                     duration=opts["straggler_duration"]))
    if opts["job_crash_rate"] > 0:
        models.append(JobCrashModel(rate=opts["job_crash_rate"]))
    if opts["restore_failure_prob"] > 0:
        models.append(CheckpointRestoreFaultModel(
            failure_prob=opts["restore_failure_prob"]))
    if opts["gray_rate"] > 0:
        models.append(GrayFailureModel(rate=opts["gray_rate"],
                                       slowdown=opts["gray_slowdown"],
                                       duration=opts["gray_duration"]))
    if opts["placement_fail_prob"] > 0:
        models.append(PlacementFailureModel(
            failure_prob=opts["placement_fail_prob"]))
    if opts["telemetry_corrupt_rate"] > 0:
        models.append(TelemetryCorruptionModel(
            rate=opts["telemetry_corrupt_rate"]))
    return models


# -- cluster deltas ------------------------------------------------------------

_DELTA_TERM = re.compile(r"^([+-])(\d+)x([a-zA-Z][\w-]*)(?::(\d+))?$")


@dataclass(frozen=True)
class ClusterDelta:
    """One capacity edit: add (+) or remove (-) ``gpus`` GPUs of a type.

    ``gpus_per_node`` shapes *added* nodes (default: the type's largest
    existing node); removals always drop whole nodes, newest ids first.
    """

    gpu_type: str
    gpus: int  # signed: positive adds capacity, negative removes it
    gpus_per_node: int | None = None

    def describe(self) -> str:
        sign = "+" if self.gpus >= 0 else "-"
        text = f"{sign}{abs(self.gpus)}x{self.gpu_type}"
        if self.gpus_per_node is not None:
            text += f":{self.gpus_per_node}"
        return text


def parse_cluster_delta(spec: str) -> list[ClusterDelta]:
    """Parse ``+64xa100``, ``-8xt4``, ``+16xa100:4`` (comma-separable).

    The count is in *GPUs*; an optional ``:N`` suffix sets the per-node
    size of added nodes.  Raises ``ValueError`` on malformed terms.
    """
    deltas: list[ClusterDelta] = []
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        match = _DELTA_TERM.match(term)
        if match is None:
            raise ValueError(
                f"malformed cluster delta {term!r}; expected "
                "'+<gpus>x<type>[:<gpus_per_node>]' or '-<gpus>x<type>', "
                "e.g. '+64xa100' or '-8xt4'")
        sign, count, gpu_type, per_node = match.groups()
        gpus = int(count)
        if gpus <= 0:
            raise ValueError(f"cluster delta {term!r} must move >= 1 GPU")
        if sign == "-" and per_node is not None:
            raise ValueError(f"cluster delta {term!r}: removals drop whole "
                             "existing nodes; ':<gpus_per_node>' only "
                             "applies to additions")
        deltas.append(ClusterDelta(
            gpu_type=gpu_type.lower(),
            gpus=gpus if sign == "+" else -gpus,
            gpus_per_node=int(per_node) if per_node else None))
    if not deltas:
        raise ValueError(f"empty cluster delta {spec!r}")
    return deltas


def apply_cluster_delta(cluster: Cluster, deltas: list[ClusterDelta],
                        ) -> tuple[Cluster, frozenset[int]]:
    """Apply capacity edits to ``cluster``; returns ``(new_cluster,
    removed_node_ids)``.

    Existing nodes keep their ids (restored allocations and fault windows
    reference them); additions append fresh ids.  Additions are restricted
    to GPU types already present — in-flight jobs' estimators were built
    against the base cluster's types, so a brand-new type would be
    invisible to every admitted job.  Removals drop whole nodes of the
    type, highest id first, and must hit the requested GPU count exactly.
    """
    nodes = list(cluster.nodes)
    removed: set[int] = set()
    known_types = set(cluster.gpu_types)
    next_id = max(n.node_id for n in nodes) + 1
    next_physical = max(n.physical_id for n in nodes) + 1
    for delta in deltas:
        if delta.gpu_type not in known_types:
            raise ValueError(
                f"cluster delta {delta.describe()!r}: GPU type "
                f"{delta.gpu_type!r} is not in the base cluster "
                f"({', '.join(sorted(known_types))}); forks can only "
                "resize existing types — admitted jobs' estimators know "
                "nothing about new ones")
        if delta.gpus > 0:
            per_node = delta.gpus_per_node \
                or cluster.max_node_size(delta.gpu_type)
            if per_node <= 0:
                raise ValueError("gpus_per_node must be >= 1")
            remaining = delta.gpus
            while remaining > 0:
                size = min(per_node, remaining)
                # Mirror Cluster.from_groups: non-power-of-two nodes are
                # decomposed into power-of-two virtual nodes sharing one
                # physical id.
                physical = next_physical
                next_physical += 1
                for part in power_of_two_decomposition(size):
                    nodes.append(Node(node_id=next_id,
                                      gpu_type=delta.gpu_type,
                                      num_gpus=part, physical_id=physical))
                    next_id += 1
                remaining -= size
        else:
            need = -delta.gpus
            victims = sorted(
                (n for n in nodes
                 if n.gpu_type == delta.gpu_type
                 and n.node_id not in removed),
                key=lambda n: -n.node_id)
            for node in victims:
                if need == 0:
                    break
                if node.num_gpus > need:
                    continue  # keep looking for smaller whole nodes
                removed.add(node.node_id)
                need -= node.num_gpus
            if need > 0:
                have = sum(n.num_gpus for n in nodes
                           if n.gpu_type == delta.gpu_type
                           and n.node_id not in removed)
                raise ValueError(
                    f"cluster delta {delta.describe()!r}: cannot remove "
                    f"{-delta.gpus} {delta.gpu_type} GPUs as whole nodes "
                    f"({have} GPUs remain in indivisible node sizes)")
    surviving = tuple(n for n in nodes if n.node_id not in removed)
    if not surviving:
        raise ValueError("cluster delta removed every node")
    return Cluster(nodes=surviving), frozenset(removed)


# -- mid-run re-binding --------------------------------------------------------

def unwrap_scheduler(scheduler: Scheduler) -> Scheduler:
    """Peel resilience (or any ``inner``-holding) wrappers off a scheduler."""
    seen = set()
    while hasattr(scheduler, "inner") and id(scheduler) not in seen:
        seen.add(id(scheduler))
        scheduler = scheduler.inner
    return scheduler


def rebind_solver(scheduler: Scheduler, backend: str) -> None:
    """Swap the ILP backend of a (possibly wrapped) Sia scheduler in place.

    ``SiaPolicy`` reads ``params.solver`` at every solve, so this takes
    effect from the next round.  Raises ``ValueError`` for an unknown
    backend or a scheduler without a solver to rebind.
    """
    if backend not in SOLVER_BACKENDS:
        raise ValueError(f"unknown solver backend {backend!r}; choose from "
                         f"{SOLVER_BACKENDS}")
    inner = unwrap_scheduler(scheduler)
    params = getattr(inner, "params", None)
    if params is None or not isinstance(params, SiaPolicyParams):
        raise ValueError(
            f"scheduler {scheduler.name!r} has no ILP solver to rebind "
            "(solver_backend overrides only apply to sia)")
    params.solver = backend


def reseed_fault_models(models: list[FaultModel], seed: int) -> None:
    """Deterministically re-bind every fault model to a fresh RNG stream.

    Binding also resets model state (outage and slowdown windows), so a
    reseeded fork draws an entirely different fault future from the fork
    round on — the "different luck" counterfactual.  The per-model seed
    derivation mirrors the engine's (``seed + 1009 + 31*i``).
    """
    for idx, model in enumerate(models):
        model.bind(seed + 1009 + 31 * idx)

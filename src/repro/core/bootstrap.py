"""Cross-GPU-type throughput bootstrapping (Section 3.2, Equation 1).

When a job has multi-GPU experience on GPU type A but only a 1-GPU profile
on type B, Sia estimates B's multi-GPU throughput as::

    est_xput_B(N) = (xput_B(1) / xput_A(1)) * xput_A(N)

i.e. it assumes B's compute:communication scaling matches A's (which is
known) and rescales by the single-GPU speed ratio (which is also known from
the initial profiling pass).  The bootstrapped model is discarded as soon as
the job actually runs multi-GPU on B and real communication times become
available.
"""

from __future__ import annotations


def bootstrap_ratio(single_gpu_xput_target: float,
                    single_gpu_xput_reference: float) -> float:
    """The 1-GPU speed ratio between the target and reference GPU types."""
    if single_gpu_xput_target <= 0 or single_gpu_xput_reference <= 0:
        raise ValueError("single-GPU throughputs must be positive")
    return single_gpu_xput_target / single_gpu_xput_reference


def bootstrap_throughput(single_gpu_xput_target: float,
                         single_gpu_xput_reference: float,
                         reference_multi_gpu_xput: float) -> float:
    """Equation (1): estimated multi-GPU throughput on the target type."""
    if reference_multi_gpu_xput < 0:
        raise ValueError("reference throughput must be non-negative")
    ratio = bootstrap_ratio(single_gpu_xput_target, single_gpu_xput_reference)
    return ratio * reference_multi_gpu_xput


def pick_reference_type(candidates: dict[str, bool],
                        single_gpu_xputs: dict[str, float]) -> str | None:
    """Choose the reference GPU type A for bootstrapping.

    ``candidates`` maps GPU type -> whether the job has multi-GPU experience
    on it; ``single_gpu_xputs`` maps GPU type -> its measured 1-GPU
    throughput.  Among types with multi-GPU experience we prefer the one the
    job ran fastest on (most refined and closest in character to the large
    allocations Sia will consider).  Returns None if no type qualifies.
    """
    experienced = [t for t, known in candidates.items()
                   if known and single_gpu_xputs.get(t, 0.0) > 0]
    if not experienced:
        return None
    return max(experienced, key=lambda t: single_gpu_xputs[t])

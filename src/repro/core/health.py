"""Node health inference and the quarantine state machine (gray defense).

Binary faults announce themselves: a crashed node disappears from the
cluster view and the scheduler simply plans around it.  Gray failures do
not — a node whose executor silently degrades (:class:`~repro.sim.faults.
GrayFailureModel`) or whose launches flap (:class:`~repro.sim.faults.
PlacementFailureModel`) still *looks* healthy in every input the policies
consume.  This module infers per-node health from two signals the engine
already produces:

* the goodput ledger's realized-vs-estimated ratio per round — a gray node
  delivers less goodput than the estimate its (masked) telemetry justified,
  so an EMA of the ratio over the node's resident jobs drifts down;
* placement-failure history — consecutive failed launches on a node.

and drives each node through a state machine::

    healthy --low ratio--> probation --lower ratio / flaps--> quarantined
       ^                      |  ^                                |
       '----ratio recovers----'  '------backoff expires----------'
                                        (after ``drain_after`` trips:
                                         drained, terminal)

Quarantined nodes are excluded from the cluster view handed to policies
for a capped exponential backoff window (``base * 2^(trips-1)``), then
reinstated on probation; a node that keeps tripping is drained for
operator attention.  Probation nodes stay schedulable but their GPU type's
goodputs are discounted via :func:`repro.core.matrix.apply_health_discount`
so the policy prefers clean hardware at equal goodput.  Both exits are
reachable in bounded time, which is the quarantine-liveness property the
test suite pins.

Backoff jitter here and in the engine's placement retries is derived from
a hash (:func:`deterministic_jitter`), not an RNG stream, so a checkpoint
resume replays identical delays without extra RNG state.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cluster import Cluster
from repro.obs.tracer import NULL_TRACER, Tracer

HEALTHY = "healthy"
PROBATION = "probation"
QUARANTINED = "quarantined"
DRAINED = "drained"
STATES = (HEALTHY, PROBATION, QUARANTINED, DRAINED)


def deterministic_jitter(token: str, amplitude: float) -> float:
    """Jitter in ``[0, amplitude]`` derived from a hash, not an RNG.

    Backoff jitter must replay identically across a checkpoint resume
    without adding RNG state to the checkpoint, so it hashes a stable
    token (e.g. job id + attempt number) instead of drawing from a
    generator."""
    if amplitude <= 0:
        return 0.0
    return amplitude * (zlib.crc32(token.encode()) % 1000) / 999.0


def placement_backoff(attempt: int, token: str, *, base_s: float = 30.0,
                      cap_s: float = 600.0, jitter: float = 0.25) -> float:
    """Delay before retrying a failed placement: capped exponential with
    deterministic jitter.  ``attempt`` counts from 1."""
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    base = min(cap_s, base_s * (2 ** (attempt - 1)))
    return base * (1.0 + deterministic_jitter(f"{token}:{attempt}", jitter))


@dataclass
class HealthConfig:
    """Knobs for the probation -> quarantine -> drain state machine.

    Thresholds default conservative because bootstrap-mode estimates are
    noisy early in a job's life: a node is only judged once
    ``min_samples`` realized/estimated ratios have folded into its EMA,
    and the quarantine bar (0.45) sits well below honest estimation
    error but well above a typical gray slowdown (x0.35)."""

    #: EMA weight of the newest realized/estimated ratio sample.
    ema_alpha: float = 0.3
    #: ratio samples required before the score is trusted at all.
    min_samples: int = 6
    #: EMA below this puts a healthy node on probation (discounted).
    probation_ratio: float = 0.7
    #: EMA below this quarantines the node outright.
    quarantine_ratio: float = 0.45
    #: EMA at or above this returns a probation node to healthy.
    recover_ratio: float = 0.85
    #: consecutive failed launches that quarantine a node by themselves.
    placement_failure_threshold: int = 3
    #: quarantine backoff: ``base * 2^(trips-1)`` seconds, capped.
    quarantine_base_s: float = 900.0
    quarantine_cap_s: float = 7200.0
    #: quarantine trips after which the node is drained (terminal).
    drain_after: int = 3
    #: goodput multiplier for GPU types with probation nodes (per-node
    #: fraction-weighted; see :meth:`HealthTracker.type_discounts`).
    probation_discount: float = 0.7
    #: placement-retry backoff knobs (see :func:`placement_backoff`).
    backoff_base_s: float = 30.0
    backoff_cap_s: float = 600.0
    backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.ema_alpha <= 1:
            raise ValueError("ema_alpha must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")
        if not (0 < self.quarantine_ratio < self.probation_ratio
                <= self.recover_ratio):
            raise ValueError("need 0 < quarantine_ratio < probation_ratio "
                             "<= recover_ratio")
        if self.placement_failure_threshold < 1:
            raise ValueError("placement_failure_threshold must be positive")
        if self.quarantine_base_s <= 0 or \
                self.quarantine_cap_s < self.quarantine_base_s:
            raise ValueError("need 0 < quarantine_base_s <= quarantine_cap_s")
        if self.drain_after < 1:
            raise ValueError("drain_after must be positive")
        if not 0 < self.probation_discount <= 1:
            raise ValueError("probation_discount must be in (0, 1]")
        if self.backoff_base_s <= 0 or \
                self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 < backoff_base_s <= backoff_cap_s")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")


@dataclass(frozen=True)
class HealthEvent:
    """One state transition (or eviction) the tracker emitted."""

    kind: str  # probation | quarantine | reinstate | recover | drain | evict
    time: float
    node_id: int
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.kind} node {self.node_id}"
        return f"{text} ({self.detail})" if self.detail else text

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "time": self.time,
                "node_id": self.node_id, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> HealthEvent:
        return cls(kind=data["kind"], time=data["time"],
                   node_id=data["node_id"], detail=data.get("detail", ""))


@dataclass
class NodeHealth:
    """Per-node inference state."""

    node_id: int
    state: str = HEALTHY
    #: EMA of realized/estimated goodput ratio (1.0 = delivering exactly
    #: what the estimate promised).
    score: float = 1.0
    #: ratio samples folded into the EMA since the last (re)instatement.
    samples: int = 0
    consecutive_placement_failures: int = 0
    quarantine_trips: int = 0
    quarantined_until: float = 0.0


class HealthTracker:
    """Scores nodes from goodput/placement evidence and runs the state
    machine.  Owned by the engine (one per run, checkpointed with it);
    :class:`~repro.core.resilience.ResilientScheduler` consults it to
    filter its cluster view and discount probation hardware."""

    # Observability is (re)injected by the engine after construction and
    # after every checkpoint restore; tracers are never pickled.
    tracer: Tracer = NULL_TRACER
    metrics: Any = None

    def __init__(self, config: HealthConfig | None = None):
        self.config = config or HealthConfig()
        self._nodes: dict[int, NodeHealth] = {}
        #: events emitted since the last :meth:`drain_events` call.  The
        #: engine drains every round, so this is empty at checkpoint
        #: boundaries and resume equivalence is unaffected.
        self._pending: list[HealthEvent] = []

    # -- evidence ------------------------------------------------------------

    def node(self, node_id: int) -> NodeHealth:
        health = self._nodes.get(node_id)
        if health is None:
            health = self._nodes[node_id] = NodeHealth(node_id=node_id)
        return health

    def record_goodput(self, node_ids, estimated: float, realized: float,
                       now: float) -> None:
        """Fold one job-round's realized-vs-estimated goodput into every
        node the job ran on.  A gray node drags the ratio down for its
        residents; clean nodes hover near 1.0."""
        if estimated <= 0:
            return
        ratio = min(max(realized / estimated, 0.0), 2.0)
        alpha = self.config.ema_alpha
        for node_id in sorted(set(node_ids)):
            health = self.node(node_id)
            if health.state in (QUARANTINED, DRAINED):
                continue
            if health.samples == 0:
                health.score = ratio
            else:
                health.score = (1 - alpha) * health.score + alpha * ratio
            health.samples += 1

    def record_placement_failure(self, job_id: str, node_id: int,
                                 now: float) -> None:
        self.node(node_id).consecutive_placement_failures += 1

    def record_placement_success(self, node_ids) -> None:
        for node_id in set(node_ids):
            health = self._nodes.get(node_id)
            if health is not None:
                health.consecutive_placement_failures = 0

    def note_eviction(self, job_id: str, node_ids, now: float) -> None:
        """Record that the engine drained a job off newly-excluded nodes."""
        excluded = self.excluded_nodes()
        for node_id in sorted(set(node_ids)):
            if node_id in excluded:
                self._emit("evict", now, node_id,
                           f"job {job_id} evicted from "
                           f"{self._nodes[node_id].state} node")

    # -- state machine -------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance every node one round: expire quarantine backoffs and
        apply the evidence-based transitions."""
        cfg = self.config
        for node_id in sorted(self._nodes):
            health = self._nodes[node_id]
            if health.state == DRAINED:
                continue
            if health.state == QUARANTINED:
                if now >= health.quarantined_until:
                    health.state = PROBATION
                    health.score = 1.0
                    health.samples = 0
                    health.consecutive_placement_failures = 0
                    self._emit("reinstate", now, node_id,
                               f"backoff expired after trip "
                               f"{health.quarantine_trips}; on probation")
                continue
            if health.consecutive_placement_failures >= \
                    cfg.placement_failure_threshold:
                self._quarantine(health, now,
                                 f"{health.consecutive_placement_failures} "
                                 "consecutive placement failures")
                continue
            if health.samples < cfg.min_samples:
                continue
            if health.score < cfg.quarantine_ratio:
                self._quarantine(health, now,
                                 "realized/estimated goodput ratio "
                                 f"{health.score:.2f} < "
                                 f"{cfg.quarantine_ratio:.2f}")
            elif health.score < cfg.probation_ratio \
                    and health.state == HEALTHY:
                health.state = PROBATION
                self._emit("probation", now, node_id,
                           f"goodput ratio {health.score:.2f} < "
                           f"{cfg.probation_ratio:.2f}; "
                           "utilities discounted")
            elif health.score >= cfg.recover_ratio \
                    and health.state == PROBATION:
                health.state = HEALTHY
                self._emit("recover", now, node_id,
                           f"goodput ratio {health.score:.2f} recovered")

    def _quarantine(self, health: NodeHealth, now: float,
                    reason: str) -> None:
        cfg = self.config
        if health.quarantine_trips >= cfg.drain_after:
            health.state = DRAINED
            self._emit("drain", now, health.node_id,
                       f"{reason}; exceeded {cfg.drain_after} quarantine "
                       "trips — drained for operator attention")
            return
        health.quarantine_trips += 1
        duration = min(cfg.quarantine_cap_s,
                       cfg.quarantine_base_s
                       * (2 ** (health.quarantine_trips - 1)))
        health.state = QUARANTINED
        health.quarantined_until = now + duration
        health.consecutive_placement_failures = 0
        health.samples = 0
        self._emit("quarantine", now, health.node_id,
                   f"{reason}; quarantined {duration:.0f}s "
                   f"(trip {health.quarantine_trips})")

    # -- views ---------------------------------------------------------------

    def excluded_nodes(self) -> frozenset[int]:
        """Nodes the scheduler must not place on."""
        return frozenset(node_id for node_id, health in self._nodes.items()
                         if health.state in (QUARANTINED, DRAINED))

    def healthy_view(self, cluster: Cluster) -> Cluster:
        """``cluster`` minus quarantined/drained nodes.

        Returns the *same* object when nothing is excluded, so schedulers
        that cache per-cluster state (placers key on object identity) are
        unaffected on the healthy path.  If exclusion would leave zero
        nodes, the best excluded node is pressed back into service on
        probation — an empty cluster deadlocks every job, which is worse
        than one sick node."""
        excluded = self.excluded_nodes()
        if not excluded:
            return cluster
        keep = tuple(n for n in cluster.nodes if n.node_id not in excluded)
        if not keep:
            candidates = [self._nodes[n.node_id] for n in cluster.nodes
                          if self._nodes.get(n.node_id) is not None]
            quarantined = [h for h in candidates if h.state == QUARANTINED]
            pool = quarantined or [h for h in candidates
                                   if h.state == DRAINED]
            if not pool:
                return cluster
            best = max(pool, key=lambda h: (h.score, -h.node_id))
            best.state = PROBATION
            best.score = 1.0
            best.samples = 0
            best.consecutive_placement_failures = 0
            self._emit("reinstate", -1.0, best.node_id,
                       "emergency reinstatement: every node was excluded")
            keep = tuple(n for n in cluster.nodes
                         if n.node_id not in self.excluded_nodes())
        if len(keep) == len(cluster.nodes):
            return cluster
        return Cluster(nodes=keep)

    def type_discounts(self, cluster: Cluster) -> dict[str, float]:
        """Goodput multiplier per GPU type, weighted by the fraction of
        that type's (schedulable) nodes on probation.  ``{}`` when no node
        is on probation, so the healthy path stays bit-identical."""
        probation = {node_id for node_id, health in self._nodes.items()
                     if health.state == PROBATION}
        if not probation:
            return {}
        totals: dict[str, int] = {}
        flagged: dict[str, int] = {}
        for node in cluster.nodes:
            totals[node.gpu_type] = totals.get(node.gpu_type, 0) + 1
            if node.node_id in probation:
                flagged[node.gpu_type] = flagged.get(node.gpu_type, 0) + 1
        discount = self.config.probation_discount
        return {gpu_type: 1.0 - (1.0 - discount) * count / totals[gpu_type]
                for gpu_type, count in flagged.items()}

    # -- reporting -----------------------------------------------------------

    def state_counts(self) -> dict[str, int]:
        counts = dict.fromkeys(STATES, 0)
        for health in self._nodes.values():
            counts[health.state] += 1
        return counts

    def states(self) -> dict[int, str]:
        return {node_id: health.state
                for node_id, health in self._nodes.items()}

    def drain_events(self) -> list[HealthEvent]:
        """Return and clear events emitted since the last call."""
        events = self._pending
        self._pending = []
        return events

    def _emit(self, kind: str, now: float, node_id: int,
              detail: str) -> None:
        self._pending.append(HealthEvent(kind=kind, time=now,
                                         node_id=node_id, detail=detail))
        self.tracer.instant("health_event", kind=kind, node=node_id,
                            detail=detail)
        if self.metrics is not None:
            self.metrics.counter(f"health.{kind}").inc()

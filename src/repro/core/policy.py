"""The Sia scheduling policy (Section 3.4).

Each round:

1. build the valid configuration set ``C`` for the cluster (Section 3.3);
2. per job, filter ``C`` to what the job may use this round — submitter GPU
   limits, the <= 2x scale-up rule, allowed GPU types, hybrid replica
   multiples;
3. query each job's Goodput Estimator for every feasible configuration;
4. row-normalize the goodput matrix, discount restarts (Equation 3), shape
   with the fairness power ``p`` and allocation incentive ``lambda``;
5. solve the 0/1 ILP with per-GPU-type capacity constraints;
6. hand the chosen configurations to the Placer.

Non-preemptible running jobs are pinned to their current configuration via
forced ILP assignments (Section 3.4, "Preemption and reservation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core import matrix as gm
from repro.core.configs import build_config_set
from repro.core.ilp import AssignmentProblem, AssignmentSolution, solve_assignment
from repro.core.types import Configuration, PolicyDecision
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # avoid a circular import; JobView is only a type hint
    from repro.core.resilience import ResilienceConfig
    from repro.schedulers.base import JobView


@dataclass
class SiaPolicyParams:
    """Tunables with the paper's defaults (Section 4.3)."""

    #: fairness power p (Section 5.7; default -0.5).
    p: float = -0.5
    #: allocation incentive lambda (Section 4.3; default 1.1).
    allocation_incentive: float = 1.1
    #: per-round scale-up cap (Section 3.1; "at most 2x per round").
    scale_up_factor: int = 2
    #: ILP backend — any of :data:`repro.core.ilp.BACKENDS` ('milp',
    #: 'lp_round', 'decomposed', 'tiered', 'greedy', 'exact').
    solver: str = "milp"
    #: thread last round's allocations into the solver as a warm start:
    #: the LP-rounding/decomposed tiers use it to keep allocations sticky
    #: across equivalent optima, and it feeds the reuse check below.  The
    #: MILP backend ignores it (scipy exposes no incumbent API), so the
    #: default is decision-neutral.
    warm_start: bool = True
    #: when set, skip the solve entirely on rounds where the previous
    #: assignment is still feasible and within this relative tolerance of
    #: the fresh LP bound (the "reuse check"; ~2 LP solves worth of work
    #: saved per skipped MILP).  None disables the check.
    reuse_tolerance: float | None = None
    #: disable the restart factor (ablation).
    use_restart_factor: bool = True
    #: evaluate each job's utility row through the estimator's batched
    #: ``goodput_batch`` entry point when available (one vectorized pass per
    #: row) instead of a per-configuration scalar loop.  Both paths produce
    #: identical decisions; the flag exists for A/B benchmarking.
    vectorized: bool = True
    #: when set, route the ILP through a ResilientSolver (budget + fallback
    #: chain + circuit breaker); None keeps the direct solver call.
    resilience: "ResilienceConfig | None" = None


class SiaPolicy:
    """Computes one round's configuration assignments."""

    #: observability tracer (the SiaScheduler forwards the run's tracer so
    #: the policy's phase spans nest under the scheduler's plan span).
    tracer: Tracer = NULL_TRACER
    #: shared metrics registry, forwarded to the resilient solver so its
    #: breaker/backend counters reach the run's round snapshots.
    metrics = None
    #: per-GPU-type goodput discounts for probation nodes, forwarded by the
    #: scheduler from the health layer each round; None/{} = no discount.
    health_discounts: dict[str, float] | None = None

    def __init__(self, params: SiaPolicyParams | None = None):
        self.params = params or SiaPolicyParams()
        self._config_cache: dict[tuple, list[Configuration]] = {}
        self.resilient_solver = None
        if self.params.resilience is not None:
            from repro.core.resilience import ResilientSolver
            self.resilient_solver = ResilientSolver(self.params.resilience)

    @staticmethod
    def _cluster_signature(cluster: Cluster) -> tuple:
        """A cheap structural key for the configuration-set cache.

        Covers everything :func:`build_config_set` reads — GPU-type
        appearance order and each node's (type, size) — so two distinct
        ``Cluster`` objects with identical structure share cached
        configurations, and a *mutated-in-place* or rebuilt cluster never
        reuses a stale set (``id()`` keying guaranteed neither).
        """
        return tuple((n.gpu_type, n.num_gpus) for n in cluster.nodes)

    def configurations(self, cluster: Cluster,
                       max_gpus: int | None = None) -> list[Configuration]:
        """The valid configuration set, cached per cluster structure."""
        key = (self._cluster_signature(cluster), max_gpus)
        cached = self._config_cache.get(key)
        if cached is not None:
            return cached
        configs = build_config_set(cluster, max_gpus=max_gpus)
        if len(self._config_cache) >= 32:  # bound growth on elastic clusters
            self._config_cache.clear()
        self._config_cache[key] = configs
        return configs

    def feasible_configs(self, view: "JobView",
                         configs: list[Configuration],
                         index_map: dict[Configuration, int] | None = None,
                         ) -> list[int]:
        """Indices of configurations the job may use this round."""
        job = view.job
        allowed_types = job.allowed_gpu_types
        current = view.current_config
        if current is not None:
            growth_cap = current.num_gpus * self.params.scale_up_factor
        else:
            growth_cap = self._starting_cap(view, configs)
        out: list[int] = []
        for j, config in enumerate(configs):
            if allowed_types is not None and config.gpu_type not in allowed_types:
                continue
            if config.num_gpus > job.effective_max_gpus:
                continue
            if not self._meets_minimum(view, config):
                continue
            if config.num_gpus > growth_cap and config != current:
                continue
            out.append(j)
        # A running job may always keep its configuration.
        if current is not None:
            if index_map is not None:
                idx = index_map.get(current)
            else:
                idx = configs.index(current) if current in configs else None
            if idx is not None and idx not in out:
                out.append(idx)
        return out

    def _starting_cap(self, view: "JobView",
                      configs: list[Configuration]) -> int:
        """Initial allocation cap for a queued job: exactly the minimum size
        (Section 3.1's scale-up policy), which for hybrid jobs is the largest
        per-type replica size so every profiled type is reachable."""
        job = view.job
        if job.hybrid is not None:
            return max(job.hybrid.stages_per_type.values())
        return max(1, job.effective_min_gpus)

    def _meets_minimum(self, view: "JobView", config: Configuration) -> bool:
        job = view.job
        if config.num_gpus < job.effective_min_gpus:
            return False
        if job.fixed_num_gpus is not None \
                and config.num_gpus != job.fixed_num_gpus:
            return False
        if job.hybrid is not None:
            if job.hybrid.num_replicas(config) is None:
                return False
        return True

    # -- main entry point ------------------------------------------------------

    def decide(self, views: "list[JobView]", cluster: Cluster,
               now: float, previous: dict | None = None) -> PolicyDecision:
        """One round's decision.  ``previous`` (job_id ->
        :class:`~repro.core.types.Allocation`, as the engine hands the
        scheduler) seeds the solver warm start and reuse check when
        :attr:`SiaPolicyParams.warm_start` is on."""
        if not views:
            return PolicyDecision()
        tracer = self.tracer
        with tracer.span("bootstrap", jobs=len(views)):
            max_gpus = max(v.job.effective_max_gpus for v in views)
            configs = self.configurations(cluster, max_gpus=max_gpus)
            n_configs = len(configs)
            # One index map per round; every per-job lookup below is O(1).
            config_pos = gm.config_index_map(configs)

        with tracer.span("goodput_eval", jobs=len(views), configs=n_configs):
            use_batch = self.params.vectorized
            goodputs: list[dict[int, float]] = []
            for view in views:
                feasible = self.feasible_configs(view, configs, config_pos)
                row: dict[int, float] = {}
                batch = getattr(view.estimator, "goodput_batch", None) \
                    if use_batch else None
                if batch is not None:
                    values = batch([configs[j] for j in feasible])
                    for j, value in zip(feasible, values):
                        if value > 0:
                            row[j] = float(value)
                else:
                    for j in feasible:
                        value = view.estimator.goodput(configs[j])
                        if value > 0:
                            row[j] = value
                goodputs.append(row)

            raw = gm.build_goodput_matrix(goodputs, n_configs)
            min_gpus = [v.job.effective_min_gpus for v in views]
            normalized = gm.normalize_rows(raw, min_gpus)

            current_idx = [gm.config_index(configs, v.current_config,
                                           config_pos)
                           for v in views]
            if self.params.use_restart_factor:
                factors = [gm.restart_factor(v.age, v.num_restarts,
                                             v.job.restart_delay)
                           for v in views]
            else:
                factors = [1.0] * len(views)
            discounted = gm.apply_restart_discount(normalized, current_idx,
                                                   factors)
            if self.health_discounts:
                # Probation nodes (health layer): shave the goodput domain
                # before fairness shaping so the discount is direction-
                # correct under both signs of p.
                discounted = gm.apply_health_discount(
                    discounted, [c.gpu_type for c in configs],
                    self.health_discounts)
            utilities = gm.shape_utilities(
                discounted, p=self.params.p,
                allocation_incentive=self.params.allocation_incentive)

            forced: dict[int, int] = {}
            for i, view in enumerate(views):
                if view.is_running and not view.job.preemptible \
                        and current_idx[i] is not None:
                    forced[i] = current_idx[i]

        with tracer.span("solve", backend=self.params.solver):
            problem = AssignmentProblem(
                utilities=utilities,
                config_gpus=[c.num_gpus for c in configs],
                config_types=[c.gpu_type for c in configs],
                capacities=cluster.capacities(),
                forced=forced,
            )
            warm = None
            if self.params.warm_start and previous:
                warm = gm.warm_start_pairs([v.job_id for v in views],
                                           previous, config_pos) or None
            if self.resilient_solver is not None:
                self.resilient_solver.tracer = tracer
                self.resilient_solver.metrics = self.metrics
                solution, backend, degraded = self.resilient_solver.solve(
                    problem, primary=self.params.solver, warm_start=warm,
                    reuse_tolerance=self.params.reuse_tolerance)
            else:
                solution: AssignmentSolution = solve_assignment(
                    problem, backend=self.params.solver, tracer=tracer,
                    warm_start=warm,
                    reuse_tolerance=self.params.reuse_tolerance)
                backend = solution.backend or self.params.solver
                degraded = False
            if self.metrics is not None:
                if solution.reused:
                    self.metrics.counter("solver.reuse_skips").inc()
                elif solution.warm_started:
                    self.metrics.counter("solver.warm_start_hits").inc()

        assignments = {
            views[i].job_id: configs[j]
            for i, j in solution.assignment.items()
        }
        # Surface the raw (undiscounted, unshaped) goodput the ILP's utility
        # row was built from — the estimate side of the goodput ledger.
        estimates = {}
        for i, j in solution.assignment.items():
            value = goodputs[i].get(j, 0.0)
            if value > 0:
                estimates[views[i].job_id] = value
        return PolicyDecision(assignments=assignments,
                              solve_time=solution.solve_time,
                              objective=solution.objective,
                              backend=backend, degraded=degraded,
                              estimates=estimates)

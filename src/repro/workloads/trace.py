"""Trace machinery: category sampling, arrival processes, adaptivity mixes.

The paper derives workloads from three production traces by bucketing jobs
into total-GPU-time categories (S: 0-1 h, M: 1-10 h, L: 10-100 h, XL:
>100 h) and mapping each category to representative Table 2 models
(Section 4.1).  We reproduce that pipeline with seeded synthetic sampling:
a category mix, a Poisson (optionally diurnal/bursty) arrival process, and
per-job work-scale jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.types import AdaptivityMode
from repro.jobs.job import Job, make_job
from repro.perf.profiles import CATEGORY_MODELS

#: max-GPU declarations by category (submitters of bigger jobs ask for more).
_MAX_GPUS_BY_CATEGORY = {"S": 8, "M": 16, "L": 16, "XL": 16, "XXL": 64}


@dataclass
class TraceSpec:
    """Parameters of one synthetic trace family."""

    name: str
    #: category -> probability (must sum to 1).
    category_mix: dict[str, float]
    #: average arrivals per hour.
    arrival_rate_per_hour: float = 20.0
    #: job-submission window, hours.
    window_hours: float = 8.0
    #: lognormal sigma of per-job work-scale jitter.
    work_sigma: float = 0.4
    #: diurnal modulation amplitude in [0, 1); 0 = plain Poisson.
    diurnal_amplitude: float = 0.0
    #: probability an arrival triggers a submission-script burst.
    burst_probability: float = 0.0
    #: burst size range (inclusive).
    burst_size: tuple[int, int] = (4, 12)

    def __post_init__(self) -> None:
        total = sum(self.category_mix.values())
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"category mix must sum to 1, got {total}")
        unknown = set(self.category_mix) - set(CATEGORY_MODELS)
        if unknown:
            raise ValueError(f"unknown categories: {sorted(unknown)}")


@dataclass
class Trace:
    """A concrete sampled trace."""

    name: str
    jobs: list[Job] = field(default_factory=list)
    seed: int = 0

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def models_used(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs:
            counts[job.model_name] = counts.get(job.model_name, 0) + 1
        return counts


def _arrival_times(spec: TraceSpec, rng: np.random.Generator,
                   num_jobs: int | None) -> list[float]:
    """Sample arrival timestamps (seconds) over the submission window."""
    window_s = spec.window_hours * 3600.0
    if num_jobs is None:
        num_jobs = int(round(spec.arrival_rate_per_hour * spec.window_hours))
    times: list[float] = []
    while len(times) < num_jobs:
        t = float(rng.uniform(0.0, window_s))
        if spec.diurnal_amplitude > 0.0:
            # Thinning: accept proportionally to the diurnal intensity.
            hours = t / 3600.0
            intensity = 1.0 + spec.diurnal_amplitude * math.sin(
                2.0 * math.pi * hours / 24.0)
            if rng.uniform(0.0, 1.0 + spec.diurnal_amplitude) > intensity:
                continue
        times.append(t)
        if spec.burst_probability > 0.0 \
                and rng.uniform() < spec.burst_probability:
            size = int(rng.integers(spec.burst_size[0], spec.burst_size[1] + 1))
            for _ in range(size):
                if len(times) >= num_jobs:
                    break
                times.append(min(window_s, t + float(rng.uniform(0.0, 300.0))))
    times.sort()
    return times[:num_jobs]


def generate_trace(spec: TraceSpec, *, seed: int = 0,
                   num_jobs: int | None = None,
                   work_scale_factor: float = 1.0,
                   window_hours: float | None = None,
                   adaptivity: AdaptivityMode = AdaptivityMode.ADAPTIVE) -> Trace:
    """Sample one trace from a spec.

    ``work_scale_factor`` uniformly shrinks/stretches all jobs (benchmarks
    use < 1 to keep simulated horizons short while preserving relative job
    sizes); pair it with a proportionally smaller ``window_hours`` to keep
    the cluster-load profile (contention) of the full-scale trace.
    Non-adaptive traces still need tuned batch/GPU settings; use
    :mod:`repro.workloads.tuning` on the result for rigid baselines.
    """
    if work_scale_factor <= 0:
        raise ValueError("work_scale_factor must be positive")
    if window_hours is not None:
        if window_hours <= 0:
            raise ValueError("window_hours must be positive")
        spec = replace(spec, window_hours=window_hours)
    rng = np.random.default_rng(seed)
    times = _arrival_times(spec, rng, num_jobs)
    categories = list(spec.category_mix)
    probabilities = [spec.category_mix[c] for c in categories]

    jobs: list[Job] = []
    for index, submit in enumerate(times):
        category = categories[int(rng.choice(len(categories), p=probabilities))]
        models = CATEGORY_MODELS[category]
        model = models[int(rng.integers(0, len(models)))]
        jitter = float(np.exp(rng.normal(0.0, spec.work_sigma)))
        jitter = min(3.0, max(0.3, jitter))
        jobs.append(make_job(
            job_id=f"{spec.name}-{seed}-{index:04d}",
            model_name=model,
            submit_time=submit,
            adaptivity=adaptivity,
            work_scale=jitter * work_scale_factor,
            max_gpus=_MAX_GPUS_BY_CATEGORY[category],
        ))
    return Trace(name=f"{spec.name}-{seed}", jobs=jobs, seed=seed)


def with_adaptivity_mix(jobs: list[Job], *, strong_fraction: float = 0.0,
                        rigid_fraction: float = 0.0,
                        seed: int = 0) -> list[Job]:
    """Return a copy of a job list with some jobs demoted to strong-scaling
    or rigid adaptivity (Figure 11).  Fractions must sum to <= 1; demoted
    jobs pin their batch size (and, for rigid, a 1..4 GPU count)."""
    if strong_fraction < 0 or rigid_fraction < 0 \
            or strong_fraction + rigid_fraction > 1:
        raise ValueError("invalid adaptivity fractions")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(jobs))
    n_strong = int(round(strong_fraction * len(jobs)))
    n_rigid = int(round(rigid_fraction * len(jobs)))
    strong_ids = {jobs[i].job_id for i in order[:n_strong]}
    rigid_ids = {jobs[i].job_id for i in order[n_strong:n_strong + n_rigid]}

    out: list[Job] = []
    for job in jobs:
        if job.job_id in strong_ids:
            out.append(make_job(
                job.job_id, job.model_name, job.submit_time,
                adaptivity=AdaptivityMode.STRONG_SCALING,
                work_scale=1.0, max_gpus=job.max_gpus,
                fixed_batch_size=_tuned_batch(job, rng)))
            out[-1].target_samples = job.target_samples
        elif job.job_id in rigid_ids:
            out.append(make_job(
                job.job_id, job.model_name, job.submit_time,
                adaptivity=AdaptivityMode.RIGID,
                work_scale=1.0, max_gpus=job.max_gpus,
                fixed_batch_size=_tuned_batch(job, rng),
                fixed_num_gpus=int(2 ** rng.integers(0, 3))))
            out[-1].target_samples = job.target_samples
        else:
            out.append(job)
    return out


def _tuned_batch(job: Job, rng: np.random.Generator) -> int:
    """A plausible user-chosen batch size: 1-4x the reference size, capped."""
    profile = job.profile
    factor = int(2 ** rng.integers(0, 3))
    return min(profile.max_bsz, profile.min_bsz * factor)

"""The three workload families of Section 4.1: Philly, Helios, newTrace.

Category mixes follow the published characterizations: Philly is dominated
by short jobs; Helios jobs "request more GPUs and run for longer, resulting
in a higher cluster load"; newTrace runs 48 hours with diurnal bursts of
5-100 jobs/hr from submission scripts (hyper-parameter sweeps).
"""

from __future__ import annotations

from repro.core.types import AdaptivityMode
from repro.workloads.trace import Trace, TraceSpec, generate_trace

PHILLY = TraceSpec(
    name="philly",
    category_mix={"S": 0.72, "M": 0.20, "L": 0.06, "XL": 0.02},
    arrival_rate_per_hour=20.0,
    window_hours=8.0,
)

HELIOS = TraceSpec(
    name="helios",
    category_mix={"S": 0.60, "M": 0.25, "L": 0.10, "XL": 0.05},
    arrival_rate_per_hour=20.0,
    window_hours=8.0,
)

NEWTRACE = TraceSpec(
    name="newtrace",
    category_mix={"S": 0.55, "M": 0.27, "L": 0.13, "XL": 0.05},
    arrival_rate_per_hour=20.0,
    window_hours=48.0,
    diurnal_amplitude=0.8,
    burst_probability=0.05,
)

SPECS = {"philly": PHILLY, "helios": HELIOS, "newtrace": NEWTRACE}


def philly_trace(seed: int = 0, *, num_jobs: int | None = None,
                 work_scale_factor: float = 1.0,
                 window_hours: float | None = None,
                 adaptivity: AdaptivityMode = AdaptivityMode.ADAPTIVE) -> Trace:
    """One sampled Philly-like trace (default 160 jobs over 8 h)."""
    return generate_trace(PHILLY, seed=seed, num_jobs=num_jobs,
                          work_scale_factor=work_scale_factor,
                          window_hours=window_hours,
                          adaptivity=adaptivity)


def helios_trace(seed: int = 0, *, num_jobs: int | None = None,
                 work_scale_factor: float = 1.0,
                 window_hours: float | None = None,
                 adaptivity: AdaptivityMode = AdaptivityMode.ADAPTIVE) -> Trace:
    """One sampled Helios-like trace (default 160 jobs over 8 h)."""
    return generate_trace(HELIOS, seed=seed, num_jobs=num_jobs,
                          work_scale_factor=work_scale_factor,
                          window_hours=window_hours,
                          adaptivity=adaptivity)


def newtrace_trace(seed: int = 0, *, num_jobs: int | None = None,
                   work_scale_factor: float = 1.0,
                   window_hours: float | None = None,
                   adaptivity: AdaptivityMode = AdaptivityMode.ADAPTIVE) -> Trace:
    """One sampled newTrace-like trace (default 960 jobs over 48 h)."""
    return generate_trace(NEWTRACE, seed=seed, num_jobs=num_jobs,
                          work_scale_factor=work_scale_factor,
                          window_hours=window_hours,
                          adaptivity=adaptivity)


def trace_by_name(name: str, seed: int = 0, **kwargs) -> Trace:
    try:
        spec = SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SPECS))
        raise KeyError(f"unknown trace {name!r}; known traces: {known}") from None
    return generate_trace(spec, seed=seed, **kwargs)

"""TunedJobs: hand-tuned batch size and GPU count for rigid schedulers.

Gavel (and the other inelastic baselines) cannot auto-tune job parameters,
so Section 4.3 manually tunes each trace job: search (batch size, GPU
count) combinations and randomly choose one whose speedup over the 1-GPU
optimal-batch baseline is 50-80 % of ideal (i.e. 50-80 % scaling
efficiency), capped at ``max_count`` GPUs.  We measure speedups on the
job's fastest feasible GPU type, matching the paper's use of simulated
runtimes for tuning.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.types import AdaptivityMode
from repro.jobs.job import Job, make_job
from repro.perf import profiles

#: candidate GPU counts the tuner searches (powers of two, Section 4.3
#: caps at 16 GPUs on the physical/heterogeneous testbeds).
_CANDIDATE_COUNTS = (1, 2, 4, 8, 16)

#: target scaling-efficiency band from Section 4.3.
EFFICIENCY_BAND = (0.5, 0.8)


def _best_gpu_type(model_name: str, cluster: Cluster) -> str | None:
    """The GPU type the model runs fastest on (1 GPU, optimal batch)."""
    best_type, best_rate = None, 0.0
    profile = profiles.model_profile(model_name)
    for gpu_type in cluster.gpu_types:
        cap = profiles.max_local_bsz(model_name, gpu_type)
        if cap < 1:
            continue
        model = profiles.true_goodput_model(model_name, gpu_type)
        rate = model.goodput(1, 1, max_local_bsz=cap,
                             max_total_bsz=profile.max_bsz,
                             min_total_bsz=profile.min_bsz)
        if rate > best_rate:
            best_type, best_rate = gpu_type, rate
    return best_type


def tune_job(job: Job, cluster: Cluster, rng: np.random.Generator,
             *, max_count: int = 16) -> tuple[int, int]:
    """Pick a (fixed_num_gpus, fixed_batch_size) pair for one job.

    Returns the chosen pair; falls back to (1, reference batch) when no
    combination lands in the efficiency band (tiny models).
    """
    profile = job.profile
    gpu_type = _best_gpu_type(job.model_name, cluster)
    if gpu_type is None:
        return 1, profile.min_bsz
    cap = profiles.max_local_bsz(job.model_name, gpu_type)
    model = profiles.true_goodput_model(job.model_name, gpu_type)
    baseline = model.goodput(1, 1, max_local_bsz=cap,
                             max_total_bsz=profile.max_bsz,
                             min_total_bsz=profile.min_bsz)
    node_size = cluster.max_node_size(gpu_type)

    candidates: list[tuple[int, int]] = []
    for count in _CANDIDATE_COUNTS:
        if count > min(max_count, job.max_gpus):
            continue
        nodes = max(1, -(-count // node_size))
        for factor in (1, 2, 4, 8):
            bsz = min(profile.max_bsz, profile.min_bsz * count * factor)
            rate = model.goodput(count, nodes, max_local_bsz=cap,
                                 max_total_bsz=profile.max_bsz,
                                 fixed_total_bsz=bsz)
            if rate <= 0 or baseline <= 0:
                continue
            efficiency = rate / (baseline * count)
            if EFFICIENCY_BAND[0] <= efficiency <= EFFICIENCY_BAND[1]:
                candidates.append((count, bsz))
    if not candidates:
        return 1, profile.min_bsz
    return candidates[int(rng.integers(0, len(candidates)))]


def tuned_jobs(jobs: list[Job], cluster: Cluster, *, seed: int = 0,
               max_count: int = 16,
               mode: AdaptivityMode = AdaptivityMode.RIGID) -> list[Job]:
    """TunedJobs conversion of a trace: every job becomes rigid (or
    strong-scaling) with tuned parameters, preserving its work total."""
    if mode is AdaptivityMode.ADAPTIVE:
        raise ValueError("tuned jobs are rigid or strong-scaling")
    rng = np.random.default_rng(seed)
    out: list[Job] = []
    for job in jobs:
        count, bsz = tune_job(job, cluster, rng, max_count=max_count)
        tuned = make_job(
            job.job_id, job.model_name, job.submit_time,
            adaptivity=mode,
            max_gpus=job.max_gpus,
            fixed_batch_size=bsz,
            fixed_num_gpus=count if mode is AdaptivityMode.RIGID else None,
        )
        tuned.target_samples = job.target_samples
        out.append(tuned)
    return out

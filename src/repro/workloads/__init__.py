"""Workload generators: Philly/Helios/newTrace families and TunedJobs."""

from repro.workloads.generators import (HELIOS, NEWTRACE, PHILLY, SPECS,
                                        helios_trace, newtrace_trace,
                                        philly_trace, trace_by_name)
from repro.workloads.trace import (Trace, TraceSpec, generate_trace,
                                   with_adaptivity_mix)
from repro.workloads.tuning import EFFICIENCY_BAND, tune_job, tuned_jobs

__all__ = [
    "HELIOS", "NEWTRACE", "PHILLY", "SPECS",
    "helios_trace", "newtrace_trace", "philly_trace", "trace_by_name",
    "Trace", "TraceSpec", "generate_trace", "with_adaptivity_mix",
    "EFFICIENCY_BAND", "tune_job", "tuned_jobs",
]

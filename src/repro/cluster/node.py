"""Physical node model.

A node hosts a fixed number of GPUs of a single type.  Sia's configuration
rules (Section 3.3) require power-of-two allocations within a node; nodes
whose GPU count is not a power of two are decomposed into *virtual nodes*
with power-of-two sizes (e.g. a 12-GPU node becomes virtual nodes of 8 + 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.gpu import gpu_spec


def power_of_two_decomposition(value: int) -> list[int]:
    """Decompose ``value`` into powers of two, largest first.

    >>> power_of_two_decomposition(12)
    [8, 4]
    >>> power_of_two_decomposition(8)
    [8]
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    parts: list[int] = []
    bit = 1 << (value.bit_length() - 1)
    while value:
        if value >= bit:
            parts.append(bit)
            value -= bit
        bit >>= 1
    return parts


@dataclass
class Node:
    """One physical (or virtual) node in the cluster."""

    node_id: int
    gpu_type: str
    num_gpus: int
    #: id of the physical node this virtual node was carved from (or self).
    physical_id: int | None = None

    def __post_init__(self) -> None:
        gpu_spec(self.gpu_type)  # validate the type exists
        if self.num_gpus < 1:
            raise ValueError(f"node {self.node_id} must have >= 1 GPU")
        if self.physical_id is None:
            self.physical_id = self.node_id

    @property
    def is_power_of_two(self) -> bool:
        return self.num_gpus & (self.num_gpus - 1) == 0


@dataclass
class NodeGroup:
    """A homogeneous group of identical nodes, the unit used by presets."""

    gpu_type: str
    num_nodes: int
    gpus_per_node: int

    def __post_init__(self) -> None:
        gpu_spec(self.gpu_type)
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("NodeGroup sizes must be positive")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node


@dataclass
class NodeState:
    """Mutable occupancy of one node during simulation/placement."""

    node: Node
    #: job id -> GPUs of this node held by the job.
    used_by: dict[str, int] = field(default_factory=dict)

    @property
    def used(self) -> int:
        return sum(self.used_by.values())

    @property
    def free(self) -> int:
        return self.node.num_gpus - self.used

    @property
    def is_empty(self) -> bool:
        return not self.used_by

    def acquire(self, job_id: str, count: int) -> None:
        if count > self.free:
            raise ValueError(
                f"node {self.node.node_id}: cannot acquire {count} GPUs "
                f"({self.free} free)"
            )
        self.used_by[job_id] = self.used_by.get(job_id, 0) + count

    def release(self, job_id: str) -> int:
        """Release all GPUs held by ``job_id``; returns the freed count."""
        return self.used_by.pop(job_id, 0)

"""The three evaluation testbeds from Section 4.3, plus helpers.

* ``physical()``      — 3x rtx(8) + 2x a100(8) + 1x quad(4) = 44 GPUs.
* ``homogeneous()``   — 16x t4(4) = 64 GPUs.
* ``heterogeneous()`` — 6x t4(4) + 3x rtx(8) + 2x a100(8) = 64 GPUs.

``scaled_heterogeneous(total_gpus)`` replicates the heterogeneous mix to a
target size (Figure 9 scalability study: 64 → 2048 GPUs).
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeGroup


def physical() -> Cluster:
    """The 44-GPU 3-GPU-type physical testbed (Section 5.1)."""
    return Cluster.from_groups([
        NodeGroup("rtx", num_nodes=3, gpus_per_node=8),
        NodeGroup("a100", num_nodes=2, gpus_per_node=8),
        NodeGroup("quad", num_nodes=1, gpus_per_node=4),
    ])


def homogeneous() -> Cluster:
    """16 cloud t4 nodes, 64 GPUs total (Section 4.3)."""
    return Cluster.from_groups([
        NodeGroup("t4", num_nodes=16, gpus_per_node=4),
    ])


def heterogeneous() -> Cluster:
    """6 t4 + 3 rtx + 2 a100 nodes, 64 GPUs total (Section 4.3)."""
    return Cluster.from_groups([
        NodeGroup("t4", num_nodes=6, gpus_per_node=4),
        NodeGroup("rtx", num_nodes=3, gpus_per_node=8),
        NodeGroup("a100", num_nodes=2, gpus_per_node=8),
    ])


def scaled_heterogeneous(total_gpus: int) -> Cluster:
    """Heterogeneous mix scaled to approximately ``total_gpus`` (Figure 9).

    The base mix is 64 GPUs; ``total_gpus`` must be a positive multiple of 64.
    """
    if total_gpus < 64 or total_gpus % 64 != 0:
        raise ValueError("total_gpus must be a positive multiple of 64")
    factor = total_gpus // 64
    return Cluster.from_groups([
        NodeGroup("t4", num_nodes=6 * factor, gpus_per_node=4),
        NodeGroup("rtx", num_nodes=3 * factor, gpus_per_node=8),
        NodeGroup("a100", num_nodes=2 * factor, gpus_per_node=8),
    ])


PRESETS = {
    "physical": physical,
    "homogeneous": homogeneous,
    "heterogeneous": heterogeneous,
}


def by_name(name: str) -> Cluster:
    try:
        return PRESETS[name]()
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown preset {name!r}; known presets: {known}") from None

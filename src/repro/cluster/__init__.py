"""Cluster/resource model: GPU catalog, nodes, clusters, preset testbeds."""

from repro.cluster.cluster import Cluster, ClusterState
from repro.cluster.gpu import GPU_CATALOG, GPU_POWER_ORDER, GPUSpec, gpu_spec, power_rank
from repro.cluster.node import Node, NodeGroup, NodeState, power_of_two_decomposition
from repro.cluster import presets

__all__ = [
    "Cluster",
    "ClusterState",
    "GPU_CATALOG",
    "GPU_POWER_ORDER",
    "GPUSpec",
    "gpu_spec",
    "power_rank",
    "Node",
    "NodeGroup",
    "NodeState",
    "power_of_two_decomposition",
    "presets",
]

"""Cluster model: a collection of nodes of possibly several GPU types.

The cluster exposes the views the schedulers need:

* node inventory grouped by GPU type (with virtual-node decomposition so
  every schedulable node has a power-of-two GPU count — Section 3.3);
* capacity per GPU type (for ILP / LP constraints);
* mutable occupancy (`ClusterState`) used by the Placer and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.gpu import GPUSpec, gpu_spec
from repro.cluster.node import Node, NodeGroup, NodeState, power_of_two_decomposition


@dataclass(frozen=True)
class Cluster:
    """Immutable description of a cluster."""

    nodes: tuple[Node, ...]

    @staticmethod
    def from_groups(groups: list[NodeGroup], *, split_virtual: bool = True) -> "Cluster":
        """Build a cluster from homogeneous node groups.

        With ``split_virtual`` (the default, matching Section 3.3), nodes with
        non-power-of-two GPU counts are decomposed into power-of-two virtual
        nodes sharing the same physical id.
        """
        nodes: list[Node] = []
        next_id = 0
        next_physical = 0
        for group in groups:
            for _ in range(group.num_nodes):
                physical = next_physical
                next_physical += 1
                if split_virtual:
                    parts = power_of_two_decomposition(group.gpus_per_node)
                else:
                    parts = [group.gpus_per_node]
                for part in parts:
                    nodes.append(Node(node_id=next_id, gpu_type=group.gpu_type,
                                      num_gpus=part, physical_id=physical))
                    next_id += 1
        if not nodes:
            raise ValueError("cluster must contain at least one node")
        return Cluster(nodes=tuple(nodes))

    # -- static views ------------------------------------------------------

    @property
    def gpu_types(self) -> tuple[str, ...]:
        """GPU types present, ordered by first appearance."""
        seen: dict[str, None] = {}
        for node in self.nodes:
            seen.setdefault(node.gpu_type, None)
        return tuple(seen)

    @property
    def total_gpus(self) -> int:
        return sum(node.num_gpus for node in self.nodes)

    def nodes_of_type(self, gpu_type: str) -> tuple[Node, ...]:
        return tuple(n for n in self.nodes if n.gpu_type == gpu_type)

    def capacity(self, gpu_type: str) -> int:
        """Total GPUs of ``gpu_type`` in the cluster."""
        return sum(n.num_gpus for n in self.nodes_of_type(gpu_type))

    def capacities(self) -> dict[str, int]:
        return {t: self.capacity(t) for t in self.gpu_types}

    def max_node_size(self, gpu_type: str) -> int:
        nodes = self.nodes_of_type(gpu_type)
        if not nodes:
            raise KeyError(f"no nodes of type {gpu_type!r}")
        return max(n.num_gpus for n in nodes)

    def spec(self, gpu_type: str) -> GPUSpec:
        return gpu_spec(gpu_type)

    @property
    def is_homogeneous(self) -> bool:
        return len(self.gpu_types) == 1

    def scaled(self, factor: int) -> "Cluster":
        """Return a cluster with every node group replicated ``factor`` times
        (used for the scalability study, Figure 9)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        groups = [NodeGroup(n.gpu_type, factor, n.num_gpus) for n in self.nodes]
        return Cluster.from_groups(groups, split_virtual=False)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``'6x t4(4) + 3x rtx(8) + 2x a100(8)'``."""
        counts: dict[tuple[str, int], int] = {}
        for node in self.nodes:
            key = (node.gpu_type, node.num_gpus)
            counts[key] = counts.get(key, 0) + 1
        parts = [f"{n}x {t}({g})" for (t, g), n in sorted(counts.items())]
        return " + ".join(parts)


@dataclass
class ClusterState:
    """Mutable occupancy of a cluster during scheduling/simulation."""

    cluster: Cluster
    node_states: dict[int, NodeState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_states:
            self.node_states = {
                n.node_id: NodeState(node=n) for n in self.cluster.nodes
            }

    def free_gpus(self, gpu_type: str) -> int:
        return sum(
            st.free for st in self.node_states.values()
            if st.node.gpu_type == gpu_type
        )

    def used_gpus(self, gpu_type: str | None = None) -> int:
        return sum(
            st.used for st in self.node_states.values()
            if gpu_type is None or st.node.gpu_type == gpu_type
        )

    def nodes_of_type(self, gpu_type: str) -> list[NodeState]:
        return [st for st in self.node_states.values()
                if st.node.gpu_type == gpu_type]

    def job_nodes(self, job_id: str) -> dict[int, int]:
        """``{node_id: gpu_count}`` currently held by ``job_id``."""
        return {
            nid: st.used_by[job_id]
            for nid, st in self.node_states.items()
            if job_id in st.used_by
        }

    def release_job(self, job_id: str) -> None:
        for st in self.node_states.values():
            st.release(job_id)

    def clear(self) -> None:
        for st in self.node_states.values():
            st.used_by.clear()

"""GPU type catalog.

The paper's testbeds use four GPU types (Section 4.2).  Each entry records
memory capacity, a relative compute capability (used by the synthetic
ground-truth performance catalog; see ``repro.perf.profiles``) and the
node-level interconnect bandwidths, which determine all-reduce costs.

These are *hardware* facts; how fast a given DL model runs on a given GPU
type is model-dependent and lives in :mod:`repro.perf.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU type."""

    name: str
    #: GPU memory in GiB (limits the local batch size per GPU).
    memory_gb: float
    #: relative dense-compute capability (T4 == 1.0).  Model-specific speedups
    #: are derived from this in the performance catalog but may deviate
    #: (e.g. BERT benefits disproportionately from A100 tensor cores).
    compute_scale: float
    #: intra-node GPU interconnect bandwidth, Gbit/s (NVLink/PCIe).
    intra_node_bw_gbps: float
    #: inter-node network bandwidth, Gbit/s (Ethernet / InfiniBand).
    inter_node_bw_gbps: float

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.compute_scale <= 0:
            raise ValueError(f"invalid GPUSpec for {self.name!r}")
        if self.intra_node_bw_gbps <= 0 or self.inter_node_bw_gbps <= 0:
            raise ValueError(f"invalid bandwidths for {self.name!r}")


#: The four GPU types used throughout the paper's evaluation (Section 4.2).
GPU_CATALOG: dict[str, GPUSpec] = {
    # [Cloud] g4dn.12xlarge: 4x NVIDIA T4 (16 GB), ~10 Gb/s PCIe-ish intra,
    # 50 Gb/s instance networking.
    "t4": GPUSpec("t4", memory_gb=16.0, compute_scale=1.0,
                  intra_node_bw_gbps=64.0, inter_node_bw_gbps=50.0),
    # [On-prem] 8x RTX 2080Ti (11 GB) with 50 Gb/s Ethernet.
    "rtx": GPUSpec("rtx", memory_gb=11.0, compute_scale=2.1,
                   intra_node_bw_gbps=96.0, inter_node_bw_gbps=50.0),
    # [On-prem] DGX-A100: 8x A100 (40 GB), NVLink, 1.6 Tb/s InfiniBand.
    "a100": GPUSpec("a100", memory_gb=40.0, compute_scale=5.2,
                    intra_node_bw_gbps=4800.0, inter_node_bw_gbps=1600.0),
    # [On-prem] workstation: 4x Quadro RTX6000 (24 GB), 200 Gb/s InfiniBand.
    "quad": GPUSpec("quad", memory_gb=24.0, compute_scale=2.6,
                    intra_node_bw_gbps=200.0, inter_node_bw_gbps=200.0),
}

#: "More powerful" ordering used by the Pollux mixed-allocation fix-up
#: heuristic (Section 4.3): a100 > quad > rtx > t4.
GPU_POWER_ORDER: tuple[str, ...] = ("a100", "quad", "rtx", "t4")


def gpu_spec(name: str) -> GPUSpec:
    """Look up a GPU type, raising a helpful error for unknown names."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise KeyError(f"unknown GPU type {name!r}; known types: {known}") from None


def power_rank(name: str) -> int:
    """Rank of a GPU type in the power ordering (0 == most powerful).

    Unknown types sort after all catalog types, by compute scale if they have
    been registered, else alphabetically last.
    """
    try:
        return GPU_POWER_ORDER.index(name)
    except ValueError:
        return len(GPU_POWER_ORDER)

"""Discrete-time trace-driven cluster simulator (Section 4.2).

Time advances in scheduler rounds.  Each round:

1. admit newly-arrived jobs (creating and, in Bootstrap mode, profiling
   their Goodput Estimators);
2. inject faults (:mod:`repro.sim.faults`): down nodes evict their jobs to
   the last epoch checkpoint, crashed jobs roll back in place, failed
   restores pay the restart delay again, stragglers slow the executor's
   ground-truth rates, gray nodes slow them *silently* (masked from
   telemetry); then, when the health layer is on, advance the quarantine
   state machine and filter excluded nodes from the scheduler's view;
3. ask the scheduler for a :class:`~repro.schedulers.base.RoundPlan` over
   the surviving nodes (guarded by carry-forward when
   ``SimulatorConfig.resilient`` is set);
4. apply allocation changes, charging model-specific checkpoint-restore
   delays (the paper replaced the original simulator's constant delay with
   per-model delays — so do we); gang launches are fallible — a flapped
   placement holds its grant and pays a jittered capped backoff before
   retrying;
5. advance every running job: the executor picks a batch plan from the
   job's *estimated* models, but progress accrues at the *ground-truth*
   goodput of that plan;
6. report observations (iteration time, gradient noise scale) back to the
   estimator — the online refinement loop of Figure 3 — and record
   telemetry (allocations, solve time, fault events, degraded rounds).

Jobs complete mid-round when their integrated goodput reaches the target;
their GPUs free up at the start of the next round (matching round-based
schedulers).  A configurable time cap guards against starvation; jobs still
active at the cap are reported as censored.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.cluster.cluster import Cluster
from repro.core.health import HealthConfig, HealthTracker, placement_backoff
from repro.core.resilience import carry_forward_plan
from repro.core.types import Allocation, ProfilingMode
from repro.jobs.job import Job
from repro.obs import audit
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.goodput import BatchPlan
from repro.schedulers.base import JobView, RoundPlan, Scheduler
from repro.sim import checkpoint as ckpt
from repro.sim.checkpoint import (CheckpointConfig, CheckpointError,
                                  CheckpointState)
from repro.sim.executor import ExecutionModel, RoundExecution
from repro.sim.faults import FaultContext, FaultModel, NodeCrashModel
from repro.sim.invariants import MODES as INVARIANT_MODES
from repro.sim.invariants import InvariantChecker
from repro.sim.telemetry import (FaultEvent, JobRecord, RoundRecord,
                                 SimulationResult)


@dataclass
class SimulatorConfig:
    """Simulation knobs."""

    profiling_mode: ProfilingMode = ProfilingMode.BOOTSTRAP
    seed: int = 0
    #: per-measurement jitter on reported iteration times (lognormal sigma).
    obs_noise: float = 0.0
    #: fixed per-(job, GPU type) hardware speed variability (lognormal sigma).
    rate_noise: float = 0.0
    #: hard simulation cap, hours.
    max_hours: float = 1000.0
    #: worker-failure injection: expected failures per node-hour (0 = off).
    #: Shorthand for appending a NodeCrashModel to ``fault_models``.
    node_failure_rate: float = 0.0
    #: seconds a failed node stays down before rejoining.
    node_repair_time: float = 1800.0
    #: epoch-checkpoint granularity: jobs checkpoint progress every
    #: 1/epochs_per_job of their work (Section 3.5: "after every epoch, Sia
    #: checkpoints model weights and optimizer states to disk").
    epochs_per_job: int = 30
    #: composable fault injectors (see :mod:`repro.sim.faults`); models
    #: without an explicit seed are bound to one derived from ``seed``.
    fault_models: list[FaultModel] = field(default_factory=list)
    #: catch scheduler exceptions / invalid plans and carry forward the
    #: previous round instead of aborting the run.
    resilient: bool = False
    #: observability tracer carried on the simulation context: injected into
    #: the scheduler and executor, records round/plan/phase spans.  None
    #: keeps the near-zero-cost no-op tracer.
    tracer: Tracer | None = None
    #: metrics registry snapshotted into every RoundRecord; a fresh one is
    #: created when None (pass your own to aggregate across runs).
    metrics: MetricsRegistry | None = None
    #: crash-safety: when set, the engine writes an atomic, checksummed
    #: checkpoint of its complete state every ``checkpoint.every_rounds``
    #: rounds; ``Simulator.run(resume_from=...)`` continues from one
    #: bit-identically (see :mod:`repro.sim.checkpoint`).
    checkpoint: CheckpointConfig | None = None
    #: round-level invariant auditing (:mod:`repro.sim.invariants`):
    #: 'off' (default), 'log' (record violations, keep running), or
    #: 'strict' (raise InvariantError on the first violation).
    invariants: str = "off"
    #: gray-failure defense (:mod:`repro.core.health`): when set, a
    #: HealthTracker scores nodes from realized-vs-estimated goodput and
    #: placement-failure history, quarantines flaky nodes out of the
    #: scheduler's cluster view, and discounts probation nodes' goodputs.
    #: Its state (scores, backoffs) is part of the engine checkpoint.
    health: HealthConfig | None = None
    #: live telemetry hooks (:mod:`repro.obs.stream`): objects with
    #: ``on_round(result, round_index, dt)`` / ``on_finalize(result)`` /
    #: ``close()``, invoked after every recorded round and at run end.
    #: Observers are read-only with respect to simulation state (the
    #: determinism contract) and are never checkpointed — a resumed run's
    #: observers catch up from the restored ``result.rounds``.
    observers: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.invariants not in INVARIANT_MODES:
            raise ValueError(
                f"invariants must be one of {INVARIANT_MODES}, "
                f"got {self.invariants!r}")


@dataclass
class _JobRuntime:
    """Mutable per-job simulation state."""

    job: Job
    estimator: object
    progress: float = 0.0
    allocation: Allocation | None = None
    restart_remaining: float = 0.0
    num_restarts: int = 0
    #: scheduler-decided resource losses while running (audit: PREEMPT).
    num_preemptions: int = 0
    #: moves while running — type change or node move (audit: MIGRATE).
    num_migrations: int = 0
    #: True from a fault eviction/crash until the job holds GPUs again,
    #: so re-acquiring resources classifies as RESTART_AFTER_FAULT.
    lost_to_fault: bool = False
    #: consecutive failed launch attempts (drives the placement-retry
    #: backoff; reset by the first successful launch).
    placement_failures: int = 0
    first_start: float | None = None
    finish_time: float | None = None
    gpu_seconds: dict[str, float] = field(default_factory=dict)
    contention_sum: float = 0.0
    contention_rounds: int = 0

    def charge_gpus(self, seconds: float) -> None:
        if self.allocation is None or seconds <= 0:
            return
        gpu_type = self.allocation.gpu_type
        amount = self.allocation.num_gpus * seconds
        self.gpu_seconds[gpu_type] = self.gpu_seconds.get(gpu_type, 0.0) + amount


def _audit_alloc(allocation: Allocation | None,
                 ) -> tuple[str, int, tuple[int, ...]] | None:
    """An allocation as the (dependency-free) audit classifier sees it."""
    if allocation is None:
        return None
    return (allocation.gpu_type, allocation.num_gpus, allocation.node_ids)


class Simulator:
    """Runs one (cluster, scheduler, job list) experiment."""

    def __init__(self, cluster: Cluster, scheduler: Scheduler,
                 jobs: list[Job], config: SimulatorConfig | None = None):
        if not jobs:
            raise ValueError("need at least one job")
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulatorConfig()
        self._arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self._execution = ExecutionModel(seed=self.config.seed,
                                         rate_noise=self.config.rate_noise,
                                         obs_noise=self.config.obs_noise)
        #: observability: one tracer carried through scheduler + executor,
        #: one metrics registry snapshotted per round.
        self.tracer = self.config.tracer or NULL_TRACER
        self.metrics = self.config.metrics or MetricsRegistry()
        self.scheduler.tracer = self.tracer
        self.scheduler.metrics = self.metrics
        self._execution.tracer = self.tracer
        # Fault subsystem: legacy node_failure_rate becomes a NodeCrashModel
        # seeded exactly as the old inline sampler (seed + 1) so existing
        # configs reproduce bit-identical runs.
        self._fault_models: list[FaultModel] = []
        if self.config.node_failure_rate > 0:
            self._fault_models.append(NodeCrashModel(
                rate=self.config.node_failure_rate,
                repair_time=self.config.node_repair_time,
                seed=self.config.seed + 1))
        for idx, model in enumerate(self.config.fault_models):
            seed = model.seed if model.seed is not None \
                else self.config.seed + 1009 + 31 * idx
            model.bind(seed)  # re-seeding also resets state for reuse
            self._fault_models.append(model)
        #: per-round map job id -> straggler speed factor (<= 1.0).  Reset
        #: at the top of every round's fault pass, so it never needs to be
        #: checkpointed.
        self._round_speed: dict[str, float] = {}
        #: per-round map node id -> silent gray-failure speed factor.  Also
        #: reset every fault pass (never checkpointed); applied to the
        #: executor's ground truth at advance time — by node, so migrating
        #: off a gray node helps immediately — but masked from the
        #: observations the estimator sees.
        self._gray_nodes: dict[int, float] = {}
        self.total_failures = 0
        #: rounds rescued by the simulator's carry-forward guard.
        self.caught_scheduler_failures = 0
        #: round-level invariant auditor (None when invariants == 'off').
        self._invariants: InvariantChecker | None = None
        if self.config.invariants != "off":
            self._invariants = InvariantChecker(mode=self.config.invariants)
        #: gray-failure defense (None when config.health is unset).
        self._health: HealthTracker | None = None
        if self.config.health is not None:
            self._health = HealthTracker(self.config.health)
        self._bind_observability()
        # Mutable loop state, held on the instance so checkpoints can
        # capture it and a restore can continue mid-run.
        self._active: dict[str, _JobRuntime] = {}
        self._finished: list[_JobRuntime] = []
        self._arrival_idx = 0
        self._now = 0.0
        self._result: SimulationResult | None = None

    def _bind_observability(self) -> None:
        """(Re-)inject the live tracer/metrics into every engine layer.

        Called at construction and again after a checkpoint restore —
        checkpoints strip tracers (host wall-clock state) and the restored
        scheduler/checker must see this process's sinks, not the ones from
        the crashed run.
        """
        self.scheduler.tracer = self.tracer
        self.scheduler.metrics = self.metrics
        self._execution.tracer = self.tracer
        if self._invariants is not None:
            self._invariants.tracer = self.tracer
            self._invariants.metrics = self.metrics
        if self._health is not None:
            self._health.tracer = self.tracer
            self._health.metrics = self.metrics
        # A health-aware scheduler (ResilientScheduler) filters its own
        # cluster view and forwards probation discounts; the engine still
        # applies its view filter for every scheduler, so the quarantine
        # invariant holds regardless.  Always (re)assigned so a restored
        # scheduler never keeps a tracker this run's config disabled.
        if hasattr(type(self.scheduler), "health"):
            self.scheduler.health = self._health

    # -- main loop -------------------------------------------------------------

    def run(self, resume_from: str | Path | CheckpointState | None = None,
            ) -> SimulationResult:
        """Run the simulation to completion.

        ``resume_from`` continues a previous run from a checkpoint instead
        of starting fresh: pass a checkpoint file path, a checkpoint
        *directory* (the newest valid checkpoint is used, falling back past
        corrupted files), or an in-memory :class:`CheckpointState`.  The
        restored state replaces this simulator's scheduler, fault models,
        execution model, and metrics registry wholesale, and the continued
        run is bit-identical to the uninterrupted one (wall-clock-derived
        telemetry — ``solve_time`` and timing metrics — excepted).
        """
        if resume_from is not None:
            self._restore(resume_from)
        else:
            self._init_fresh()
        try:
            self._run_loop(max_rounds=None)
        except BaseException:
            # Crashed (or interrupted) mid-run: close stream observers
            # without finalizing, leaving their flushed ``.part`` prefixes
            # on disk for post-mortem reads.
            for observer in self.config.observers:
                observer.close()
            raise
        return self._finalize(self.config.max_hours * 3600.0)

    def run_to_round(self,
                     round_index: int,
                     resume_from: str | Path | CheckpointState | None = None,
                     ) -> CheckpointState:
        """Run (or resume) until exactly ``round_index`` rounds are recorded
        and return a snapshot of the engine state at that boundary — the
        counterfactual fork entry point (:mod:`repro.analysis.replay`).

        The returned state is the same shape a disk checkpoint holds, so it
        can be handed to another simulator's ``run(resume_from=...)`` to
        play out an alternate future.  Raises ``ValueError`` when the run
        ends (all jobs finished, or the time cap hit) before reaching the
        requested round, and when resuming from a checkpoint that is
        already past it.
        """
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        if resume_from is not None:
            self._restore(resume_from)
            recorded = len(self._result.rounds) if self._result else 0
            if recorded > round_index:
                raise ValueError(
                    f"checkpoint is already at round {recorded}, past the "
                    f"requested fork round {round_index}")
        else:
            self._init_fresh()
        self._run_loop(max_rounds=round_index)
        recorded = len(self._result.rounds) if self._result else 0
        if recorded < round_index:
            raise ValueError(
                f"run ended after {recorded} rounds, before the requested "
                f"fork round {round_index}")
        return self._snapshot()

    def _init_fresh(self) -> None:
        self._active = {}
        self._finished = []
        self._arrival_idx = 0
        self._now = 0.0
        self._result = SimulationResult(
            scheduler_name=self.scheduler.name,
            cluster_description=self.cluster.describe())

    def _run_loop(self, max_rounds: int | None) -> None:
        """The main loop: admit, run rounds, checkpoint.  Stops at the time
        cap, when no work remains, or after ``max_rounds`` recorded rounds
        (``None`` = unbounded)."""
        result = self._result
        assert result is not None
        dt = self.scheduler.round_duration
        cap = self.config.max_hours * 3600.0
        active = self._active

        while (self._arrival_idx < len(self._arrivals) or active) \
                and self._now < cap \
                and (max_rounds is None or len(result.rounds) < max_rounds):
            # 1. admissions
            if (self._arrival_idx < len(self._arrivals)
                    and self._arrivals[self._arrival_idx].submit_time
                    <= self._now):
                with self.tracer.span("admit"):
                    while (self._arrival_idx < len(self._arrivals)
                           and self._arrivals[self._arrival_idx].submit_time
                           <= self._now):
                        job = self._arrivals[self._arrival_idx]
                        self._arrival_idx += 1
                        estimator = self.scheduler.make_estimator(
                            job, self.cluster, self.config.profiling_mode)
                        estimator.profile_initial()
                        active[job.job_id] = _JobRuntime(job=job,
                                                         estimator=estimator)

            if not active:
                # idle until the next arrival, quantized to rounds
                next_arrival = self._arrivals[self._arrival_idx].submit_time
                rounds_ahead = max(1, int((next_arrival - self._now) // dt))
                self._now += rounds_ahead * dt
                continue

            with self.tracer.span("round", index=len(result.rounds),
                                  time=self._now, active_jobs=len(active)):
                record = self._run_round(active, self._finished, self._now,
                                         dt, len(result.rounds))
            result.rounds.append(record)
            self._now += dt
            # Live telemetry fires on the *recorded* round, before the
            # checkpoint/crash hooks — so a kill at the round boundary has
            # already flushed this round's stream lines.
            for observer in self.config.observers:
                observer.on_round(result, len(result.rounds) - 1, dt)
            self._maybe_checkpoint(len(result.rounds))
            self._crash_point("round_end", len(result.rounds))

    def _finalize(self, cap: float) -> SimulationResult:
        """6. finalize records — censored *and* never-admitted jobs included,
        so the per-job records always sum to the input trace size."""
        result = self._result
        assert result is not None
        result.end_time = self._now
        result.node_failures = self.total_failures
        for rt in self._finished + list(self._active.values()):
            result.jobs.append(self._record(rt))
        # Jobs whose submit time fell past the cap never reached admission;
        # record them as never-started so totals reconcile against the trace.
        never_admitted = self._arrivals[self._arrival_idx:]
        for job in never_admitted:
            result.jobs.append(JobRecord(
                job_id=job.job_id, model_name=job.model_name,
                category=job.profile.category,
                adaptivity=job.adaptivity.value,
                submit_time=job.submit_time, first_start=None,
                finish_time=None, num_restarts=0,
                target_samples=job.target_samples))
        result.censored = len(self._active) + len(never_admitted)
        result.jobs.sort(key=lambda r: (r.submit_time, r.job_id))
        result.spans = list(self.tracer.spans)
        result.final_metrics = self.metrics.snapshot()
        for observer in self.config.observers:
            observer.on_finalize(result)
        return result

    # -- checkpoint/restore ----------------------------------------------------

    @property
    def invariant_violations(self) -> list:
        """Violations the invariant checker recorded (empty when off)."""
        return list(self._invariants.violations) if self._invariants else []

    def _crash_point(self, stage: str, round_index: int) -> None:
        hook = self.config.checkpoint.crash_hook if self.config.checkpoint \
            else None
        if hook is not None:
            hook(stage, round_index)

    def _maybe_checkpoint(self, round_index: int) -> None:
        cfg = self.config.checkpoint
        if cfg is None or cfg.every_rounds <= 0 \
                or round_index % cfg.every_rounds != 0:
            return
        self.save_checkpoint()

    def save_checkpoint(self) -> Path:
        """Write a checkpoint of the current state to the configured
        directory (atomic + checksummed), pruning old ones; returns the
        path written."""
        cfg = self.config.checkpoint
        if cfg is None:
            raise CheckpointError(
                "no CheckpointConfig on SimulatorConfig.checkpoint")
        state = self._snapshot()
        path = ckpt.checkpoint_path(cfg.directory, state.round_index)
        write_hook = None
        if cfg.crash_hook is not None:
            round_index = state.round_index
            hook = cfg.crash_hook

            def write_hook(stage: str) -> None:
                hook(stage, round_index)
        with self.tracer.span("checkpoint", round=state.round_index):
            ckpt.write_checkpoint(state, path, crash_hook=write_hook)
        self.metrics.counter("checkpoint.writes").inc()
        ckpt.prune_checkpoints(cfg.directory, cfg.keep)
        return path

    def _snapshot(self) -> CheckpointState:
        """Capture the complete mutable engine state (between rounds)."""
        result = self._result
        assert result is not None, "snapshot outside run()"
        return CheckpointState(
            round_index=len(result.rounds),
            now=self._now,
            arrival_idx=self._arrival_idx,
            arrivals=self._arrivals,
            active=self._active,
            finished=self._finished,
            result=result,
            execution=self._execution,
            fault_models=self._fault_models,
            scheduler=self.scheduler,
            metrics=self.metrics,
            invariants=self._invariants,
            health=self._health,
            total_failures=self.total_failures,
            caught_scheduler_failures=self.caught_scheduler_failures,
            cluster_signature=ckpt.cluster_signature(self.cluster),
            seed=self.config.seed,
            scheduler_name=self.scheduler.name,
        )

    def _restore(self, source: str | Path | CheckpointState) -> None:
        """Adopt a checkpoint's state wholesale; see :meth:`run`."""
        if isinstance(source, CheckpointState):
            state = source
        else:
            path = Path(source)
            if path.is_dir():
                state, used, skipped = ckpt.latest_valid_checkpoint(path)
                if skipped:
                    self.tracer.instant(
                        "checkpoint_fallback", used=used.name,
                        skipped=",".join(p.name for p in skipped))
                    self.metrics.counter("checkpoint.corrupt_skipped") \
                        .inc(len(skipped))
            else:
                state = ckpt.read_checkpoint(path)
        ours = ckpt.cluster_signature(self.cluster)
        if state.cluster_signature and state.cluster_signature != ours:
            raise CheckpointError(
                "checkpoint was taken on a structurally different cluster "
                f"({state.cluster_signature} != {ours})")
        self._arrivals = state.arrivals
        self._active = state.active
        self._finished = state.finished
        self._arrival_idx = state.arrival_idx
        self._now = state.now
        self._result = state.result
        self._execution = state.execution
        self._fault_models = state.fault_models
        self.scheduler = state.scheduler
        self.metrics = state.metrics
        self.total_failures = state.total_failures
        self.caught_scheduler_failures = state.caught_scheduler_failures
        self._round_speed = {}
        self._gray_nodes = {}
        # The restored checker keeps its accumulated per-job tracking, but
        # this run's config decides whether (and how sternly) it is used.
        if self.config.invariants == "off":
            self._invariants = None
        else:
            self._invariants = state.invariants \
                or InvariantChecker(mode=self.config.invariants)
            self._invariants.mode = self.config.invariants
        # Same posture for the health tracker: its scores/backoffs resume
        # from the checkpoint (bit-identical quarantine decisions), but
        # only when this run's config keeps the layer on.
        if self.config.health is None:
            self._health = None
        else:
            self._health = getattr(state, "health", None) \
                or HealthTracker(self.config.health)
        self._bind_observability()
        self.metrics.counter("checkpoint.restores").inc()
        self.tracer.instant("checkpoint_restore",
                            round=state.round_index, time=state.now)

    # -- helpers ---------------------------------------------------------------

    def _run_round(self, active: dict[str, _JobRuntime],
                   finished: list[_JobRuntime], now: float,
                   dt: float, round_index: int) -> RoundRecord:
        """Steps 2-5 of the main loop: faults, plan, apply, advance."""
        # Audit snapshot: what each job held (and whether it had ever run)
        # before faults and the new plan touch anything — the "before" side
        # of this round's allocation-change events.
        held_before = {jid: rt.allocation for jid, rt in active.items()}
        ran_before = {jid: rt.first_start is not None
                      for jid, rt in active.items()}

        # 2. fault injection (Section 3.5): down nodes evict their jobs
        # to the last epoch checkpoint; crashed jobs roll back in place;
        # failed restores pay the restart delay again; stragglers slow
        # the ground-truth rates.
        cluster_view, fault_events, fault_hit = \
            self._inject_faults(active, now, dt)

        # 2b. gray-failure defense: advance the quarantine state machine,
        # drain jobs still holding GPUs on a node that was just excluded
        # (controlled checkpoint-off, classified as fault-caused), and hand
        # the scheduler a view without quarantined/drained nodes plus the
        # probation-node goodput discounts.
        quarantined: frozenset[int] = frozenset()
        if self._health is not None:
            self._health.tick(now)
            cluster_view = self._health.healthy_view(cluster_view)
            quarantined = self._health.excluded_nodes()
            if quarantined:
                for job_id, rt in active.items():
                    if rt.allocation is not None and any(
                            nid in quarantined
                            for nid in rt.allocation.node_ids):
                        self._health.note_eviction(
                            job_id, rt.allocation.node_ids, now)
                        rt.allocation = None
                        rt.restart_remaining = 0.0
                        rt.num_restarts += 1
                        rt.lost_to_fault = True
                        fault_hit.add(job_id)
            self.scheduler.health_discounts = \
                self._health.type_discounts(cluster_view) or None

        # 3. scheduling decision over the surviving nodes (the scheduler
        # emits the plan span with its phase children)
        previous = {jid: rt.allocation for jid, rt in active.items()
                    if rt.allocation is not None}
        views = [self._view(rt, now) for rt in active.values()]
        try:
            plan = self.scheduler.decide(views, cluster_view, previous, now)
            plan.validate(cluster_view)
        except Exception as exc:
            if not self.config.resilient:
                raise
            # One bad round must not kill the run: keep the previous
            # round's still-feasible allocations.
            self.caught_scheduler_failures += 1
            self.metrics.counter("caught_scheduler_failures").inc()
            with self.tracer.span("carry_forward",
                                  error=type(exc).__name__):
                plan = carry_forward_plan(previous, cluster_view, views)

        # 4. apply allocation changes (fallible: a changed allocation is a
        # gang launch that may flap — see 4b2)
        with self.tracer.span("apply"):
            launch_attempts: list[tuple[str, Allocation]] = []
            for job_id, rt in active.items():
                new = plan.allocations.get(job_id)
                if new == rt.allocation:
                    continue
                if rt.allocation is not None:
                    rt.num_restarts += 1
                if new is not None:
                    rt.restart_remaining = rt.job.restart_delay
                    if rt.first_start is None:
                        rt.first_start = now
                    launch_attempts.append((job_id, new))
                else:
                    # A stale restore delay must never leak into the job's
                    # next allocation.
                    rt.restart_remaining = 0.0
                rt.allocation = new

            # 4b. failed restore attempts: jobs paying a restore delay this
            # round may fail the restore and owe the full delay again.
            if self._fault_models:
                restoring = sorted(
                    jid for jid, rt in active.items()
                    if rt.allocation is not None and rt.restart_remaining > 0)
                if restoring:
                    for model in self._fault_models:
                        for event in model.sample_restore_failures(
                                restoring, now):
                            job_id = event.target.split(":", 1)[-1]
                            rt = active[job_id]
                            rt.restart_remaining += rt.job.restart_delay
                            rt.num_restarts += 1
                            fault_events.append(event)

                # 4b2. fallible placements: a changed allocation may fail
                # to start on its assigned GPUs.  The job keeps the grant
                # but pays a jittered capped backoff (charged like restart
                # delay) before the launch retries; repeated failures feed
                # the node's health score.
                if launch_attempts:
                    launch_attempts.sort()
                    self._sample_placement_failures(active, launch_attempts,
                                                    now, fault_events)

        # 5. advance one round
        contention = len(active)
        record = RoundRecord(time=now, active_jobs=contention,
                             running_jobs=0, solve_time=plan.solve_time,
                             backend=plan.backend, degraded=plan.degraded,
                             fault_events=fault_events,
                             estimates={jid: est for jid, est
                                        in plan.estimates.items()
                                        if jid in active})

        # 4c. decision audit: diff what each job held at the start of the
        # round against what it holds now and classify the change (admit,
        # scale, migrate, preempt, resume, restart-after-fault).
        for job_id, rt in active.items():
            event = audit.classify_change(
                job_id, now,
                held=_audit_alloc(held_before[job_id]),
                new=_audit_alloc(rt.allocation),
                ran_before=ran_before[job_id],
                fault_hit=job_id in fault_hit or rt.lost_to_fault,
                round_index=round_index)
            if event is not None:
                record.events.append(event)
                if event.kind == audit.PREEMPT \
                        and event.cause == audit.CAUSE_SCHEDULER:
                    rt.num_preemptions += 1
                elif event.kind == audit.MIGRATE:
                    rt.num_migrations += 1
            if rt.allocation is not None:
                rt.lost_to_fault = False

        with self.tracer.span("advance"):
            done_ids: list[str] = []
            for job_id, rt in active.items():
                rt.contention_sum += contention
                rt.contention_rounds += 1
                if rt.allocation is None:
                    continue
                record.running_jobs += 1
                config = rt.allocation.configuration()
                record.allocations[job_id] = (config.gpu_type,
                                              config.num_gpus)
                record.gpus_used[config.gpu_type] = \
                    record.gpus_used.get(config.gpu_type, 0) + config.num_gpus
                done, execution = self._advance(rt, now, dt, fault_events)
                # Ledger: the rates the executor actually delivered (zero
                # for a round fully spent restoring or unable to run).
                record.realized[job_id] = \
                    execution.goodput if execution is not None else 0.0
                if execution is not None:
                    record.throughputs[job_id] = execution.throughput
                    # Health evidence: realized vs estimated goodput for
                    # every node the job ran on.  A gray node's masked
                    # telemetry keeps the estimate high while delivery
                    # sags — exactly the divergence scored here.
                    if self._health is not None:
                        estimate = record.estimates.get(job_id)
                        if estimate:
                            self._health.record_goodput(
                                rt.allocation.node_ids, estimate,
                                execution.goodput, now)
                if done:
                    done_ids.append(job_id)
                    record.events.append(audit.AllocationEvent(
                        kind=audit.FINISH, time=rt.finish_time or now,
                        job_id=job_id, from_gpu_type=config.gpu_type,
                        from_gpus=config.num_gpus, round_index=round_index))
            for job_id in done_ids:
                finished.append(active.pop(job_id))

        self._update_metrics(record, plan)
        if self._health is not None:
            counts = self._health.state_counts()
            self.metrics.gauge("health.probation_nodes") \
                .set(counts.get("probation", 0))
            self.metrics.gauge("health.quarantined_nodes") \
                .set(counts.get("quarantined", 0))
            self.metrics.gauge("health.drained_nodes") \
                .set(counts.get("drained", 0))
            # Drained every round, so the pending list is empty at every
            # checkpoint boundary and resumes stay bit-identical.
            record.health_events = self._health.drain_events()
        if self._invariants is not None:
            # Audit over the real engine state: still-active runtimes plus
            # the ones that finished this round (the tail of `finished`).
            done_runtimes = finished[len(finished) - len(done_ids):]
            self._invariants.check_round(
                round_index=round_index, cluster_view=cluster_view,
                record=record,
                runtimes=list(active.values()) + done_runtimes,
                fault_hit=fault_hit, done_ids=done_ids,
                quarantined=quarantined)
        record.metrics = self.metrics.snapshot()
        return record

    def _update_metrics(self, record: RoundRecord, plan: RoundPlan) -> None:
        """Fold one finished round into the run's metrics registry."""
        m = self.metrics
        m.counter("rounds_planned").inc()
        if record.fault_events:
            m.counter("faults_injected").inc(len(record.fault_events))
        if plan.degraded:
            m.counter("solver_fallbacks").inc()
        if plan.backend == "carry":
            m.counter("carry_forward_rounds").inc()
        m.gauge("queue_depth").set(record.active_jobs - record.running_jobs)
        m.histogram("solve_time_s").observe(record.solve_time)
        for event in record.events:
            m.counter(f"alloc_events.{event.kind}").inc()
        for gpu_type, cap in self.cluster.capacities().items():
            used = record.gpus_used.get(gpu_type, 0)
            m.gauge(f"util.{gpu_type}").set(used / cap if cap else 0.0)

    def _rollback(self, rt: _JobRuntime) -> None:
        """Roll a job back to its last epoch checkpoint (Section 3.5)."""
        epoch = rt.job.target_samples / max(1, self.config.epochs_per_job)
        rt.progress = (rt.progress // epoch) * epoch

    def _inject_faults(self, active: dict[str, _JobRuntime], now: float,
                       dt: float) -> tuple[Cluster, list, set[str]]:
        """Sample every fault model, apply the aggregate to jobs, and
        return (cluster view of surviving nodes, fault events, ids of jobs
        a fault evicted or crashed this round)."""
        self._round_speed = {}
        self._gray_nodes = {}
        if not self._fault_models:
            return self.cluster, [], set()
        fault_hit: set[str] = set()
        with self.tracer.span("faults", models=len(self._fault_models)):
            ctx = FaultContext(
                now=now, dt=dt, cluster=self.cluster,
                running={jid: rt.allocation for jid, rt in active.items()
                         if rt.allocation is not None},
                restoring=frozenset(jid for jid, rt in active.items()
                                    if rt.allocation is not None
                                    and rt.restart_remaining > 0))
            for model in self._fault_models:
                model.sample(ctx)
            self.total_failures += sum(1 for e in ctx.events
                                       if e.kind == NodeCrashModel.kind)

            down = set(ctx.down_until)
            if down:
                # Evict jobs touching a down node; roll back to the
                # checkpoint.
                for job_id, rt in active.items():
                    if rt.allocation is None:
                        continue
                    if any(nid in down for nid in rt.allocation.node_ids):
                        self._rollback(rt)
                        rt.allocation = None
                        rt.restart_remaining = 0.0
                        rt.num_restarts += 1
                        rt.lost_to_fault = True
                        fault_hit.add(job_id)

            # Transient job crashes: roll back in place and pay a fresh
            # restore.
            for job_id in sorted(ctx.crashed_jobs):
                rt = active.get(job_id)
                if rt is None or rt.allocation is None:
                    continue  # already evicted (or finished) this round
                self._rollback(rt)
                rt.restart_remaining = rt.job.restart_delay
                rt.num_restarts += 1
                rt.lost_to_fault = True
                fault_hit.add(job_id)

            # Straggler slowdowns, felt through the ground-truth rates: a
            # job runs at the pace of its slowest surviving node.
            if ctx.node_speed:
                for job_id, rt in active.items():
                    if rt.allocation is None:
                        continue
                    factor = ctx.job_speed(rt.allocation)
                    if factor < 1.0:
                        self._round_speed[job_id] = factor

            # Gray failures: kept per *node* (unlike the per-job straggler
            # map) and resolved against each job's post-plan allocation at
            # advance time, so a defense-driven migration off a gray node
            # takes effect in the same round.
            if ctx.gray_speed:
                self._gray_nodes = dict(ctx.gray_speed)

            if not down:
                return self.cluster, ctx.events, fault_hit
            up_nodes = tuple(n for n in self.cluster.nodes
                             if n.node_id not in down)
            if not up_nodes:
                # Degenerate case: every node failed at once.  Repair the
                # node closest to recovery immediately so the cluster view
                # is never empty (schedulers cannot operate on zero nodes).
                first_back = min(ctx.down_until, key=ctx.down_until.get)
                for model in self._fault_models:
                    model.revive(first_back)
                up_nodes = tuple(n for n in self.cluster.nodes
                                 if n.node_id == first_back)
            return Cluster(nodes=up_nodes), ctx.events, fault_hit

    def _view(self, rt: _JobRuntime, now: float) -> JobView:
        age = (now - rt.first_start) if rt.first_start is not None else 0.0
        config = rt.allocation.configuration() if rt.allocation else None
        return JobView(job=rt.job, estimator=rt.estimator,
                       current_config=config, age=age,
                       num_restarts=rt.num_restarts, progress=rt.progress,
                       first_start=rt.first_start)

    def _choose_plan(self, rt: _JobRuntime) -> BatchPlan | None:
        """The executor's batch decision, from the job's *estimated* models."""
        if rt.job.is_hybrid:
            return None
        assert rt.allocation is not None
        config = rt.allocation.configuration()
        estimator = rt.estimator
        if hasattr(estimator, "best_plan"):
            try:
                return estimator.best_plan(config)
            except TypeError:
                # Pollux's estimator takes (num_gpus, num_nodes).
                return estimator.best_plan(config.num_gpus, config.num_nodes)
        return None

    def _sample_placement_failures(self, active: dict[str, _JobRuntime],
                                   attempts: list[tuple[str, Allocation]],
                                   now: float, fault_events: list) -> None:
        """4b2: draw placement flaps from every model and charge backoffs."""
        failures = []
        for model in self._fault_models:
            failures.extend(model.sample_placement_failures(attempts, now))
        failed: set[str] = set()
        hcfg = self.config.health
        for failure in failures:
            rt = active[failure.job_id]
            failed.add(failure.job_id)
            rt.placement_failures += 1
            if hcfg is not None:
                delay = placement_backoff(rt.placement_failures,
                                          failure.job_id,
                                          base_s=hcfg.backoff_base_s,
                                          cap_s=hcfg.backoff_cap_s,
                                          jitter=hcfg.backoff_jitter)
            else:
                delay = placement_backoff(rt.placement_failures,
                                          failure.job_id)
            # Charged like a restart: the GPUs are held but idle while the
            # retry backs off.
            rt.restart_remaining += delay
            self.metrics.counter("placement.retries").inc()
            fault_events.append(FaultEvent(
                kind="placement_failure", time=now,
                target=f"job:{failure.job_id}",
                detail=f"launch failed on node {failure.node_id}; "
                       f"retrying in {delay:.0f}s "
                       f"(attempt {rt.placement_failures})"))
            if self._health is not None:
                self._health.record_placement_failure(
                    failure.job_id, failure.node_id, now)
        for job_id, allocation in attempts:
            if job_id in failed:
                continue
            rt = active[job_id]
            rt.placement_failures = 0
            if self._health is not None:
                self._health.record_placement_success(allocation.node_ids)

    def _gray_factor(self, allocation: Allocation | None) -> float:
        """Silent slowdown for a job: gated by its slowest gray node."""
        if not self._gray_nodes or allocation is None:
            return 1.0
        return min((self._gray_nodes.get(nid, 1.0)
                    for nid in allocation.node_ids), default=1.0)

    def _advance(self, rt: _JobRuntime, now: float, dt: float,
                 fault_events: list) -> tuple[bool, RoundExecution | None]:
        """Run one round for a job holding resources.

        Returns ``(finished, execution)`` where ``execution`` carries the
        realized rates for the goodput ledger (None when the round produced
        no progress: still restoring, or the plan could not run).
        """
        assert rt.allocation is not None
        delay = min(rt.restart_remaining, dt)
        rt.restart_remaining -= delay
        run_time = dt - delay

        plan = self._choose_plan(rt)
        if run_time <= 0:
            rt.charge_gpus(dt)
            return False, None
        speed = self._round_speed.get(rt.job.job_id, 1.0)
        gray = self._gray_factor(rt.allocation)
        execution = self._execution.execute(rt.job, rt.allocation, plan,
                                            speed=speed * gray)
        if execution is None or execution.goodput <= 0:
            rt.charge_gpus(dt)
            return False, None

        before = rt.progress
        rt.progress = before + execution.goodput * run_time
        if rt.progress >= rt.job.target_samples:
            run_needed = (rt.job.target_samples - before) / execution.goodput
            rt.finish_time = now + delay + run_needed
            rt.charge_gpus(delay + run_needed)
            return True, execution

        rt.charge_gpus(dt)
        self._report_observation(rt, execution, gray, now, fault_events)
        return False, execution

    def _report_observation(self, rt: _JobRuntime,
                            execution: RoundExecution, gray: float,
                            now: float, fault_events: list) -> None:
        """Online refinement (Figure 3) with the gray/telemetry pipeline in
        between: mask gray slowdowns (the sick node reports nominal-looking
        iteration times), pass the report through every model's corruption
        tap, and count reports the estimator's defense rejected."""
        obs = self._execution.observe(rt.job, rt.allocation, execution)
        if gray < 1.0 and hasattr(obs, "iter_time"):
            # Undo the slowdown in the *observation only*, so realized
            # goodput (the ledger) diverges from what telemetry claims —
            # the signal repro.core.health scores nodes by.  The visible
            # straggler part of the slowdown stays in the report.
            obs = replace(obs, iter_time=obs.iter_time * gray)
        delivered = [obs]
        if self._fault_models:
            for model in self._fault_models:
                passed: list = []
                for item in delivered:
                    out, events = model.corrupt_observation(
                        rt.job.job_id, item, now)
                    passed.extend(out)
                    fault_events.extend(events)
                delivered = passed
        for item in delivered:
            accepted = rt.estimator.add_observation(item)
            if accepted is False:
                self.metrics.counter("telemetry.rejected_observations").inc()
        rt.estimator.update_gradient_stats(
            self._execution.observed_noise_scale(rt.job))

    def _record(self, rt: _JobRuntime) -> JobRecord:
        profiling = getattr(rt.estimator, "profiling_gpu_seconds", 0.0)
        avg_contention = (rt.contention_sum / rt.contention_rounds
                          if rt.contention_rounds else 0.0)
        return JobRecord(
            job_id=rt.job.job_id,
            model_name=rt.job.model_name,
            category=rt.job.profile.category,
            adaptivity=rt.job.adaptivity.value,
            submit_time=rt.job.submit_time,
            first_start=rt.first_start,
            finish_time=rt.finish_time,
            num_restarts=rt.num_restarts,
            num_preemptions=rt.num_preemptions,
            num_migrations=rt.num_migrations,
            gpu_seconds=dict(rt.gpu_seconds),
            profiling_gpu_seconds=profiling,
            avg_contention=avg_contention,
            target_samples=rt.job.target_samples,
        )


def simulate(cluster: Cluster, scheduler: Scheduler, jobs: list[Job],
             **kwargs) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    config = SimulatorConfig(**kwargs)
    return Simulator(cluster, scheduler, jobs, config).run()

"""Discrete-time trace-driven cluster simulator (Section 4.2).

Time advances in scheduler rounds.  Each round:

1. admit newly-arrived jobs (creating and, in Bootstrap mode, profiling
   their Goodput Estimators);
2. ask the scheduler for a :class:`~repro.schedulers.base.RoundPlan`;
3. apply allocation changes, charging model-specific checkpoint-restore
   delays (the paper replaced the original simulator's constant delay with
   per-model delays — so do we);
4. advance every running job: the executor picks a batch plan from the
   job's *estimated* models, but progress accrues at the *ground-truth*
   goodput of that plan;
5. report observations (iteration time, gradient noise scale) back to the
   estimator — the online refinement loop of Figure 3;
6. record telemetry.

Jobs complete mid-round when their integrated goodput reaches the target;
their GPUs free up at the start of the next round (matching round-based
schedulers).  A configurable time cap guards against starvation; jobs still
active at the cap are reported as censored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation, ProfilingMode
from repro.jobs.job import Job
from repro.perf.goodput import BatchPlan
from repro.schedulers.base import JobView, Scheduler
from repro.sim.executor import ExecutionModel
from repro.sim.telemetry import JobRecord, RoundRecord, SimulationResult


@dataclass
class SimulatorConfig:
    """Simulation knobs."""

    profiling_mode: ProfilingMode = ProfilingMode.BOOTSTRAP
    seed: int = 0
    #: per-measurement jitter on reported iteration times (lognormal sigma).
    obs_noise: float = 0.0
    #: fixed per-(job, GPU type) hardware speed variability (lognormal sigma).
    rate_noise: float = 0.0
    #: hard simulation cap, hours.
    max_hours: float = 1000.0
    #: worker-failure injection: expected failures per node-hour (0 = off).
    node_failure_rate: float = 0.0
    #: seconds a failed node stays down before rejoining.
    node_repair_time: float = 1800.0
    #: epoch-checkpoint granularity: jobs checkpoint progress every
    #: 1/epochs_per_job of their work (Section 3.5: "after every epoch, Sia
    #: checkpoints model weights and optimizer states to disk").
    epochs_per_job: int = 30


@dataclass
class _JobRuntime:
    """Mutable per-job simulation state."""

    job: Job
    estimator: object
    progress: float = 0.0
    allocation: Allocation | None = None
    restart_remaining: float = 0.0
    num_restarts: int = 0
    first_start: float | None = None
    finish_time: float | None = None
    gpu_seconds: dict[str, float] = field(default_factory=dict)
    contention_sum: float = 0.0
    contention_rounds: int = 0

    def charge_gpus(self, seconds: float) -> None:
        if self.allocation is None or seconds <= 0:
            return
        gpu_type = self.allocation.gpu_type
        amount = self.allocation.num_gpus * seconds
        self.gpu_seconds[gpu_type] = self.gpu_seconds.get(gpu_type, 0.0) + amount


class Simulator:
    """Runs one (cluster, scheduler, job list) experiment."""

    def __init__(self, cluster: Cluster, scheduler: Scheduler,
                 jobs: list[Job], config: SimulatorConfig | None = None):
        if not jobs:
            raise ValueError("need at least one job")
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique")
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulatorConfig()
        self._arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self._execution = ExecutionModel(seed=self.config.seed,
                                         rate_noise=self.config.rate_noise,
                                         obs_noise=self.config.obs_noise)
        self._failure_rng = np.random.default_rng(self.config.seed + 1)
        #: node id -> simulation time at which the node comes back up.
        self._down_until: dict[int, float] = {}
        self.total_failures = 0

    # -- main loop -------------------------------------------------------------

    def run(self) -> SimulationResult:
        result = SimulationResult(scheduler_name=self.scheduler.name,
                                  cluster_description=self.cluster.describe())
        active: dict[str, _JobRuntime] = {}
        finished: list[_JobRuntime] = []
        arrival_idx = 0
        now = 0.0
        dt = self.scheduler.round_duration
        cap = self.config.max_hours * 3600.0

        while (arrival_idx < len(self._arrivals) or active) and now < cap:
            # 1. admissions
            while (arrival_idx < len(self._arrivals)
                   and self._arrivals[arrival_idx].submit_time <= now):
                job = self._arrivals[arrival_idx]
                arrival_idx += 1
                estimator = self.scheduler.make_estimator(
                    job, self.cluster, self.config.profiling_mode)
                estimator.profile_initial()
                active[job.job_id] = _JobRuntime(job=job, estimator=estimator)

            if not active:
                # idle until the next arrival, quantized to rounds
                next_arrival = self._arrivals[arrival_idx].submit_time
                rounds_ahead = max(1, int((next_arrival - now) // dt))
                now += rounds_ahead * dt
                continue

            # 2. worker failures (Section 3.5): failed nodes drop out for
            # repair; jobs on them roll back to their last epoch checkpoint.
            cluster_view = self._apply_failures(active, now)

            # 3. scheduling decision over the surviving nodes
            previous = {jid: rt.allocation for jid, rt in active.items()
                        if rt.allocation is not None}
            views = [self._view(rt, now) for rt in active.values()]
            plan = self.scheduler.decide(views, cluster_view, previous, now)
            plan.validate(cluster_view)

            # 4. apply allocation changes
            for job_id, rt in active.items():
                new = plan.allocations.get(job_id)
                if new == rt.allocation:
                    continue
                if rt.allocation is not None:
                    rt.num_restarts += 1
                if new is not None:
                    rt.restart_remaining = rt.job.restart_delay
                    if rt.first_start is None:
                        rt.first_start = now
                rt.allocation = new

            # 4. advance one round
            contention = len(active)
            record = RoundRecord(time=now, active_jobs=contention,
                                 running_jobs=0, solve_time=plan.solve_time)
            done_ids: list[str] = []
            for job_id, rt in active.items():
                rt.contention_sum += contention
                rt.contention_rounds += 1
                if rt.allocation is None:
                    continue
                record.running_jobs += 1
                config = rt.allocation.configuration()
                record.allocations[job_id] = (config.gpu_type, config.num_gpus)
                record.gpus_used[config.gpu_type] = \
                    record.gpus_used.get(config.gpu_type, 0) + config.num_gpus
                if self._advance(rt, now, dt):
                    done_ids.append(job_id)
            for job_id in done_ids:
                finished.append(active.pop(job_id))
            result.rounds.append(record)
            now += dt

        # 5. finalize records (censored jobs included)
        result.end_time = now
        result.node_failures = self.total_failures
        for rt in finished + list(active.values()):
            result.jobs.append(self._record(rt))
        result.censored = len(active)
        result.jobs.sort(key=lambda r: (r.submit_time, r.job_id))
        return result

    # -- helpers ---------------------------------------------------------------

    def _apply_failures(self, active: dict[str, _JobRuntime],
                        now: float) -> Cluster:
        """Sample node failures, evict affected jobs to their last epoch
        checkpoint, and return the cluster view of surviving nodes."""
        if self.config.node_failure_rate <= 0 and not self._down_until:
            return self.cluster
        # Recover repaired nodes.
        self._down_until = {nid: t for nid, t in self._down_until.items()
                            if t > now}
        # Sample new failures among up nodes.
        prob = self.config.node_failure_rate \
            * self.scheduler.round_duration / 3600.0
        if prob > 0:
            for node in self.cluster.nodes:
                if node.node_id in self._down_until:
                    continue
                if self._failure_rng.random() < prob:
                    self._down_until[node.node_id] = \
                        now + self.config.node_repair_time
                    self.total_failures += 1
        if not self._down_until:
            return self.cluster
        down = set(self._down_until)
        # Evict jobs touching a down node; roll back to the epoch checkpoint.
        for rt in active.values():
            if rt.allocation is None:
                continue
            if any(nid in down for nid in rt.allocation.node_ids):
                epoch = rt.job.target_samples / max(1, self.config.epochs_per_job)
                rt.progress = (rt.progress // epoch) * epoch
                rt.allocation = None
                rt.num_restarts += 1
        up_nodes = tuple(n for n in self.cluster.nodes
                         if n.node_id not in down)
        if not up_nodes:
            # Degenerate case: every node failed at once.  Repair the node
            # closest to recovery immediately so the cluster view is never
            # empty (schedulers cannot operate on zero nodes).
            first_back = min(self._down_until, key=self._down_until.get)
            del self._down_until[first_back]
            up_nodes = tuple(n for n in self.cluster.nodes
                             if n.node_id == first_back)
        return Cluster(nodes=up_nodes)

    def _view(self, rt: _JobRuntime, now: float) -> JobView:
        age = (now - rt.first_start) if rt.first_start is not None else 0.0
        config = rt.allocation.configuration() if rt.allocation else None
        return JobView(job=rt.job, estimator=rt.estimator,
                       current_config=config, age=age,
                       num_restarts=rt.num_restarts, progress=rt.progress,
                       first_start=rt.first_start)

    def _choose_plan(self, rt: _JobRuntime) -> BatchPlan | None:
        """The executor's batch decision, from the job's *estimated* models."""
        if rt.job.is_hybrid:
            return None
        assert rt.allocation is not None
        config = rt.allocation.configuration()
        estimator = rt.estimator
        if hasattr(estimator, "best_plan"):
            try:
                return estimator.best_plan(config)
            except TypeError:
                # Pollux's estimator takes (num_gpus, num_nodes).
                return estimator.best_plan(config.num_gpus, config.num_nodes)
        return None

    def _advance(self, rt: _JobRuntime, now: float, dt: float) -> bool:
        """Run one round for a job holding resources; True when finished."""
        assert rt.allocation is not None
        delay = min(rt.restart_remaining, dt)
        rt.restart_remaining -= delay
        run_time = dt - delay

        plan = self._choose_plan(rt)
        if run_time <= 0:
            rt.charge_gpus(dt)
            return False
        execution = self._execution.execute(rt.job, rt.allocation, plan)
        if execution is None or execution.goodput <= 0:
            rt.charge_gpus(dt)
            return False

        before = rt.progress
        rt.progress = before + execution.goodput * run_time
        if rt.progress >= rt.job.target_samples:
            run_needed = (rt.job.target_samples - before) / execution.goodput
            rt.finish_time = now + delay + run_needed
            rt.charge_gpus(delay + run_needed)
            return True

        rt.charge_gpus(dt)
        # online refinement: the executor reports this round's measurements
        rt.estimator.add_observation(
            self._execution.observe(rt.job, rt.allocation, execution))
        rt.estimator.update_gradient_stats(
            self._execution.observed_noise_scale(rt.job))
        return False

    def _record(self, rt: _JobRuntime) -> JobRecord:
        profiling = getattr(rt.estimator, "profiling_gpu_seconds", 0.0)
        avg_contention = (rt.contention_sum / rt.contention_rounds
                          if rt.contention_rounds else 0.0)
        return JobRecord(
            job_id=rt.job.job_id,
            model_name=rt.job.model_name,
            category=rt.job.profile.category,
            adaptivity=rt.job.adaptivity.value,
            submit_time=rt.job.submit_time,
            first_start=rt.first_start,
            finish_time=rt.finish_time,
            num_restarts=rt.num_restarts,
            gpu_seconds=dict(rt.gpu_seconds),
            profiling_gpu_seconds=profiling,
            avg_contention=avg_contention,
            target_samples=rt.job.target_samples,
        )


def simulate(cluster: Cluster, scheduler: Scheduler, jobs: list[Job],
             **kwargs) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    config = SimulatorConfig(**kwargs)
    return Simulator(cluster, scheduler, jobs, config).run()

"""Pluggable fault injection (Section 3.5 robustness, generalized).

The simulator used to hard-code one fault model — whole-node crashes — in
``Simulator._apply_failures``.  This module turns fault injection into a
composable subsystem: a :class:`FaultModel` samples faults each round into a
shared :class:`FaultContext`, and the engine applies the aggregate (evicting
jobs on down nodes, rolling crashed jobs back to their epoch checkpoint,
re-charging failed restores, slowing stragglers through the executor's
ground-truth rates).

Models are independent and composable: pass any list via
``simulate(..., fault_models=[...])``.  Each model owns a seeded RNG, so a
run is deterministic given (config seed, model seeds); a model constructed
without an explicit seed is bound to a seed derived from the simulation
seed and its position in the list.

Built-in models:

* :class:`NodeCrashModel` — whole nodes fail and stay down for a repair
  window; jobs touching them are evicted to their last epoch checkpoint.
  This is the legacy ``node_failure_rate`` behaviour, refactored out of the
  engine bit-for-bit.
* :class:`StragglerModel` — nodes degrade to a fraction of nominal speed
  for a window.  Synchronous data-parallel training runs at the pace of the
  slowest worker, so a job's speed factor is the minimum over its nodes.
* :class:`JobCrashModel` — transient job-level failures (OOM, NCCL hiccup,
  bad host process) that roll the job back to its last epoch checkpoint and
  charge a restart, without taking any node down.
* :class:`CheckpointRestoreFaultModel` — a restore attempt fails partway
  and the job pays the full restart delay again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation
from repro.sim.telemetry import FaultEvent


@dataclass
class FaultContext:
    """One round's aggregate fault state, mutated in turn by each model.

    Models *add* to the aggregate fields; the engine applies them after
    every model has sampled.  ``running`` maps job id -> current allocation
    for jobs holding GPUs when the round was planned; ``restoring`` lists
    running jobs still paying a checkpoint-restore delay.
    """

    now: float
    dt: float
    cluster: Cluster
    running: dict[str, Allocation] = field(default_factory=dict)
    restoring: frozenset[str] = frozenset()
    #: node id -> simulation time at which the node comes back up.
    down_until: dict[int, float] = field(default_factory=dict)
    #: node id -> multiplicative speed factor in (0, 1]; absent means 1.0.
    node_speed: dict[int, float] = field(default_factory=dict)
    #: jobs that suffer a transient crash this round.
    crashed_jobs: set[str] = field(default_factory=set)
    events: list[FaultEvent] = field(default_factory=list)

    def mark_down(self, node_id: int, until: float) -> None:
        """Merge a node outage (a node down twice stays down longest)."""
        current = self.down_until.get(node_id)
        if current is None or until > current:
            self.down_until[node_id] = until

    def slow_node(self, node_id: int, factor: float) -> None:
        """Merge a slowdown; overlapping slowdowns keep the worst factor."""
        current = self.node_speed.get(node_id, 1.0)
        self.node_speed[node_id] = min(current, factor)

    def job_speed(self, allocation: Allocation) -> float:
        """Speed factor for a job: gated by its slowest node."""
        if not self.node_speed:
            return 1.0
        return min((self.node_speed.get(nid, 1.0)
                    for nid in allocation.node_ids), default=1.0)


class FaultModel:
    """Base class: a seeded, per-round fault sampler.

    Subclasses override :meth:`sample` (and optionally :meth:`revive`).
    ``seed=None`` defers seeding to the simulator, which binds a seed
    derived from the run's seed and the model's position in the list.
    """

    #: tag used in telemetry events and repr.
    kind: str = "fault"

    def __init__(self, seed: int | None = None):
        self.seed = seed
        self._rng: np.random.Generator | None = None
        if seed is not None:
            self.bind(seed)

    def bind(self, seed: int) -> None:
        """(Re)seed the model; called by the simulator before the run."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.reset()

    def reset(self) -> None:
        """Clear mutable state (outage windows etc.); override as needed."""

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise RuntimeError(f"{type(self).__name__} was never seeded; "
                               "pass seed= or let the simulator bind one")
        return self._rng

    def sample(self, ctx: FaultContext) -> None:
        """Sample this round's faults into ``ctx`` (override)."""

    def sample_restore_failures(self, restoring: list[str],
                                now: float) -> list[FaultEvent]:
        """Called after allocations are applied, with the (sorted) ids of
        jobs paying a checkpoint-restore delay this round.  Return one
        event per failed restore attempt; the engine charges the job the
        full restart delay again (override)."""
        return []

    def revive(self, node_id: int) -> None:
        """Forget any outage for ``node_id`` (degenerate all-down rescue)."""

    @staticmethod
    def _per_round_prob(rate_per_hour: float, dt: float) -> float:
        return rate_per_hour * dt / 3600.0


class NodeCrashModel(FaultModel):
    """Whole-node crash-and-repair (the paper's Section 3.5 fault model).

    Each up node fails with probability ``rate * dt / 3600`` per round and
    stays down ``repair_time`` seconds.  Behaviour (including RNG stream
    consumption) matches the legacy engine implementation exactly, so runs
    driven by ``node_failure_rate`` are bit-identical to the seed repo.
    """

    kind = "node_crash"

    def __init__(self, rate: float = 0.1, repair_time: float = 1800.0,
                 seed: int | None = None):
        if rate < 0:
            raise ValueError("failure rate must be non-negative")
        self.rate = rate
        self.repair_time = repair_time
        self._down_until: dict[int, float] = {}
        super().__init__(seed)

    def reset(self) -> None:
        self._down_until = {}

    def revive(self, node_id: int) -> None:
        self._down_until.pop(node_id, None)

    def sample(self, ctx: FaultContext) -> None:
        # Recover repaired nodes.
        self._down_until = {nid: t for nid, t in self._down_until.items()
                            if t > ctx.now}
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob > 0:
            for node in ctx.cluster.nodes:
                if node.node_id in self._down_until:
                    continue
                if self.rng.random() < prob:
                    until = ctx.now + self.repair_time
                    self._down_until[node.node_id] = until
                    ctx.events.append(FaultEvent(
                        kind=self.kind, time=ctx.now,
                        target=f"node:{node.node_id}",
                        detail=f"down until t={until:.0f}s"))
        for node_id, until in self._down_until.items():
            ctx.mark_down(node_id, until)


class StragglerModel(FaultModel):
    """Nodes degrade to ``slowdown`` of nominal speed for a window.

    The slowdown is felt through the executor's ground-truth rates: jobs on
    a straggling node run (and observe) proportionally slower iteration
    times, so estimators see the degradation too.  No jobs are evicted.
    """

    kind = "straggler"

    def __init__(self, rate: float = 0.2, slowdown: float = 0.5,
                 duration: float = 1800.0, seed: int | None = None):
        if rate < 0:
            raise ValueError("straggler rate must be non-negative")
        if not 0 < slowdown <= 1:
            raise ValueError("slowdown must be in (0, 1]")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = rate
        self.slowdown = slowdown
        self.duration = duration
        self._slow_until: dict[int, float] = {}
        super().__init__(seed)

    def reset(self) -> None:
        self._slow_until = {}

    def sample(self, ctx: FaultContext) -> None:
        self._slow_until = {nid: t for nid, t in self._slow_until.items()
                            if t > ctx.now}
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob > 0:
            for node in ctx.cluster.nodes:
                if node.node_id in self._slow_until:
                    continue
                if self.rng.random() < prob:
                    self._slow_until[node.node_id] = ctx.now + self.duration
                    ctx.events.append(FaultEvent(
                        kind=self.kind, time=ctx.now,
                        target=f"node:{node.node_id}",
                        detail=f"speed x{self.slowdown:.2f} "
                               f"for {self.duration:.0f}s"))
        for node_id in self._slow_until:
            ctx.slow_node(node_id, self.slowdown)


class JobCrashModel(FaultModel):
    """Transient job failures: roll back to the last epoch checkpoint and
    pay the restart delay, without taking a node down."""

    kind = "job_crash"

    def __init__(self, rate: float = 0.2, seed: int | None = None):
        if rate < 0:
            raise ValueError("job crash rate must be non-negative")
        self.rate = rate
        super().__init__(seed)

    def sample(self, ctx: FaultContext) -> None:
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob <= 0:
            return
        for job_id in sorted(ctx.running):
            if self.rng.random() < prob:
                ctx.crashed_jobs.add(job_id)
                ctx.events.append(FaultEvent(
                    kind=self.kind, time=ctx.now, target=f"job:{job_id}",
                    detail="rolled back to epoch checkpoint"))


class CheckpointRestoreFaultModel(FaultModel):
    """Checkpoint restores that fail partway.

    Each round a job spends paying a restore delay, the attempt fails with
    probability ``failure_prob`` and the job is charged the full restart
    delay again on top of what remains.  With ``failure_prob < 1`` the job
    eventually restores (geometric number of attempts)."""

    kind = "restore_failure"

    def __init__(self, failure_prob: float = 0.1, seed: int | None = None):
        if not 0 <= failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        self.failure_prob = failure_prob
        super().__init__(seed)

    def sample_restore_failures(self, restoring: list[str],
                                now: float) -> list[FaultEvent]:
        if self.failure_prob <= 0:
            return []
        return [FaultEvent(kind=self.kind, time=now, target=f"job:{job_id}",
                           detail="restore failed; paying restart delay again")
                for job_id in restoring
                if self.rng.random() < self.failure_prob]

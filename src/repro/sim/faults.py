"""Pluggable fault injection (Section 3.5 robustness, generalized).

The simulator used to hard-code one fault model — whole-node crashes — in
``Simulator._apply_failures``.  This module turns fault injection into a
composable subsystem: a :class:`FaultModel` samples faults each round into a
shared :class:`FaultContext`, and the engine applies the aggregate (evicting
jobs on down nodes, rolling crashed jobs back to their epoch checkpoint,
re-charging failed restores, slowing stragglers through the executor's
ground-truth rates).

Models are independent and composable: pass any list via
``simulate(..., fault_models=[...])``.  Each model owns a seeded RNG, so a
run is deterministic given (config seed, model seeds); a model constructed
without an explicit seed is bound to a seed derived from the simulation
seed and its position in the list.

Built-in models:

* :class:`NodeCrashModel` — whole nodes fail and stay down for a repair
  window; jobs touching them are evicted to their last epoch checkpoint.
  This is the legacy ``node_failure_rate`` behaviour, refactored out of the
  engine bit-for-bit.
* :class:`StragglerModel` — nodes degrade to a fraction of nominal speed
  for a window.  Synchronous data-parallel training runs at the pace of the
  slowest worker, so a job's speed factor is the minimum over its nodes.
* :class:`JobCrashModel` — transient job-level failures (OOM, NCCL hiccup,
  bad host process) that roll the job back to its last epoch checkpoint and
  charge a restart, without taking any node down.
* :class:`CheckpointRestoreFaultModel` — a restore attempt fails partway
  and the job pays the full restart delay again.

Gray failures (everything above is binary and fully observable; real
clusters also fail *gray* — see :mod:`repro.core.health` for the defense):

* :class:`GrayFailureModel` — a node's executor silently degrades: jobs on
  it run slower, but the reported iteration times are masked back to
  nominal, so the degradation is invisible to the estimator and only shows
  up as realized-vs-estimated goodput divergence.
* :class:`PlacementFailureModel` — an applied allocation fails to start on
  its assigned GPUs with a per-node probability (gang-launch flap); the
  engine retries with a jittered capped backoff.
* :class:`TelemetryCorruptionModel` — throughput observations are dropped,
  duplicated, scaled, or staled before reaching the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation
from repro.sim.telemetry import FaultEvent


@dataclass
class FaultContext:
    """One round's aggregate fault state, mutated in turn by each model.

    Models *add* to the aggregate fields; the engine applies them after
    every model has sampled.  ``running`` maps job id -> current allocation
    for jobs holding GPUs when the round was planned; ``restoring`` lists
    running jobs still paying a checkpoint-restore delay.
    """

    now: float
    dt: float
    cluster: Cluster
    running: dict[str, Allocation] = field(default_factory=dict)
    restoring: frozenset[str] = frozenset()
    #: node id -> simulation time at which the node comes back up.
    down_until: dict[int, float] = field(default_factory=dict)
    #: node id -> multiplicative speed factor in (0, 1]; absent means 1.0.
    node_speed: dict[int, float] = field(default_factory=dict)
    #: node id -> *silent* speed factor in (0, 1]; absent means 1.0.  Unlike
    #: ``node_speed`` (stragglers, visible to telemetry), gray slowdowns are
    #: applied to the executor's ground truth but masked from the
    #: observations the estimator sees, and they follow the round's *new*
    #: allocation so migrating off a sick node takes effect immediately.
    gray_speed: dict[int, float] = field(default_factory=dict)
    #: jobs that suffer a transient crash this round.
    crashed_jobs: set[str] = field(default_factory=set)
    events: list[FaultEvent] = field(default_factory=list)

    def mark_down(self, node_id: int, until: float) -> None:
        """Merge a node outage (a node down twice stays down longest)."""
        current = self.down_until.get(node_id)
        if current is None or until > current:
            self.down_until[node_id] = until

    def slow_node(self, node_id: int, factor: float) -> None:
        """Merge a slowdown; overlapping slowdowns keep the worst factor."""
        current = self.node_speed.get(node_id, 1.0)
        self.node_speed[node_id] = min(current, factor)

    def job_speed(self, allocation: Allocation) -> float:
        """Speed factor for a job: gated by its slowest node."""
        if not self.node_speed:
            return 1.0
        return min((self.node_speed.get(nid, 1.0)
                    for nid in allocation.node_ids), default=1.0)

    def gray_slow_node(self, node_id: int, factor: float) -> None:
        """Merge a silent slowdown; overlapping ones keep the worst."""
        current = self.gray_speed.get(node_id, 1.0)
        self.gray_speed[node_id] = min(current, factor)


@dataclass(frozen=True)
class PlacementFailure:
    """One failed gang launch: ``job_id``'s new allocation did not come up
    because ``node_id`` flapped.  The engine charges the retry backoff and
    builds the telemetry event; the model only attributes the failure."""

    job_id: str
    node_id: int


class FaultModel:
    """Base class: a seeded, per-round fault sampler.

    Subclasses override :meth:`sample` (and optionally :meth:`revive`).
    ``seed=None`` defers seeding to the simulator, which binds a seed
    derived from the run's seed and the model's position in the list.
    """

    #: tag used in telemetry events and repr.
    kind: str = "fault"

    def __init__(self, seed: int | None = None):
        self.seed = seed
        self._rng: np.random.Generator | None = None
        if seed is not None:
            self.bind(seed)

    def bind(self, seed: int) -> None:
        """(Re)seed the model; called by the simulator before the run."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.reset()

    def reset(self) -> None:
        """Clear mutable state (outage windows etc.); override as needed."""

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise RuntimeError(f"{type(self).__name__} was never seeded; "
                               "pass seed= or let the simulator bind one")
        return self._rng

    def sample(self, ctx: FaultContext) -> None:
        """Sample this round's faults into ``ctx`` (override)."""

    def sample_restore_failures(self, restoring: list[str],
                                now: float) -> list[FaultEvent]:
        """Called after allocations are applied, with the (sorted) ids of
        jobs paying a checkpoint-restore delay this round.  Return one
        event per failed restore attempt; the engine charges the job the
        full restart delay again (override)."""
        return []

    def sample_placement_failures(
            self, attempts: list[tuple[str, Allocation]],
            now: float) -> list[PlacementFailure]:
        """Called during the apply step with this round's launch attempts —
        ``(job_id, allocation)`` pairs whose allocation changed to a new
        non-``None`` placement, sorted by job id.  Return one
        :class:`PlacementFailure` per launch that flaps; the engine holds
        the grant, charges a jittered capped backoff on top of the restore
        delay, and feeds the node's health score (override)."""
        return []

    def corrupt_observation(self, job_id: str, obs,  # type: ignore[no-untyped-def]
                            now: float):
        """Telemetry tap: called for every throughput observation on its
        way to the estimator.  Return ``(delivered, events)`` where
        ``delivered`` is the list of observations that actually arrive
        (empty = dropped, two copies = duplicated, mutated = corrupted)
        and ``events`` lists one :class:`FaultEvent` per corruption
        (override).  The default passes the observation through."""
        return [obs], []

    def revive(self, node_id: int) -> None:
        """Forget any outage for ``node_id`` (degenerate all-down rescue)."""

    @staticmethod
    def _per_round_prob(rate_per_hour: float, dt: float) -> float:
        return rate_per_hour * dt / 3600.0


class NodeCrashModel(FaultModel):
    """Whole-node crash-and-repair (the paper's Section 3.5 fault model).

    Each up node fails with probability ``rate * dt / 3600`` per round and
    stays down ``repair_time`` seconds.  Behaviour (including RNG stream
    consumption) matches the legacy engine implementation exactly, so runs
    driven by ``node_failure_rate`` are bit-identical to the seed repo.
    """

    kind = "node_crash"

    def __init__(self, rate: float = 0.1, repair_time: float = 1800.0,
                 seed: int | None = None):
        if rate < 0:
            raise ValueError("failure rate must be non-negative")
        self.rate = rate
        self.repair_time = repair_time
        self._down_until: dict[int, float] = {}
        super().__init__(seed)

    def reset(self) -> None:
        self._down_until = {}

    def revive(self, node_id: int) -> None:
        self._down_until.pop(node_id, None)

    def sample(self, ctx: FaultContext) -> None:
        # Recover repaired nodes.
        self._down_until = {nid: t for nid, t in self._down_until.items()
                            if t > ctx.now}
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob > 0:
            for node in ctx.cluster.nodes:
                if node.node_id in self._down_until:
                    continue
                if self.rng.random() < prob:
                    until = ctx.now + self.repair_time
                    self._down_until[node.node_id] = until
                    ctx.events.append(FaultEvent(
                        kind=self.kind, time=ctx.now,
                        target=f"node:{node.node_id}",
                        detail=f"down until t={until:.0f}s"))
        for node_id, until in self._down_until.items():
            ctx.mark_down(node_id, until)


class StragglerModel(FaultModel):
    """Nodes degrade to ``slowdown`` of nominal speed for a window.

    The slowdown is felt through the executor's ground-truth rates: jobs on
    a straggling node run (and observe) proportionally slower iteration
    times, so estimators see the degradation too.  No jobs are evicted.
    """

    kind = "straggler"

    def __init__(self, rate: float = 0.2, slowdown: float = 0.5,
                 duration: float = 1800.0, seed: int | None = None):
        if rate < 0:
            raise ValueError("straggler rate must be non-negative")
        if not 0 < slowdown <= 1:
            raise ValueError("slowdown must be in (0, 1]")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = rate
        self.slowdown = slowdown
        self.duration = duration
        self._slow_until: dict[int, float] = {}
        super().__init__(seed)

    def reset(self) -> None:
        self._slow_until = {}

    def sample(self, ctx: FaultContext) -> None:
        self._slow_until = {nid: t for nid, t in self._slow_until.items()
                            if t > ctx.now}
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob > 0:
            for node in ctx.cluster.nodes:
                if node.node_id in self._slow_until:
                    continue
                if self.rng.random() < prob:
                    self._slow_until[node.node_id] = ctx.now + self.duration
                    ctx.events.append(FaultEvent(
                        kind=self.kind, time=ctx.now,
                        target=f"node:{node.node_id}",
                        detail=f"speed x{self.slowdown:.2f} "
                               f"for {self.duration:.0f}s"))
        for node_id in self._slow_until:
            ctx.slow_node(node_id, self.slowdown)


class JobCrashModel(FaultModel):
    """Transient job failures: roll back to the last epoch checkpoint and
    pay the restart delay, without taking a node down."""

    kind = "job_crash"

    def __init__(self, rate: float = 0.2, seed: int | None = None):
        if rate < 0:
            raise ValueError("job crash rate must be non-negative")
        self.rate = rate
        super().__init__(seed)

    def sample(self, ctx: FaultContext) -> None:
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob <= 0:
            return
        for job_id in sorted(ctx.running):
            if self.rng.random() < prob:
                ctx.crashed_jobs.add(job_id)
                ctx.events.append(FaultEvent(
                    kind=self.kind, time=ctx.now, target=f"job:{job_id}",
                    detail="rolled back to epoch checkpoint"))


class CheckpointRestoreFaultModel(FaultModel):
    """Checkpoint restores that fail partway.

    Each round a job spends paying a restore delay, the attempt fails with
    probability ``failure_prob`` and the job is charged the full restart
    delay again on top of what remains.  With ``failure_prob < 1`` the job
    eventually restores (geometric number of attempts)."""

    kind = "restore_failure"

    def __init__(self, failure_prob: float = 0.1, seed: int | None = None):
        if not 0 <= failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        self.failure_prob = failure_prob
        super().__init__(seed)

    def sample_restore_failures(self, restoring: list[str],
                                now: float) -> list[FaultEvent]:
        if self.failure_prob <= 0:
            return []
        return [FaultEvent(kind=self.kind, time=now, target=f"job:{job_id}",
                           detail="restore failed; paying restart delay again")
                for job_id in restoring
                if self.rng.random() < self.failure_prob]


class GrayFailureModel(FaultModel):
    """Silent executor degradation: the node lies about being healthy.

    Each up node enters a gray episode with probability ``rate * dt / 3600``
    per round and runs at ``slowdown`` of nominal speed for ``duration``
    seconds.  Unlike :class:`StragglerModel`, the slowdown is *masked from
    telemetry*: the engine slows the executor's ground truth but rescales
    the reported iteration times back to nominal, so the estimator keeps
    believing the node is fine.  The only footprint is realized goodput
    falling below the scheduler's estimate — the divergence
    :class:`repro.core.health.HealthTracker` scores nodes by.
    """

    kind = "gray_failure"

    def __init__(self, rate: float = 0.2, slowdown: float = 0.35,
                 duration: float = 7200.0, seed: int | None = None):
        if rate < 0:
            raise ValueError("gray failure rate must be non-negative")
        if not 0 < slowdown <= 1:
            raise ValueError("slowdown must be in (0, 1]")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = rate
        self.slowdown = slowdown
        self.duration = duration
        self._slow_until: dict[int, float] = {}
        super().__init__(seed)

    def reset(self) -> None:
        self._slow_until = {}

    def sample(self, ctx: FaultContext) -> None:
        self._slow_until = {nid: t for nid, t in self._slow_until.items()
                            if t > ctx.now}
        prob = self._per_round_prob(self.rate, ctx.dt)
        if prob > 0:
            for node in ctx.cluster.nodes:
                if node.node_id in self._slow_until:
                    continue
                if self.rng.random() < prob:
                    self._slow_until[node.node_id] = ctx.now + self.duration
                    ctx.events.append(FaultEvent(
                        kind=self.kind, time=ctx.now,
                        target=f"node:{node.node_id}",
                        detail=f"silent slowdown x{self.slowdown:.2f} "
                               f"for {self.duration:.0f}s "
                               "(masked from telemetry)"))
        for node_id in self._slow_until:
            ctx.gray_slow_node(node_id, self.slowdown)


class PlacementFailureModel(FaultModel):
    """Gang launches that flap: a changed allocation fails to start.

    Every node of every launch attempt is drawn independently with
    probability ``failure_prob`` (a fixed number of draws per attempt, so
    the RNG stream does not depend on outcomes); the first failing node is
    blamed.  The engine keeps the grant, charges a jittered capped backoff
    on top of the restore delay, and feeds the health tracker.
    """

    kind = "placement_failure"

    def __init__(self, failure_prob: float = 0.1, seed: int | None = None):
        if not 0 <= failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        self.failure_prob = failure_prob
        super().__init__(seed)

    def sample_placement_failures(
            self, attempts: list[tuple[str, Allocation]],
            now: float) -> list[PlacementFailure]:
        if self.failure_prob <= 0:
            return []
        failures: list[PlacementFailure] = []
        for job_id, allocation in attempts:
            failed_node: int | None = None
            for node_id in sorted(set(allocation.node_ids)):
                if self.rng.random() < self.failure_prob \
                        and failed_node is None:
                    failed_node = node_id
            if failed_node is not None:
                failures.append(PlacementFailure(job_id=job_id,
                                                 node_id=failed_node))
        return failures


class TelemetryCorruptionModel(FaultModel):
    """Throughput reports mangled on the way to the estimator.

    With probability ``rate`` per observation, the report is (uniformly)
    dropped, duplicated, scaled by ``scale_factor`` or its inverse
    (occasionally corrupted to NaN outright), or replaced by a stale replay
    of the job's previous report.  Scaled/NaN reports are what the
    estimator's MAD/finite defense must catch; drops and duplicates are
    survivable noise; stale replays look plausible and slip through —
    which is fine, they carry old but truthful information.
    """

    kind = "telemetry"

    def __init__(self, rate: float = 0.1, scale_factor: float = 8.0,
                 seed: int | None = None):
        if not 0 <= rate <= 1:
            raise ValueError("corruption rate must be in [0, 1]")
        if scale_factor <= 1:
            raise ValueError("scale_factor must exceed 1")
        self.rate = rate
        self.scale_factor = scale_factor
        self._last: dict[str, object] = {}
        super().__init__(seed)

    def reset(self) -> None:
        self._last = {}

    def corrupt_observation(self, job_id: str, obs, now: float):
        last = self._last.get(job_id)
        self._last[job_id] = obs
        if self.rate <= 0 or self.rng.random() >= self.rate:
            return [obs], []

        def event(detail: str) -> FaultEvent:
            return FaultEvent(kind=self.kind, time=now,
                              target=f"job:{job_id}", detail=detail)

        mode = self.rng.random()
        if mode < 0.25:
            return [], [event("observation dropped")]
        if mode < 0.5:
            return [obs, obs], [event("observation duplicated")]
        if mode < 0.75:
            direction = self.rng.random()
            if direction < 0.1:
                return ([replace(obs, iter_time=float("nan"))],
                        [event("iter_time corrupted to nan")])
            factor = (self.scale_factor if direction < 0.55
                      else 1.0 / self.scale_factor)
            return ([replace(obs, iter_time=obs.iter_time * factor)],
                    [event(f"iter_time scaled x{factor:g}")])
        if last is None:
            # Nothing to replay yet; the report goes through untouched.
            return [obs], []
        return [last], [event("stale observation replayed")]

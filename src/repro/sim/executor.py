"""Simulated Adaptive Executors: ground-truth execution of one round.

The executor layer answers: given a job, its allocation, and the batch plan
its (possibly wrong) estimator chose, how fast does it *actually* run?  The
scheduler plans on beliefs; outcomes come from the ground-truth catalog —
that split is what makes the profiling-mode experiments (Section 5.7)
meaningful.

Noise models (both optional, seeded):

* ``rate_noise``  — a per-(job, GPU type) fixed multiplicative bias on true
  performance, emulating hardware variability on the physical testbed
  (Section 5.1 attributes Pollux's real-vs-simulated gap partly to this).
* ``obs_noise``   — per-measurement multiplicative jitter on the iteration
  times reported back to the estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.types import Allocation
from repro.jobs.hybrid import HybridPerfModel
from repro.jobs.job import Job
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf import profiles
from repro.perf.fitting import Observation
from repro.perf.goodput import BatchPlan
from repro.perf.throughput import ThroughputModel


@dataclass(frozen=True)
class RoundExecution:
    """Realized behaviour of one job for one round."""

    goodput: float        # effective samples per second (true)
    throughput: float     # samples per second (true)
    iter_time: float      # seconds per iteration (true, observable)
    local_bsz: int
    accum_steps: int
    total_batch_size: int


class ExecutionModel:
    """Computes ground-truth execution rates, with optional noise."""

    #: observability tracer carried on the simulation context (injected by
    #: the Simulator); each ``execute`` call records an ``execute`` span.
    tracer: Tracer = NULL_TRACER

    def __init__(self, seed: int = 0, rate_noise: float = 0.0,
                 obs_noise: float = 0.0):
        if rate_noise < 0 or obs_noise < 0:
            raise ValueError("noise levels must be non-negative")
        self.rate_noise = rate_noise
        self.obs_noise = obs_noise
        self._rng = np.random.default_rng(seed)
        self._bias: dict[tuple[str, str], float] = {}

    def _hardware_bias(self, job_id: str, gpu_type: str) -> float:
        """Fixed per-(job, GPU type) speed factor (1.0 when noiseless)."""
        if self.rate_noise == 0.0:
            return 1.0
        key = (job_id, gpu_type)
        if key not in self._bias:
            self._bias[key] = float(math.exp(
                self._rng.normal(0.0, self.rate_noise)))
        return self._bias[key]

    def execute(self, job: Job, allocation: Allocation,
                plan: BatchPlan | None,
                speed: float = 1.0) -> RoundExecution | None:
        """True rates for a job running one round on ``allocation``.

        ``plan`` is the executor's batch decision (from the job's estimator);
        hybrid jobs have a fixed plan and pass None.  ``speed`` is an extra
        ground-truth rate multiplier in (0, 1] — e.g. a straggling node
        slowing the whole synchronous job — felt in both progress and the
        iteration times reported back to the estimator.  Returns None if the
        plan cannot run at all (defensive; the estimator's memory knowledge
        should prevent this).
        """
        if not 0 < speed <= 1:
            raise ValueError("speed must be in (0, 1]")
        with self.tracer.span("execute", job=job.job_id,
                              gpu_type=allocation.gpu_type,
                              num_gpus=allocation.num_gpus):
            config = allocation.configuration()
            bias = self._hardware_bias(job.job_id,
                                       allocation.gpu_type) * speed
            if job.is_hybrid:
                return self._execute_hybrid(job, allocation, bias)
            if job.workload == "latency_inference":
                return self._execute_serving(job, allocation, bias)
            if plan is None:
                return None
            cap = profiles.max_local_bsz(job.model_name, allocation.gpu_type)
            if plan.local_bsz > cap:
                return None  # would OOM on real hardware
            true_model = ThroughputModel(
                profiles.true_throughput_params(job.model_name,
                                                allocation.gpu_type))
            iter_time = true_model.iter_time(
                plan.local_bsz, config.num_gpus, config.num_nodes,
                plan.accum_steps) / bias
            total = config.num_gpus * plan.local_bsz * plan.accum_steps
            throughput = total / iter_time
            if job.workload == "batch_inference":
                efficiency = 1.0  # progress is purely throughput-bound
            else:
                eff_params = profiles.true_efficiency_params(job.model_name)
                efficiency = (eff_params.grad_noise_scale
                              + eff_params.init_batch_size) / (
                    eff_params.grad_noise_scale + total)
            return RoundExecution(goodput=throughput * efficiency,
                                  throughput=throughput, iter_time=iter_time,
                                  local_bsz=plan.local_bsz,
                                  accum_steps=plan.accum_steps,
                                  total_batch_size=total)

    def _execute_serving(self, job: Job, allocation: Allocation,
                         bias: float) -> RoundExecution | None:
        """Latency-SLO serving: each GPU answers single-sample requests."""
        from repro.jobs.inference import serving_throughput

        rate = serving_throughput(job.model_name, allocation.gpu_type,
                                  allocation.num_gpus) * bias
        if rate <= 0:
            return None
        return RoundExecution(goodput=rate, throughput=rate,
                              iter_time=allocation.num_gpus / rate,
                              local_bsz=1, accum_steps=1,
                              total_batch_size=allocation.num_gpus)

    def _execute_hybrid(self, job: Job, allocation: Allocation,
                        bias: float) -> RoundExecution | None:
        assert job.hybrid is not None
        config = allocation.configuration()
        replicas = job.hybrid.num_replicas(config)
        if replicas is None:
            return None
        perf = HybridPerfModel(job.model_name, job.hybrid)
        iter_time = perf.iter_time(allocation.gpu_type, replicas,
                                   config.num_nodes) / bias
        total = job.hybrid.replica_batch_size * replicas
        throughput = total / iter_time
        eff_params = profiles.true_efficiency_params(job.model_name)
        efficiency = (eff_params.grad_noise_scale + eff_params.init_batch_size) / (
            eff_params.grad_noise_scale + total)
        return RoundExecution(goodput=throughput * efficiency,
                              throughput=throughput, iter_time=iter_time,
                              local_bsz=job.hybrid.micro_batch_size,
                              accum_steps=job.hybrid.num_microbatches,
                              total_batch_size=total)

    def observe(self, job: Job, allocation: Allocation,
                execution: RoundExecution) -> Observation:
        """The measurement the Adaptive Executor reports for this round."""
        jitter = 1.0
        if self.obs_noise > 0.0:
            jitter = float(math.exp(self._rng.normal(0.0, self.obs_noise)))
        config = allocation.configuration()
        return Observation(
            gpu_type=allocation.gpu_type,
            num_nodes=config.num_nodes,
            num_gpus=config.num_gpus,
            local_bsz=execution.local_bsz,
            accum_steps=execution.accum_steps,
            iter_time=execution.iter_time * jitter,
        )

    def observed_noise_scale(self, job: Job) -> float:
        """Gradient-noise-scale measurement reported alongside throughput."""
        true_phi = profiles.true_efficiency_params(job.model_name).grad_noise_scale
        if self.obs_noise == 0.0:
            return true_phi
        return true_phi * float(math.exp(
            self._rng.normal(0.0, self.obs_noise)))

"""Crash-safe checkpoint/restore for the simulation engine (Section 3.5,
applied to the scheduler itself).

Sia treats checkpoint-restore as a first-class cost for the *jobs* it
schedules; a production scheduler must extend the same courtesy to its own
process.  This module serializes the complete mutable state of a running
:class:`~repro.sim.engine.Simulator` — per-job runtimes (estimators,
observations, caches, progress), the arrival cursor, recorded rounds, the
execution model and every fault model (including their
``np.random.Generator`` bit-generator states, captured exactly by the
pickle protocol), the scheduler with its policy caches and
``ResilientSolver`` breaker state, the metrics registry, and the invariant
checker — so a killed run can resume **bit-identically** to an
uninterrupted one.

Durability contract:

* every checkpoint is written with the shared write-tmp-then-rename helper
  (:func:`repro.io.atomic_write_bytes`), so a crash mid-write never
  corrupts an existing checkpoint — at worst it leaves a partial ``.tmp``
  sibling that is ignored and overwritten;
* the payload is guarded by a SHA-256 checksum in the header;
  :func:`read_checkpoint` verifies it and raises
  :class:`CheckpointCorruptError` on any mismatch, truncation, or header
  damage;
* :func:`latest_valid_checkpoint` walks a checkpoint directory newest to
  oldest and falls back past corrupted files, so torn writes on
  non-atomic filesystems degrade a resume by a few rounds instead of
  killing it.

Tracers are deliberately *not* checkpointed: spans measure host wall-clock
time, not simulation state.  They are replaced by ``NULL_TRACER`` sentinels
during pickling (via the pickle persistent-id protocol) and the engine
re-injects its live tracer on restore.
"""

from __future__ import annotations

import hashlib
import io as _io
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.atomicio import atomic_write_bytes
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

#: file magic; bump FORMAT_VERSION on any incompatible payload change.
MAGIC = b"REPRO-CKPT"
FORMAT_VERSION = 1

#: stages an injectable crash hook is called at, in order.  ``round_end``
#: fires in the engine loop after each recorded round; the write stages
#: fire inside the atomic checkpoint write.
CRASH_STAGES = ("round_end", "pre_write", "mid_write", "pre_rename",
                "post_rename")

_CKPT_NAME = re.compile(r"^ckpt-(\d{8})\.ckpt$")


class CheckpointError(RuntimeError):
    """No usable checkpoint (missing file, empty directory, bad version)."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed checksum/structure verification."""


@dataclass
class CheckpointConfig:
    """Checkpointing knobs carried on ``SimulatorConfig.checkpoint``."""

    #: directory checkpoints are written to (created on first write).
    directory: str | Path
    #: write a checkpoint every N recorded rounds (0 = only on demand).
    every_rounds: int = 10
    #: checkpoints retained on disk; older ones are pruned (0 = keep all).
    keep: int = 3
    #: chaos-injection point: called as ``crash_hook(stage, round_index)``
    #: at every :data:`CRASH_STAGES` point; raising simulates a crash.
    crash_hook: Callable[[str, int], None] | None = None

    def __post_init__(self) -> None:
        if self.every_rounds < 0:
            raise ValueError("every_rounds must be >= 0")
        if self.keep < 0:
            raise ValueError("keep must be >= 0")


@dataclass
class CheckpointState:
    """The complete mutable engine state at a between-rounds boundary.

    Everything the main loop reads lives here; the constructor-derived
    immutables (cluster structure, config knobs) are *verified* against the
    resuming simulator rather than restored, via :attr:`cluster_signature`.
    """

    #: rounds recorded so far == index of the next round to run.
    round_index: int
    #: simulation clock at the snapshot (start of the next round).
    now: float
    #: cursor into the sorted arrival list.
    arrival_idx: int
    #: the full sorted arrival list (jobs are small; carrying them makes a
    #: resume independent of the constructor's job list).
    arrivals: list[Any]
    #: job id -> _JobRuntime for admitted, unfinished jobs.
    active: dict[str, Any]
    #: finished _JobRuntimes.
    finished: list[Any]
    #: the result-in-progress (rounds recorded so far; spans excluded).
    result: Any
    #: ExecutionModel with its RNG and per-(job, type) bias table.
    execution: Any
    #: bound fault models with their RNGs and outage/slowdown windows.
    fault_models: list[Any]
    #: the scheduler, including policy caches and breaker state.
    scheduler: Any
    #: the run's metrics registry (shared refs with scheduler preserved).
    metrics: Any
    #: invariant checker mid-run state (None when checking is off).
    invariants: Any
    #: node-health tracker mid-run state (None when the health layer is
    #: off).  Defaults to None so pre-health checkpoints still load; the
    #: engine rebuilds a fresh tracker in that case.
    health: Any = None
    total_failures: int = 0
    caught_scheduler_failures: int = 0
    #: structural echo of the cluster, checked at resume time.
    cluster_signature: tuple = ()
    #: config echoes, checked/logged at resume time.
    seed: int = 0
    scheduler_name: str = ""
    format_version: int = field(default=FORMAT_VERSION)


# -- pickling with tracer stripping --------------------------------------------

class _StatePickler(pickle.Pickler):
    """Pickler that replaces any tracer (live or null) with a sentinel.

    Tracers hold host-time span records and are owned by the resuming
    process, not the checkpoint; stripping them here means no engine layer
    has to remember to detach its ``tracer`` attribute before a snapshot.
    """

    def persistent_id(self, obj: Any) -> str | None:
        if isinstance(obj, (Tracer, NullTracer)):
            return "tracer"
        return None


class _StateUnpickler(pickle.Unpickler):
    def persistent_load(self, pid: str) -> Any:
        if pid == "tracer":
            return NULL_TRACER
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps_state(state: CheckpointState) -> bytes:
    buffer = _io.BytesIO()
    _StatePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(state)
    return buffer.getvalue()


def loads_state(payload: bytes) -> CheckpointState:
    try:
        state = _StateUnpickler(_io.BytesIO(payload)).load()
    except Exception as exc:  # truncated/garbled pickle stream
        raise CheckpointCorruptError(f"unreadable checkpoint payload: {exc}")
    if not isinstance(state, CheckpointState):
        raise CheckpointCorruptError(
            f"payload is a {type(state).__name__}, not a CheckpointState")
    if state.format_version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {state.format_version} "
            f"(this build reads version {FORMAT_VERSION})")
    return state


# -- file format ---------------------------------------------------------------

def write_checkpoint(state: CheckpointState, path: str | Path, *,
                     crash_hook: Callable[[str], None] | None = None) -> Path:
    """Serialize ``state`` to ``path`` atomically, with a checksum header.

    Layout: one ASCII header line ``REPRO-CKPT v<version> <sha256-hex>
    <payload-bytes>\\n`` followed by the pickle payload.  The write goes
    through :func:`repro.io.atomic_write_bytes`, so an interrupted write
    (including one killed by ``crash_hook``) leaves any previous file at
    ``path`` untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dumps_state(state)
    digest = hashlib.sha256(payload).hexdigest()
    header = b"%s v%d %s %d\n" % (MAGIC, FORMAT_VERSION,
                                  digest.encode("ascii"), len(payload))
    atomic_write_bytes(path, header + payload, crash_hook=crash_hook)
    return path


def read_checkpoint(path: str | Path) -> CheckpointState:
    """Read and verify one checkpoint file.

    Raises :class:`CheckpointCorruptError` on checksum mismatch,
    truncation, or header damage; :class:`CheckpointError` if the file is
    missing or from an incompatible format version.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    newline = raw.find(b"\n")
    if newline < 0 or not raw.startswith(MAGIC + b" "):
        raise CheckpointCorruptError(f"{path}: missing checkpoint header")
    try:
        _, version, digest, length = raw[:newline].split(b" ")
        version_num = int(version.lstrip(b"v"))
        expected_len = int(length)
    except ValueError:
        raise CheckpointCorruptError(f"{path}: malformed checkpoint header")
    if version_num != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format v{version_num} "
            f"(this build reads v{FORMAT_VERSION})")
    payload = raw[newline + 1:]
    if len(payload) != expected_len:
        raise CheckpointCorruptError(
            f"{path}: truncated payload ({len(payload)} bytes, header "
            f"promised {expected_len})")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        raise CheckpointCorruptError(f"{path}: checksum mismatch")
    return loads_state(payload)


# -- checkpoint directories ----------------------------------------------------

def checkpoint_path(directory: str | Path, round_index: int) -> Path:
    """Canonical file name for the checkpoint taken after ``round_index``
    rounds (i.e. rounds ``0..round_index-1`` are recorded in it)."""
    return Path(directory) / f"ckpt-{round_index:08d}.ckpt"


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Checkpoint files in ``directory``, oldest first (by round index)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _CKPT_NAME.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def latest_valid_checkpoint(directory: str | Path,
                            ) -> tuple[CheckpointState, Path, list[Path]]:
    """Newest checkpoint that verifies, falling back past corrupted ones.

    Returns ``(state, path, skipped)`` where ``skipped`` lists newer files
    that failed verification.  Raises :class:`CheckpointError` when the
    directory holds no checkpoint that loads.
    """
    candidates = list_checkpoints(directory)
    if not candidates:
        raise CheckpointError(f"no checkpoints found in {directory}")
    skipped: list[Path] = []
    for path in reversed(candidates):
        try:
            return read_checkpoint(path), path, skipped
        except CheckpointCorruptError:
            skipped.append(path)
    raise CheckpointError(
        f"all {len(candidates)} checkpoints in {directory} are corrupt: "
        + ", ".join(p.name for p in skipped))


def prune_checkpoints(directory: str | Path, keep: int) -> list[Path]:
    """Delete all but the newest ``keep`` checkpoints; returns the deleted
    paths.  ``keep=0`` keeps everything."""
    if keep <= 0:
        return []
    candidates = list_checkpoints(directory)
    doomed = candidates[:-keep] if len(candidates) > keep else []
    for path in doomed:
        path.unlink(missing_ok=True)
    return doomed


def cluster_signature(cluster: Any) -> tuple:
    """Structural identity of a cluster: (type, size) per node, in order.
    A resume onto a structurally different cluster is refused — node ids
    inside restored allocations and fault windows would be meaningless."""
    return tuple((n.gpu_type, n.num_gpus) for n in cluster.nodes)

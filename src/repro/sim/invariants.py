"""Round-level invariant auditing for the simulation engine.

The simulator's correctness rests on a handful of structural properties
that every round must satisfy no matter which scheduler, fault mix, or
degradation path produced it.  :class:`InvariantChecker` verifies them
after each round, over the engine's real state (runtimes + the just-built
:class:`~repro.sim.telemetry.RoundRecord`):

* **capacity** — allocations never over-subscribe a node, never mix GPU
  types on a node, and per-type totals match the recorded ``gpus_used``;
* **down-node** — no allocation touches a node absent from this round's
  surviving cluster view (i.e. a node a fault model took down);
* **state-machine** — jobs move ``pending -> active -> finished`` only: a
  finished job never reappears, and every FINISH audit event matches a job
  that actually left the active set this round;
* **progress** — per-job progress is monotone except for jobs a fault
  rolled back to their epoch checkpoint this round;
* **ledger** — the round record is internally consistent: ``running_jobs``
  equals the allocation count, realized goodputs cover exactly the
  allocated jobs and are non-negative, and estimates refer to active jobs;
* **quarantine** — no allocation touches a node the health layer has
  quarantined or drained this round (gray-failure defense).

Two modes: ``strict`` raises :class:`InvariantError` on the first
violation (tests, CI); ``log`` records violations — tracer instant,
``invariant_violations`` counter, and the :attr:`InvariantChecker.violations`
list — and lets the run continue (production posture).  The checker's
per-job tracking state is part of the engine checkpoint, so auditing
resumes seamlessly across a crash/restore boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.obs import audit
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:
    from repro.cluster.cluster import Cluster
    from repro.sim.telemetry import RoundRecord

#: accepted ``SimulatorConfig.invariants`` values.
MODES = ("off", "log", "strict")

#: progress comparisons tolerate float noise up to this many samples.
_PROGRESS_EPS = 1e-6


class InvariantError(RuntimeError):
    """A strict-mode invariant violation (simulation state is inconsistent)."""


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant, recorded in ``log`` mode."""

    round_index: int
    #: invariant family: capacity / down-node / state-machine / progress /
    #: ledger.
    name: str
    message: str


class InvariantChecker:
    """Audits engine state after every round; see the module docstring.

    The checker carries per-job progress/state tracking across rounds, so
    it must live exactly as long as the run — the engine checkpoints it
    alongside the rest of the simulation state.
    """

    #: observability sinks, injected by the engine (and re-injected after a
    #: checkpoint restore; tracers are never serialized).
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry | None = None

    def __init__(self, mode: str = "strict"):
        if mode not in ("log", "strict"):
            raise ValueError(f"invariant mode must be 'log' or 'strict', "
                             f"got {mode!r}")
        self.mode = mode
        self.violations: list[InvariantViolation] = []
        #: job id -> last seen progress (samples).
        self._progress: dict[str, float] = {}
        #: job ids that have finished; they must never run again.
        self._finished: set[str] = set()

    # -- entry point -----------------------------------------------------------

    def check_round(self, *, round_index: int, cluster_view: "Cluster",
                    record: "RoundRecord", runtimes: Iterable,
                    fault_hit: set[str], done_ids: list[str],
                    quarantined: frozenset[int] = frozenset()) -> None:
        """Audit one completed round.

        ``runtimes`` iterates every runtime the round touched — still-active
        jobs plus the ones that finished this round (``done_ids``);
        ``cluster_view`` is the surviving-node view the round was planned
        over; ``fault_hit`` holds jobs a fault rolled back this round;
        ``quarantined`` lists nodes the health layer excluded this round.
        """
        runtimes = list(runtimes)
        self._check_capacity(round_index, cluster_view, record, runtimes)
        self._check_state_machine(round_index, record, runtimes, done_ids)
        self._check_progress(round_index, runtimes, fault_hit, done_ids)
        self._check_ledger(round_index, record, runtimes)
        self._check_quarantine(round_index, runtimes, quarantined)

    # -- individual invariants -------------------------------------------------

    def _check_capacity(self, round_index: int, cluster_view: "Cluster",
                        record: "RoundRecord", runtimes: list) -> None:
        nodes = {n.node_id: n for n in cluster_view.nodes}
        used_per_node: dict[int, int] = {}
        used_per_type: dict[str, int] = {}
        for rt in runtimes:
            alloc = rt.allocation
            if alloc is None:
                continue
            used_per_type[alloc.gpu_type] = \
                used_per_type.get(alloc.gpu_type, 0) + alloc.num_gpus
            for node_id, count in alloc.gpus_per_node:
                node = nodes.get(node_id)
                if node is None:
                    self._violate(round_index, "down-node",
                                  f"job {rt.job.job_id} allocated on node "
                                  f"{node_id}, which is down or unknown "
                                  "this round")
                    continue
                if node.gpu_type != alloc.gpu_type:
                    self._violate(round_index, "capacity",
                                  f"job {rt.job.job_id} allocation says "
                                  f"{alloc.gpu_type} but node {node_id} "
                                  f"is {node.gpu_type}")
                used_per_node[node_id] = \
                    used_per_node.get(node_id, 0) + count
        for node_id, count in used_per_node.items():
            node = nodes.get(node_id)
            if node is not None and count > node.num_gpus:
                self._violate(round_index, "capacity",
                              f"node {node_id} over-subscribed: {count} > "
                              f"{node.num_gpus}")
        if used_per_type != {t: c for t, c in record.gpus_used.items() if c}:
            self._violate(round_index, "ledger",
                          f"recorded gpus_used {record.gpus_used} disagrees "
                          f"with allocations {used_per_type}")

    def _check_state_machine(self, round_index: int, record: "RoundRecord",
                             runtimes: list, done_ids: list[str]) -> None:
        for rt in runtimes:
            if rt.job.job_id in self._finished:
                self._violate(round_index, "state-machine",
                              f"finished job {rt.job.job_id} reappeared in "
                              "the active set")
        finish_events = {e.job_id for e in record.events
                         if e.kind == audit.FINISH}
        if finish_events != set(done_ids):
            self._violate(round_index, "state-machine",
                          f"FINISH events {sorted(finish_events)} do not "
                          f"match jobs that completed {sorted(done_ids)}")
        self._finished.update(done_ids)

    def _check_progress(self, round_index: int, runtimes: list,
                        fault_hit: set[str], done_ids: list[str]) -> None:
        for rt in runtimes:
            job_id = rt.job.job_id
            prev = self._progress.get(job_id)
            if prev is not None and rt.progress < prev - _PROGRESS_EPS \
                    and job_id not in fault_hit:
                self._violate(round_index, "progress",
                              f"job {job_id} progress went backwards "
                              f"({prev:.3f} -> {rt.progress:.3f}) without a "
                              "fault rollback")
            self._progress[job_id] = rt.progress
        for job_id in done_ids:  # finished jobs never report progress again
            self._progress.pop(job_id, None)

    def _check_ledger(self, round_index: int, record: "RoundRecord",
                      runtimes: list) -> None:
        if record.running_jobs != len(record.allocations):
            self._violate(round_index, "ledger",
                          f"running_jobs={record.running_jobs} but "
                          f"{len(record.allocations)} allocations recorded")
        if set(record.realized) != set(record.allocations):
            self._violate(round_index, "ledger",
                          "realized goodputs cover "
                          f"{sorted(record.realized)} but allocations cover "
                          f"{sorted(record.allocations)}")
        for job_id, value in record.realized.items():
            if value < 0:
                self._violate(round_index, "ledger",
                              f"job {job_id} realized negative goodput "
                              f"{value}")
        active_ids = {rt.job.job_id for rt in runtimes}
        stray = set(record.estimates) - active_ids
        if stray:
            self._violate(round_index, "ledger",
                          f"estimates recorded for non-active jobs "
                          f"{sorted(stray)}")

    def _check_quarantine(self, round_index: int, runtimes: list,
                          quarantined: frozenset[int]) -> None:
        if not quarantined:
            return
        for rt in runtimes:
            alloc = rt.allocation
            if alloc is None:
                continue
            held = set(alloc.node_ids) & set(quarantined)
            if held:
                self._violate(round_index, "quarantine",
                              f"job {rt.job.job_id} allocated on "
                              f"quarantined/drained node(s) {sorted(held)}")

    # -- violation sink --------------------------------------------------------

    def _violate(self, round_index: int, name: str, message: str) -> None:
        violation = InvariantViolation(round_index=round_index, name=name,
                                       message=message)
        self.violations.append(violation)
        self.tracer.instant("invariant_violation", invariant=name,
                            round=round_index, message=message)
        if self.metrics is not None:
            self.metrics.counter("invariant_violations").inc()
            self.metrics.counter(f"invariant_violations.{name}").inc()
        if self.mode == "strict":
            raise InvariantError(f"round {round_index}: [{name}] {message}")

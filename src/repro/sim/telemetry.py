"""Telemetry: per-job and per-round records produced by the simulator.

These records are the single source every metric and every table/figure in
the benchmark harness is computed from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.audit import AllocationEvent
from repro.obs.tracer import PLAN_PHASES, SpanRecord, SpanStats

#: the standard per-plan phase spans — an alias of the canonical
#: :data:`repro.obs.tracer.PLAN_PHASES` (``repro.schedulers.base`` re-exports
#: the same tuple).
PHASE_SPAN_NAMES = PLAN_PHASES


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded by the fault subsystem.

    ``kind`` is a short tag (``node_crash``, ``straggler``, ``job_crash``,
    ``restore_failure``); ``target`` names the node or job hit; ``detail``
    carries model-specific context (e.g. slowdown factor, repair time).
    """

    kind: str
    time: float
    target: str
    detail: str = ""


@dataclass
class JobRecord:
    """Final accounting for one job."""

    job_id: str
    model_name: str
    category: str
    adaptivity: str
    submit_time: float
    first_start: float | None
    finish_time: float | None
    num_restarts: int
    #: times the scheduler took the job's resources away while it was
    #: running (a strict subset of the causes behind ``num_restarts``,
    #: which also counts fault restarts and allocation changes).
    num_preemptions: int = 0
    #: times the job moved — GPU-type change or same-type node move —
    #: while running (fault-forced restarts are not migrations).
    num_migrations: int = 0
    #: GPU-seconds actually held, per GPU type (includes restore delays).
    gpu_seconds: dict[str, float] = field(default_factory=dict)
    profiling_gpu_seconds: float = 0.0
    #: average number of active jobs while this job was in the system.
    avg_contention: float = 0.0
    target_samples: float = 0.0

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    def jct(self, horizon: float | None = None) -> float:
        """Job completion time in seconds; censored jobs report time until
        ``horizon`` (the simulation end)."""
        end = self.finish_time if self.finish_time is not None else horizon
        if end is None:
            raise ValueError(f"job {self.job_id} incomplete and no horizon given")
        # Never-admitted jobs (submitted past the simulation cap) clamp to
        # zero rather than reporting a negative completion time.
        return max(0.0, end - self.submit_time)

    @property
    def total_gpu_seconds(self) -> float:
        return sum(self.gpu_seconds.values()) + self.profiling_gpu_seconds


@dataclass
class RoundRecord:
    """Snapshot of one scheduling round."""

    time: float
    #: jobs active (queued or running) when the round was planned.
    active_jobs: int
    #: jobs actually holding GPUs this round.
    running_jobs: int
    #: policy optimization wall-clock seconds (Figure 9).
    solve_time: float
    #: job id -> (gpu_type, num_gpus) for the allocation log (Figure 5).
    allocations: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: GPUs in use per type.
    gpus_used: dict[str, int] = field(default_factory=dict)
    #: solver/plan backend that produced this round ('' when the scheduler
    #: did not report one; 'carry' marks a carried-forward plan).
    backend: str = ""
    #: True when the round ran in a degraded mode (solver fallback, carried
    #: plan, or a caught scheduler failure).
    degraded: bool = False
    #: faults injected while planning this round.
    fault_events: list[FaultEvent] = field(default_factory=list)
    #: cumulative metrics snapshot (repro.obs counters/gauges/histograms)
    #: taken when the round was recorded.
    metrics: dict[str, float] = field(default_factory=dict)
    #: job id -> goodput the scheduler believed the chosen allocation would
    #: deliver when it planned this round (the goodput ledger's estimate
    #: side; absent for carried-forward plans).
    estimates: dict[str, float] = field(default_factory=dict)
    #: job id -> goodput the executor actually delivered this round (0.0
    #: for a round fully spent in checkpoint-restore).
    realized: dict[str, float] = field(default_factory=dict)
    #: job id -> realized raw throughput, samples/s.
    throughputs: dict[str, float] = field(default_factory=dict)
    #: classified allocation-change events that took effect this round
    #: (admit/scale/migrate/preempt/resume/restart/finish).
    events: list[AllocationEvent] = field(default_factory=list)
    #: node-health state transitions (probation/quarantine/reinstate/
    #: recover/drain/evict) the health tracker emitted this round
    #: (:class:`repro.core.health.HealthEvent`; empty without the layer).
    health_events: list = field(default_factory=list)
    #: SLO alerts fired on this round (:class:`repro.obs.slo.Alert`; empty
    #: unless an SLO observer was attached).  Deliberately *outside* the
    #: chaos determinism oracle's compared fields: alerts may derive from
    #: wall-clock series (round latency) and only exist on observed runs.
    alerts: list = field(default_factory=list)


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    scheduler_name: str
    cluster_description: str
    jobs: list[JobRecord] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)
    end_time: float = 0.0
    #: jobs that did not finish before the simulation cap.
    censored: int = 0
    #: injected worker failures that occurred during the run.
    node_failures: int = 0
    #: tracing spans recorded during the run (empty unless a Tracer was
    #: attached via SimulatorConfig; not serialized — use repro.obs.export).
    spans: list[SpanRecord] = field(default_factory=list, repr=False)
    #: final metrics snapshot at the end of the run.
    final_metrics: dict[str, float] = field(default_factory=dict)
    #: fault/backend/alert summaries restored by repro.io when the
    #: per-round records were not serialized (None while rounds are
    #: authoritative).
    saved_fault_counts: dict[str, int] | None = field(default=None,
                                                      repr=False)
    saved_backend_counts: dict[str, int] | None = field(default=None,
                                                        repr=False)
    saved_alert_counts: dict[str, int] | None = field(default=None,
                                                      repr=False)
    #: construction recipe of this run (scheduler/cluster/config/job list),
    #: recorded by the CLI and serialized by repro.io so the counterfactual
    #: replay engine can rebuild the simulator and fork it at any round.
    #: None for results produced without one (programmatic runs, old files).
    run_spec: dict | None = field(default=None, repr=False, compare=False)
    #: lazily built job_id -> record index (invalidated by length change).
    _job_index: dict[str, JobRecord] | None = field(default=None, init=False,
                                                    repr=False, compare=False)

    def job(self, job_id: str) -> JobRecord:
        index = self._job_index
        if index is None or len(index) != len(self.jobs):
            index = {record.job_id: record for record in self.jobs}
            self._job_index = index
        try:
            return index[job_id]
        except KeyError:
            raise KeyError(f"no job record for {job_id!r}") from None

    @property
    def completed_jobs(self) -> list[JobRecord]:
        return [j for j in self.jobs if j.completed]

    def jcts_hours(self) -> list[float]:
        """JCT of every job, hours (censored jobs measured to the end cap)."""
        return [j.jct(self.end_time) / 3600.0 for j in self.jobs]

    @property
    def makespan_hours(self) -> float:
        """Last finish minus first submission, hours."""
        if not self.jobs:
            return 0.0
        start = min(j.submit_time for j in self.jobs)
        end = max((j.finish_time if j.finish_time is not None else self.end_time)
                  for j in self.jobs)
        return (end - start) / 3600.0

    def gpu_hours_per_job(self) -> list[float]:
        return [j.total_gpu_seconds / 3600.0 for j in self.jobs]

    def allocation_timeline(self, job_id: str) -> list[tuple[float, str, int]]:
        """(time, gpu_type, num_gpus) per round for one job (Figure 5);
        rounds where the job held nothing are reported as ('', 0)."""
        timeline = []
        for rnd in self.rounds:
            gpu_type, count = rnd.allocations.get(job_id, ("", 0))
            timeline.append((rnd.time, gpu_type, count))
        return timeline

    def allocation_events(self) -> list[AllocationEvent]:
        """Every classified allocation-change event, in round order."""
        return [event for rnd in self.rounds for event in rnd.events]

    def median_solve_time(self) -> float:
        times = sorted(r.solve_time for r in self.rounds if r.active_jobs > 0)
        if not times:
            return 0.0
        mid = len(times) // 2
        if len(times) % 2:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2.0

    # -- observability ---------------------------------------------------------

    def phase_time_breakdown(self) -> dict[str, float]:
        """Total seconds per standard plan phase (bootstrap, goodput_eval,
        solve, placement) over the whole run.  Requires a traced run; the
        totals sum (within span overhead) to the recorded ``solve_time``
        across rounds."""
        totals = {name: 0.0 for name in PHASE_SPAN_NAMES}
        for span in self.spans:
            if span.name in totals:
                totals[span.name] += span.duration
        return totals

    def span_stats(self, name: str) -> SpanStats:
        """Aggregate duration stats for every recorded span named ``name``."""
        count, total = 0, 0.0
        lo, hi = math.inf, 0.0
        for span in self.spans:
            if span.name != name:
                continue
            count += 1
            total += span.duration
            lo = min(lo, span.duration)
            hi = max(hi, span.duration)
        return SpanStats(name=name, count=count, total=total, min=lo, max=hi)

    # -- robustness telemetry --------------------------------------------------

    @property
    def degraded_rounds(self) -> int:
        """Rounds that ran on a fallback/carried plan (requires rounds)."""
        return sum(1 for r in self.rounds if r.degraded)

    @property
    def total_fault_events(self) -> int:
        return sum(len(r.fault_events) for r in self.rounds)

    def _summary_counts(self, saved: dict[str, int] | None,
                        keys_of_round) -> dict[str, int]:
        """Single code path for both round summaries: rounds are the source
        of truth whenever present; otherwise the summary persisted by
        :mod:`repro.io` (``save_result(include_rounds=False)``) is used;
        otherwise the summary is empty."""
        if not self.rounds:
            return dict(saved) if saved is not None else {}
        counts: dict[str, int] = {}
        for rnd in self.rounds:
            for key in keys_of_round(rnd):
                counts[key] = counts.get(key, 0) + 1
        return counts

    def fault_counts(self) -> dict[str, int]:
        """Injected faults by kind, over the whole run."""
        return self._summary_counts(
            self.saved_fault_counts,
            lambda rnd: (event.kind for event in rnd.fault_events))

    def backend_counts(self) -> dict[str, int]:
        """Rounds by reported plan backend ('' = backend not reported)."""
        return self._summary_counts(self.saved_backend_counts,
                                    lambda rnd: (rnd.backend,))

    def resilience_counts(self) -> dict[str, int]:
        """Resilience-layer counters — breaker trips, rounds served per
        solver backend, failures caught by the scheduler guard and the
        simulator guard — from the final metrics snapshot.  Populated both
        on live results and on results loaded by :mod:`repro.io` (the
        snapshot is persisted as ``final_metrics``)."""
        out: dict[str, int] = {}
        for key, value in self.final_metrics.items():
            if key.startswith("resilience.") \
                    or key == "caught_scheduler_failures":
                out[key] = int(value)
        return out

    def fault_timeline(self) -> list[FaultEvent]:
        """Every injected fault in simulation-time order."""
        return [event for rnd in self.rounds for event in rnd.fault_events]

    def health_timeline(self) -> list:
        """Every node-health transition in simulation-time order, as
        ``(round_index, HealthEvent)`` pairs — the same shape
        :func:`repro.io.load_health_events` reads back."""
        return [(index, event) for index, rnd in enumerate(self.rounds)
                for event in rnd.health_events]

    # -- SLO alerts ------------------------------------------------------------

    def alerts_timeline(self) -> list:
        """Every SLO alert in simulation-time order, as
        ``(round_index, Alert)`` pairs (empty for unobserved runs)."""
        return [(index, alert) for index, rnd in enumerate(self.rounds)
                for alert in rnd.alerts]

    def alert_counts(self) -> dict[str, int]:
        """Fired SLO alerts by rule name, over the whole run."""
        return self._summary_counts(
            self.saved_alert_counts,
            lambda rnd: (alert.rule for alert in rnd.alerts))

    def health_counts(self) -> dict[str, int]:
        """Gray-failure defense counters — health transitions by kind,
        placement retries, telemetry rejections — from the final metrics
        snapshot (``health.*``, ``placement.*``, ``telemetry.*``).
        Populated on live results and io-loaded ones alike."""
        out: dict[str, int] = {}
        for key, value in self.final_metrics.items():
            if key.startswith(("health.", "placement.", "telemetry.")):
                out[key] = int(value)
        return out

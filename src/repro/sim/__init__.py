"""Discrete-time trace-driven cluster simulator."""

from repro.sim.engine import Simulator, SimulatorConfig, simulate
from repro.sim.executor import ExecutionModel, RoundExecution
from repro.sim.telemetry import JobRecord, RoundRecord, SimulationResult

__all__ = [
    "Simulator", "SimulatorConfig", "simulate",
    "ExecutionModel", "RoundExecution",
    "JobRecord", "RoundRecord", "SimulationResult",
]

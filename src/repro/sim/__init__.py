"""Discrete-time trace-driven cluster simulator."""

from repro.sim.engine import Simulator, SimulatorConfig, simulate
from repro.sim.executor import ExecutionModel, RoundExecution
from repro.sim.faults import (CheckpointRestoreFaultModel, FaultContext,
                              FaultModel, JobCrashModel, NodeCrashModel,
                              StragglerModel)
from repro.sim.telemetry import (FaultEvent, JobRecord, RoundRecord,
                                 SimulationResult)

__all__ = [
    "Simulator", "SimulatorConfig", "simulate",
    "ExecutionModel", "RoundExecution",
    "FaultModel", "FaultContext", "NodeCrashModel", "StragglerModel",
    "JobCrashModel", "CheckpointRestoreFaultModel",
    "FaultEvent", "JobRecord", "RoundRecord", "SimulationResult",
]

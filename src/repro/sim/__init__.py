"""Discrete-time trace-driven cluster simulator."""

from repro.sim.chaos import ChaosReport, CrashAt, SimulatedCrash, run_chaos
from repro.sim.checkpoint import (CheckpointConfig, CheckpointCorruptError,
                                  CheckpointError, CheckpointState,
                                  latest_valid_checkpoint, read_checkpoint,
                                  write_checkpoint)
from repro.sim.engine import Simulator, SimulatorConfig, simulate
from repro.sim.executor import ExecutionModel, RoundExecution
from repro.sim.faults import (CheckpointRestoreFaultModel, FaultContext,
                              FaultModel, GrayFailureModel, JobCrashModel,
                              NodeCrashModel, PlacementFailure,
                              PlacementFailureModel, StragglerModel,
                              TelemetryCorruptionModel)
from repro.sim.invariants import (InvariantChecker, InvariantError,
                                  InvariantViolation)
from repro.sim.telemetry import (FaultEvent, JobRecord, RoundRecord,
                                 SimulationResult)

__all__ = [
    "Simulator", "SimulatorConfig", "simulate",
    "ExecutionModel", "RoundExecution",
    "FaultModel", "FaultContext", "NodeCrashModel", "StragglerModel",
    "JobCrashModel", "CheckpointRestoreFaultModel", "GrayFailureModel",
    "PlacementFailure", "PlacementFailureModel", "TelemetryCorruptionModel",
    "FaultEvent", "JobRecord", "RoundRecord", "SimulationResult",
    "CheckpointConfig", "CheckpointState", "CheckpointError",
    "CheckpointCorruptError", "write_checkpoint", "read_checkpoint",
    "latest_valid_checkpoint",
    "InvariantChecker", "InvariantError", "InvariantViolation",
    "ChaosReport", "CrashAt", "SimulatedCrash", "run_chaos",
]

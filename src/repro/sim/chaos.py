"""Chaos-replay harness: kill a run, resume it, prove nothing changed.

The checkpoint layer's contract is that a crash at *any* instant — between
rounds, or in the middle of writing a checkpoint file — costs at most a few
rounds of recomputation and never changes the simulation's outcome.  This
module turns that contract into an executable experiment:

1. run an uninterrupted **reference** simulation;
2. run a **victim** with checkpointing enabled and an injected
   :class:`SimulatedCrash` at a chosen (or seeded-random) round and stage
   (``round_end``, or inside the checkpoint write: ``pre_write`` /
   ``mid_write`` / ``pre_rename`` / ``post_rename``);
3. optionally corrupt the newest surviving checkpoint on disk (simulating
   a torn write the atomic rename could not prevent, e.g. media damage);
4. **resume** a fresh simulator from the checkpoint directory — the loader
   falls back past corrupted files — and run to completion;
5. diff the resumed result against the reference, field by field.

The diff demands exact equality of every simulation-state field: round
times, allocations, GPU usage, realized/estimated goodputs, throughputs,
fault events, audit events, backends, degraded flags, job records, end
time, censored counts.  Only wall-clock-derived telemetry is excluded —
``RoundRecord.solve_time`` and metric keys under ``solve_time_s`` /
``checkpoint`` — because host timing legitimately differs between the
processes on either side of a crash.

Used by ``repro chaos`` (CLI) and the CI chaos job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.sim import checkpoint as ckpt
from repro.sim.checkpoint import CheckpointConfig, CheckpointError

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.telemetry import RoundRecord, SimulationResult

#: metric-key prefixes excluded from equivalence comparison: host timing
#: ("solve_time_s", "checkpoint") plus the live-telemetry plane ("slo.",
#: "stream.") — SLO burn-rate gauges and stream counters exist only on
#: observed runs and may derive from wall-clock series, yet must never
#: make an observed run diff against an unobserved one.
EXCLUDED_METRIC_PREFIXES = ("solve_time_s", "checkpoint", "slo.", "stream.")


class SimulatedCrash(RuntimeError):
    """Raised by the injected crash hook to kill a victim run."""


class CrashAt:
    """Crash hook that fires once at a given stage and round.

    For ``round_end`` it fires at the first round boundary >= ``round_index``;
    for write stages it fires during the first checkpoint write at or after
    that round (checkpoint cadence decides when writes happen).
    """

    def __init__(self, round_index: int, stage: str = "round_end"):
        if stage not in ckpt.CRASH_STAGES:
            raise ValueError(f"stage must be one of {ckpt.CRASH_STAGES}, "
                             f"got {stage!r}")
        self.round_index = round_index
        self.stage = stage
        self.fired = False

    def __call__(self, stage: str, round_index: int) -> None:
        if self.fired or stage != self.stage \
                or round_index < self.round_index:
            return
        self.fired = True
        raise SimulatedCrash(
            f"injected crash at stage={stage!r} round={round_index}")


def corrupt_checkpoint(path: str | Path) -> None:
    """Damage a checkpoint file in place (flips a payload byte), so reads
    fail checksum verification — simulates on-disk corruption."""
    path = Path(path)
    raw = bytearray(path.read_bytes())
    target = (len(raw) // 2) or (len(raw) - 1)
    raw[target] ^= 0xFF
    path.write_bytes(raw)


# -- equivalence diff ----------------------------------------------------------

def _filter_metrics(metrics: dict[str, float]) -> dict[str, float]:
    return {k: v for k, v in metrics.items()
            if not k.startswith(EXCLUDED_METRIC_PREFIXES)}


# RoundRecord.alerts and .solve_time are deliberately absent: alerts fire
# only on SLO-observed runs (and may depend on wall-clock latency series),
# so comparing them would make observation itself a "divergence".
_ROUND_FIELDS = ("time", "active_jobs", "running_jobs", "allocations",
                 "gpus_used", "backend", "degraded", "fault_events",
                 "estimates", "realized", "throughputs", "events",
                 "health_events")


def diff_rounds(ref: "RoundRecord", res: "RoundRecord",
                index: int) -> list[str]:
    """Field-level differences between two rounds (wall-clock excluded)."""
    out = []
    for name in _ROUND_FIELDS:
        a, b = getattr(ref, name), getattr(res, name)
        if a != b:
            out.append(f"round {index}: {name} differs ({a!r} != {b!r})")
    a, b = _filter_metrics(ref.metrics), _filter_metrics(res.metrics)
    if a != b:
        keys = sorted(k for k in set(a) | set(b) if a.get(k) != b.get(k))
        out.append(f"round {index}: metrics differ on {keys}")
    return out


def diff_results(reference: "SimulationResult", resumed: "SimulationResult",
                 ) -> list[str]:
    """All simulation-state differences between two results (empty =
    equivalent)."""
    out: list[str] = []
    if len(reference.rounds) != len(resumed.rounds):
        out.append(f"round count differs: {len(reference.rounds)} != "
                   f"{len(resumed.rounds)}")
    for i, (a, b) in enumerate(zip(reference.rounds, resumed.rounds)):
        out.extend(diff_rounds(a, b, i))
    for name in ("scheduler_name", "end_time", "censored", "node_failures"):
        a, b = getattr(reference, name), getattr(resumed, name)
        if a != b:
            out.append(f"{name} differs ({a!r} != {b!r})")
    ref_jobs = {j.job_id: j for j in reference.jobs}
    res_jobs = {j.job_id: j for j in resumed.jobs}
    if set(ref_jobs) != set(res_jobs):
        out.append(f"job sets differ: {sorted(set(ref_jobs) ^ set(res_jobs))}")
    for job_id in sorted(set(ref_jobs) & set(res_jobs)):
        if ref_jobs[job_id] != res_jobs[job_id]:
            out.append(f"job {job_id}: records differ "
                       f"({ref_jobs[job_id]!r} != {res_jobs[job_id]!r})")
    a = _filter_metrics(reference.final_metrics)
    b = _filter_metrics(resumed.final_metrics)
    if a != b:
        keys = sorted(k for k in set(a) | set(b) if a.get(k) != b.get(k))
        out.append(f"final metrics differ on {keys}")
    return out


# -- the experiment ------------------------------------------------------------

@dataclass
class ChaosReport:
    """Outcome of one kill/resume equivalence experiment."""

    kill_round: int
    kill_stage: str
    #: True when the injected crash actually fired during the victim run.
    crashed: bool = False
    #: round index of the checkpoint the resumed run started from
    #: (-1 = no usable checkpoint; the run restarted from scratch).
    resumed_from_round: int = -1
    #: checkpoint files skipped as corrupt during resume.
    corrupt_skipped: list[str] = field(default_factory=list)
    reference_rounds: int = 0
    resumed_rounds: int = 0
    #: human-readable field-level differences (empty = bit-identical).
    mismatches: list[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "EQUIVALENT" if self.equivalent else \
            f"DIVERGED ({len(self.mismatches)} mismatches)"
        resume = (f"resumed from round {self.resumed_from_round}"
                  if self.resumed_from_round >= 0 else "restarted from scratch")
        skipped = (f", skipped {len(self.corrupt_skipped)} corrupt"
                   if self.corrupt_skipped else "")
        return (f"kill@{self.kill_round}/{self.kill_stage} -> {resume}"
                f"{skipped}; {self.resumed_rounds}/{self.reference_rounds} "
                f"rounds; {status}")


def run_chaos(factory: Callable[[CheckpointConfig | None], "Simulator"], *,
              directory: str | Path, kill_round: int | None = None,
              kill_stage: str = "round_end", chaos_seed: int = 0,
              every_rounds: int = 5, keep: int = 0,
              corrupt_latest: bool = False) -> ChaosReport:
    """Run one kill/resume equivalence experiment.

    ``factory(checkpoint_config)`` must build a *fresh* simulator — new
    scheduler, same cluster/jobs/seed — for each of the three runs
    (reference gets ``None``).  ``kill_round=None`` picks a round uniformly
    from the reference run's span using ``chaos_seed``.  ``keep=0`` retains
    every checkpoint so corruption fallback always has older files to land
    on.
    """
    directory = Path(directory)
    reference = factory(None).run()
    n_rounds = len(reference.rounds)
    if kill_round is None:
        # Land inside the run, past the first checkpoint when possible.
        lo = min(every_rounds, max(1, n_rounds - 1))
        kill_round = random.Random(chaos_seed).randint(lo, max(lo, n_rounds))
    report = ChaosReport(kill_round=kill_round, kill_stage=kill_stage,
                         reference_rounds=n_rounds)

    hook = CrashAt(kill_round, kill_stage)
    victim_cfg = CheckpointConfig(directory=directory,
                                  every_rounds=every_rounds, keep=keep,
                                  crash_hook=hook)
    victim = factory(victim_cfg)
    try:
        victim.run()
    except SimulatedCrash:
        report.crashed = True

    if corrupt_latest:
        existing = ckpt.list_checkpoints(directory)
        if existing:
            corrupt_checkpoint(existing[-1])

    resume_cfg = CheckpointConfig(directory=directory,
                                  every_rounds=every_rounds, keep=keep)
    survivor = factory(resume_cfg)
    try:
        state, used, skipped = ckpt.latest_valid_checkpoint(directory)
        report.resumed_from_round = state.round_index
        report.corrupt_skipped = [p.name for p in skipped]
        resumed = survivor.run(resume_from=state)
    except CheckpointError:
        # Nothing usable on disk (crash before the first checkpoint, or
        # everything corrupt): recovery is a fresh start.
        resumed = survivor.run()
    report.resumed_rounds = len(resumed.rounds)
    report.mismatches = diff_results(reference, resumed)
    return report

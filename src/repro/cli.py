"""Command-line interface: run reproduction experiments without writing code.

Subcommands::

    python -m repro catalog                    # model zoo + GPU catalog
    python -m repro trace --name helios --seed 0 --out trace.json
    python -m repro run --scheduler sia --cluster heterogeneous \\
                        --trace-name philly --num-jobs 40 --work-scale 0.2
    python -m repro compare --trace-name helios --num-jobs 48 \\
                            --schedulers sia,pollux,gavel
    python -m repro report results/*.json --out report.md
    python -m repro explain result.json --job philly-0017
    python -m repro run ... --checkpoint-dir ckpts --checkpoint-every 25
    python -m repro run ... --resume-from ckpts     # continue a killed run
    python -m repro chaos --trace-name philly --num-jobs 12 --work-scale 0.05
    python -m repro chaos --scenario gray     # gray failures + health defense
    python -m repro run ... --gray-rate 2 --health --health-events-out h.jsonl
    python -m repro watch --trace-name philly --num-jobs 8   # live view + SLOs
    python -m repro run ... --slo rules.json --alerts-out alerts.jsonl
    python -m repro run ... --serve 9090      # live /metrics, /healthz, /alerts

``run`` and ``compare`` accept either a saved trace file (``--trace``) or
generator parameters (``--trace-name``/``--seed``/...).  Results can be
saved with ``--out`` and reloaded with :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro import io
from repro.analysis.render import format_table
from repro.cluster import presets
from repro.cluster.gpu import GPU_CATALOG
from repro.core import fork as forklib
from repro.core.health import HealthConfig
from repro.core.types import ProfilingMode
from repro.metrics.jct import summarize
from repro.obs.export import run_digest, write_chrome_trace
from repro.obs.slo import SLOEngine, parse_rules
from repro.obs.stream import (AlertStreamObserver, EventStreamObserver,
                              LedgerStreamObserver, MetricsHTTPServer,
                              PrometheusSnapshotObserver, SLOObserver,
                              WatchView)
from repro.obs.tracer import Tracer
from repro.perf.profiles import MODEL_ZOO
from repro.schedulers import GavelScheduler
from repro.schedulers.base import Scheduler
from repro.sim.chaos import run_chaos
from repro.sim.checkpoint import CheckpointConfig
from repro.sim.engine import Simulator, SimulatorConfig
from repro.sim.faults import FaultModel
from repro.sim.invariants import MODES as INVARIANT_MODES
from repro.workloads.generators import SPECS, trace_by_name
from repro.workloads.trace import Trace
from repro.workloads.tuning import tuned_jobs

#: schedulers that auto-tune jobs (run the raw adaptive trace).
ADAPTIVE_SCHEDULERS = ("sia", "pollux")
#: schedulers that need TunedJobs (fixed batch size and GPU count).
RIGID_SCHEDULERS = ("gavel", "shockwave", "themis", "fifo", "srtf")


def build_scheduler(name: str, args: argparse.Namespace) -> Scheduler:
    """CLI front-end of :func:`repro.core.fork.make_scheduler` (the shared
    factory the replay engine also uses)."""
    try:
        return forklib.make_scheduler(
            name,
            round_duration=args.round_duration,
            p=args.p, lam=args.lam, solver=args.solver,
            gavel_policy=args.gavel_policy,
            resilient=getattr(args, "resilient", False),
            solve_budget=getattr(args, "solve_budget", 5.0))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _fault_options(args: argparse.Namespace) -> dict[str, float]:
    """The fault knobs as a plain dict (the replay run-spec vocabulary)."""
    return {key: getattr(args, key, default)
            for key, default in forklib.FAULT_OPTION_DEFAULTS.items()}


def build_fault_models(args: argparse.Namespace) -> list[FaultModel]:
    """Fault injectors requested on the command line (node crashes keep
    riding the legacy --failure-rate path inside the simulator)."""
    return forklib.make_fault_models(_fault_options(args))


def resolve_trace(args: argparse.Namespace) -> Trace:
    if args.trace:
        return io.load_trace(args.trace)
    kwargs = {}
    if args.num_jobs is not None:
        kwargs["num_jobs"] = args.num_jobs
    if args.window_hours is not None:
        kwargs["window_hours"] = args.window_hours
    return trace_by_name(args.trace_name, seed=args.seed,
                         work_scale_factor=args.work_scale, **kwargs)


def _wants_tracing(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace_out", None)
                or getattr(args, "events_out", None)
                or getattr(args, "metrics_digest", False))


def _checkpoint_config(args: argparse.Namespace) -> CheckpointConfig | None:
    directory = getattr(args, "checkpoint_dir", None)
    if not directory:
        return None
    return CheckpointConfig(directory=directory,
                            every_rounds=args.checkpoint_every,
                            keep=args.checkpoint_keep)


def _build_slo_engine(args: argparse.Namespace,
                      simulator: Simulator) -> SLOEngine | None:
    """The SLO engine this run should evaluate, or None.  Enabled by
    ``--slo`` (a ruleset path or 'default'), and implicitly — with the
    default ruleset — by ``--alerts-out`` and ``repro watch``."""
    source = getattr(args, "slo", None)
    if source is None and not (getattr(args, "watch", False)
                               or getattr(args, "alerts_out", None)):
        return None
    try:
        rules = parse_rules(source)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"bad --slo ruleset: {exc}")
    return SLOEngine(rules, metrics=simulator.metrics)


def _attach_observers(args: argparse.Namespace, simulator: Simulator,
                      tracer: Tracer | None, suffix: str,
                      ) -> tuple[SLOEngine | None, MetricsHTTPServer | None]:
    """Build the live-telemetry observer chain for one run.

    Order matters: the SLO evaluator runs first so each round's alerts
    exist before the streams/views that render them see the record.
    """
    observers = simulator.config.observers
    slo_engine = _build_slo_engine(args, simulator)
    if slo_engine is not None:
        observers.append(SLOObserver(slo_engine))
    if getattr(args, "alerts_out", None):
        observers.append(AlertStreamObserver(
            _suffixed(args.alerts_out, suffix), simulator.scheduler.name))
    if tracer is not None and getattr(args, "events_out", None):
        observers.append(EventStreamObserver(
            tracer, _suffixed(args.events_out, suffix),
            metrics=simulator.metrics))
    if getattr(args, "ledger_out", None):
        observers.append(LedgerStreamObserver(
            _suffixed(args.ledger_out, suffix), simulator.scheduler.name))
    if getattr(args, "prom_out", None):
        observers.append(PrometheusSnapshotObserver(
            simulator.metrics, _suffixed(args.prom_out, suffix)))
    server = None
    if getattr(args, "serve", None) is not None:
        server = MetricsHTTPServer(simulator.metrics, slo=slo_engine,
                                   port=args.serve)
        port = server.start()
        print(f"serving live run at http://127.0.0.1:{port}/metrics "
              "(also /healthz, /alerts)", file=sys.stderr)
        observers.append(server)
    if getattr(args, "watch", False):
        observers.append(WatchView(slo=slo_engine))
    return slo_engine, server


def _simulate(scheduler_name: str, args: argparse.Namespace, trace: Trace,
              suffix: str = ""):
    cluster = presets.by_name(args.cluster)
    scheduler = build_scheduler(scheduler_name, args)
    jobs = trace.jobs
    if scheduler_name in RIGID_SCHEDULERS:
        jobs = tuned_jobs(jobs, cluster, seed=trace.seed)
    tracer = Tracer() if _wants_tracing(args) else None
    config = SimulatorConfig(
        profiling_mode=ProfilingMode(args.profiling_mode),
        seed=args.seed, max_hours=args.max_hours,
        node_failure_rate=args.failure_rate,
        fault_models=build_fault_models(args),
        resilient=getattr(args, "resilient", False),
        tracer=tracer,
        checkpoint=_checkpoint_config(args),
        invariants=getattr(args, "invariants", "off"),
        health=HealthConfig() if getattr(args, "health", False) else None)
    simulator = Simulator(cluster, scheduler, jobs, config)
    _, server = _attach_observers(args, simulator, tracer, suffix)
    try:
        result = simulator.run(resume_from=getattr(args, "resume_from", None))
    finally:
        if server is not None:
            server.close()
    # Record the construction recipe so a saved result can be forked by
    # `repro replay` (jobs are recorded post-tuning, so rigid-scheduler
    # runs replay without re-tuning).
    from repro.analysis.replay import build_run_spec
    result.run_spec = build_run_spec(
        scheduler=scheduler_name, cluster=args.cluster, jobs=jobs,
        seed=args.seed, profiling_mode=args.profiling_mode,
        max_hours=args.max_hours, node_failure_rate=args.failure_rate,
        resilient=getattr(args, "resilient", False),
        invariants=getattr(args, "invariants", "off"),
        health=getattr(args, "health", False),
        scheduler_options={
            "round_duration": args.round_duration, "p": args.p,
            "lam": args.lam, "solver": args.solver,
            "gavel_policy": args.gavel_policy,
            "solve_budget": getattr(args, "solve_budget", 5.0),
        },
        fault_options={k: v for k, v in _fault_options(args).items()
                       if v != forklib.FAULT_OPTION_DEFAULTS[k]})
    violations = simulator.invariant_violations
    if violations:
        print(f"invariant violations: {len(violations)} "
              f"(first: {violations[0].message})", file=sys.stderr)
    _export_observability(result, tracer, args, suffix)
    # --events-out / --ledger-out / --alerts-out streamed during the run
    # (flushed per round, finalized atomically at the end); report where
    # the finalized files landed.
    if tracer is not None and getattr(args, "events_out", None):
        print(f"wrote event log to {_suffixed(args.events_out, suffix)} "
              "(streamed per round)")
    if getattr(args, "ledger_out", None):
        print(f"wrote goodput ledger to "
              f"{_suffixed(args.ledger_out, suffix)} (streamed per round)")
    if getattr(args, "alerts_out", None):
        print(f"wrote SLO alerts to {_suffixed(args.alerts_out, suffix)} "
              "(streamed per round)")
    if getattr(args, "prom_out", None):
        print(f"wrote Prometheus snapshot to "
              f"{_suffixed(args.prom_out, suffix)}")
    if getattr(args, "health_events_out", None):
        path = _suffixed(args.health_events_out, suffix)
        io.save_health_events(result, path)
        print(f"wrote health events to {path}")
    return result


def _suffixed(path: str, suffix: str) -> Path:
    """``trace.json`` + suffix ``sia`` -> ``trace-sia.json`` (compare mode
    writes one file per scheduler)."""
    p = Path(path)
    if not suffix:
        return p
    return p.with_name(f"{p.stem}-{suffix}{p.suffix}")


def _export_observability(result, tracer: Tracer | None,
                          args: argparse.Namespace, suffix: str = "") -> None:
    """Write the trace/event files and print the digest, as requested."""
    if tracer is None:
        return
    events = list(tracer.events)
    if getattr(args, "trace_out", None):
        path = _suffixed(args.trace_out, suffix)
        write_chrome_trace(tracer.spans, path, events)
        print(f"wrote Chrome trace to {path} "
              "(open at https://ui.perfetto.dev)")
    # --events-out streams during the run (EventStreamObserver); only the
    # Chrome trace and digest are post-run renderings.
    if getattr(args, "metrics_digest", False):
        print(run_digest(result))


def _print_robustness_summary(result) -> None:
    """One-line fault/degradation digest after a run (omitted when clean)."""
    faults = result.fault_counts()
    degraded = result.degraded_rounds
    backends = {k or "?": v for k, v in result.backend_counts().items()}
    resilience = result.resilience_counts()
    health = result.health_counts()
    alerts = result.alert_counts()
    if not faults and not degraded and not resilience and not health \
            and not alerts:
        return
    parts = []
    if faults:
        parts.append("faults: " + ", ".join(
            f"{kind}={n}" for kind, n in sorted(faults.items())))
    parts.append(f"degraded rounds: {degraded}/{len(result.rounds)}")
    parts.append("backends: " + ", ".join(
        f"{k}={v}" for k, v in sorted(backends.items())))
    if resilience:
        parts.append("resilience: " + ", ".join(
            f"{k.removeprefix('resilience.')}={v}"
            for k, v in sorted(resilience.items())))
    if health:
        parts.append("health: " + ", ".join(
            f"{k}={v}" for k, v in sorted(health.items())))
    if alerts:
        parts.append("slo alerts: " + ", ".join(
            f"{rule}={n}" for rule, n in sorted(alerts.items())))
    print("; ".join(parts))


# -- subcommands ---------------------------------------------------------------

def cmd_catalog(args: argparse.Namespace) -> int:
    rows = [{
        "model": p.name, "category": p.category, "task": p.task,
        "dataset": p.dataset, "batch_range": f"[{p.min_bsz}, {p.max_bsz}]",
        "optimizer": p.optimizer, "restart_s": p.restart_delay_s,
    } for p in MODEL_ZOO.values()]
    print(format_table(rows, title="Model zoo (Table 2)"))
    print()
    gpu_rows = [{
        "gpu": s.name, "memory_gb": s.memory_gb,
        "compute_scale": s.compute_scale,
        "intra_gbps": s.intra_node_bw_gbps,
        "inter_gbps": s.inter_node_bw_gbps,
    } for s in GPU_CATALOG.values()]
    print(format_table(gpu_rows, title="GPU catalog (Section 4.2)"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    trace = resolve_trace(args)
    print(f"trace {trace.name}: {trace.num_jobs} jobs, "
          f"models: {trace.models_used()}")
    if args.out:
        io.save_trace(trace, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    trace = resolve_trace(args)
    result = _simulate(args.scheduler, args, trace)
    print(format_table([summarize(result).as_row()],
                       title=f"{args.scheduler} on {trace.name} "
                             f"({args.cluster})"))
    _print_robustness_summary(result)
    if args.out:
        io.save_result(result, args.out)
        print(f"saved result to {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report
    results = [io.load_result(path) for path in args.results]
    diffs = [io.load_run_diff(path) for path in (args.diff or [])]
    text = build_report(results, title=args.title, diffs=diffs)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis.explain import explain_job
    result = io.load_result(args.result)
    if not result.rounds:
        raise SystemExit(f"{args.result} has no per-round records "
                         "(saved with include_rounds=False?); re-run and "
                         "save with rounds to explain decisions")
    counterfactual = None
    if args.counterfactual:
        counterfactual = io.load_run_diff(args.counterfactual)
    try:
        print(explain_job(result, args.job, round_index=args.round,
                          counterfactual=counterfactual))
    except (KeyError, IndexError) as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Counterfactual replay: fork a recorded run, diff the two futures."""
    from repro.analysis.replay import ReplayOverrides, replay
    from repro.obs.export import write_run_diff_jsonl

    base = io.load_result(args.result)
    if not base.rounds:
        raise SystemExit(f"{args.result} has no per-round records; re-run "
                         "and save with rounds to replay")
    try:
        overrides = ReplayOverrides(
            policy=args.policy, solver_backend=args.solver_backend,
            fault_seed=args.fault_seed, cluster_delta=args.cluster_delta,
            health=args.health_mode)
        outcome = replay(base, args.at_round, overrides,
                         checkpoint_dir=args.from_checkpoints)
    except ValueError as exc:
        raise SystemExit(str(exc))
    diff = outcome.diff
    over = ", ".join(f"{k}={v}" for k, v in diff.overrides.items()) \
        or "none (identity fork)"
    print(f"forked {diff.base_scheduler} at round {diff.fork_round} "
          f"-> {diff.fork_scheduler} (overrides: {over})")
    if diff.identical:
        print("futures are bit-identical (modulo wall-clock telemetry)")
    elif diff.divergence is not None:
        d = diff.divergence
        print(f"diverged at round {d.round_index} (t={d.time:.0f}s): "
              f"{d.reason}")
    print(format_table([{
        "metric": m.name, "base": round(m.base, 3),
        "fork": round(m.fork, 3), "delta": round(m.delta, 3),
    } for m in diff.metrics], title="outcome deltas"))
    if args.diff_out:
        io.save_run_diff(diff, args.diff_out)
        print(f"wrote run diff to {args.diff_out}")
    if args.diff_jsonl:
        write_run_diff_jsonl(diff, args.diff_jsonl)
        print(f"wrote run-diff JSONL to {args.diff_jsonl}")
    if args.fork_out:
        io.save_result(outcome.fork, args.fork_out)
        print(f"saved forked result to {args.fork_out}")
    if overrides.empty and not diff.identical:
        print("IDENTITY VIOLATION: a zero-override fork must reproduce "
              "the base run bit-identically", file=sys.stderr)
        for line in diff.mismatches[:20]:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


def _apply_gray_scenario_defaults(args: argparse.Namespace) -> None:
    """``chaos --scenario gray`` preset: all three gray-failure fault models,
    health scoring, and strict invariants on a short dense run.  Only flags
    the user left at their defaults are touched, so explicit overrides win."""
    if args.gray_rate == 0.0:
        args.gray_rate = 4.0
    if args.placement_fail_prob == 0.0:
        args.placement_fail_prob = 0.15
    if args.telemetry_corrupt_rate == 0.0:
        args.telemetry_corrupt_rate = 0.1
    args.health = True
    args.resilient = True
    if args.invariants == "off":
        args.invariants = "strict"
    if args.num_jobs is None:
        args.num_jobs = 8
    if args.work_scale == 1.0:
        args.work_scale = 0.2
    if args.window_hours is None:
        args.window_hours = 0.5
    if args.max_hours == 1000.0:
        args.max_hours = 6.0
    if args.kill_round is None:
        args.kill_round = 12


def cmd_chaos(args: argparse.Namespace) -> int:
    """Kill/resume equivalence experiment (see :mod:`repro.sim.chaos`)."""
    import tempfile

    if getattr(args, "scenario", "kill") == "gray":
        _apply_gray_scenario_defaults(args)
    trace = resolve_trace(args)
    cluster = presets.by_name(args.cluster)
    jobs = trace.jobs
    if args.scheduler in RIGID_SCHEDULERS:
        jobs = tuned_jobs(jobs, cluster, seed=trace.seed)

    def factory(ckpt_cfg):
        # A fresh scheduler per run: the three runs (reference, victim,
        # survivor) must not share solver/estimator state.
        scheduler = build_scheduler(args.scheduler, args)
        config = SimulatorConfig(
            profiling_mode=ProfilingMode(args.profiling_mode),
            seed=args.seed, max_hours=args.max_hours,
            node_failure_rate=args.failure_rate,
            fault_models=build_fault_models(args),
            resilient=getattr(args, "resilient", False),
            checkpoint=ckpt_cfg,
            invariants=args.invariants,
            health=HealthConfig() if getattr(args, "health", False) else None)
        return Simulator(cluster, scheduler, jobs, config)

    directory = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    print(f"chaos: scenario={args.scenario} scheduler={args.scheduler} "
          f"trace={trace.name} kill_stage={args.kill_stage} "
          f"checkpoints={directory}",
          file=sys.stderr)
    report = run_chaos(factory, directory=directory,
                       kill_round=args.kill_round,
                       kill_stage=args.kill_stage,
                       chaos_seed=args.chaos_seed,
                       every_rounds=args.checkpoint_every,
                       keep=args.checkpoint_keep,
                       corrupt_latest=args.corrupt_latest)
    print(report.summary())
    if not report.equivalent:
        for line in report.mismatches[:20]:
            print(f"  {line}", file=sys.stderr)
        if len(report.mismatches) > 20:
            print(f"  ... and {len(report.mismatches) - 20} more",
                  file=sys.stderr)
        return 1
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    trace = resolve_trace(args)
    names = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    rows = []
    for name in names:
        print(f"simulating {name} ...", file=sys.stderr)
        result = _simulate(name, args, trace, suffix=name)
        rows.append(summarize(result).as_row())
    print(format_table(rows, title=f"Comparison on {trace.name} "
                                   f"({args.cluster})"))
    return 0


# -- parser ----------------------------------------------------------------------

def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", help="path to a saved trace JSON")
    parser.add_argument("--trace-name", default="philly",
                        choices=sorted(SPECS),
                        help="workload family to sample (default: philly)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-jobs", type=int, default=None)
    parser.add_argument("--work-scale", type=float, default=1.0,
                        help="job-length multiplier (benches use ~0.2)")
    parser.add_argument("--window-hours", type=float, default=None)


def _add_sim_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cluster", default="heterogeneous",
                        choices=sorted(presets.PRESETS))
    parser.add_argument("--profiling-mode", default="bootstrap",
                        choices=[m.value for m in ProfilingMode])
    parser.add_argument("--max-hours", type=float, default=1000.0)
    parser.add_argument("--failure-rate", type=float, default=0.0,
                        help="node failures per node-hour")
    parser.add_argument("--straggler-rate", type=float, default=0.0,
                        help="straggler onsets per node-hour")
    parser.add_argument("--straggler-slowdown", type=float, default=0.5,
                        help="straggling node speed factor in (0, 1]")
    parser.add_argument("--straggler-duration", type=float, default=1800.0,
                        help="seconds a straggler stays slow")
    parser.add_argument("--job-crash-rate", type=float, default=0.0,
                        help="transient job crashes per job-hour")
    parser.add_argument("--restore-failure-prob", type=float, default=0.0,
                        help="probability a restore round fails, in [0, 1)")
    parser.add_argument("--gray-rate", type=float, default=0.0,
                        help="gray-failure onsets per node-hour (silent "
                             "slowdowns masked from telemetry)")
    parser.add_argument("--gray-slowdown", type=float, default=0.35,
                        help="gray-failed node speed factor in (0, 1]")
    parser.add_argument("--gray-duration", type=float, default=7200.0,
                        help="seconds a gray failure persists")
    parser.add_argument("--placement-fail-prob", type=float, default=0.0,
                        help="per-node probability an applied allocation "
                             "fails to start, in [0, 1)")
    parser.add_argument("--telemetry-corrupt-rate", type=float, default=0.0,
                        help="per-observation corruption probability "
                             "(drop/duplicate/scale/stale), in [0, 1)")
    parser.add_argument("--health", action="store_true",
                        help="enable node health scoring with "
                             "probation/quarantine/drain")
    parser.add_argument("--health-events-out", metavar="PATH",
                        help="write node health-state transitions as JSONL "
                             "here (compare mode appends the scheduler name)")
    parser.add_argument("--resilient", action="store_true",
                        help="solver fallback chain + carry-forward guard")
    parser.add_argument("--solve-budget", type=float, default=5.0,
                        help="per-round solver wall-clock budget, seconds")
    parser.add_argument("--round-duration", type=float, default=60.0)
    parser.add_argument("--p", type=float, default=-0.5,
                        help="Sia fairness power")
    parser.add_argument("--lam", type=float, default=1.1,
                        help="Sia allocation incentive lambda")
    parser.add_argument("--solver", default="milp",
                        choices=list(forklib.SOLVER_BACKENDS))
    parser.add_argument("--gavel-policy", default="max_sum_throughput",
                        choices=list(GavelScheduler.POLICIES))
    parser.add_argument("--out", help="write results/trace JSON here")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome/Perfetto trace_event JSON here "
                             "(compare mode appends the scheduler name)")
    parser.add_argument("--events-out", metavar="PATH",
                        help="write a JSONL span/event log here")
    parser.add_argument("--metrics-digest", action="store_true",
                        help="print a per-run observability digest "
                             "(phase breakdown, span stats, metrics)")
    parser.add_argument("--ledger-out", metavar="PATH",
                        help="stream the goodput ledger + allocation events "
                             "as JSONL here, flushed per round (compare "
                             "mode appends the scheduler name)")
    parser.add_argument("--slo", metavar="RULES", nargs="?", const="default",
                        help="evaluate SLO rules live each round: 'default' "
                             "(or no value) for the stock ruleset, or a "
                             "JSON/YAML ruleset path")
    parser.add_argument("--alerts-out", metavar="PATH",
                        help="stream fired SLO alerts as JSONL here "
                             "(implies --slo default unless --slo is given)")
    parser.add_argument("--prom-out", metavar="PATH",
                        help="rewrite a Prometheus text-exposition snapshot "
                             "of the live metrics here every round")
    parser.add_argument("--serve", metavar="PORT", type=int, default=None,
                        help="serve the in-flight run over HTTP on this "
                             "port (0 = ephemeral): /metrics (Prometheus), "
                             "/healthz, /alerts")
    parser.add_argument("--invariants", default="off",
                        choices=list(INVARIANT_MODES),
                        help="round-level invariant auditing: log records "
                             "violations, strict aborts on the first")
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="write atomic engine checkpoints here")
    parser.add_argument("--checkpoint-every", type=int, default=25,
                        metavar="N", help="checkpoint every N rounds")
    parser.add_argument("--checkpoint-keep", type=int, default=3,
                        metavar="N",
                        help="checkpoints retained on disk (0 = all)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sia (SOSP 2023) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser("catalog", help="print the model/GPU catalogs")
    catalog.set_defaults(func=cmd_catalog)

    trace = sub.add_parser("trace", help="sample and optionally save a trace")
    _add_trace_options(trace)
    trace.add_argument("--out", help="write the trace JSON here")
    trace.set_defaults(func=cmd_trace)

    run = sub.add_parser("run", help="simulate one scheduler on a trace")
    run.add_argument("--scheduler", default="sia")
    _add_trace_options(run)
    _add_sim_options(run)
    run.add_argument("--resume-from", metavar="PATH",
                     help="resume from a checkpoint file or directory "
                          "(newest valid checkpoint; falls back past "
                          "corrupted files)")
    run.set_defaults(func=cmd_run)

    watch = sub.add_parser(
        "watch",
        help="run a simulation with a live per-round terminal view and "
             "SLO alerting (the default ruleset unless --slo is given)")
    watch.add_argument("--scheduler", default="sia")
    _add_trace_options(watch)
    _add_sim_options(watch)
    watch.add_argument("--resume-from", metavar="PATH",
                       help="resume from a checkpoint file or directory")
    watch.set_defaults(func=cmd_run, watch=True)

    chaos = sub.add_parser(
        "chaos",
        help="kill a checkpointed run and prove the resume is equivalent")
    chaos.add_argument("--scheduler", default="sia")
    _add_trace_options(chaos)
    _add_sim_options(chaos)
    chaos.add_argument("--scenario", default="kill",
                       choices=["kill", "gray"],
                       help="'kill' = plain crash/resume; 'gray' = layer in "
                            "gray failures, placement flaps, telemetry "
                            "corruption, health scoring and strict "
                            "invariants before the crash")
    chaos.add_argument("--kill-round", type=int, default=None,
                       help="round to crash at (default: seeded random)")
    chaos.add_argument("--kill-stage", default="round_end",
                       choices=["round_end", "pre_write", "mid_write",
                                "pre_rename", "post_rename"],
                       help="where the crash lands (write stages hit the "
                            "checkpoint writer mid-flight)")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for the random kill round")
    chaos.add_argument("--corrupt-latest", action="store_true",
                       help="also corrupt the newest surviving checkpoint "
                            "before resuming (exercises fallback)")
    # Chaos runs are short; checkpoint often and keep everything so the
    # corruption-fallback path always has older files to land on.
    chaos.set_defaults(func=cmd_chaos, checkpoint_every=5, checkpoint_keep=0)

    compare = sub.add_parser("compare",
                             help="simulate several schedulers on one trace")
    compare.add_argument("--schedulers", default="sia,pollux,gavel")
    _add_trace_options(compare)
    _add_sim_options(compare)
    compare.set_defaults(func=cmd_compare)

    report = sub.add_parser("report",
                            help="build a markdown report from saved results")
    report.add_argument("results", nargs="+",
                        help="result JSON files from `run --out`")
    report.add_argument("--title", default="Simulation report")
    report.add_argument("--out", help="write the markdown here")
    report.add_argument("--diff", action="append", metavar="PATH",
                        help="append a counterfactual decision-diff section "
                             "from a `replay --diff-out` file (repeatable)")
    report.set_defaults(func=cmd_report)

    explain = sub.add_parser(
        "explain",
        help="print one job's decision timeline from a saved result")
    explain.add_argument("result",
                         help="result JSON from `run --out` (with rounds)")
    explain.add_argument("--job", required=True,
                         help="job id to explain")
    explain.add_argument("--round", type=int, default=None,
                         help="zoom into one scheduling round")
    explain.add_argument("--counterfactual", metavar="PATH",
                         help="annotate the timeline with the alternate "
                              "future from a `replay --diff-out` file")
    explain.set_defaults(func=cmd_explain)

    replay = sub.add_parser(
        "replay",
        help="fork a recorded run at round N under overrides and diff "
             "the two futures")
    replay.add_argument("result",
                        help="result JSON from `run --out` (carries the "
                             "run spec the fork is rebuilt from)")
    replay.add_argument("--at-round", type=int, required=True,
                        help="round to fork at (rounds before it are "
                             "shared history)")
    replay.add_argument("--policy", default=None,
                        help="swap the scheduler from the fork round on "
                             "(e.g. gavel)")
    replay.add_argument("--solver-backend", default=None,
                        choices=list(forklib.SOLVER_BACKENDS),
                        help="rebind the Sia ILP backend mid-run")
    replay.add_argument("--fault-seed", type=int, default=None,
                        help="reseed every fault model ('different luck')")
    replay.add_argument("--cluster-delta", default=None, metavar="SPEC",
                        help="capacity edit, e.g. '+64xa100' or "
                             "'-8xt4,+16xa100:4' (counts are GPUs)")
    replay.add_argument("--health", dest="health_mode", default=None,
                        choices=["on", "off"],
                        help="force the gray-failure defense on/off in "
                             "the fork")
    replay.add_argument("--from-checkpoints", metavar="DIR", default=None,
                        help="fast-forward from the newest checkpoint at "
                             "or before the fork round instead of "
                             "recomputing from round 0")
    replay.add_argument("--diff-out", metavar="PATH",
                        help="write the RunDiff JSON here (consumed by "
                             "`explain --counterfactual` and "
                             "`report --diff`)")
    replay.add_argument("--diff-jsonl", metavar="PATH",
                        help="write the jq-friendly JSONL rendering here")
    replay.add_argument("--fork-out", metavar="PATH",
                        help="save the forked future as a result JSON")
    replay.set_defaults(func=cmd_replay)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Hybrid-parallel (pipeline-model-parallel x data-parallel) jobs.

Section 5.3 simulates fine-tuning a 2.8B GPT model: a pipeline-parallel
strategy partitions the model over ``P`` GPUs (``P`` depends on the GPU
type's memory — 2 stages on a100, 8 on rtx), and data parallelism replicates
that pipeline to scale out.  A job with ``N`` replicas uses exactly
``N * P`` GPUs; each replica runs ``num_microbatches`` micro-batches of size
``micro_batch_size`` per iteration (GPipe schedule), then all replicas
synchronize with a gradient all-reduce.

The performance model has two parts:

* **pipeline compute** — per micro-batch each stage costs
  ``T_model(m) / P`` (the whole-model per-micro-batch cost split across
  stages); the GPipe schedule fills and drains the pipeline, so one replica
  iteration costs ``(num_micro + P - 1) * stage_time``;
* **data-parallel sync** — a gradient all-reduce across ``N`` replicas; per
  GPU the payload is the stage's ``1/P`` gradient shard, so we reuse the
  model's inter-node sync parameters scaled by ``1/P``.

These jobs are profiled *up front* (the paper seeds the simulator with
measured micro-batch compute and all-reduce times), so the scheduler's
estimator for hybrid jobs is exact rather than bootstrapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import Configuration
from repro.perf import profiles
from repro.perf.efficiency import EfficiencyModel
from repro.perf.throughput import ThroughputModel


@dataclass(frozen=True)
class HybridSpec:
    """Shape of one hybrid-parallel job."""

    #: GPUs per data-parallel replica, per GPU type the planner produced a
    #: partitioning for (Section 5.3: {'a100': 2, 'rtx': 8}).
    stages_per_type: dict[str, int] = field(
        default_factory=lambda: {"a100": 2, "rtx": 8})
    micro_batch_size: int = 1
    num_microbatches: int = 48

    def __post_init__(self) -> None:
        if not self.stages_per_type:
            raise ValueError("hybrid spec needs at least one GPU type")
        if any(p < 1 for p in self.stages_per_type.values()):
            raise ValueError("stage counts must be >= 1")
        if self.micro_batch_size < 1 or self.num_microbatches < 1:
            raise ValueError("invalid micro-batch plan")

    @property
    def replica_batch_size(self) -> int:
        """Samples one replica processes per iteration."""
        return self.micro_batch_size * self.num_microbatches

    def stages(self, gpu_type: str) -> int | None:
        return self.stages_per_type.get(gpu_type)

    def num_replicas(self, config: Configuration) -> int | None:
        """Data-parallel replica count for a configuration, or None if the
        configuration cannot host an integral number of replicas."""
        stages = self.stages(config.gpu_type)
        if stages is None or config.num_gpus % stages != 0:
            return None
        return config.num_gpus // stages


class HybridPerfModel:
    """Ground-truth (== scheduler-visible) performance model for one
    hybrid-parallel job."""

    def __init__(self, model_name: str, spec: HybridSpec):
        self.model_name = model_name
        self.spec = spec

    def iter_time(self, gpu_type: str, num_replicas: int,
                  num_nodes: int) -> float:
        """Seconds per training iteration for N replicas on one GPU type."""
        stages = self.spec.stages(gpu_type)
        if stages is None:
            raise ValueError(f"no pipeline partitioning for {gpu_type!r}")
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        params = profiles.true_throughput_params(self.model_name, gpu_type)
        micro_cost = params.alpha_c + params.beta_c * self.spec.micro_batch_size
        stage_time = micro_cost / stages
        pipeline = (self.spec.num_microbatches + stages - 1) * stage_time
        if num_replicas == 1:
            return pipeline
        # DP all-reduce: each stage's 1/P gradient shard is ring-reduced
        # across the N replicas (participants = N, payload = 1/P), so the
        # cost shrinks with the stage count and grows only mildly with N —
        # which is why compute dominates and scaling stays near-linear
        # (Section 5.3's left plot).
        model = ThroughputModel(params)
        sync = model.sync_time(max(2, num_nodes), num_replicas) / stages
        return pipeline + sync

    def throughput(self, gpu_type: str, num_replicas: int,
                   num_nodes: int) -> float:
        """Samples per second (all replicas combined)."""
        batch = self.spec.replica_batch_size * num_replicas
        return batch / self.iter_time(gpu_type, num_replicas, num_nodes)


class HybridPerfEstimator:
    """Goodput estimator for hybrid-parallel jobs.

    Implements the same protocol as
    :class:`~repro.perf.estimator.JobPerfEstimator` (``goodput``,
    ``add_observation``, ``update_gradient_stats``, ``profile_initial``) so
    the Sia policy treats hybrid jobs uniformly (Section 3.4: "Sia only
    requires that a job provide a goodput estimator").
    """

    def __init__(self, model_name: str, spec: HybridSpec):
        self.model_name = model_name
        self.spec = spec
        self.perf = HybridPerfModel(model_name, spec)
        self._efficiency = EfficiencyModel(
            profiles.true_efficiency_params(model_name))
        self.profiling_gpu_seconds = 0.0

    def profile_initial(self) -> float:
        """Hybrid jobs arrive pre-profiled (Section 5.3); the cost of the
        planner's profiling pass is charged as one pipeline warm-up
        iteration per profiled GPU type."""
        spent = 0.0
        for gpu_type, stages in self.spec.stages_per_type.items():
            spent += self.perf.iter_time(gpu_type, 1, 1) * stages
        self.profiling_gpu_seconds += spent
        return spent

    def add_observation(self, obs) -> None:  # noqa: ANN001 - protocol no-op
        """Hybrid models are exact; online observations are ignored."""

    def update_gradient_stats(self, observed_noise_scale: float) -> None:
        self._efficiency.update_noise_scale(observed_noise_scale)

    def goodput(self, config: Configuration) -> float:
        replicas = self.spec.num_replicas(config)
        if replicas is None:
            return 0.0
        total_bsz = self.spec.replica_batch_size * replicas
        profile = profiles.model_profile(self.model_name)
        if total_bsz > max(profile.max_bsz, self.spec.replica_batch_size):
            # Scaling out adds one replica batch per replica; the submitter's
            # max_bsz bounds how far data parallelism may go.
            return 0.0
        xput = self.perf.throughput(config.gpu_type, replicas,
                                    config.num_nodes)
        return xput * self._efficiency.efficiency(total_bsz)

    def goodput_batch(self, configs: list[Configuration]):
        """Batched :meth:`goodput`.  The hybrid model is closed-form and
        cheap, so this is a convenience loop that keeps the policy's batched
        row-fill path uniform across estimator kinds."""
        out = np.empty(len(configs))
        for i, config in enumerate(configs):
            out[i] = self.goodput(config)
        return out

    def best_plan(self, config: Configuration):
        """Hybrid jobs have a fixed micro-batch plan; return None to signal
        there is no batch-size decision to make."""
        return None

    @property
    def efficiency_model(self) -> EfficiencyModel:
        return self._efficiency

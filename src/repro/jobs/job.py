"""Job abstraction.

A job is a DL training task submitted to the cluster with declared limits
(``max_bsz``, ``max_ngpus`` — Section 3.1) and an adaptivity mode
(Section 3.4): fully adaptive, strong-scaling (fixed batch size), or rigid
(fixed batch size and GPU count).  Hybrid-parallel jobs additionally carry a
:class:`~repro.jobs.hybrid.HybridSpec` that pins their per-replica shape.

Jobs complete after processing ``target_samples`` *effective* samples
(goodput integrated over time); the total is derived from the model's
category (total-GPU-time buckets of Section 4.1) scaled per job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.types import AdaptivityMode
from repro.jobs.hybrid import HybridSpec
from repro.perf import profiles
from repro.perf.estimator import JobConstraints

#: Default per-job GPU cap when the submitter does not declare one
#: (Section 4.3 caps tuned jobs at 16 GPUs on the physical/hetero testbeds).
DEFAULT_MAX_GPUS = 16


@dataclass
class Job:
    """One submitted training job (immutable from the scheduler's view)."""

    job_id: str
    model_name: str
    submit_time: float
    target_samples: float
    adaptivity: AdaptivityMode = AdaptivityMode.ADAPTIVE
    min_gpus: int = 1
    max_gpus: int = DEFAULT_MAX_GPUS
    #: pinned total batch size for strong-scaling / rigid jobs.
    fixed_batch_size: int | None = None
    #: pinned GPU count for rigid jobs.
    fixed_num_gpus: int | None = None
    #: pinned GPU type, for jobs that disallow type changes.
    fixed_gpu_type: str | None = None
    #: non-preemptible jobs must keep their resources once started.
    preemptible: bool = True
    hybrid: HybridSpec | None = None
    #: 'training' (default), 'batch_inference' or 'latency_inference'
    #: (Section 3.4, "Scheduling other workload types").
    workload: str = "training"
    #: promised per-request latency for latency_inference jobs, seconds.
    latency_slo: float | None = None

    def __post_init__(self) -> None:
        profiles.model_profile(self.model_name)  # validate
        if self.target_samples <= 0:
            raise ValueError("target_samples must be positive")
        if self.min_gpus < 1 or self.max_gpus < self.min_gpus:
            raise ValueError("invalid GPU limits")
        if self.adaptivity is AdaptivityMode.RIGID and self.fixed_num_gpus is None:
            raise ValueError("rigid jobs must pin a GPU count")
        if self.adaptivity is not AdaptivityMode.ADAPTIVE \
                and self.fixed_batch_size is None:
            raise ValueError("non-adaptive jobs must pin a batch size")
        if self.workload not in ("training", "batch_inference",
                                 "latency_inference"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.workload == "latency_inference" and self.latency_slo is None:
            raise ValueError("latency_inference jobs must declare an SLO")
        if self.workload != "training" and self.hybrid is not None:
            raise ValueError("inference jobs cannot be hybrid-parallel")

    @property
    def profile(self) -> profiles.ModelProfile:
        return profiles.model_profile(self.model_name)

    @property
    def restart_delay(self) -> float:
        """Checkpoint-restore cost in seconds (model-specific, Section 4.2)."""
        return self.profile.restart_delay_s

    @property
    def is_hybrid(self) -> bool:
        return self.hybrid is not None

    def constraints(self) -> JobConstraints:
        """Batch/GPU limits as seen by the Goodput Estimator."""
        profile = self.profile
        return JobConstraints(
            min_bsz=profile.min_bsz,
            max_bsz=profile.max_bsz,
            min_gpus=self.effective_min_gpus,
            max_gpus=self.effective_max_gpus,
            fixed_total_bsz=self.fixed_batch_size,
        )

    @property
    def effective_min_gpus(self) -> int:
        if self.fixed_num_gpus is not None:
            return self.fixed_num_gpus
        if self.hybrid is not None:
            return min(self.hybrid.stages_per_type.values())
        return self.min_gpus

    @property
    def effective_max_gpus(self) -> int:
        if self.fixed_num_gpus is not None:
            return self.fixed_num_gpus
        return self.max_gpus

    @property
    def allowed_gpu_types(self) -> tuple[str, ...] | None:
        """GPU types the job may use, or None for "any type"."""
        if self.fixed_gpu_type is not None:
            return (self.fixed_gpu_type,)
        if self.hybrid is not None:
            return tuple(self.hybrid.stages_per_type)
        return None


def make_job(job_id: str, model_name: str, submit_time: float, *,
             adaptivity: AdaptivityMode = AdaptivityMode.ADAPTIVE,
             work_scale: float = 1.0,
             max_gpus: int = DEFAULT_MAX_GPUS,
             fixed_batch_size: int | None = None,
             fixed_num_gpus: int | None = None,
             hybrid: HybridSpec | None = None,
             preemptible: bool = True,
             workload: str = "training",
             latency_slo: float | None = None) -> Job:
    """Create a job of a Table 2 model with sensible defaults.

    ``work_scale`` scales the model's category work total (jobs of the same
    model differ in length).  Non-adaptive jobs default their pinned batch
    size to the model's reference batch size if not supplied.  For
    inference workloads ``target_samples`` counts samples scored (batch) or
    requests served (latency serving).
    """
    if work_scale <= 0:
        raise ValueError("work_scale must be positive")
    profile = profiles.model_profile(model_name)
    if adaptivity is not AdaptivityMode.ADAPTIVE and fixed_batch_size is None:
        fixed_batch_size = profile.min_bsz
    if adaptivity is AdaptivityMode.RIGID and fixed_num_gpus is None:
        fixed_num_gpus = 1
    target = profiles.target_effective_samples(model_name) * work_scale
    return Job(job_id=job_id, model_name=model_name, submit_time=submit_time,
               target_samples=target, adaptivity=adaptivity,
               max_gpus=max_gpus, fixed_batch_size=fixed_batch_size,
               fixed_num_gpus=fixed_num_gpus, hybrid=hybrid,
               preemptible=preemptible, workload=workload,
               latency_slo=latency_slo)


def isolated_runtime(job: Job, gpu_type: str, num_gpus: int,
                     num_nodes: int | None = None) -> float:
    """Ground-truth wall-clock seconds for the job alone on an allocation.

    Used by the finish-time-fairness metric (Section 5.5) to compute the
    isolated-cluster baseline JCT.  Returns ``inf`` if the allocation cannot
    run the job (e.g. the model does not fit the GPU type's memory).
    """
    if num_nodes is None:
        num_nodes = 1
    if job.hybrid is not None:
        return _isolated_hybrid_runtime(job, gpu_type, num_gpus, num_nodes)
    cap = profiles.max_local_bsz(job.model_name, gpu_type)
    if cap < 1:
        return math.inf
    model = profiles.true_goodput_model(job.model_name, gpu_type)
    rate = model.goodput(num_gpus, num_nodes,
                         max_local_bsz=cap,
                         max_total_bsz=job.profile.max_bsz,
                         min_total_bsz=job.profile.min_bsz,
                         fixed_total_bsz=job.fixed_batch_size)
    if rate <= 0:
        return math.inf
    return job.target_samples / rate


def _isolated_hybrid_runtime(job: Job, gpu_type: str, num_gpus: int,
                             num_nodes: int) -> float:
    """Isolated runtime for a hybrid-parallel job: as many whole pipeline
    replicas as the allocation can host."""
    from repro.jobs.hybrid import HybridPerfEstimator
    from repro.core.types import Configuration

    assert job.hybrid is not None
    stages = job.hybrid.stages(gpu_type)
    if stages is None or num_gpus < stages:
        return math.inf
    usable = (num_gpus // stages) * stages
    estimator = HybridPerfEstimator(job.model_name, job.hybrid)
    rate = estimator.goodput(Configuration(num_nodes, usable, gpu_type))
    if rate <= 0:
        return math.inf
    return job.target_samples / rate

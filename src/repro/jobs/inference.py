"""Inference workloads (Section 3.4, "Scheduling other workload types").

The paper argues Sia generalizes beyond DL training: it only requires a
goodput estimator per job.  Two estimator families are sketched there and
implemented here:

* **Batch inference** — run inference over a large dataset; throughput *is*
  goodput (no statistical-efficiency component).  These jobs flow through
  the simulator end-to-end: progress accrues at the realized throughput.
* **Latency-sensitive inference** — pick resources that can serve requests
  within a latency SLO: goodput is 1 for configurations meeting the SLO
  and 0 otherwise, so the ILP places the job on the cheapest feasible
  bundle (every feasible configuration has equal utility; the allocation
  incentive does the rest).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Configuration, ProfilingMode
from repro.perf import profiles
from repro.perf.efficiency import ConstantEfficiency
from repro.perf.estimator import JobConstraints, JobPerfEstimator


class BatchInferenceEstimator(JobPerfEstimator):
    """Goodput estimator for batch (offline) inference jobs.

    Reuses the full training estimator machinery — per-GPU-type throughput
    models, initial profiling, Equation (1) bootstrapping — but replaces the
    statistical-efficiency model with unit efficiency, so goodput equals
    samples scored per second.
    """

    def __init__(self, model_name: str, constraints: JobConstraints,
                 gpu_types: tuple[str, ...],
                 mode: ProfilingMode = ProfilingMode.BOOTSTRAP):
        super().__init__(model_name, constraints, gpu_types, mode)
        self._efficiency = ConstantEfficiency()

    def update_gradient_stats(self, observed_noise_scale: float) -> None:
        """Inference reports no gradient statistics."""


class LatencySLOEstimator:
    """Goodput estimator for latency-sensitive inference (Section 3.4).

    ``goodput(config)`` is 1.0 when a single-sample forward pass on that
    configuration meets the promised latency, else 0.0.  Uses the true
    per-type compute model (serving deployments are profiled before being
    admitted), and only single-node configurations qualify: a
    latency-bound replica cannot span nodes.
    """

    def __init__(self, model_name: str, latency_slo_s: float,
                 gpu_types: tuple[str, ...]):
        if latency_slo_s <= 0:
            raise ValueError("latency SLO must be positive")
        profiles.model_profile(model_name)  # validate
        self.model_name = model_name
        self.latency_slo_s = latency_slo_s
        self.gpu_types = gpu_types
        self.profiling_gpu_seconds = 0.0

    def request_latency(self, gpu_type: str) -> float:
        """Single-sample forward latency on one GPU of a type.

        Inference runs the forward pass only, roughly a third of a training
        step's compute.
        """
        params = profiles.true_throughput_params(self.model_name, gpu_type)
        return (params.alpha_c + params.beta_c) / 3.0

    def meets_slo(self, gpu_type: str) -> bool:
        if profiles.max_local_bsz(self.model_name, gpu_type) < 1:
            return False
        return self.request_latency(gpu_type) <= self.latency_slo_s

    def profile_initial(self) -> float:
        """Charge one warm-up request per GPU type."""
        spent = sum(self.request_latency(t) for t in self.gpu_types
                    if profiles.max_local_bsz(self.model_name, t) >= 1)
        self.profiling_gpu_seconds += spent
        return spent

    def add_observation(self, obs) -> None:  # noqa: ANN001 - protocol no-op
        """Latency model is profiled up front; online data is ignored."""

    def update_gradient_stats(self, observed_noise_scale: float) -> None:
        """No gradient statistics for inference."""

    def goodput(self, config: Configuration) -> float:
        if config.num_nodes != 1:
            return 0.0
        return 1.0 if self.meets_slo(config.gpu_type) else 0.0

    def goodput_batch(self, configs: list[Configuration]) -> np.ndarray:
        """Batched :meth:`goodput`: the SLO check is per GPU type, so one
        pass over the (few) types covers any number of configurations."""
        slo_ok = {t: self.meets_slo(t)
                  for t in {c.gpu_type for c in configs}}
        return np.fromiter(
            (1.0 if c.num_nodes == 1 and slo_ok[c.gpu_type] else 0.0
             for c in configs), dtype=float, count=len(configs))

    def best_plan(self, config: Configuration):
        """Latency serving has no batch-size decision."""
        return None


def serving_throughput(model_name: str, gpu_type: str,
                       num_gpus: int) -> float:
    """Requests/second a latency-serving allocation can sustain (each GPU
    serves independently at its single-sample forward latency)."""
    if num_gpus < 1:
        return 0.0
    probe = LatencySLOEstimator(model_name, 1.0, (gpu_type,))
    return num_gpus / probe.request_latency(gpu_type)

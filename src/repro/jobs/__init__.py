"""Job abstractions: adaptivity modes, the Table 2 model zoo, and
hybrid-parallel (PMP x DP) job support."""

from repro.jobs.hybrid import HybridPerfEstimator, HybridPerfModel, HybridSpec
from repro.jobs.inference import (BatchInferenceEstimator,
                                  LatencySLOEstimator, serving_throughput)
from repro.jobs.job import DEFAULT_MAX_GPUS, Job, isolated_runtime, make_job

__all__ = [
    "DEFAULT_MAX_GPUS",
    "Job",
    "isolated_runtime",
    "make_job",
    "HybridPerfEstimator",
    "HybridPerfModel",
    "HybridSpec",
    "BatchInferenceEstimator",
    "LatencySLOEstimator",
    "serving_throughput",
]

"""Cluster schedulers: Sia and the paper's baselines."""

from repro.schedulers.base import (JobView, RoundPlan, Scheduler,
                                   pack_gpus_on_type)
from repro.schedulers.gavel import GavelScheduler
from repro.schedulers.pollux import GAParams, PolluxEstimator, PolluxScheduler
from repro.schedulers.shockwave import ShockwaveScheduler, fair_finish_ratio
from repro.schedulers.sia import SiaScheduler
from repro.schedulers.simple import FIFOScheduler, SRTFScheduler
from repro.schedulers.themis import ThemisScheduler

# The resilience layer (ResilienceConfig, ResilientScheduler, ...) lives in
# repro.core.resilience; it imports repro.schedulers.base, so re-exporting it
# here would be circular.  Import it from repro.core.resilience directly.

__all__ = [
    "JobView", "RoundPlan", "Scheduler", "pack_gpus_on_type",
    "GavelScheduler",
    "GAParams", "PolluxEstimator", "PolluxScheduler",
    "ShockwaveScheduler", "fair_finish_ratio",
    "SiaScheduler",
    "FIFOScheduler", "SRTFScheduler",
    "ThemisScheduler",
]

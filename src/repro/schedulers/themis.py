"""Themis baseline (simplified from [34]).

Themis targets finish-time fairness via partial-allocation auctions over
the 1-f fraction of most unfairly-treated jobs.  Our simplification keeps
the behaviour the paper measures: each 360 s round, jobs are ranked purely
by their projected finish-time-fairness ratio (worst first) and receive
their fixed allocation greedily until the cluster is full.  Unlike
Shockwave there is no efficiency/makespan term — which is exactly why
Themis trails Shockwave on average JCT and makespan in Table 4.
"""

from __future__ import annotations

import math

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation
from repro.schedulers.base import JobView, RoundPlan, Scheduler
from repro.schedulers.shockwave import fair_finish_ratio, place_rigid


class ThemisScheduler(Scheduler):
    """Pure finish-time-fairness priority scheduler for rigid jobs."""

    name = "themis"
    oracle_estimators = True

    def __init__(self, round_duration: float = 360.0):
        self.round_duration = round_duration

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        if not views:
            return RoundPlan()
        with self.planning(views) as timer:
            with timer.phase("bootstrap"):
                contention = len(views)
            with timer.phase("goodput_eval"):
                rhos = [self._finite_rho(v, cluster, now, contention)
                        for v in views]
            with timer.phase("solve"):
                ranked = [views[i] for i in
                          sorted(range(len(views)), key=lambda i: -rhos[i])]
            with timer.phase("placement"):
                plan = RoundPlan()
                occupancy: dict[int, int] = {}
                for view in ranked:
                    allocation = place_rigid(view, cluster, occupancy,
                                             previous.get(view.job_id))
                    if allocation is not None:
                        plan.allocations[view.job_id] = allocation
            self.record_estimates(views, plan)
            return timer.finish(plan)

    @staticmethod
    def _finite_rho(view: JobView, cluster: Cluster, now: float,
                    contention: int) -> float:
        rho = fair_finish_ratio(view, cluster, now, contention)
        return -math.inf if math.isinf(rho) else rho
